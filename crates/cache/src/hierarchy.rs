//! An optional second cache level between the L1 and texture memory.
//!
//! The paper's conclusion asks what an L2 (Cox et al.'s multi-level texture
//! caching) would buy in a multiprocessor configuration where each node's L2
//! only ever sees a fraction of the image. This model lets the ablation
//! benches answer that: external fetches are L2 misses, not L1 misses.

use crate::geometry::CacheGeometry;
use crate::set_assoc::SetAssocCache;
use crate::stats::CacheStats;
use crate::LineCache;

/// A two-level inclusive-fill cache hierarchy.
///
/// Every L1 miss probes the L2; only L2 misses fetch from external memory.
/// `stats()` reports L1 behaviour; [`TwoLevelCache::l2_stats`] reports the
/// second level, and [`LineCache::external_fetches`] reports L2 misses.
///
/// # Examples
///
/// ```
/// use sortmid_cache::{CacheGeometry, LineCache, TwoLevelCache};
///
/// let mut c = TwoLevelCache::new(CacheGeometry::paper_l1(), CacheGeometry::paper_l2());
/// c.access_line(9);
/// assert_eq!(c.external_fetches(), 1);
/// c.access_line(9);
/// assert_eq!(c.external_fetches(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct TwoLevelCache {
    l1: SetAssocCache,
    l2: SetAssocCache,
}

impl TwoLevelCache {
    /// Creates the hierarchy from two geometries.
    pub fn new(l1: CacheGeometry, l2: CacheGeometry) -> Self {
        TwoLevelCache {
            l1: SetAssocCache::new(l1),
            l2: SetAssocCache::new(l2),
        }
    }

    /// L2 statistics (accesses = L1 misses).
    pub fn l2_stats(&self) -> &CacheStats {
        self.l2.stats()
    }

    /// L1 geometry.
    pub fn l1_geometry(&self) -> CacheGeometry {
        self.l1.geometry()
    }

    /// L2 geometry.
    pub fn l2_geometry(&self) -> CacheGeometry {
        self.l2.geometry()
    }
}

impl LineCache for TwoLevelCache {
    #[inline]
    fn access_line(&mut self, line: u32) -> bool {
        let hit = self.l1.access_line(line);
        if !hit {
            self.l2.access_line(line);
        }
        hit
    }

    fn stats(&self) -> &CacheStats {
        self.l1.stats()
    }

    fn external_fetches(&self) -> u64 {
        self.l2.stats().misses()
    }

    fn reset(&mut self) {
        self.l1.reset();
        self.l2.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TwoLevelCache {
        TwoLevelCache::new(
            CacheGeometry::new(512, 2, 64).unwrap(),   // 8 lines
            CacheGeometry::new(4096, 4, 64).unwrap(), // 64 lines
        )
    }

    #[test]
    fn l2_filters_l1_capacity_misses() {
        let mut c = tiny();
        // 32-line working set: thrashes the 8-line L1 but fits the L2.
        for _ in 0..4 {
            for line in 0..32 {
                c.access_line(line);
            }
        }
        assert!(c.stats().misses() > 32, "L1 should thrash");
        assert_eq!(c.external_fetches(), 32, "L2 absorbs all reuse");
        assert_eq!(c.l2_stats().accesses(), c.stats().misses());
    }

    #[test]
    fn l1_hits_never_reach_l2() {
        let mut c = tiny();
        c.access_line(1);
        let l2_after_fill = c.l2_stats().accesses();
        c.access_line(1); // L1 hit
        assert_eq!(c.l2_stats().accesses(), l2_after_fill);
    }

    #[test]
    fn reset_clears_both_levels() {
        let mut c = tiny();
        c.access_line(5);
        c.reset();
        assert_eq!(c.stats().accesses(), 0);
        assert_eq!(c.l2_stats().accesses(), 0);
        assert_eq!(c.external_fetches(), 0);
    }

    #[test]
    fn geometries_are_exposed() {
        let c = tiny();
        assert_eq!(c.l1_geometry().total_lines(), 8);
        assert_eq!(c.l2_geometry().total_lines(), 64);
    }
}
