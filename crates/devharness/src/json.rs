//! Minimal JSON document model for the bench writer.
//!
//! Only what `BENCH_<name>.json` needs: objects, arrays, strings, integers
//! and floats, rendered with deterministic key order (insertion order) so
//! diffs between PRs stay readable. [`Json::parse`] reads the same dialect
//! back, so CI can validate emitted artefacts without external crates.

use std::fmt;
use std::fmt::Write as _;

/// A JSON value.
///
/// # Examples
///
/// ```
/// use sortmid_devharness::json::Json;
///
/// let doc = Json::obj([
///     ("name", Json::str("fig5")),
///     ("samples", Json::arr([Json::U64(3), Json::U64(4)])),
/// ]);
/// assert_eq!(doc.render(), r#"{"name":"fig5","samples":[3,4]}"#);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer, rendered exactly (no float rounding).
    U64(u64),
    /// A signed (negative) integer, rendered exactly — the artefact
    /// differ emits cycle/miss deltas, which must round-trip without the
    /// float precision loss past 2^53.
    I64(i64),
    /// A float, rendered via Rust's shortest-roundtrip formatting.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An array from any iterator of values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// An object from `(key, value)` pairs, keeping their order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Parses a JSON document (the dialect [`render`](Self::render) emits:
    /// standard JSON minus `\uXXXX` surrogate pairs outside the BMP).
    /// Numbers parse as [`Json::U64`] when they are unsigned integral,
    /// as [`Json::I64`] when they are negative integral, else as
    /// [`Json::F64`].
    ///
    /// # Errors
    ///
    /// Returns [`JsonParseError`] with a byte offset on malformed input or
    /// trailing garbage.
    ///
    /// # Examples
    ///
    /// ```
    /// use sortmid_devharness::json::Json;
    ///
    /// let doc = Json::parse(r#"{"suite":"fig5","samples":[3,4.5]}"#).unwrap();
    /// assert_eq!(doc.get("suite").and_then(Json::as_str), Some("fig5"));
    /// assert_eq!(doc.render(), r#"{"suite":"fig5","samples":[3,4.5]}"#);
    /// ```
    pub fn parse(input: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Looks a key up in an object (`None` for missing keys and
    /// non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, when this is an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(n) => Some(*n),
            _ => None,
        }
    }

    /// The integer payload as a signed integer (unsigned values widen when
    /// they fit).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::I64(n) => Some(*n),
            Json::U64(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The boolean payload, when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload as a float (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(n) => Some(*n as f64),
            Json::I64(n) => Some(*n as f64),
            Json::F64(x) => Some(*x),
            _ => None,
        }
    }

    /// The element list, when this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Inserts or replaces a key in an object, preserving an existing
    /// key's position (artefact emitters use this to attach the
    /// `provenance` block to an already-built document).
    ///
    /// # Panics
    ///
    /// Panics when called on a non-object.
    pub fn set(&mut self, key: impl Into<String>, value: Json) {
        let Json::Obj(pairs) = self else {
            panic!("Json::set needs an object");
        };
        let key = key.into();
        match pairs.iter_mut().find(|(k, _)| *k == key) {
            Some((_, slot)) => *slot = value,
            None => pairs.push((key, value)),
        }
    }

    /// Renders the document as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::I64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F64(x) => {
                // JSON has no NaN/Infinity; clamp to null like serde_json.
                if x.is_finite() {
                    let mut s = String::new();
                    let _ = write!(s, "{x}");
                    // "2" would read back as an integer; keep floats floats.
                    if !s.contains(['.', 'e', 'E']) {
                        s.push_str(".0");
                    }
                    out.push_str(&s);
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// A parse failure with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonParseError {}

/// Containers may nest at most this deep: the parser recurses per level,
/// so unbounded nesting (e.g. a few thousand `[`s) would overflow the
/// stack instead of reporting a parse error.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.nested(Parser::array),
            Some(b'{') => self.nested(Parser::object),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    /// Runs a container parser one nesting level down, failing cleanly at
    /// [`MAX_DEPTH`] (each level is a stack frame).
    fn nested(
        &mut self,
        inner: fn(&mut Self) -> Result<Json, JsonParseError>,
    ) -> Result<Json, JsonParseError> {
        if self.depth == MAX_DEPTH {
            return Err(self.err(format!("containers nested deeper than {MAX_DEPTH} levels")));
        }
        self.depth += 1;
        let out = inner(self);
        self.depth -= 1;
        out
    }

    fn array(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        c => return Err(self.err(format!("unknown escape '\\{}'", c as char))),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::I64(n));
            }
        }
        match text.parse::<f64>() {
            // `1e999` parses "successfully" to infinity; a finiteness
            // check keeps non-representable numbers out of the document
            // (Json::F64 renders non-finite values as null, so accepting
            // them would silently corrupt round trips).
            Ok(v) if v.is_finite() => Ok(Json::F64(v)),
            Ok(_) => Err(self.err(format!("number '{text}' is not representable"))),
            Err(_) => Err(self.err(format!("invalid number '{text}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::U64(18_446_744_073_709_551_615).render(), "18446744073709551615");
        assert_eq!(Json::F64(1.5).render(), "1.5");
        assert_eq!(Json::F64(f64::NAN).render(), "null");
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        assert_eq!(Json::F64(2.0).render(), "2.0");
        assert_eq!(Json::F64(-3.0).render(), "-3.0");
        assert_eq!(Json::F64(0.0).render(), "0.0");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(Json::str("a\"b\\c\nd").render(), r#""a\"b\\c\nd""#);
        assert_eq!(Json::str("\u{1}").render(), "\"\\u0001\"");
    }

    #[test]
    fn nesting_renders_in_order() {
        let doc = Json::obj([
            ("b", Json::U64(1)),
            ("a", Json::arr([Json::Null, Json::Bool(false)])),
        ]);
        assert_eq!(doc.render(), r#"{"b":1,"a":[null,false]}"#);
    }

    #[test]
    fn parse_round_trips_a_bench_style_document() {
        let doc = Json::obj([
            ("suite", Json::str("sweep")),
            ("warmup_iters", Json::U64(1)),
            ("samples", Json::U64(5)),
            (
                "benchmarks",
                Json::arr([Json::obj([
                    ("id", Json::str("grid/shared-plan")),
                    ("median_ns", Json::U64(44_700_000)),
                    ("p10_ns", Json::U64(44_000_000)),
                    ("p90_ns", Json::U64(46_000_000)),
                    ("samples_ns", Json::arr([Json::U64(1), Json::U64(2)])),
                    ("throughput_per_sec", Json::F64(1342.5)),
                ])]),
            ),
        ]);
        let text = doc.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.render(), text);
        let benches = back.get("benchmarks").and_then(Json::as_arr).unwrap();
        assert_eq!(
            benches[0].get("id").and_then(Json::as_str),
            Some("grid/shared-plan")
        );
        assert_eq!(
            benches[0].get("median_ns").and_then(Json::as_u64),
            Some(44_700_000)
        );
        assert_eq!(
            benches[0].get("throughput_per_sec").and_then(Json::as_f64),
            Some(1342.5)
        );
    }

    #[test]
    fn parse_handles_whitespace_escapes_and_numbers() {
        let doc = Json::parse(
            " { \"a\\n\\\"b\" : [ -1.5 , 2e3 , 7 , \"\\u0041\" ] , \"t\" : true } ",
        )
        .unwrap();
        assert_eq!(doc.get("t"), Some(&Json::Bool(true)));
        let arr = doc.get("a\n\"b").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0], Json::F64(-1.5));
        assert_eq!(arr[1], Json::F64(2000.0));
        assert_eq!(arr[2], Json::U64(7));
        assert_eq!(arr[3], Json::str("A"));
    }

    #[test]
    fn as_f64_widens_integers() {
        assert_eq!(Json::U64(3).as_f64(), Some(3.0));
        assert_eq!(Json::F64(0.5).as_u64(), None);
        assert_eq!(Json::I64(-3).as_f64(), Some(-3.0));
    }

    #[test]
    fn negative_integers_round_trip_exactly() {
        // -2^60 - 1 is not representable in f64; it must survive a render
        // round trip bit-exactly (delta artefacts rely on this).
        let n = -(1i64 << 60) - 1;
        assert_eq!(Json::I64(n).render(), n.to_string());
        assert_eq!(Json::parse(&n.to_string()).unwrap(), Json::I64(n));
        assert_eq!(Json::parse("-5").unwrap(), Json::I64(-5));
        assert_eq!(Json::parse("-5").unwrap().as_i64(), Some(-5));
        assert_eq!(Json::parse(&i64::MIN.to_string()).unwrap(), Json::I64(i64::MIN));
        // Unsigned values widen through as_i64 only when they fit.
        assert_eq!(Json::U64(7).as_i64(), Some(7));
        assert_eq!(Json::U64(u64::MAX).as_i64(), None);
        // Below i64::MIN falls back to a float.
        assert!(matches!(Json::parse("-99999999999999999999").unwrap(), Json::F64(_)));
    }

    #[test]
    fn as_bool_reads_booleans_only() {
        assert_eq!(Json::Bool(true).as_bool(), Some(true));
        assert_eq!(Json::U64(1).as_bool(), None);
    }

    #[test]
    fn set_inserts_and_replaces_in_place() {
        let mut doc = Json::obj([("a", Json::U64(1)), ("b", Json::U64(2))]);
        doc.set("c", Json::U64(3));
        doc.set("a", Json::U64(9));
        assert_eq!(doc.render(), r#"{"a":9,"b":2,"c":3}"#);
    }

    #[test]
    #[should_panic(expected = "needs an object")]
    fn set_on_non_object_panics() {
        Json::Null.set("k", Json::U64(1));
    }

    #[test]
    fn parse_errors_carry_offsets() {
        let e = Json::parse("[1,]").unwrap_err();
        assert_eq!(e.offset, 3);
        let e = Json::parse("{\"a\":1} x").unwrap_err();
        assert!(e.message.contains("trailing"), "{e}");
        let e = Json::parse("\"open").unwrap_err();
        assert!(e.message.contains("unterminated"), "{e}");
        assert!(Json::parse("").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        // One level inside the cap parses...
        let fine = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(Json::parse(&fine).is_ok());
        // ...one past it reports a clean error (and a pathological input
        // far past it must not blow the stack).
        let over = format!("{}1{}", "[".repeat(MAX_DEPTH + 1), "]".repeat(MAX_DEPTH + 1));
        let e = Json::parse(&over).unwrap_err();
        assert!(e.message.contains("nested deeper"), "{e}");
        let bomb = format!("{}{}", "[".repeat(100_000), "{".repeat(100_000));
        assert!(Json::parse(&bomb).is_err());
        let mixed = format!("{}1{}", "[{\"k\":".repeat(80), "}]".repeat(80));
        let e = Json::parse(&mixed).unwrap_err();
        assert!(e.message.contains("nested deeper"), "{e}");
    }

    #[test]
    fn trailing_garbage_is_rejected_after_any_document() {
        for doc in ["1 2", "[] []", "{} null", "\"s\"garbage", "truefalse"] {
            assert!(Json::parse(doc).is_err(), "{doc:?} must not parse");
        }
        // Whitespace after the document is fine.
        assert!(Json::parse("  [1, 2]\n\t ").is_ok());
    }

    #[test]
    fn lone_surrogates_are_rejected() {
        for doc in [r#""\ud800""#, r#""\udfff""#, r#"{"k":"\ud912"}"#] {
            let e = Json::parse(doc).unwrap_err();
            assert!(e.message.contains("scalar value"), "{doc:?}: {e}");
        }
        // An escaped surrogate *pair* is still two lone escapes to this
        // parser (it does not combine them) and is rejected; actual astral
        // characters pass through as raw UTF-8 instead.
        assert!(Json::parse(r#""\ud83d\ude00""#).is_err());
        assert_eq!(
            Json::parse("\"\u{1f600}\"").unwrap().as_str(),
            Some("\u{1f600}")
        );
    }

    #[test]
    fn overflowing_numbers_are_rejected_not_infinite() {
        for doc in ["1e999", "-1e999", "1e308e"] {
            assert!(Json::parse(doc).is_err(), "{doc:?} must not parse");
        }
        // The largest finite doubles still parse.
        assert_eq!(Json::parse("1e308").unwrap().as_f64(), Some(1e308));
        assert_eq!(Json::parse("-1.7976931348623157e308").unwrap().as_f64(), Some(f64::MIN));
        // Integers beyond u64 fall back to (finite) floats.
        assert_eq!(
            Json::parse("99999999999999999999999999").unwrap().as_f64(),
            Some(1e26)
        );
    }
}
