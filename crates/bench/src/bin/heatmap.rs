//! Spatial observability: screen-space heatmaps and per-node three-C miss
//! attribution for one machine configuration.
//!
//! For each named preset this bin:
//!
//! 1. runs the machine via [`Machine::run_traced`] with a
//!    [`SpatialCollector`], double-checking that the report is identical
//!    to the untraced [`Machine::run`] and that every node's three-C
//!    decomposition sums exactly to its miss counter;
//! 2. writes false-color PPM maps — `HEAT_<preset>_depth.ppm`
//!    (depth complexity), `HEAT_<preset>_owner.ppm` (fragments per owner
//!    node), `HEAT_<preset>_setup.ppm` (setup-floor padding),
//!    `HEAT_<preset>_t2f.ppm` (texel-to-fragment ratio) and
//!    `HEAT_<preset>_missclass.ppm` (RGB = conflict/capacity/compulsory);
//! 3. writes `HEATMAP_<preset>.json` — the full per-tile and per-node
//!    attribution document that `bench_check` validates;
//! 4. prints per-metric tile summaries (max/min tile, imbalance ratio)
//!    and the Gini coefficient of the per-node fragment load.
//!
//! Usage: `heatmap [--scale F] [--tile N] [preset ...]` with presets from
//! [`PRESETS`]; no preset runs `block16` and `sli4` (the paper's
//! load-balance-vs-locality pair at 64 processors). Output goes to
//! `SORTMID_BENCH_DIR` (default the current directory).

use sortmid::{
    CacheKind, Distribution, Machine, MachineConfig, RunReport, SpatialCollector, TileStats,
};
use sortmid_bench::run_provenance;
use sortmid_cache::CacheGeometry;
use sortmid_observe::{owner_color, sqrt_channel, ScreenGrid};
use sortmid_scene::{Benchmark, SceneBuilder};
use sortmid_util::ppm::Image;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// The named heatmap presets: `(name, what it shows)`.
pub const PRESETS: [(&str, &str); 3] = [
    ("block16", "64 processors, 16x16 blocks (the paper's balance/locality sweet spot)"),
    ("sli4", "64 processors, 4-line SLI (balanced load, shredded locality)"),
    ("tiny", "4 processors, 16x16 blocks (smoke preset for CI)"),
];

/// Pixels drawn per grid tile in the PPM maps.
const PX_PER_TILE: u32 = 8;

fn preset_config(name: &str) -> Option<MachineConfig> {
    let mut b = MachineConfig::builder();
    match name {
        "block16" => b.processors(64).distribution(Distribution::block(16)),
        "sli4" => b.processors(64).distribution(Distribution::sli(4)),
        "tiny" => b.processors(4).distribution(Distribution::block(16)),
        _ => return None,
    };
    Some(
        b.cache(CacheKind::Classifying(CacheGeometry::paper_l1()))
            .build()
            .expect("valid preset"),
    )
}

fn usage() -> String {
    let mut s = String::from("usage: heatmap [--scale F] [--tile N] [preset ...]\npresets:\n");
    for (name, what) in PRESETS {
        s.push_str(&format!("  {name:8} {what}\n"));
    }
    s
}

/// Prints one metric's tile summary line, or notes an all-zero map.
fn summarize_metric(label: &str, grid: &ScreenGrid<TileStats>, value: impl Fn(&TileStats) -> f64) {
    match grid.summarize(&value) {
        Some(s) if s.max > 0.0 => println!("  {label:12} {s}"),
        _ => println!("  {label:12} (all zero)"),
    }
}

fn write_maps(
    dir: &Path,
    name: &str,
    col: &SpatialCollector,
    report: &RunReport,
    config: &MachineConfig,
) -> Result<Vec<PathBuf>, String> {
    let grid = col.grid();
    let class_max = grid
        .cells()
        .iter()
        .map(|t| t.misses.compulsory.max(t.misses.capacity).max(t.misses.conflict))
        .max()
        .unwrap_or(0)
        .max(1) as f64;
    let maps: [(&str, Image); 5] = [
        ("depth", grid.render(PX_PER_TILE, |t| t.fragments as f64)),
        (
            "owner",
            grid.render_rgb(PX_PER_TILE, |t| {
                if t.fragments == 0 {
                    [0, 0, 0]
                } else {
                    owner_color(t.owner)
                }
            }),
        ),
        ("setup", grid.render(PX_PER_TILE, |t| t.setup_cycles as f64)),
        (
            "t2f",
            grid.render(PX_PER_TILE, |t| {
                if t.fragments == 0 {
                    0.0
                } else {
                    // 16 texels per 64-byte line of 4-byte texels.
                    t.lines_fetched as f64 * 16.0 / t.fragments as f64
                }
            }),
        ),
        (
            "missclass",
            grid.render_rgb(PX_PER_TILE, |t| {
                let ch = |v: u64| sqrt_channel(v, class_max);
                [ch(t.misses.conflict), ch(t.misses.capacity), ch(t.misses.compulsory)]
            }),
        ),
    ];
    let mut written = Vec::new();
    for (metric, img) in maps {
        let path = dir.join(format!("HEAT_{name}_{metric}.ppm"));
        img.write_ppm(&path)
            .map_err(|e| format!("write {}: {e}", path.display()))?;
        written.push(path);
    }
    let json = dir.join(format!("HEATMAP_{name}.json"));
    let mut doc = col.to_json(name, report.summary());
    doc.set(
        "provenance",
        run_provenance(Benchmark::Quake, std::slice::from_ref(config)).to_json(),
    );
    std::fs::write(&json, doc.render().as_bytes())
        .map_err(|e| format!("write {}: {e}", json.display()))?;
    written.push(json);
    Ok(written)
}

fn run_preset(name: &str, scale: f64, tile: u32) -> Result<(), String> {
    let config = preset_config(name).ok_or_else(|| format!("unknown preset '{name}'"))?;
    let stream = SceneBuilder::benchmark(Benchmark::Quake)
        .scale(scale)
        .build()
        .rasterize();
    let screen = stream.screen();
    let machine = Machine::new(config.clone());

    let mut col = SpatialCollector::new(
        screen.width().max(1),
        screen.height().max(1),
        tile,
        config.processors,
    );
    let report = machine.run_traced(&stream, &mut col);
    assert_eq!(
        report,
        machine.run(&stream),
        "spatial collection must not perturb the simulation"
    );

    // The conservation + three-C identities the JSON artefact asserts.
    assert_eq!(
        col.fragment_total(),
        report.fragments(),
        "every drawn fragment must land in exactly one tile"
    );
    for (i, node) in report.nodes().iter().enumerate() {
        node.verify_misses()
            .map_err(|e| format!("node {i}: {e}"))?;
    }

    let dir = std::env::var_os("SORTMID_BENCH_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    std::fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let written = write_maps(&dir, name, &col, &report, &config)?;

    let grid = col.grid();
    let area = (tile * tile) as f64;
    println!(
        "\n== {name}: {} ==\n{} fragments over {}x{} tiles of {}px, texel/fragment {:.2}",
        report.summary(),
        report.fragments(),
        grid.cols(),
        grid.rows(),
        tile,
        report.texel_to_fragment(),
    );
    summarize_metric("depth", grid, |t| t.fragments as f64 / area);
    summarize_metric("setup", grid, |t| t.setup_cycles as f64);
    summarize_metric("lines", grid, |t| t.lines_fetched as f64);
    summarize_metric("misses", grid, |t| t.misses.total() as f64);
    let mut totals = sortmid::MissClassCounts::default();
    for m in col.node_misses() {
        totals.merge(m);
    }
    println!(
        "  node load: gini {:.3}, pixel imbalance {:.1}%; misses {totals}",
        col.fragment_gini(),
        report.pixel_imbalance_percent(),
    );
    for path in &written {
        println!("wrote {}", path.display());
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut scale = 0.12;
    let mut tile = 16u32;
    let mut presets: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0.0 => scale = v,
                _ => {
                    eprintln!("--scale needs a positive number\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--tile" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => tile = v,
                _ => {
                    eprintln!("--tile needs a positive integer\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                print!("{}", usage());
                return ExitCode::SUCCESS;
            }
            name => presets.push(name.to_string()),
        }
    }
    if presets.is_empty() {
        presets.extend(["block16".to_string(), "sli4".to_string()]);
    }
    for name in &presets {
        if let Err(e) = run_preset(name, scale, tile) {
            eprintln!("heatmap: {e}\n{}", usage());
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
