//! Cycle-level memory-system substrate for the `sortmid` machine.
//!
//! The paper's results come from "detailed cache and memory system
//! simulations" built on ASF, the authors' C++ event-driven framework. This
//! crate is our equivalent substrate:
//!
//! * [`event::EventQueue`] — a deterministic discrete-event queue (time
//!   order, FIFO among simultaneous events).
//! * [`engine::EngineTiming`] — the per-node timing model: a 1-pixel/cycle
//!   scan engine, a bandwidth-occupancy texture bus and an Igehy-style
//!   prefetch window that hides latency until the bus saturates.
//! * [`fifo::TriangleFifo`] — the bounded triangle FIFO between the
//!   geometry stage and each node, whose head-of-line blocking produces the
//!   paper's *local load imbalance* (Section 8).
//! * [`bus::BusConfig`] — the paper's bus characterisation: a maximum
//!   *texel-to-fragment ratio* the memory may deliver, rather than absolute
//!   MHz (Section 3.1).
//!
//! Time is measured in engine cycles (`u64`); one cycle is the time the
//! engine needs to scan one pixel.
//!
//! # Examples
//!
//! ```
//! use sortmid_memsys::bus::BusConfig;
//! use sortmid_memsys::engine::EngineTiming;
//!
//! // A node with a 1-texel/pixel bus and a 32-fragment prefetch window.
//! let mut node = EngineTiming::new(BusConfig::ratio(1.0), Some(32));
//! node.start_triangle(0);
//! node.fragment(0); // all-hit fragment: one cycle
//! node.fragment(2); // two line fills queue on the bus
//! let done = node.finish_triangle(25);
//! assert!(done >= 25);
//! ```

pub mod bus;
pub mod dram;
pub mod engine;
pub mod event;
pub mod fifo;

pub use bus::BusConfig;
pub use dram::{DramConfig, DramState};
pub use engine::EngineTiming;
pub use event::EventQueue;
pub use fifo::TriangleFifo;

/// Simulation time in engine cycles (1 cycle = 1 pixel scanned).
pub type Cycle = u64;

/// The paper's triangle-setup occupancy: a node spends at least 25 cycles
/// per triangle it receives ("an engine able to setup a triangle each 25
/// pixels", after Chen et al.).
pub const SETUP_CYCLES: Cycle = 25;
