//! Texture shapes and mip pyramids.

use crate::{TextureError, BLOCK_DIM, TEXEL_BYTES};
use std::fmt;

/// The shape of a texture's base mip level.
///
/// Dimensions must be positive powers of two (the paper's textures are, and
/// it keeps mip arithmetic exact). Non-square textures are allowed.
///
/// # Examples
///
/// ```
/// use sortmid_texture::TextureDesc;
///
/// let d = TextureDesc::new(256, 64)?;
/// assert_eq!(d.width(), 256);
/// assert_eq!(d.mip_levels(), 9); // 256x64 ... 1x1
/// # Ok::<(), sortmid_texture::TextureError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TextureDesc {
    width: u32,
    height: u32,
}

impl TextureDesc {
    /// Creates a texture description.
    ///
    /// # Errors
    ///
    /// Returns [`TextureError::BadDimension`] if either dimension is zero or
    /// not a power of two.
    pub fn new(width: u32, height: u32) -> Result<Self, TextureError> {
        for value in [width, height] {
            if value == 0 || !value.is_power_of_two() {
                return Err(TextureError::BadDimension { value });
            }
        }
        Ok(TextureDesc { width, height })
    }

    /// Base-level width in texels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Base-level height in texels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of mip levels down to (and including) 1×1.
    pub fn mip_levels(&self) -> u32 {
        32 - self.width.max(self.height).leading_zeros()
    }

    /// Dimensions of mip level `level` (clamped at 1 texel).
    pub fn level_dims(&self, level: u32) -> (u32, u32) {
        ((self.width >> level).max(1), (self.height >> level).max(1))
    }

    /// Doubles both dimensions `factor_log2` times, saturating at 2¹⁵ per
    /// axis. This is the paper's texture-magnification correction: scenes
    /// whose textures are magnified on screen get their resolution multiplied
    /// (×2 for `massive11255`, ×32 for `32massive11255`, ×4 for the others).
    pub fn magnified(&self, factor_log2: u32) -> TextureDesc {
        let cap = 1u32 << 15;
        TextureDesc {
            width: (self.width << factor_log2.min(15)).min(cap).max(self.width),
            height: (self.height << factor_log2.min(15)).min(cap).max(self.height),
        }
    }

    /// The full mip chain for this texture.
    pub fn mip_chain(&self) -> MipChain {
        MipChain::new(*self)
    }

    /// Total texels across all mip levels, each level rounded up to whole
    /// 4×4 blocks (that is how the blocked layout stores them).
    pub fn total_blocked_texels(&self) -> u64 {
        self.mip_chain().iter().map(|(w, h)| blocked_texels(w, h)).sum()
    }

    /// Total bytes across all mip levels in the blocked layout.
    pub fn total_bytes(&self) -> u64 {
        self.total_blocked_texels() * TEXEL_BYTES as u64
    }
}

impl fmt::Display for TextureDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.width, self.height)
    }
}

/// Texels a `w × h` level occupies when padded to whole 4×4 blocks.
pub(crate) fn blocked_texels(w: u32, h: u32) -> u64 {
    let bw = w.div_ceil(BLOCK_DIM) as u64;
    let bh = h.div_ceil(BLOCK_DIM) as u64;
    bw * bh * (BLOCK_DIM as u64 * BLOCK_DIM as u64)
}

/// The mip pyramid of a texture: level 0 is the base.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MipChain {
    dims: Vec<(u32, u32)>,
}

impl MipChain {
    /// Builds the chain for `desc`.
    pub fn new(desc: TextureDesc) -> Self {
        let dims = (0..desc.mip_levels()).map(|l| desc.level_dims(l)).collect();
        MipChain { dims }
    }

    /// Number of levels.
    pub fn len(&self) -> usize {
        self.dims.len()
    }

    /// A mip chain always has at least one level.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Dimensions of level `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    pub fn dims(&self, level: u32) -> (u32, u32) {
        self.dims[level as usize]
    }

    /// Iterates over `(width, height)` from base to apex.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.dims.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_dimensions() {
        assert_eq!(
            TextureDesc::new(0, 64),
            Err(TextureError::BadDimension { value: 0 })
        );
        assert_eq!(
            TextureDesc::new(64, 48),
            Err(TextureError::BadDimension { value: 48 })
        );
    }

    #[test]
    fn mip_levels_square() {
        let d = TextureDesc::new(256, 256).unwrap();
        assert_eq!(d.mip_levels(), 9);
        assert_eq!(d.level_dims(0), (256, 256));
        assert_eq!(d.level_dims(8), (1, 1));
    }

    #[test]
    fn mip_levels_rectangular_clamp() {
        let d = TextureDesc::new(256, 16).unwrap();
        assert_eq!(d.mip_levels(), 9);
        assert_eq!(d.level_dims(4), (16, 1));
        assert_eq!(d.level_dims(8), (1, 1));
    }

    #[test]
    fn mip_chain_matches_desc() {
        let d = TextureDesc::new(32, 8).unwrap();
        let c = d.mip_chain();
        assert_eq!(c.len(), 6);
        assert_eq!(c.dims(0), (32, 8));
        assert_eq!(c.dims(2), (8, 2));
        assert_eq!(c.dims(5), (1, 1));
        let all: Vec<_> = c.iter().collect();
        assert_eq!(all.len(), 6);
        assert!(!c.is_empty());
    }

    #[test]
    fn blocked_texels_pads_small_levels() {
        // A 1x1 level still occupies one 4x4 block.
        assert_eq!(blocked_texels(1, 1), 16);
        assert_eq!(blocked_texels(4, 4), 16);
        assert_eq!(blocked_texels(5, 4), 32);
        assert_eq!(blocked_texels(8, 8), 64);
    }

    #[test]
    fn total_bytes_of_base_plus_mips() {
        let d = TextureDesc::new(8, 8).unwrap();
        // 8x8 = 64, 4x4 = 16, 2x2 -> one block = 16, 1x1 -> one block = 16
        assert_eq!(d.total_blocked_texels(), 64 + 16 + 16 + 16);
        assert_eq!(d.total_bytes(), (64 + 16 + 16 + 16) * 4);
    }

    #[test]
    fn magnification_scales_and_saturates() {
        let d = TextureDesc::new(64, 32).unwrap();
        let m = d.magnified(2);
        assert_eq!((m.width(), m.height()), (256, 128));
        let huge = d.magnified(20);
        assert_eq!((huge.width(), huge.height()), (1 << 15, 1 << 15));
    }

    #[test]
    fn display_format() {
        assert_eq!(TextureDesc::new(64, 32).unwrap().to_string(), "64x32");
    }
}
