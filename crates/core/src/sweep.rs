//! Parallel parameter sweeps over one fragment stream.
//!
//! The experiment harness evaluates dozens of machine configurations per
//! scene. Each run only *reads* the stream, so sweeps parallelise trivially
//! across host threads (the simulated machines stay deterministic — host
//! parallelism only reorders independent runs).
//!
//! Routing — which nodes a triangle overlaps, which node owns each
//! fragment — depends only on the `(distribution, processors)` axes, never
//! on cache, bus or buffer parameters. The sweep therefore groups its
//! config grid by those two axes, builds one [`RoutingPlan`] per group, and
//! replays it read-only from every config in the group: a grid that varies
//! caches and buffers over a handful of distributions pays the per-fragment
//! ownership math once per distribution instead of once per cell.
//!
//! On top of plan sharing, groups with several set-associative cache
//! configs go through **stack-distance replay**: one
//! [`LineAccessTrace`](sortmid_cache::LineAccessTrace) capture per plan,
//! one [Mattson evaluation](sortmid_cache::stackdist) pricing every
//! geometry in the group, and per-config reports synthesized from the
//! replayed miss counts ([`crate::replay`]). The synthesized reports are
//! byte-identical to the direct path — [`SweepOptions::replay`] is the
//! escape hatch that forces every config down the direct simulator.

use crate::batch::PlanLanes;
use crate::config::{CacheKind, MachineConfig};
use crate::distribution::Distribution;
use crate::machine::Machine;
use crate::plan::RoutingPlan;
use crate::replay::{
    capture_direct, capture_line_trace, replay_request, run_direct_captured, run_replayed,
    DirectCapture,
};
use crate::report::RunReport;
use crate::sched::{run_graph, CostModel, TaskGraph};
use sortmid_cache::{evaluate_trace_auto_profiled, GeometryRequest, TraceEvaluation};
use sortmid_observe::{HostSink, NullHostSink};
use sortmid_raster::{FragBatch, FragmentStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Builds the cartesian product of machine-parameter axes — the shape of
/// every figure sweep in the paper.
///
/// Axes left unset stay at the default machine's single value.
///
/// # Examples
///
/// ```
/// use sortmid::{Distribution, SweepGrid};
///
/// let configs = SweepGrid::new()
///     .processors([4, 16, 64])
///     .distributions([Distribution::block(16), Distribution::sli(4)])
///     .build();
/// assert_eq!(configs.len(), 6);
/// ```
#[derive(Debug, Clone)]
pub struct SweepGrid {
    processors: Vec<u32>,
    distributions: Vec<Distribution>,
    caches: Vec<CacheKind>,
    bus_ratios: Vec<Option<f64>>,
    buffers: Vec<usize>,
}

impl SweepGrid {
    /// Starts a grid with every axis at the paper's default single value.
    pub fn new() -> Self {
        SweepGrid {
            processors: vec![1],
            distributions: vec![Distribution::block(16)],
            caches: vec![CacheKind::PaperL1],
            bus_ratios: vec![Some(1.0)],
            buffers: vec![10_000],
        }
    }

    /// Sets the processor-count axis.
    pub fn processors(mut self, values: impl IntoIterator<Item = u32>) -> Self {
        self.processors = values.into_iter().collect();
        self
    }

    /// Sets the distribution axis.
    pub fn distributions(mut self, values: impl IntoIterator<Item = Distribution>) -> Self {
        self.distributions = values.into_iter().collect();
        self
    }

    /// Sets the cache axis.
    pub fn caches(mut self, values: impl IntoIterator<Item = CacheKind>) -> Self {
        self.caches = values.into_iter().collect();
        self
    }

    /// Sets the bus axis (`None` = infinite bandwidth).
    pub fn bus_ratios(mut self, values: impl IntoIterator<Item = Option<f64>>) -> Self {
        self.bus_ratios = values.into_iter().collect();
        self
    }

    /// Sets the triangle-buffer axis.
    pub fn buffers(mut self, values: impl IntoIterator<Item = usize>) -> Self {
        self.buffers = values.into_iter().collect();
        self
    }

    /// Materialises the cartesian product, in row-major axis order
    /// (processors outermost, buffers innermost).
    ///
    /// # Panics
    ///
    /// Panics if any combination is invalid (e.g. zero processors) — grid
    /// axes are expected to hold valid values.
    pub fn build(&self) -> Vec<MachineConfig> {
        let mut out = Vec::with_capacity(
            self.processors.len()
                * self.distributions.len()
                * self.caches.len()
                * self.bus_ratios.len()
                * self.buffers.len(),
        );
        for &procs in &self.processors {
            for dist in &self.distributions {
                for &cache in &self.caches {
                    for &ratio in &self.bus_ratios {
                        for &buffer in &self.buffers {
                            let mut b = MachineConfig::builder();
                            b.processors(procs)
                                .distribution(dist.clone())
                                .cache(cache)
                                .triangle_buffer(buffer);
                            match ratio {
                                Some(r) => b.bus_ratio(r),
                                None => b.infinite_bus(),
                            };
                            out.push(b.build().expect("grid axes hold valid values"));
                        }
                    }
                }
            }
        }
        out
    }
}

impl Default for SweepGrid {
    fn default() -> Self {
        Self::new()
    }
}

/// Runs every configuration against `stream`, in parallel across host
/// threads, preserving input order in the output.
///
/// Configs sharing a `(distribution, processors)` pair share one
/// precomputed [`RoutingPlan`] (built once, read-only afterwards).
///
/// # Determinism
///
/// The reports are **byte-identical** to running [`Machine::run`] on each
/// config sequentially, whatever the host-thread count: plans precompute
/// *where* fragments go, not *how long* they take, and host parallelism
/// only reorders independent runs. Tests pin this with
/// [`run_sweep_with_threads`].
///
/// # Examples
///
/// ```
/// use sortmid::{run_sweep, Distribution, MachineConfig};
/// use sortmid_scene::{Benchmark, SceneBuilder};
///
/// let stream = SceneBuilder::benchmark(Benchmark::Quake).scale(0.1).build().rasterize();
/// let configs: Vec<_> = [4u32, 16]
///     .iter()
///     .map(|&p| {
///         MachineConfig::builder()
///             .processors(p)
///             .distribution(Distribution::block(16))
///             .build()
///             .unwrap()
///     })
///     .collect();
/// let reports = run_sweep(&stream, &configs);
/// assert_eq!(reports.len(), 2);
/// ```
pub fn run_sweep(stream: &FragmentStream, configs: &[MachineConfig]) -> Vec<RunReport> {
    run_sweep_with_options(stream, configs, SweepOptions::default())
}

/// A stable fingerprint of a config grid: FNV-1a 64 over every config's
/// [`summary`](MachineConfig::summary) string, newline-separated. The
/// bench bins stamp it into each artefact's provenance block so the
/// differ can refuse to compare runs of different grids; the summary
/// string already encodes everything that changes simulated cycles
/// (processors, distribution, cache geometry, buffer depth, bus ratio),
/// so two grids hash equal exactly when they measure the same thing.
/// Order matters: the grid is part of the artefact's config ordering.
pub fn grid_hash(configs: &[MachineConfig]) -> u64 {
    sortmid_observe::provenance::fnv1a_64(
        configs
            .iter()
            .flat_map(|c| c.summary().into_bytes().into_iter().chain([b'\n'])),
    )
}

/// [`run_sweep`] with an explicit host-thread count.
///
/// Exists so tests can pin the schedule: the simulated machines are
/// deterministic, so the reports must be byte-identical whatever `threads`
/// is — host parallelism only reorders independent runs.
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn run_sweep_with_threads(
    stream: &FragmentStream,
    configs: &[MachineConfig],
    threads: usize,
) -> Vec<RunReport> {
    run_sweep_with_options(
        stream,
        configs,
        SweepOptions {
            threads,
            ..SweepOptions::default()
        },
    )
}

/// Knobs of [`run_sweep_with_options`].
#[derive(Debug, Clone, Copy)]
pub struct SweepOptions {
    /// Host threads to spread the per-config runs over.
    pub threads: usize,
    /// Evaluate groups of cache-only-varying configs from one
    /// stack-distance replay of the shared plan's line trace (`true`, the
    /// default). `false` is the escape hatch forcing every config through
    /// the direct simulator — reports are byte-identical either way.
    pub replay: bool,
    /// Run direct simulations on the batched fragment core: one
    /// [`PlanLanes`] pivot per plan group, shared read-only by every config
    /// in the group (`true`, the default). `false` is the escape hatch
    /// forcing the scalar per-texel reference loop — reports are
    /// byte-identical either way.
    pub batch: bool,
    /// Schedule the pipeline with the legacy static phase barriers and
    /// chunked per-config partition instead of the work-stealing pool
    /// (`false`, the default, is the pool). Escape hatch — reports are
    /// byte-identical either way; only wall time and the worker
    /// utilization records differ.
    pub static_schedule: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            replay: true,
            batch: true,
            static_schedule: false,
        }
    }
}

/// A plan group's replay-eligible configs, down two pipelines: capturing a
/// trace pays off once at least this many configs replay from it.
///
/// Measured on the sweep bench: synthesizing a report from a replayed
/// trace costs ~1/4 of a direct simulation, but the capture plus a
/// one-geometry evaluation costs ~3 synthesized configs — so groups of
/// two or three replay-eligible configs are cheaper simulated directly.
const REPLAY_MIN_GROUP: usize = 4;

/// How one sweep config gets its report: direct plan-replay simulation,
/// engine replay of a shared `(plan, cache model)` capture, or synthesis
/// from the plan's stack-distance evaluation (geometry index + whether the
/// report carries the three-C breakdown).
#[derive(Debug, Clone, Copy)]
enum ConfigPath {
    Direct,
    Captured { slot: usize },
    Replay { geom: usize, classify: bool },
}

/// [`run_sweep`] with every knob explicit.
///
/// # Panics
///
/// Panics if `options.threads` is zero.
pub fn run_sweep_with_options(
    stream: &FragmentStream,
    configs: &[MachineConfig],
    options: SweepOptions,
) -> Vec<RunReport> {
    run_sweep_profiled(stream, configs, options, &NullHostSink)
}

/// One unit of pipeline work on the shared scheduler pool: build a plan
/// group's routing plan, pivot it into lanes, capture a `(plan, cache
/// model)` pass, evaluate a plan's trace, or run one config.
#[derive(Debug, Clone, Copy)]
enum SweepTask {
    Plan(usize),
    Lanes(usize),
    Capture { key: usize, slot: usize },
    Eval(usize),
    Run(usize),
}

/// [`run_sweep_with_options`] with host profiling: every pipeline stage
/// (batch pivot, plan build, path selection, lane pivots, captures,
/// stack-distance evaluation, per-config timing synthesis) runs under a
/// named [`HostSink`] span, per-config run times land in
/// `host.run_ns.{direct,captured,replay}` histograms, and every worker
/// thread reports `busy`/`wall` utilization for the `run-configs` stage.
///
/// The pipeline itself runs on the work-stealing pool in
/// [`crate::sched`]: plan builds, lane pivots, captures, trace
/// evaluations and per-config runs become one dependency-ordered task
/// batch, costed by [`CostModel`] and dispatched longest-first, so the
/// capture of plan A overlaps the evaluation of plan B and no phase
/// barrier serializes the tail. [`SweepOptions::static_schedule`] is the
/// escape hatch back to the legacy phase-barrier pipeline with a chunked
/// `run-configs` partition. Every task writes one preassigned
/// [`OnceLock`] slot, so the reports are byte-identical across
/// schedulers, thread counts and steal interleavings.
///
/// With [`NullHostSink`] (how [`run_sweep`] and friends call it) the
/// instrumentation monomorphizes to nothing — the sweep bench's
/// regression gate pins the unprofiled pipeline against
/// `BENCH_baseline.json`.
///
/// # Panics
///
/// Panics if `options.threads` is zero.
pub fn run_sweep_profiled<S: HostSink>(
    stream: &FragmentStream,
    configs: &[MachineConfig],
    options: SweepOptions,
    sink: &S,
) -> Vec<RunReport> {
    assert!(options.threads > 0, "need at least one host thread");
    if configs.is_empty() {
        return Vec::new();
    }
    let _root = sink.span("run-sweep");
    if S::ENABLED {
        sink.count("sweep.configs", configs.len() as u64);
    }

    // The stream's footprint batch (the 8 line-id expansion plus dense
    // coordinate lanes, one pivot per sweep) feeds the plan builds, the
    // lane pivots and the capture passes below.
    let batch = options.batch.then(|| {
        let _s = sink.span("batch-pivot");
        FragBatch::from_stream(stream)
    });
    let batch = batch.as_ref();

    // Front-end analysis: group the grid, pick each config's path and
    // reserve every shared artefact's slot — all from the configs alone,
    // before any plan is built, so the whole pipeline can be scheduled as
    // one task batch.
    let path_span = sink.span("path-select");

    // Group the grid by (distribution, processors): one routing plan per
    // group serves every cache/bus/buffer variation. Grids are small, so a
    // linear key scan beats hashing Distribution (which holds an Arc axis).
    let mut plan_rep: Vec<usize> = Vec::new();
    let mut plan_of: Vec<usize> = Vec::with_capacity(configs.len());
    for (ci, config) in configs.iter().enumerate() {
        let idx = plan_rep
            .iter()
            .position(|&rep| {
                configs[rep].processors == config.processors
                    && configs[rep].distribution == config.distribution
            })
            .unwrap_or_else(|| {
                plan_rep.push(ci);
                plan_rep.len() - 1
            });
        plan_of.push(idx);
    }
    let n_plans = plan_rep.len();
    if S::ENABLED {
        sink.count("sweep.plans", n_plans as u64);
    }

    // Decide each config's path. Replay-eligible configs of one plan share
    // a geometry request grid (deduplicated by geometry, classification
    // merged by OR so a Classifying and a plain SetAssoc config of the
    // same geometry share one evaluation slot).
    let mut requests: Vec<Vec<GeometryRequest>> = vec![Vec::new(); n_plans];
    let mut path_of: Vec<ConfigPath> = vec![ConfigPath::Direct; configs.len()];
    if options.replay {
        let mut eligible = vec![0usize; n_plans];
        for (ci, config) in configs.iter().enumerate() {
            if let Some((geometry, classify)) = replay_request(config) {
                let reqs = &mut requests[plan_of[ci]];
                let geom = match reqs.iter().position(|r| r.geometry == geometry) {
                    Some(gi) => {
                        reqs[gi].classify |= classify;
                        gi
                    }
                    None => {
                        reqs.push(GeometryRequest { geometry, classify });
                        reqs.len() - 1
                    }
                };
                path_of[ci] = ConfigPath::Replay { geom, classify };
                eligible[plan_of[ci]] += 1;
            }
        }
        // Too-small groups fall back: capturing and replaying a trace only
        // pays off when it serves several configs.
        for (pi, count) in eligible.iter().enumerate() {
            if *count < REPLAY_MIN_GROUP {
                requests[pi].clear();
            }
        }
        for (ci, path) in path_of.iter_mut().enumerate() {
            if requests[plan_of[ci]].is_empty() {
                *path = ConfigPath::Direct;
            }
        }
    }

    // Group the remaining direct configs by (plan, cache model): which
    // texel probes hit or miss depends only on the node access sequences,
    // so one pass of the model over the plan's fragment buckets serves
    // every bus/buffer/DRAM variant in the grid — each such config then
    // replays only its engine/FIFO timing against the recorded misses.
    // This covers the cache models the Mattson machinery cannot express
    // (perfect, two-level, victim, DRAM-backed) and the groups too small
    // for a stack-distance evaluation to pay off.
    let mut capture_keys: Vec<(usize, CacheKind)> = Vec::new();
    let mut capture_uses: Vec<usize> = Vec::new();
    if options.batch {
        for (ci, config) in configs.iter().enumerate() {
            if matches!(path_of[ci], ConfigPath::Direct) {
                let key = (plan_of[ci], config.cache);
                match capture_keys.iter().position(|k| *k == key) {
                    Some(k) => capture_uses[k] += 1,
                    None => {
                        capture_keys.push(key);
                        capture_uses.push(1);
                    }
                }
            }
        }
    }
    // A capture costs about one direct cache pass, so it only pays off
    // when at least two configs replay it.
    let mut capture_slot = vec![usize::MAX; capture_keys.len()];
    let mut slots = 0usize;
    for (k, &uses) in capture_uses.iter().enumerate() {
        if uses >= 2 {
            capture_slot[k] = slots;
            slots += 1;
        }
    }
    if slots > 0 {
        for (ci, config) in configs.iter().enumerate() {
            if matches!(path_of[ci], ConfigPath::Direct) {
                let key = (plan_of[ci], config.cache);
                let k = capture_keys
                    .iter()
                    .position(|kk| *kk == key)
                    .expect("key was registered in the first pass");
                if capture_slot[k] != usize::MAX {
                    path_of[ci] = ConfigPath::Captured { slot: capture_slot[k] };
                }
            }
        }
    }

    // Which plans still need struct-of-arrays lanes: one pivot serves
    // every remaining direct config in its group and doubles as the
    // stack-distance replay's line trace. Plans whose configs all went
    // down the captured path skip the pivot — the capture walk reads the
    // batch through the plan directly.
    let mut needs_lanes = vec![false; n_plans];
    for (ci, &path) in path_of.iter().enumerate() {
        if matches!(path, ConfigPath::Direct | ConfigPath::Replay { .. }) {
            needs_lanes[plan_of[ci]] = true;
        }
    }
    drop(path_span);
    if S::ENABLED {
        sink.count("sweep.captures", slots as u64);
        for path in &path_of {
            sink.count(
                match path {
                    ConfigPath::Direct => "sweep.path.direct",
                    ConfigPath::Captured { .. } => "sweep.path.captured",
                    ConfigPath::Replay { .. } => "sweep.path.replay",
                },
                1,
            );
        }
    }

    // Every shared artefact gets a preassigned write-once slot. Tasks (or
    // the static pipeline's phases) fill them exactly once; the scheduler's
    // dependency edges sequence every fill before its reads, whatever
    // worker runs what — which is what keeps the reports byte-identical
    // across schedules.
    let plans: Vec<OnceLock<RoutingPlan>> = (0..n_plans).map(|_| OnceLock::new()).collect();
    let lanes: Vec<OnceLock<PlanLanes>> = (0..n_plans).map(|_| OnceLock::new()).collect();
    let captures: Vec<OnceLock<DirectCapture>> = (0..slots).map(|_| OnceLock::new()).collect();
    let evals: Vec<OnceLock<TraceEvaluation>> = (0..n_plans).map(|_| OnceLock::new()).collect();
    let out: Vec<OnceLock<RunReport>> = (0..configs.len()).map(|_| OnceLock::new()).collect();

    let build_plan = |pi: usize| {
        let rep = &configs[plan_rep[pi]];
        let plan = match batch {
            Some(b) => RoutingPlan::build_from_batch(stream, b, &rep.distribution, rep.processors),
            None => RoutingPlan::build(stream, &rep.distribution, rep.processors),
        };
        assert!(plans[pi].set(plan).is_ok(), "one build per plan group");
    };

    // Timing synthesis / direct simulation, one report per config — the
    // single execution body both schedulers call. The profiled run times
    // each config into a per-path histogram: the replay-speedup evidence
    // in METRICS_sweep.json.
    let run_one = |config: &MachineConfig, pi: usize, path: ConfigPath| {
        let t0 = S::ENABLED.then(Instant::now);
        let plan = plans[pi].get().expect("a config's plan is built before it runs");
        let report = match path {
            ConfigPath::Direct => match lanes[pi].get() {
                Some(l) => Machine::new(config.clone()).run_planned_with_lanes(stream, plan, l),
                None => Machine::new(config.clone()).run_planned_scalar(stream, plan),
            },
            ConfigPath::Captured { slot } => {
                let capture = captures[slot].get().expect("captured path has a capture");
                run_direct_captured(config, stream, plan, capture)
            }
            ConfigPath::Replay { geom, classify } => {
                let eval = evals[pi].get().expect("replay path has an evaluation");
                run_replayed(config, stream, plan, eval, geom, classify)
            }
        };
        if let Some(t0) = t0 {
            let metric = match path {
                ConfigPath::Direct => "host.run_ns.direct",
                ConfigPath::Captured { .. } => "host.run_ns.captured",
                ConfigPath::Replay { .. } => "host.run_ns.replay",
            };
            sink.observe(metric, t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        }
        report
    };

    let threads = options.threads.min(configs.len());
    if options.static_schedule {
        run_static(
            stream, configs, sink, batch, &plan_rep, &plan_of, &path_of, &requests, &capture_keys,
            &capture_slot, &needs_lanes, &plans, &lanes, &captures, &evals, &out, &build_plan,
            &run_one, threads,
        );
    } else {
        run_pooled(
            stream, configs, sink, batch, &plan_rep, &plan_of, &path_of, &requests,
            &capture_keys, &capture_slot, &needs_lanes, &plans, &lanes, &captures, &evals, &out,
            &build_plan, &run_one, threads,
        );
    }
    out.into_iter()
        .map(|slot| slot.into_inner().expect("every config ran"))
        .collect()
}

/// The work-stealing pipeline: every plan build, lane pivot, capture,
/// trace evaluation and config run is one task on the
/// [`crate::sched::run_graph`] pool, ordered by dependency edges and
/// dispatched longest-estimated-first.
#[allow(clippy::too_many_arguments)]
fn run_pooled<S: HostSink>(
    stream: &FragmentStream,
    configs: &[MachineConfig],
    sink: &S,
    batch: Option<&FragBatch>,
    plan_rep: &[usize],
    plan_of: &[usize],
    path_of: &[ConfigPath],
    requests: &[Vec<GeometryRequest>],
    capture_keys: &[(usize, CacheKind)],
    capture_slot: &[usize],
    needs_lanes: &[bool],
    plans: &[OnceLock<RoutingPlan>],
    lanes: &[OnceLock<PlanLanes>],
    captures: &[OnceLock<DirectCapture>],
    evals: &[OnceLock<TraceEvaluation>],
    out: &[OnceLock<RunReport>],
    build_plan: &(impl Fn(usize) + Sync),
    run_one: &(impl Fn(&MachineConfig, usize, ConfigPath) -> RunReport + Sync),
    workers: usize,
) {
    let n_plans = plan_rep.len();
    let model = CostModel::for_stream(stream.fragments().len() as u64);
    let mut graph = TaskGraph::with_capacity(3 * n_plans + captures.len() + configs.len());
    let mut kinds: Vec<SweepTask> = Vec::with_capacity(3 * n_plans + captures.len() + configs.len());

    // Tasks enter in pipeline order (plans, lanes, captures, evals, runs)
    // so every dependency edge points backward — the DAG the scheduler
    // requires holds by construction.
    let plan_task: Vec<usize> = (0..n_plans)
        .map(|pi| {
            kinds.push(SweepTask::Plan(pi));
            graph.add(model.plan_build())
        })
        .collect();
    let mut lane_task: Vec<Option<usize>> = vec![None; n_plans];
    if batch.is_some() {
        for (pi, &needed) in needs_lanes.iter().enumerate() {
            if needed {
                kinds.push(SweepTask::Lanes(pi));
                let t = graph.add(model.lane_pivot());
                graph.depend(t, plan_task[pi]);
                lane_task[pi] = Some(t);
            }
        }
    }
    let mut capture_task: Vec<usize> = vec![usize::MAX; captures.len()];
    for (key, &(pi, _)) in capture_keys.iter().enumerate() {
        if capture_slot[key] == usize::MAX {
            continue;
        }
        kinds.push(SweepTask::Capture { key, slot: capture_slot[key] });
        let t = graph.add(model.capture());
        graph.depend(t, plan_task[pi]);
        capture_task[capture_slot[key]] = t;
    }
    let mut eval_task: Vec<Option<usize>> = vec![None; n_plans];
    for (pi, reqs) in requests.iter().enumerate() {
        if reqs.is_empty() {
            continue;
        }
        kinds.push(SweepTask::Eval(pi));
        let t = graph.add(model.trace_eval(reqs.len()));
        graph.depend(t, lane_task[pi].unwrap_or(plan_task[pi]));
        eval_task[pi] = Some(t);
    }
    let mut run_cost = vec![0u64; configs.len()];
    for (ci, &path) in path_of.iter().enumerate() {
        let pi = plan_of[ci];
        let (cost, dep) = match path {
            ConfigPath::Direct => (model.run_direct(), lane_task[pi].unwrap_or(plan_task[pi])),
            ConfigPath::Captured { slot } => (model.run_captured(), capture_task[slot]),
            ConfigPath::Replay { .. } => (
                model.run_replay(),
                eval_task[pi].expect("replay path has an evaluation task"),
            ),
        };
        run_cost[ci] = cost;
        kinds.push(SweepTask::Run(ci));
        let t = graph.add(cost);
        graph.depend(t, dep);
    }

    // Per-worker accounting for the run-configs stage, over a *shared*
    // window (first config started → last config finished), so the lane's
    // utilization_imbalance compares schedulers fairly: a static chunk
    // that finishes early reads as idle here, not as a shorter wall.
    let t_origin = Instant::now();
    let rc_busy: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
    let rc_items: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
    let window_start = AtomicU64::new(u64::MAX);
    let window_end = AtomicU64::new(0);

    let elapsed_ns = |origin: &Instant| origin.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    let exec = |t: usize, widx: usize| match kinds[t] {
        SweepTask::Plan(pi) => {
            let _s = sink.span("plan-build");
            build_plan(pi);
        }
        SweepTask::Lanes(pi) => {
            let _s = sink.span("lane-pivot");
            let batch = batch.expect("lane tasks only exist on batched sweeps");
            let plan = plans[pi].get().expect("a plan precedes its lanes");
            assert!(
                lanes[pi].set(PlanLanes::from_batch(batch, stream, plan)).is_ok(),
                "one pivot per plan"
            );
        }
        SweepTask::Capture { key, slot } => {
            let _s = sink.span("capture");
            let (pi, kind) = capture_keys[key];
            let batch = batch.expect("captures only exist on batched sweeps");
            let plan = plans[pi].get().expect("a plan precedes its captures");
            assert!(
                captures[slot].set(capture_direct(kind, batch, stream, plan)).is_ok(),
                "one capture per slot"
            );
        }
        SweepTask::Eval(pi) => {
            let _s = sink.span("trace-eval");
            let plan = plans[pi].get().expect("a plan precedes its evaluation");
            let trace = {
                let _t = sink.span("trace-capture");
                match lanes[pi].get() {
                    Some(l) => l.to_trace(),
                    None => capture_line_trace(stream, plan),
                }
            };
            assert!(
                evals[pi]
                    .set(evaluate_trace_auto_profiled(&trace, &requests[pi], sink))
                    .is_ok(),
                "one evaluation per plan"
            );
        }
        SweepTask::Run(ci) => {
            let _s = sink.span("run-configs");
            let start = S::ENABLED.then(|| elapsed_ns(&t_origin));
            let report = run_one(&configs[ci], plan_of[ci], path_of[ci]);
            assert!(out[ci].set(report).is_ok(), "each config runs once");
            if let Some(start) = start {
                let end = elapsed_ns(&t_origin);
                window_start.fetch_min(start, Ordering::Relaxed);
                window_end.fetch_max(end, Ordering::Relaxed);
                rc_busy[widx].fetch_add(end.saturating_sub(start), Ordering::Relaxed);
                rc_items[widx].fetch_add(1, Ordering::Relaxed);
                // Cost-model feedback: per-config |predicted − actual| as a
                // percentage of predicted, kept as a log2 histogram so the
                // LPT estimates stay honest as the simulator evolves.
                let predicted = run_cost[ci].max(1);
                let err_pct = end.saturating_sub(start).abs_diff(predicted) * 100 / predicted;
                sink.observe("sweep.cost_err_pct", err_pct);
            }
        }
    };
    run_graph(graph, workers, sink, &exec);

    if S::ENABLED {
        let start = window_start.load(Ordering::Relaxed);
        let end = window_end.load(Ordering::Relaxed);
        let wall = if start == u64::MAX { 0 } else { end.saturating_sub(start) };
        for w in 0..workers {
            sink.worker(
                "run-configs",
                w as u32,
                wall,
                rc_busy[w].load(Ordering::Relaxed),
                rc_items[w].load(Ordering::Relaxed),
            );
        }
    }
}

/// The legacy static pipeline behind [`SweepOptions::static_schedule`]:
/// phase barriers between stages, ad-hoc `thread::scope` fan-out inside
/// each, and a chunked per-config partition for the run stage — kept
/// byte-identical to the pool as the scheduler's escape hatch and as the
/// baseline its utilization metrics are compared against.
#[allow(clippy::too_many_arguments)]
fn run_static<S: HostSink>(
    stream: &FragmentStream,
    configs: &[MachineConfig],
    sink: &S,
    batch: Option<&FragBatch>,
    plan_rep: &[usize],
    plan_of: &[usize],
    path_of: &[ConfigPath],
    requests: &[Vec<GeometryRequest>],
    capture_keys: &[(usize, CacheKind)],
    capture_slot: &[usize],
    needs_lanes: &[bool],
    plans: &[OnceLock<RoutingPlan>],
    lanes: &[OnceLock<PlanLanes>],
    captures: &[OnceLock<DirectCapture>],
    evals: &[OnceLock<TraceEvaluation>],
    out: &[OnceLock<RunReport>],
    build_plan: &(impl Fn(usize) + Sync),
    run_one: &(impl Fn(&MachineConfig, usize, ConfigPath) -> RunReport + Sync),
    threads: usize,
) {
    {
        let _s = sink.span("plan-build");
        for pi in 0..plan_rep.len() {
            build_plan(pi);
        }
    }

    if let Some(batch) = batch {
        let _s = sink.span("lane-pivot");
        std::thread::scope(|scope| {
            for (pi, &needed) in needs_lanes.iter().enumerate() {
                if !needed {
                    continue;
                }
                let plan = plans[pi].get().expect("plans are built");
                let slot = &lanes[pi];
                scope.spawn(move || {
                    let _p = sink.span("pivot-plan");
                    assert!(
                        slot.set(PlanLanes::from_batch(batch, stream, plan)).is_ok(),
                        "one pivot per plan"
                    );
                });
            }
        });
    }

    if !captures.is_empty() {
        let _s = sink.span("capture");
        std::thread::scope(|scope| {
            for (k, &(pi, kind)) in capture_keys.iter().enumerate() {
                if capture_slot[k] == usize::MAX {
                    continue;
                }
                let slot = &captures[capture_slot[k]];
                let batch = batch.expect("captures only exist on batched sweeps");
                let plan = plans[pi].get().expect("plans are built");
                scope.spawn(move || {
                    let _c = sink.span("capture-model");
                    assert!(
                        slot.set(capture_direct(kind, batch, stream, plan)).is_ok(),
                        "one capture per slot"
                    );
                });
            }
        });
    }

    // Evaluate each plan's geometry grid from one captured trace, plans in
    // parallel (each evaluation is independent).
    if requests.iter().any(|r| !r.is_empty()) {
        let _s = sink.span("trace-eval");
        std::thread::scope(|scope| {
            for (pi, reqs) in requests.iter().enumerate() {
                if reqs.is_empty() {
                    continue;
                }
                let plan = plans[pi].get().expect("plans are built");
                let (lane, slot) = (&lanes[pi], &evals[pi]);
                scope.spawn(move || {
                    let _e = sink.span("eval-plan");
                    let trace = {
                        let _t = sink.span("trace-capture");
                        match lane.get() {
                            Some(l) => l.to_trace(),
                            None => capture_line_trace(stream, plan),
                        }
                    };
                    assert!(
                        slot.set(evaluate_trace_auto_profiled(&trace, reqs, sink)).is_ok(),
                        "one evaluation per plan"
                    );
                });
            }
        });
    }

    // Static chunked schedule: each worker owns a precomputed disjoint
    // range of the output. One body serves the sequential and the spawned
    // case — the calling thread is simply worker 0 of a one-chunk
    // partition.
    let _rc = sink.span("run-configs");
    let worker_body = |widx: usize, range: std::ops::Range<usize>| {
        let _w = sink.span("worker-run");
        let t_start = S::ENABLED.then(Instant::now);
        let mut busy = 0u64;
        let items = range.len() as u64;
        for ci in range {
            let t0 = S::ENABLED.then(Instant::now);
            let report = run_one(&configs[ci], plan_of[ci], path_of[ci]);
            assert!(out[ci].set(report).is_ok(), "each config runs once");
            if let Some(t0) = t0 {
                busy += t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            }
        }
        if let Some(t_start) = t_start {
            let wall = t_start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            sink.worker("run-configs", widx as u32, wall, busy, items);
        }
    };
    if threads <= 1 {
        worker_body(0, 0..configs.len());
    } else {
        let chunk = configs.len().div_ceil(threads);
        std::thread::scope(|scope| {
            let body = &worker_body;
            for (widx, start) in (0..configs.len()).step_by(chunk).enumerate() {
                let range = start..(start + chunk).min(configs.len());
                scope.spawn(move || body(widx, range));
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheKind;
    use crate::distribution::Distribution;
    use sortmid_scene::{Benchmark, SceneBuilder};

    #[test]
    fn sweep_matches_sequential_runs() {
        let stream = SceneBuilder::benchmark(Benchmark::Quake)
            .scale(0.1)
            .build()
            .rasterize();
        let configs: Vec<MachineConfig> = [1u32, 2, 4, 8]
            .iter()
            .map(|&p| {
                MachineConfig::builder()
                    .processors(p)
                    .distribution(Distribution::block(16))
                    .cache(CacheKind::PaperL1)
                    .build()
                    .unwrap()
            })
            .collect();
        let parallel = run_sweep(&stream, &configs);
        for (config, report) in configs.iter().zip(&parallel) {
            let sequential = Machine::new(config.clone()).run(&stream);
            assert_eq!(report.total_cycles(), sequential.total_cycles());
            assert_eq!(report.texel_to_fragment(), sequential.texel_to_fragment());
        }
    }

    #[test]
    fn grouped_plans_match_direct_runs_on_a_mixed_grid() {
        // A grid varying every axis: plan grouping must not change a
        // single report relative to the direct (unplanned) path.
        let stream = SceneBuilder::benchmark(Benchmark::Quake)
            .scale(0.1)
            .build()
            .rasterize();
        let configs = SweepGrid::new()
            .processors([3, 8])
            .distributions([Distribution::block(8), Distribution::sli(4)])
            .caches([CacheKind::Perfect, CacheKind::PaperL1])
            .buffers([4, 10_000])
            .build();
        assert_eq!(configs.len(), 16);
        let swept = run_sweep_with_threads(&stream, &configs, 3);
        for (config, report) in configs.iter().zip(&swept) {
            let direct = Machine::new(config.clone()).run(&stream);
            assert_eq!(report, &direct, "{}", config.summary());
        }
    }

    #[test]
    fn replay_and_direct_paths_emit_identical_reports() {
        // The --no-replay escape hatch must be an observational no-op: a
        // grid dense in cache geometries gets byte-identical reports from
        // the stack-distance replay and the direct simulator.
        let stream = SceneBuilder::benchmark(Benchmark::Quake)
            .scale(0.1)
            .build()
            .rasterize();
        let geometries = [
            sortmid_cache::CacheGeometry::new(4096, 2, 64).unwrap(),
            sortmid_cache::CacheGeometry::new(16384, 4, 64).unwrap(),
            sortmid_cache::CacheGeometry::new(65536, 8, 64).unwrap(),
        ];
        let mut caches = vec![CacheKind::Perfect, CacheKind::PaperL1];
        caches.extend(geometries.iter().map(|&g| CacheKind::SetAssoc(g)));
        caches.extend(geometries.iter().map(|&g| CacheKind::Classifying(g)));
        let configs = SweepGrid::new()
            .processors([4])
            .distributions([Distribution::block(16), Distribution::sli(2)])
            .caches(caches)
            .buffers([8, 10_000])
            .build();
        let replayed = run_sweep_with_options(
            &stream,
            &configs,
            SweepOptions { threads: 3, replay: true, batch: true, static_schedule: false },
        );
        let direct = run_sweep_with_options(
            &stream,
            &configs,
            SweepOptions { threads: 3, replay: false, batch: true, static_schedule: false },
        );
        assert_eq!(replayed, direct);
        // The --scalar escape hatch must be an observational no-op too.
        let scalar = run_sweep_with_options(
            &stream,
            &configs,
            SweepOptions { threads: 3, replay: false, batch: false, static_schedule: false },
        );
        assert_eq!(direct, scalar);
    }

    #[test]
    fn captured_path_matches_direct_runs_for_unreplayable_kinds() {
        // The (plan, cache-model) capture path serves exactly the kinds the
        // stack-distance machinery cannot express: perfect, two-level,
        // victim, and DRAM-backed machines. Pairs of configs differing only
        // in buffer depth share one capture; every synthesized report must
        // equal the unbatched simulator's.
        let stream = SceneBuilder::benchmark(Benchmark::Quake)
            .scale(0.1)
            .build()
            .rasterize();
        let g = sortmid_cache::CacheGeometry::paper_l1();
        let l2 = sortmid_cache::CacheGeometry::new(65536, 8, 64).unwrap();
        let mut configs = SweepGrid::new()
            .processors([4])
            .distributions([Distribution::block(16)])
            .caches([CacheKind::TwoLevel(g, l2), CacheKind::Victim(g, 8)])
            .buffers([8, 10_000])
            .build();
        for buffer in [8usize, 10_000] {
            let mut b = MachineConfig::builder();
            b.processors(4)
                .distribution(Distribution::block(16))
                .triangle_buffer(buffer)
                .dram(Some(sortmid_memsys::DramConfig::sdram_like(
                    sortmid_memsys::BusConfig::ratio(1.0),
                )));
            configs.push(b.build().unwrap());
        }
        let swept = run_sweep_with_threads(&stream, &configs, 2);
        for (config, report) in configs.iter().zip(&swept) {
            let direct = Machine::new(config.clone()).run(&stream);
            assert_eq!(report, &direct, "{}", config.summary());
        }
    }

    #[test]
    fn grid_is_the_cartesian_product() {
        let configs = SweepGrid::new()
            .processors([4, 16])
            .distributions([Distribution::block(8), Distribution::block(16), Distribution::sli(2)])
            .buffers([100, 10_000])
            .build();
        assert_eq!(configs.len(), 12);
        // Row-major: processors outermost.
        assert_eq!(configs[0].processors, 4);
        assert_eq!(configs[11].processors, 16);
        assert_eq!(configs[0].triangle_buffer, 100);
        assert_eq!(configs[1].triangle_buffer, 10_000);
    }

    #[test]
    fn grid_defaults_are_the_paper_machine() {
        let configs = SweepGrid::default().build();
        assert_eq!(configs.len(), 1);
        assert_eq!(configs[0].processors, 1);
        assert_eq!(configs[0].bus.line_cost(), 16);
    }

    #[test]
    fn grid_infinite_bus_axis() {
        let configs = SweepGrid::new().bus_ratios([Some(2.0), None]).build();
        assert_eq!(configs.len(), 2);
        assert_eq!(configs[0].bus.line_cost(), 8);
        assert!(configs[1].bus.is_infinite());
    }

    #[test]
    fn empty_sweep_is_empty() {
        let stream = SceneBuilder::benchmark(Benchmark::Quake)
            .scale(0.1)
            .build()
            .rasterize();
        assert!(run_sweep(&stream, &[]).is_empty());
    }

    #[test]
    fn single_config_sweep() {
        let stream = SceneBuilder::benchmark(Benchmark::Quake)
            .scale(0.1)
            .build()
            .rasterize();
        let configs = vec![MachineConfig::uniprocessor()];
        assert_eq!(run_sweep(&stream, &configs).len(), 1);
    }

    #[test]
    fn grid_hash_pins_content_and_order() {
        let grid = SweepGrid::new().processors([4, 16]).build();
        assert_eq!(grid_hash(&grid), grid_hash(&grid), "deterministic");
        let smaller = SweepGrid::new().processors([4]).build();
        assert_ne!(grid_hash(&grid), grid_hash(&smaller), "content-sensitive");
        let mut reversed = grid.clone();
        reversed.reverse();
        assert_ne!(grid_hash(&grid), grid_hash(&reversed), "order-sensitive");
        assert_ne!(grid_hash(&[]), 0, "empty grid hashes to the FNV offset");
    }
}
