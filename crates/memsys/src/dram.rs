//! SDRAM page-mode refinement of the texture bus.
//!
//! The paper's bus is a pure bandwidth ratio ("a ratio of 1 would be
//! equivalent to a machine drawing 400Mpixels/s using 200MHz SDRAM with a
//! 64 bit bus"). Real SDRAM is not flat: a line fill that hits the open
//! row streams at full rate, while one in a different row pays precharge +
//! activate first. Texture blocking keeps consecutive fills in the same
//! row, which is part of why blocked layouts won — this model makes that
//! visible as an ablation.

use crate::Cycle;
use std::fmt;

/// Page-mode timing parameters.
///
/// # Examples
///
/// ```
/// use sortmid_memsys::bus::BusConfig;
/// use sortmid_memsys::dram::DramConfig;
///
/// let dram = DramConfig::sdram_like(BusConfig::ratio(1.0));
/// assert_eq!(dram.row_hit_cost, 16);
/// assert!(dram.row_miss_cost > dram.row_hit_cost);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Cache lines per DRAM row (a 1 KB row of 64-byte lines = 16).
    pub lines_per_row: u32,
    /// Cycles per line fill when the row is already open.
    pub row_hit_cost: Cycle,
    /// Cycles per line fill that must close one row and open another.
    pub row_miss_cost: Cycle,
}

impl DramConfig {
    /// A late-90s SDRAM behind the given bus: row hits stream at the bus
    /// rate, row misses add a precharge + activate penalty of ~12 bus
    /// cycles; 1 KB rows.
    ///
    /// # Panics
    ///
    /// Panics for an infinite bus (page mode is meaningless there).
    pub fn sdram_like(bus: crate::bus::BusConfig) -> Self {
        assert!(!bus.is_infinite(), "page mode needs a finite bus");
        let hit = bus.line_cost();
        DramConfig {
            lines_per_row: 16,
            row_hit_cost: hit,
            row_miss_cost: hit + 12,
        }
    }

    /// The DRAM row containing `line`.
    pub fn row_of(&self, line: u32) -> u32 {
        line / self.lines_per_row
    }
}

impl fmt::Display for DramConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dram({} lines/row, {}/{} cycles)",
            self.lines_per_row, self.row_hit_cost, self.row_miss_cost
        )
    }
}

/// Open-row state of one node's texture SDRAM (single bank — texture
/// memory is a dedicated device in this machine).
#[derive(Debug, Clone, Default)]
pub struct DramState {
    open_row: Option<u32>,
    row_hits: u64,
    row_misses: u64,
}

impl DramState {
    /// Creates a state with all rows closed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cost of filling `line` now, updating the open row.
    pub fn fill_cost(&mut self, line: u32, config: &DramConfig) -> Cycle {
        let row = config.row_of(line);
        if self.open_row == Some(row) {
            self.row_hits += 1;
            config.row_hit_cost
        } else {
            self.open_row = Some(row);
            self.row_misses += 1;
            config.row_miss_cost
        }
    }

    /// Fills that hit the open row.
    pub fn row_hits(&self) -> u64 {
        self.row_hits
    }

    /// Fills that had to open a new row.
    pub fn row_misses(&self) -> u64 {
        self.row_misses
    }

    /// Closes the row and zeroes counters.
    pub fn reset(&mut self) {
        *self = DramState::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::BusConfig;

    fn config() -> DramConfig {
        DramConfig::sdram_like(BusConfig::ratio(1.0))
    }

    #[test]
    fn first_access_misses_then_streams() {
        let cfg = config();
        let mut s = DramState::new();
        assert_eq!(s.fill_cost(0, &cfg), 28);
        assert_eq!(s.fill_cost(1, &cfg), 16);
        assert_eq!(s.fill_cost(15, &cfg), 16);
        assert_eq!(s.fill_cost(16, &cfg), 28, "next row");
        assert_eq!(s.row_hits(), 2);
        assert_eq!(s.row_misses(), 2);
    }

    #[test]
    fn ping_pong_thrashes_rows() {
        let cfg = config();
        let mut s = DramState::new();
        for _ in 0..8 {
            assert_eq!(s.fill_cost(0, &cfg), 28);
            assert_eq!(s.fill_cost(100, &cfg), 28);
        }
        assert_eq!(s.row_hits(), 0);
    }

    #[test]
    fn reset_closes_rows() {
        let cfg = config();
        let mut s = DramState::new();
        s.fill_cost(3, &cfg);
        s.reset();
        assert_eq!(s.fill_cost(3, &cfg), cfg.row_miss_cost);
        assert_eq!(s.row_misses(), 1);
    }

    #[test]
    #[should_panic(expected = "finite bus")]
    fn infinite_bus_rejected() {
        DramConfig::sdram_like(BusConfig::infinite());
    }
}
