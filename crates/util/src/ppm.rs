//! Minimal binary PPM (P6) image writer used for Figure 9's benchmark images.

use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// An 8-bit RGB raster image.
///
/// # Examples
///
/// ```
/// use sortmid_util::ppm::Image;
///
/// let mut img = Image::new(4, 2);
/// img.put(0, 0, [255, 0, 0]);
/// assert_eq!(img.get(0, 0), [255, 0, 0]);
/// assert_eq!(img.get(1, 0), [0, 0, 0]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    width: u32,
    height: u32,
    data: Vec<u8>,
}

impl Image {
    /// Creates a black image of the given size.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "image must be non-empty");
        Image {
            width,
            height,
            data: vec![0; (width as usize) * (height as usize) * 3],
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    fn index(&self, x: u32, y: u32) -> usize {
        debug_assert!(x < self.width && y < self.height);
        3 * (y as usize * self.width as usize + x as usize)
    }

    /// Writes one pixel; out-of-bounds writes are ignored so rasterizer
    /// callers need not pre-clip.
    pub fn put(&mut self, x: u32, y: u32, rgb: [u8; 3]) {
        if x < self.width && y < self.height {
            let i = self.index(x, y);
            self.data[i..i + 3].copy_from_slice(&rgb);
        }
    }

    /// Reads one pixel.
    ///
    /// # Panics
    ///
    /// Panics if `(x, y)` is out of bounds.
    pub fn get(&self, x: u32, y: u32) -> [u8; 3] {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        let i = self.index(x, y);
        [self.data[i], self.data[i + 1], self.data[i + 2]]
    }

    /// Additively blends `rgb` into the pixel with saturation; used to
    /// visualise depth complexity.
    pub fn add(&mut self, x: u32, y: u32, rgb: [u8; 3]) {
        if x < self.width && y < self.height {
            let i = self.index(x, y);
            for (slot, &add) in self.data[i..i + 3].iter_mut().zip(&rgb) {
                *slot = slot.saturating_add(add);
            }
        }
    }

    /// Serialises the image as a binary PPM (P6) byte stream.
    pub fn to_ppm_bytes(&self) -> Vec<u8> {
        let header = format!("P6\n{} {}\n255\n", self.width, self.height);
        let mut out = Vec::with_capacity(header.len() + self.data.len());
        out.extend_from_slice(header.as_bytes());
        out.extend_from_slice(&self.data);
        out
    }

    /// Writes the image to `path` as binary PPM.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating or writing the file.
    pub fn write_ppm<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let mut w = BufWriter::new(File::create(path)?);
        w.write_all(&self.to_ppm_bytes())?;
        w.flush()
    }
}

impl fmt::Display for Image {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Image({}x{})", self.width, self.height)
    }
}

/// Maps a scalar in `[0, 1]` onto a perceptually-ordered heat ramp
/// (black → blue → magenta → orange → white); used for depth-complexity maps.
pub fn heat_color(t: f64) -> [u8; 3] {
    let t = t.clamp(0.0, 1.0);
    let stops: [(f64, [f64; 3]); 5] = [
        (0.00, [0.0, 0.0, 0.0]),
        (0.25, [0.10, 0.15, 0.60]),
        (0.50, [0.65, 0.15, 0.55]),
        (0.75, [0.95, 0.55, 0.15]),
        (1.00, [1.0, 1.0, 1.0]),
    ];
    let mut lo = stops[0];
    let mut hi = stops[4];
    for w in stops.windows(2) {
        if t >= w[0].0 && t <= w[1].0 {
            lo = w[0];
            hi = w[1];
            break;
        }
    }
    let span = (hi.0 - lo.0).max(1e-9);
    let f = (t - lo.0) / span;
    let mut rgb = [0u8; 3];
    for (out, (&l, &h)) in rgb.iter_mut().zip(lo.1.iter().zip(hi.1.iter())) {
        *out = ((l + (h - l) * f) * 255.0).round() as u8;
    }
    rgb
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut img = Image::new(3, 3);
        img.put(2, 1, [10, 20, 30]);
        assert_eq!(img.get(2, 1), [10, 20, 30]);
        assert_eq!(img.get(0, 0), [0, 0, 0]);
    }

    #[test]
    fn out_of_bounds_put_is_ignored() {
        let mut img = Image::new(2, 2);
        img.put(5, 5, [1, 2, 3]); // no panic
        assert_eq!(img.get(1, 1), [0, 0, 0]);
    }

    #[test]
    fn additive_blend_saturates() {
        let mut img = Image::new(1, 1);
        img.add(0, 0, [200, 200, 200]);
        img.add(0, 0, [200, 200, 200]);
        assert_eq!(img.get(0, 0), [255, 255, 255]);
    }

    #[test]
    fn ppm_header_and_size() {
        let img = Image::new(4, 2);
        let bytes = img.to_ppm_bytes();
        assert!(bytes.starts_with(b"P6\n4 2\n255\n"));
        assert_eq!(bytes.len(), 11 + 4 * 2 * 3);
    }

    #[test]
    fn heat_ramp_is_monotone_at_ends() {
        assert_eq!(heat_color(0.0), [0, 0, 0]);
        assert_eq!(heat_color(1.0), [255, 255, 255]);
        let mid = heat_color(0.5);
        assert!(mid != [0, 0, 0] && mid != [255, 255, 255]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_size_panics() {
        Image::new(0, 4);
    }
}
