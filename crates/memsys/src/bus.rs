//! The texture-memory bus, characterised by a texel-to-fragment ratio.
//!
//! Instead of fixing a bus width and a memory frequency, the paper fixes
//! "the maximum texel to fragment ratio that the bus may transfer" so the
//! results stay valid as clocks scale (Section 3.1). A ratio of `R` means
//! the bus can deliver `R` texels per engine cycle; a 64-byte line fill
//! (16 texels) therefore occupies the bus for `16 / R` cycles.

use crate::Cycle;
use std::fmt;

/// Texels delivered per fetched cache line (a 4×4 block of 4-byte texels in
/// a 64-byte line).
pub const TEXELS_PER_LINE: u64 = 16;

/// Bandwidth model of a node's private texture bus.
///
/// # Examples
///
/// ```
/// use sortmid_memsys::bus::BusConfig;
///
/// assert_eq!(BusConfig::ratio(1.0).line_cost(), 16);
/// assert_eq!(BusConfig::ratio(2.0).line_cost(), 8);
/// assert_eq!(BusConfig::infinite().line_cost(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BusConfig {
    texels_per_cycle: f64,
}

impl BusConfig {
    /// A bus able to deliver `texels_per_cycle` texels per engine cycle —
    /// the paper's evaluated values are 1 and 2.
    ///
    /// # Panics
    ///
    /// Panics if the ratio is not positive and finite.
    pub fn ratio(texels_per_cycle: f64) -> Self {
        assert!(
            texels_per_cycle > 0.0 && texels_per_cycle.is_finite(),
            "bus ratio must be positive and finite"
        );
        BusConfig { texels_per_cycle }
    }

    /// An infinite-bandwidth bus: line fills are free. Used by the locality
    /// study (Figure 6), where only miss *counts* matter.
    pub fn infinite() -> Self {
        BusConfig {
            texels_per_cycle: f64::INFINITY,
        }
    }

    /// The configured ratio (`inf` for [`BusConfig::infinite`]).
    pub fn texels_per_cycle(&self) -> f64 {
        self.texels_per_cycle
    }

    /// True for the infinite-bandwidth bus.
    pub fn is_infinite(&self) -> bool {
        self.texels_per_cycle.is_infinite()
    }

    /// Bus occupancy of one line fill, in cycles (rounded to the nearest
    /// cycle; 0 for an infinite bus).
    pub fn line_cost(&self) -> Cycle {
        if self.is_infinite() {
            0
        } else {
            (TEXELS_PER_LINE as f64 / self.texels_per_cycle).round().max(1.0) as Cycle
        }
    }
}

impl fmt::Display for BusConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_infinite() {
            write!(f, "bus(inf)")
        } else {
            write!(f, "bus({} texel/cycle)", self.texels_per_cycle)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ratios() {
        assert_eq!(BusConfig::ratio(1.0).line_cost(), 16);
        assert_eq!(BusConfig::ratio(2.0).line_cost(), 8);
        assert_eq!(BusConfig::ratio(4.0).line_cost(), 4);
        assert_eq!(BusConfig::ratio(0.5).line_cost(), 32);
    }

    #[test]
    fn line_cost_never_rounds_to_zero_for_finite_bus() {
        // Even an absurdly fast finite bus occupies at least one cycle.
        assert_eq!(BusConfig::ratio(1000.0).line_cost(), 1);
    }

    #[test]
    fn infinite_bus() {
        let b = BusConfig::infinite();
        assert!(b.is_infinite());
        assert_eq!(b.line_cost(), 0);
        assert_eq!(b.to_string(), "bus(inf)");
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn zero_ratio_panics() {
        BusConfig::ratio(0.0);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn nan_ratio_panics() {
        BusConfig::ratio(f64::NAN);
    }
}
