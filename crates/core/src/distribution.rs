//! Screen distributions: square-block and scanline interleaving.
//!
//! Both schemes are *static* and *interleaved*, as the paper requires for a
//! fixed-function chip: the owner of a pixel is a pure function of its
//! coordinates, the block parameter and the processor count.
//!
//! * [`Distribution::Block`] — the screen is a grid of `w × w` tiles; tile
//!   `(tx, ty)` belongs to processor `(tx + s·ty) mod P` with
//!   `s = ceil(sqrt(P))`, which tiles the plane with a dense P-processor
//!   supertile (for square P it is exactly the √P × √P pattern).
//! * [`Distribution::Sli`] — groups of `g` adjacent scanlines dealt
//!   round-robin (the 3dfx Voodoo2 / 3DLabs JetStream scheme).
//! * [`Distribution::DynamicSli`] — the paper's future-work idea: group
//!   boundaries chosen per frame from a measured work profile (see
//!   [`crate::dynamic`]).

use sortmid_geom::Rect;
use std::fmt;
use std::sync::Arc;

/// A static assignment of screen pixels to processors.
///
/// # Examples
///
/// ```
/// use sortmid::Distribution;
///
/// let block = Distribution::block(16);
/// let procs = 4;
/// // Pixels of one 16x16 tile share an owner.
/// let o = block.owner(3, 5, procs);
/// assert_eq!(block.owner(12, 12, procs), o);
/// // The horizontally adjacent tile belongs to someone else.
/// assert_ne!(block.owner(16, 5, procs), o);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Distribution {
    /// Square tiles of the given width, 2-D round-robin interleaved.
    Block {
        /// Tile width and height in pixels.
        width: u32,
    },
    /// Groups of adjacent scanlines, round-robin interleaved.
    Sli {
        /// Scanlines per group.
        lines: u32,
    },
    /// Scanline groups with per-frame boundaries (the dynamic-adjustment
    /// extension). `boundaries[i]` is the first row *after* group `i`;
    /// boundaries are strictly increasing and cover the screen.
    DynamicSli {
        /// Exclusive end row of each group, ascending.
        boundaries: Arc<Vec<u32>>,
    },
    /// Rectangular `width × height` tiles with the same skewed interleave
    /// as [`Distribution::Block`] — the generalisation covering the shape
    /// spectrum between square blocks and scanline groups (an SLI group is
    /// the limit of an infinitely wide tile).
    Tile {
        /// Tile width in pixels.
        width: u32,
        /// Tile height in pixels.
        height: u32,
    },
    /// Square tiles dealt in naive raster-scan round robin — the obvious
    /// interleave a designer might pick first. When the per-row tile count
    /// is a multiple of the processor count this degenerates into vertical
    /// stripes; it exists as the ablation justifying the skewed interleave
    /// of [`Distribution::Block`].
    BlockRaster {
        /// Tile width and height in pixels.
        width: u32,
        /// Tiles per screen row (fixed at construction from the screen
        /// width, since the raster order depends on it).
        tiles_x: u32,
    },
}

impl Distribution {
    /// A block distribution with `width`-pixel square tiles.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn block(width: u32) -> Self {
        assert!(width > 0, "block width must be positive");
        Distribution::Block { width }
    }

    /// An SLI distribution with `lines` scanlines per group.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is zero.
    pub fn sli(lines: u32) -> Self {
        assert!(lines > 0, "SLI group must have at least one line");
        Distribution::Sli { lines }
    }

    /// A dynamic-SLI distribution from explicit group boundaries.
    ///
    /// # Panics
    ///
    /// Panics if `boundaries` is empty or not strictly increasing.
    pub fn dynamic_sli(boundaries: Vec<u32>) -> Self {
        assert!(!boundaries.is_empty(), "need at least one group");
        assert!(
            boundaries.windows(2).all(|w| w[0] < w[1]),
            "boundaries must be strictly increasing"
        );
        Distribution::DynamicSli {
            boundaries: Arc::new(boundaries),
        }
    }

    /// A rectangular-tile distribution.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn tile(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "tile dimensions must be positive");
        Distribution::Tile { width, height }
    }

    /// A raster-order round-robin block distribution over a screen
    /// `screen_width` pixels wide.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds `screen_width`.
    pub fn block_raster(width: u32, screen_width: u32) -> Self {
        assert!(width > 0, "block width must be positive");
        assert!(screen_width >= width, "screen narrower than one tile");
        Distribution::BlockRaster {
            width,
            tiles_x: screen_width.div_ceil(width),
        }
    }

    /// The skew used by the block interleave.
    fn skew(procs: u32) -> u32 {
        (procs as f64).sqrt().ceil() as u32
    }

    /// The processor owning pixel `(x, y)` in a `procs`-processor machine.
    ///
    /// Coordinates outside the screen still map to a processor (the machine
    /// clips before calling this).
    pub fn owner(&self, x: i32, y: i32, procs: u32) -> u32 {
        debug_assert!(procs >= 1);
        match self {
            Distribution::Block { width } => {
                let w = *width as i32;
                let tx = x.div_euclid(w);
                let ty = y.div_euclid(w);
                let s = Self::skew(procs) as i64;
                ((tx as i64 + s * ty as i64).rem_euclid(procs as i64)) as u32
            }
            Distribution::Tile { width, height } => {
                let tx = x.div_euclid(*width as i32);
                let ty = y.div_euclid(*height as i32);
                let s = Self::skew(procs) as i64;
                ((tx as i64 + s * ty as i64).rem_euclid(procs as i64)) as u32
            }
            Distribution::Sli { lines } => {
                let g = y.div_euclid(*lines as i32);
                g.rem_euclid(procs as i32) as u32
            }
            Distribution::DynamicSli { boundaries } => {
                let y = y.max(0) as u32;
                let g = match boundaries.binary_search(&y) {
                    Ok(i) => i + 1,
                    Err(i) => i,
                };
                (g as u32) % procs
            }
            Distribution::BlockRaster { width, tiles_x } => {
                let w = *width as i32;
                let tx = x.div_euclid(w);
                let ty = y.div_euclid(w);
                let idx = ty as i64 * *tiles_x as i64 + tx as i64;
                idx.rem_euclid(procs as i64) as u32
            }
        }
    }

    /// Bitmask of processors whose regions overlap `bbox` — the set of
    /// nodes the sort-middle network routes a triangle with that bounding
    /// box to (each pays the triangle setup cost).
    ///
    /// # Panics
    ///
    /// Panics if `procs` exceeds [`crate::MAX_PROCESSORS`].
    pub fn overlap_mask(&self, bbox: &Rect, procs: u32) -> u128 {
        assert!(procs <= crate::MAX_PROCESSORS);
        if bbox.is_empty() {
            return 0;
        }
        let full: u128 = if procs == 128 {
            u128::MAX
        } else {
            (1u128 << procs) - 1
        };
        if procs == 1 {
            return 1;
        }
        let mut mask: u128 = 0;
        match self {
            Distribution::Block { width } => {
                return self.skewed_tile_mask(bbox, *width, *width, procs, full);
            }
            Distribution::Tile { width, height } => {
                return self.skewed_tile_mask(bbox, *width, *height, procs, full);
            }
            Distribution::Sli { lines } => {
                let g0 = bbox.y0.div_euclid(*lines as i32) as i64;
                let g1 = (bbox.y1 - 1).div_euclid(*lines as i32) as i64;
                if g1 - g0 + 1 >= procs as i64 {
                    return full;
                }
                for g in g0..=g1 {
                    mask |= 1 << (g.rem_euclid(procs as i64) as u64);
                }
            }
            Distribution::DynamicSli { boundaries } => {
                let find = |y: u32| match boundaries.binary_search(&y) {
                    Ok(i) => i + 1,
                    Err(i) => i,
                };
                let g0 = find(bbox.y0.max(0) as u32);
                let g1 = find((bbox.y1 - 1).max(0) as u32);
                if g1 - g0 + 1 >= procs as usize {
                    return full;
                }
                for g in g0..=g1 {
                    mask |= 1 << ((g as u32) % procs);
                }
            }
            Distribution::BlockRaster { width, tiles_x } => {
                let tiles = bbox.tile_cover(*width, *width);
                let row_len = (tiles.x1 - tiles.x0) as i64;
                for ty in tiles.y0..tiles.y1 {
                    if row_len >= procs as i64 {
                        return full;
                    }
                    let base = (ty as i64 * *tiles_x as i64 + tiles.x0 as i64)
                        .rem_euclid(procs as i64);
                    for k in 0..row_len {
                        mask |= 1 << ((base + k) as u64 % procs as u64);
                    }
                    if mask == full {
                        return full;
                    }
                }
            }
        }
        mask
    }

    /// Shared overlap-mask computation for skew-interleaved tile grids.
    fn skewed_tile_mask(&self, bbox: &Rect, tw: u32, th: u32, procs: u32, full: u128) -> u128 {
        let mut mask: u128 = 0;
        let tiles = bbox.tile_cover(tw, th);
        let s = Self::skew(procs) as i64;
        let row_len = (tiles.x1 - tiles.x0) as i64;
        for ty in tiles.y0..tiles.y1 {
            if row_len >= procs as i64 {
                return full;
            }
            let base = (tiles.x0 as i64 + s * ty as i64).rem_euclid(procs as i64);
            for k in 0..row_len {
                mask |= 1 << ((base + k) as u64 % procs as u64);
            }
            if mask == full {
                return full;
            }
        }
        mask
    }

    /// A short label for tables ("block-16", "sli-4", "dyn-sli").
    pub fn label(&self) -> String {
        match self {
            Distribution::Block { width } => format!("block-{width}"),
            Distribution::Tile { width, height } => format!("tile-{width}x{height}"),
            Distribution::Sli { lines } => format!("sli-{lines}"),
            Distribution::DynamicSli { .. } => "dyn-sli".to_string(),
            Distribution::BlockRaster { width, .. } => format!("block-raster-{width}"),
        }
    }
}

impl fmt::Display for Distribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Error from parsing a distribution label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDistributionError {
    input: String,
}

impl fmt::Display for ParseDistributionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid distribution '{}' (expected 'block-<width>' or 'sli-<lines>')",
            self.input
        )
    }
}

impl std::error::Error for ParseDistributionError {}

impl std::str::FromStr for Distribution {
    type Err = ParseDistributionError;

    /// Parses the static labels `block-<width>` and `sli-<lines>` (the
    /// forms [`Distribution::label`] prints for them).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseDistributionError { input: s.to_string() };
        if let Some(width) = s.strip_prefix("block-") {
            let width: u32 = width.parse().map_err(|_| err())?;
            if width == 0 {
                return Err(err());
            }
            return Ok(Distribution::block(width));
        }
        if let Some(lines) = s.strip_prefix("sli-") {
            let lines: u32 = lines.parse().map_err(|_| err())?;
            if lines == 0 {
                return Err(err());
            }
            return Ok(Distribution::sli(lines));
        }
        Err(err())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sortmid_devharness::prop::{check, Config};
    use sortmid_devharness::{prop_assert, prop_assert_eq};

    #[test]
    fn block_partitions_every_pixel() {
        let d = Distribution::block(16);
        for p in [1u32, 2, 4, 7, 16, 64] {
            for (x, y) in [(0, 0), (15, 15), (16, 0), (1599, 1199), (37, 911)] {
                let o = d.owner(x, y, p);
                assert!(o < p, "owner {o} of ({x},{y}) with {p} procs");
            }
        }
    }

    #[test]
    fn block_supertile_is_dense_for_square_p() {
        // With P = 4 and s = 2, a 2x2 tile neighbourhood holds all 4 procs.
        let d = Distribution::block(8);
        let mut seen = std::collections::HashSet::new();
        for ty in 0..2 {
            for tx in 0..2 {
                seen.insert(d.owner(tx * 8, ty * 8, 4));
            }
        }
        assert_eq!(seen.len(), 4);
        // With P = 64 and s = 8, an 8x8 tile neighbourhood holds all 64.
        let mut seen = std::collections::HashSet::new();
        for ty in 0..8 {
            for tx in 0..8 {
                seen.insert(d.owner(tx * 8, ty * 8, 64));
            }
        }
        assert_eq!(seen.len(), 64);
    }

    #[test]
    fn block_avoids_vertical_stripes() {
        // Naive raster round-robin would give every row the same owner
        // pattern; the skew must vary owners down a column.
        let d = Distribution::block(16);
        let owners: std::collections::HashSet<u32> =
            (0..8).map(|ty| d.owner(0, ty * 16, 4)).collect();
        assert!(owners.len() >= 2, "column must mix owners: {owners:?}");
    }

    #[test]
    fn sli_rotates_groups() {
        let d = Distribution::sli(4);
        assert_eq!(d.owner(100, 0, 4), 0);
        assert_eq!(d.owner(0, 3, 4), 0);
        assert_eq!(d.owner(0, 4, 4), 1);
        assert_eq!(d.owner(0, 8, 4), 2);
        assert_eq!(d.owner(0, 16, 4), 0);
        // x never matters.
        for x in 0..64 {
            assert_eq!(d.owner(x, 9, 4), d.owner(0, 9, 4));
        }
    }

    #[test]
    fn overlap_mask_block_exact_small_bbox() {
        let d = Distribution::block(16);
        // bbox inside one tile -> exactly one processor.
        let m = d.overlap_mask(&Rect::new(2, 2, 10, 10), 16);
        assert_eq!(m.count_ones(), 1);
        // bbox straddling two tiles horizontally -> two processors.
        let m2 = d.overlap_mask(&Rect::new(10, 2, 20, 10), 16);
        assert_eq!(m2.count_ones(), 2);
    }

    #[test]
    fn overlap_mask_matches_owner_brute_force() {
        let screen = Rect::of_size(128, 128);
        for d in [Distribution::block(8), Distribution::sli(4), Distribution::block(3)] {
            for procs in [2u32, 4, 6, 16] {
                for bbox in [
                    Rect::new(0, 0, 5, 5),
                    Rect::new(7, 7, 41, 23),
                    Rect::new(100, 90, 128, 128),
                    Rect::new(0, 0, 128, 128),
                ] {
                    let mask = d.overlap_mask(&bbox, procs);
                    let mut brute: u128 = 0;
                    for (x, y) in bbox.intersect(&screen).pixels() {
                        brute |= 1 << d.owner(x, y, procs);
                    }
                    // The mask may over-approximate only via whole tiles
                    // that the bbox grazes; for tile-aligned inputs it is
                    // exact, and it must always contain the brute set.
                    assert_eq!(mask & brute, brute, "{d} procs={procs} bbox={bbox}");
                }
            }
        }
    }

    #[test]
    fn full_screen_bbox_touches_everyone() {
        let screen = Rect::of_size(640, 480);
        for d in [Distribution::block(16), Distribution::sli(2)] {
            for procs in [4u32, 64] {
                let m = d.overlap_mask(&screen, procs);
                assert_eq!(m.count_ones(), procs);
            }
        }
    }

    #[test]
    fn dynamic_sli_uses_boundaries() {
        let d = Distribution::dynamic_sli(vec![10, 30, 100]);
        assert_eq!(d.owner(0, 5, 4), 0);
        assert_eq!(d.owner(0, 10, 4), 1);
        assert_eq!(d.owner(0, 29, 4), 1);
        assert_eq!(d.owner(0, 30, 4), 2);
        assert_eq!(d.owner(0, 99, 4), 2);
        assert_eq!(d.owner(0, 100, 4), 3);
        let m = d.overlap_mask(&Rect::new(0, 5, 64, 31), 4);
        assert_eq!(m, 0b0111);
    }

    #[test]
    fn square_tile_matches_block() {
        let block = Distribution::block(16);
        let tile = Distribution::tile(16, 16);
        for procs in [1u32, 4, 7, 64] {
            for (x, y) in [(0, 0), (15, 31), (100, 3), (999, 777)] {
                assert_eq!(block.owner(x, y, procs), tile.owner(x, y, procs));
            }
            let bbox = Rect::new(3, 9, 200, 150);
            assert_eq!(block.overlap_mask(&bbox, procs), tile.overlap_mask(&bbox, procs));
        }
    }

    #[test]
    fn wide_tile_approaches_sli() {
        // A tile spanning the whole screen width owns full bands of rows,
        // like an SLI group (the interleave order differs by the skew).
        let tile = Distribution::tile(4096, 4);
        for x in [0, 100, 4000] {
            assert_eq!(tile.owner(x, 2, 8), tile.owner(0, 2, 8), "x must not matter");
        }
        assert_ne!(tile.owner(0, 2, 8), tile.owner(0, 6, 8), "bands differ");
    }

    #[test]
    fn tile_mask_covers_owners() {
        let d = Distribution::tile(32, 8);
        for procs in [3u32, 16, 64] {
            let bbox = Rect::new(10, 5, 90, 60);
            let mask = d.overlap_mask(&bbox, procs);
            for (x, y) in bbox.pixels() {
                assert!(mask & (1 << d.owner(x, y, procs)) != 0);
            }
        }
    }

    #[test]
    fn tile_labels() {
        assert_eq!(Distribution::tile(64, 4).label(), "tile-64x4");
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_tile_panics() {
        Distribution::tile(16, 0);
    }

    #[test]
    fn block_raster_degenerates_into_stripes() {
        // 64 tiles per row, 4 procs: 64 % 4 == 0, every row repeats the
        // same pattern -> columns are single-owner stripes.
        let d = Distribution::block_raster(16, 1024);
        for tx in 0..8 {
            let owner = d.owner(tx * 16, 0, 4);
            for ty in 1..8 {
                assert_eq!(d.owner(tx * 16, ty * 16, 4), owner, "stripe broken at {tx},{ty}");
            }
        }
        // The skewed interleave does not stripe.
        let skewed = Distribution::block(16);
        let column: std::collections::HashSet<u32> =
            (0..8).map(|ty| skewed.owner(0, ty * 16, 4)).collect();
        assert!(column.len() > 1);
    }

    #[test]
    fn block_raster_mask_covers_owners() {
        let d = Distribution::block_raster(8, 256);
        for procs in [3u32, 4, 16] {
            let bbox = Rect::new(5, 9, 60, 40);
            let mask = d.overlap_mask(&bbox, procs);
            for (x, y) in bbox.pixels() {
                assert!(mask & (1 << d.owner(x, y, procs)) != 0);
            }
        }
    }

    #[test]
    fn labels() {
        assert_eq!(Distribution::block(16).label(), "block-16");
        assert_eq!(Distribution::sli(4).label(), "sli-4");
        assert_eq!(Distribution::dynamic_sli(vec![8]).label(), "dyn-sli");
        assert_eq!(format!("{}", Distribution::block(2)), "block-2");
    }

    #[test]
    fn parse_round_trips_static_labels() {
        for d in [Distribution::block(16), Distribution::block(1), Distribution::sli(4)] {
            let parsed: Distribution = d.label().parse().unwrap();
            assert_eq!(parsed, d);
        }
        assert!("block-0".parse::<Distribution>().is_err());
        assert!("sli-".parse::<Distribution>().is_err());
        assert!("mosaic-3".parse::<Distribution>().is_err());
        let err = "nope".parse::<Distribution>().unwrap_err();
        assert!(err.to_string().contains("invalid distribution"));
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_block_panics() {
        Distribution::block(0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn bad_boundaries_panic() {
        Distribution::dynamic_sli(vec![10, 10]);
    }

    /// Every pixel has exactly one owner below the processor count, and
    /// single-processor machines own everything.
    #[test]
    fn prop_owner_in_range() {
        check(
            "owner_in_range",
            &Config::default(),
            |g| {
                (
                    g.i32_in(0..2048),
                    g.i32_in(0..2048),
                    g.u32_in(1..128),
                    g.u32_in(1..64),
                )
            },
            |&(x, y, procs, width)| {
                let b = Distribution::block(width);
                prop_assert!(b.owner(x, y, procs) < procs);
                prop_assert_eq!(b.owner(x, y, 1), 0);
                let s = Distribution::sli(width);
                prop_assert!(s.owner(x, y, procs) < procs);
                Ok(())
            },
        );
    }

    /// The overlap mask always contains the owner of every pixel in the
    /// bbox (no triangle is ever dropped).
    #[test]
    fn prop_mask_covers_owners() {
        check(
            "mask_covers_owners",
            &Config::default(),
            |g| {
                (
                    (g.i32_in(0..200), g.i32_in(0..200)),
                    (g.i32_in(1..60), g.i32_in(1..60)),
                    g.u32_in(1..65),
                    g.u32_in(1..40),
                )
            },
            |&((x0, y0), (w, h), procs, param)| {
                let bbox = Rect::new(x0, y0, x0 + w, y0 + h);
                for d in [Distribution::block(param), Distribution::sli(param)] {
                    let mask = d.overlap_mask(&bbox, procs);
                    for (x, y) in bbox.pixels() {
                        prop_assert!(mask & (1 << d.owner(x, y, procs)) != 0);
                    }
                }
                Ok(())
            },
        );
    }
}
