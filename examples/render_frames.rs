//! Render the benchmark frames (Figure 9) plus their depth-complexity heat
//! maps and the screen-ownership pattern of a distribution.
//!
//! ```text
//! cargo run --release --example render_frames [out_dir]
//! ```
//!
//! Writes PPM images viewable with any image tool.

use sortmid::{work, Distribution};
use sortmid_scene::{render, Benchmark, SceneBuilder};
use sortmid_util::ppm::{heat_color, Image};
use std::path::PathBuf;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out: PathBuf = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/frames"));
    std::fs::create_dir_all(&out)?;

    for b in [Benchmark::TeapotFull, Benchmark::Room3, Benchmark::Quake] {
        let scene = SceneBuilder::benchmark(b).scale(0.3).build();
        let name = b.name().replace('.', "_");

        let color = render::render_color(&scene);
        let p1 = out.join(format!("{name}.ppm"));
        color.write_ppm(&p1)?;

        let depth = render::render_depth_map(&scene);
        let p2 = out.join(format!("{name}_depth.ppm"));
        depth.write_ppm(&p2)?;

        println!("wrote {} and {}", p1.display(), p2.display());
    }

    // Ownership maps: who owns which pixel under each distribution
    // (the paper's Figure 1, as an image).
    let (w, h) = (256u32, 256u32);
    for (label, dist) in [
        ("ownership_block16", Distribution::block(16)),
        ("ownership_sli4", Distribution::sli(4)),
    ] {
        let procs = 16u32;
        let mut img = Image::new(w, h);
        for y in 0..h {
            for x in 0..w {
                let owner = dist.owner(x as i32, y as i32, procs);
                img.put(x, y, heat_color(owner as f64 / (procs - 1) as f64));
            }
        }
        let p = out.join(format!("{label}.ppm"));
        img.write_ppm(&p)?;
        println!("wrote {}", p.display());
    }

    // Workload maps (Figure 1): each pixel tinted by how loaded its owner
    // is — big tiles show hot and idle processors, small tiles blend.
    let scene = SceneBuilder::benchmark(Benchmark::Room3).scale(0.25).build();
    let stream = scene.rasterize();
    let (w, h) = (stream.screen().width(), stream.screen().height());
    for (label, dist) in [
        ("workload_block64", Distribution::block(64)),
        ("workload_block16", Distribution::block(16)),
    ] {
        let map = work::work_map(&stream, &dist, 16);
        let max = *map.iter().max().unwrap_or(&1) as f64;
        let mut img = Image::new(w, h);
        for y in 0..h {
            for x in 0..w {
                let v = map[(y * w + x) as usize] as f64 / max.max(1.0);
                img.put(x, y, heat_color(v));
            }
        }
        let p = out.join(format!("{label}.ppm"));
        img.write_ppm(&p)?;
        println!("wrote {}", p.display());
    }
    Ok(())
}
