//! The parallel sort-middle machine simulation.

use crate::batch::PlanLanes;
use crate::config::MachineConfig;
use crate::node::Node;
use crate::plan::RoutingPlan;
use crate::report::RunReport;
use sortmid_geom::Rect;
use sortmid_memsys::Cycle;
use sortmid_observe::{NullSink, TraceEvent, TraceSink};
use sortmid_raster::{Fragment, FragmentStream};

/// The screen-space anchor a triangle's setup padding is attributed to in
/// spatial traces: the bounding-box origin clamped to non-negative
/// coordinates (an overlapped node pays the setup floor even when it owns
/// no fragment of the triangle, so fragment positions cannot anchor it).
fn setup_anchor(bbox: &Rect) -> (u16, u16) {
    (
        bbox.x0.clamp(0, u16::MAX as i32) as u16,
        bbox.y0.clamp(0, u16::MAX as i32) as u16,
    )
}

/// The machine: replays a [`FragmentStream`] under a [`MachineConfig`].
///
/// The simulation walks the triangle stream once, in order — exactly the
/// order the geometry stage emits. For each triangle it:
///
/// 1. **broadcasts** it: every node's FIFO takes a slot (the paper's chips
///    receive every primitive and clip in hardware — a node whose region
///    the bounding box misses discards the triangle for free, but the slot
///    was still occupied);
/// 2. waits until **every** FIFO has space (the geometry stage is a single
///    in-order producer — a full FIFO anywhere blocks everyone, which is
///    the paper's local load imbalance);
/// 3. nodes whose regions the bounding box overlaps pay the 25-cycle setup
///    floor and scan their owned fragments, probing their private cache per
///    texel read and queuing line fills on their private bus.
///
/// Machine time is the cycle the slowest node completes its last fill.
///
/// # Examples
///
/// See [`crate`]-level docs.
#[derive(Debug, Clone)]
pub struct Machine {
    config: MachineConfig,
}

impl Machine {
    /// Creates a machine from a validated configuration.
    pub fn new(config: MachineConfig) -> Self {
        Machine { config }
    }

    /// The configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Simulates the stream and returns the run report.
    pub fn run(&self, stream: &FragmentStream) -> RunReport {
        self.run_traced(stream, &mut NullSink)
    }

    /// [`run`](Self::run) with a [`TraceSink`] receiving the run's event
    /// stream: FIFO push/pop per node, triangle start/retire/discard, and
    /// every texture-bus line fill with its exact slot and cost.
    ///
    /// The report is byte-identical to [`run`](Self::run) — tracing only
    /// observes. Events are emitted in *simulation* order (triangle by
    /// triangle), not globally sorted by cycle; consumers such as
    /// [`TraceRecorder`](sortmid_observe::TraceRecorder) sort on export.
    /// With [`NullSink`] the whole event path monomorphizes away, which is
    /// what keeps the untraced sweep at its reference speed.
    pub fn run_traced<S: TraceSink>(&self, stream: &FragmentStream, sink: &mut S) -> RunReport {
        let mut nodes: Vec<Node> = (0..self.config.processors)
            .map(|_| Node::new(&self.config))
            .collect();
        let routed = self.run_frame(stream, &mut nodes, sink);
        let total_cycles = nodes.iter().map(Node::finish_time).max().unwrap_or(0);
        let node_reports: Vec<_> = nodes.iter().map(Node::report).collect();
        RunReport::new(
            self.config.summary(),
            total_cycles,
            node_reports,
            stream.fragment_count(),
            stream.triangle_count() as u64,
            routed,
        )
    }

    /// Per-node track labels for trace exports: `node <i> (<cache model>)`.
    pub fn node_labels(&self) -> Vec<String> {
        let label = Node::new(&self.config).cache_label();
        (0..self.config.processors)
            .map(|i| format!("node {i} ({label})"))
            .collect()
    }

    /// Simulates the stream by replaying a precomputed [`RoutingPlan`],
    /// skipping all per-fragment ownership math. The report is identical
    /// to [`run`](Self::run) — same node timing, same counters, same
    /// summary string — the plan only precomputes *where* work goes, never
    /// *how long* it takes.
    ///
    /// Internally this runs the **batched fragment core**: the plan is
    /// pivoted into [`PlanLanes`] (struct-of-arrays line-id lanes) and
    /// each fragment's footprint resolves through the cache's batched
    /// probe. Use [`run_planned_with_lanes`](Self::run_planned_with_lanes)
    /// to amortise the pivot across configs, or
    /// [`run_planned_scalar`](Self::run_planned_scalar) to force the
    /// scalar reference path.
    ///
    /// # Panics
    ///
    /// Panics if the plan was built for a different distribution or
    /// processor count than this machine's configuration.
    pub fn run_planned(&self, stream: &FragmentStream, plan: &RoutingPlan) -> RunReport {
        self.run_planned_traced(stream, plan, &mut NullSink)
    }

    /// [`run_planned`](Self::run_planned) with a [`TraceSink`]: the same
    /// event stream and spatial samples as
    /// [`run_traced`](Self::run_traced), emitted from the batched
    /// plan-replay path. Reports and recorded observations are identical
    /// between the paths — property tests pin this.
    ///
    /// # Panics
    ///
    /// Panics if the plan was built for a different distribution or
    /// processor count than this machine's configuration.
    pub fn run_planned_traced<S: TraceSink>(
        &self,
        stream: &FragmentStream,
        plan: &RoutingPlan,
        sink: &mut S,
    ) -> RunReport {
        let lanes = PlanLanes::build(stream, plan);
        self.run_planned_with_lanes_traced(stream, plan, &lanes, sink)
    }

    /// [`run_planned`](Self::run_planned) with the plan's [`PlanLanes`]
    /// already pivoted — the sweep builds the lanes once per plan group
    /// and replays them read-only from every config in the group.
    ///
    /// # Panics
    ///
    /// Panics if the plan does not fit this machine's configuration or the
    /// lanes were built for a different plan.
    pub fn run_planned_with_lanes(
        &self,
        stream: &FragmentStream,
        plan: &RoutingPlan,
        lanes: &PlanLanes,
    ) -> RunReport {
        self.run_planned_with_lanes_traced(stream, plan, lanes, &mut NullSink)
    }

    /// [`run_planned_with_lanes`](Self::run_planned_with_lanes) with a
    /// [`TraceSink`].
    ///
    /// # Panics
    ///
    /// Panics if the plan does not fit this machine's configuration or the
    /// lanes were built for a different plan.
    pub fn run_planned_with_lanes_traced<S: TraceSink>(
        &self,
        stream: &FragmentStream,
        plan: &RoutingPlan,
        lanes: &PlanLanes,
        sink: &mut S,
    ) -> RunReport {
        self.assert_plan_fits(plan);
        assert!(
            lanes.procs() == plan.procs() && lanes.fragment_count() == stream.fragment_count(),
            "lanes built for a different plan ({} nodes, {} fragments)",
            lanes.procs(),
            lanes.fragment_count(),
        );
        let mut nodes: Vec<Node> = (0..self.config.processors)
            .map(|_| Node::new(&self.config))
            .collect();
        let routed = self.run_frame_lanes(stream, plan, lanes, &mut nodes, sink);
        let total_cycles = nodes.iter().map(Node::finish_time).max().unwrap_or(0);
        let node_reports: Vec<_> = nodes.iter().map(Node::report).collect();
        RunReport::new(
            self.config.summary(),
            total_cycles,
            node_reports,
            stream.fragment_count(),
            stream.triangle_count() as u64,
            routed,
        )
    }

    /// The scalar plan-replay path: identical routing and timing, but
    /// every texel probes the cache one line at a time through the
    /// reference [`scan_fragments`] loop. This is the `--scalar` escape
    /// hatch and the semantics the batched core is property-tested
    /// against.
    ///
    /// # Panics
    ///
    /// Panics if the plan was built for a different distribution or
    /// processor count than this machine's configuration.
    ///
    /// [`scan_fragments`]: crate::node
    pub fn run_planned_scalar(&self, stream: &FragmentStream, plan: &RoutingPlan) -> RunReport {
        self.run_planned_scalar_traced(stream, plan, &mut NullSink)
    }

    /// [`run_planned_scalar`](Self::run_planned_scalar) with a
    /// [`TraceSink`].
    ///
    /// # Panics
    ///
    /// Panics if the plan was built for a different distribution or
    /// processor count than this machine's configuration.
    pub fn run_planned_scalar_traced<S: TraceSink>(
        &self,
        stream: &FragmentStream,
        plan: &RoutingPlan,
        sink: &mut S,
    ) -> RunReport {
        self.assert_plan_fits(plan);
        let mut nodes: Vec<Node> = (0..self.config.processors)
            .map(|_| Node::new(&self.config))
            .collect();
        let routed = self.run_frame_planned(stream, plan, &mut nodes, sink);
        let total_cycles = nodes.iter().map(Node::finish_time).max().unwrap_or(0);
        let node_reports: Vec<_> = nodes.iter().map(Node::report).collect();
        RunReport::new(
            self.config.summary(),
            total_cycles,
            node_reports,
            stream.fragment_count(),
            stream.triangle_count() as u64,
            routed,
        )
    }

    fn assert_plan_fits(&self, plan: &RoutingPlan) {
        assert!(
            plan.matches(&self.config.distribution, self.config.processors),
            "plan built for {}x{} does not fit machine {}x{}",
            plan.distribution(),
            plan.procs(),
            self.config.distribution,
            self.config.processors,
        );
    }

    /// Simulates a *sequence* of frames on the same machine: timing and
    /// FIFOs restart each frame, but every node's **cache stays warm** —
    /// the inter-frame locality situation the paper's closing paragraph
    /// asks about (an L2 per node only sees its own screen fraction, so a
    /// viewpoint translation larger than the tile size defeats it).
    ///
    /// Returns one report per frame; each report's cache statistics cover
    /// only that frame.
    pub fn run_sequence(&self, frames: &[&FragmentStream]) -> Vec<RunReport> {
        let mut nodes: Vec<Node> = (0..self.config.processors)
            .map(|_| Node::new(&self.config))
            .collect();
        let mut reports = Vec::with_capacity(frames.len());
        for (i, stream) in frames.iter().enumerate() {
            if i > 0 {
                for node in &mut nodes {
                    node.start_new_frame();
                }
            }
            let snapshots: Vec<_> = nodes.iter().map(Node::cache_snapshot).collect();
            let routed = self.run_frame(stream, &mut nodes, &mut NullSink);
            let total_cycles = nodes.iter().map(Node::finish_time).max().unwrap_or(0);
            let node_reports: Vec<_> = nodes
                .iter()
                .zip(&snapshots)
                .map(|(node, snap)| node.report_since(snap))
                .collect();
            reports.push(RunReport::new(
                format!("{} frame {}", self.config.summary(), i),
                total_cycles,
                node_reports,
                stream.fragment_count(),
                stream.triangle_count() as u64,
                routed,
            ));
        }
        reports
    }

    /// Replays one stream over existing nodes; returns the routed count.
    fn run_frame<S: TraceSink>(
        &self,
        stream: &FragmentStream,
        nodes: &mut [Node],
        sink: &mut S,
    ) -> u64 {
        let procs = self.config.processors;
        let mut scratch: Vec<Vec<&Fragment>> = (0..procs).map(|_| Vec::new()).collect();
        let mut send_time: Cycle = 0;
        let mut routed: u64 = 0;

        for (ti, tri) in stream.triangles().iter().enumerate() {
            if tri.is_culled() {
                continue;
            }
            let mask = self.config.distribution.overlap_mask(&tri.bbox, procs);
            debug_assert_ne!(mask, 0, "non-culled triangle must route somewhere");
            routed += mask.count_ones() as u64;

            // Partition the triangle's fragments by owner.
            for frag in stream.fragments_of(tri) {
                let owner =
                    self.config
                        .distribution
                        .owner(frag.x as i32, frag.y as i32, procs);
                debug_assert!(mask & (1u128 << owner) != 0, "owner outside overlap mask");
                scratch[owner as usize].push(frag);
            }

            // In-order producer broadcasting to every node: sending is
            // gated by the geometry bus rate and by the fullest FIFO
            // anywhere, and never goes back in time.
            let mut send = send_time + self.config.geometry_cycles_per_triangle;
            for node in nodes.iter() {
                send = send.max(node.earliest_send());
            }
            send_time = send;

            let mut m = mask;
            for (i, node) in nodes.iter_mut().enumerate() {
                if S::ENABLED {
                    // The broadcast occupies a slot in *every* FIFO.
                    sink.record(TraceEvent::FifoPush { node: i as u32, at: send });
                }
                if m & 1 != 0 {
                    // Drain keeps the allocation alive for the next
                    // triangle while handing out `&Fragment` items.
                    node.process_triangle_traced(
                        send,
                        scratch[i].drain(..),
                        i as u32,
                        ti as u32,
                        setup_anchor(&tri.bbox),
                        sink,
                    );
                } else {
                    node.discard_triangle_traced(send, i as u32, ti as u32, sink);
                }
                m >>= 1;
            }
        }
        routed
    }

    /// Replays one stream over existing nodes following a routing plan.
    /// Node-for-node, cycle-for-cycle identical to
    /// [`run_frame`](Self::run_frame): triangles arrive in stream order,
    /// broadcast gating and discard timing are unchanged, and each owner
    /// scans its fragments in stream order — only the ownership math is
    /// precomputed.
    fn run_frame_planned<S: TraceSink>(
        &self,
        stream: &FragmentStream,
        plan: &RoutingPlan,
        nodes: &mut [Node],
        sink: &mut S,
    ) -> u64 {
        let fragments = stream.fragments();
        let triangles = stream.triangles();
        let mut send_time: Cycle = 0;

        for pt in &plan.triangles {
            let mut send = send_time + self.config.geometry_cycles_per_triangle;
            for node in nodes.iter() {
                send = send.max(node.earliest_send());
            }
            send_time = send;

            // Walk the triangle's per-owner buckets in lockstep with the
            // node loop: segments are stored in ascending owner order.
            let tri = &triangles[pt.tri as usize];
            let mut seg = pt.seg_start as usize;
            let seg_end = pt.seg_end as usize;
            let mut bucket_start = tri.frag_start as usize;

            let mut m = pt.mask;
            for (i, node) in nodes.iter_mut().enumerate() {
                if S::ENABLED {
                    sink.record(TraceEvent::FifoPush { node: i as u32, at: send });
                }
                if m & 1 != 0 {
                    if seg < seg_end && plan.segments[seg].owner == i as u32 {
                        let end = plan.segments[seg].end as usize;
                        seg += 1;
                        let bucket = &plan.frag_order[bucket_start..end];
                        bucket_start = end;
                        node.process_triangle_traced(
                            send,
                            bucket.iter().map(|&fi| &fragments[fi as usize]),
                            i as u32,
                            pt.tri,
                            setup_anchor(&tri.bbox),
                            sink,
                        );
                    } else {
                        // Bounding-box overlap without owned fragments:
                        // the setup floor still applies.
                        node.process_triangle_traced(
                            send,
                            [].iter(),
                            i as u32,
                            pt.tri,
                            setup_anchor(&tri.bbox),
                            sink,
                        );
                    }
                } else {
                    node.discard_triangle_traced(send, i as u32, pt.tri, sink);
                }
                m >>= 1;
            }
        }
        plan.routed()
    }

    /// [`run_frame_planned`](Self::run_frame_planned) on the batched core:
    /// the same plan walk, but each owner's bucket is a contiguous
    /// [`TriangleLanes`](crate::batch::TriangleLanes) slice of the
    /// prebuilt [`PlanLanes`] instead of a gather through `frag_order`,
    /// and fragments resolve through the cache's batched lane probe.
    /// Routing, broadcast gating and timing are unchanged — reports stay
    /// byte-identical to the scalar walk.
    fn run_frame_lanes<S: TraceSink>(
        &self,
        stream: &FragmentStream,
        plan: &RoutingPlan,
        lanes: &PlanLanes,
        nodes: &mut [Node],
        sink: &mut S,
    ) -> u64 {
        let triangles = stream.triangles();
        let mut send_time: Cycle = 0;
        // Per-node read cursor into the lanes; the plan walk visits each
        // node's fragments in exactly lane order, so consumption is a
        // front-to-back scan.
        let mut cursor = vec![0usize; nodes.len()];

        for pt in &plan.triangles {
            let mut send = send_time + self.config.geometry_cycles_per_triangle;
            for node in nodes.iter() {
                send = send.max(node.earliest_send());
            }
            send_time = send;

            let tri = &triangles[pt.tri as usize];
            let mut seg = pt.seg_start as usize;
            let seg_end = pt.seg_end as usize;
            let mut bucket_start = tri.frag_start as usize;

            let mut m = pt.mask;
            for (i, node) in nodes.iter_mut().enumerate() {
                if S::ENABLED {
                    sink.record(TraceEvent::FifoPush { node: i as u32, at: send });
                }
                if m & 1 != 0 {
                    let mut count = 0usize;
                    if seg < seg_end && plan.segments[seg].owner == i as u32 {
                        let end = plan.segments[seg].end as usize;
                        seg += 1;
                        count = end - bucket_start;
                        bucket_start = end;
                    }
                    let at = cursor[i];
                    cursor[i] += count;
                    node.process_triangle_lanes(
                        send,
                        lanes.triangle_lanes(i, at, count),
                        i as u32,
                        pt.tri,
                        setup_anchor(&tri.bbox),
                        sink,
                    );
                } else {
                    node.discard_triangle_traced(send, i as u32, pt.tri, sink);
                }
                m >>= 1;
            }
        }
        plan.routed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheKind;
    use crate::distribution::Distribution;
    use sortmid_scene::{Benchmark, SceneBuilder};

    fn stream() -> FragmentStream {
        SceneBuilder::benchmark(Benchmark::Quake)
            .scale(0.1)
            .build()
            .rasterize()
    }

    fn config(procs: u32, dist: Distribution, cache: CacheKind) -> MachineConfig {
        MachineConfig::builder()
            .processors(procs)
            .distribution(dist)
            .cache(cache)
            .build()
            .unwrap()
    }

    #[test]
    fn discards_complement_routed_triangles() {
        // Broadcast semantics: every node sees every non-culled triangle,
        // either as a routed triangle or as a discard.
        let s = stream();
        let live = s.triangles().iter().filter(|t| !t.is_culled()).count() as u64;
        let report = Machine::new(config(8, Distribution::block(16), CacheKind::Perfect)).run(&s);
        for node in report.nodes() {
            assert_eq!(node.triangles + node.discarded, live);
        }
    }

    #[test]
    fn all_fragments_are_drawn_under_any_distribution() {
        let s = stream();
        for dist in [Distribution::block(8), Distribution::sli(2)] {
            for procs in [1u32, 3, 16] {
                let report = Machine::new(config(procs, dist.clone(), CacheKind::Perfect)).run(&s);
                let drawn: u64 = report.nodes().iter().map(|n| n.pixels).sum();
                assert_eq!(drawn, s.fragment_count(), "{dist} {procs}p");
            }
        }
    }

    #[test]
    fn parallel_machine_is_no_slower_than_serial_work() {
        let s = stream();
        let base = Machine::new(config(1, Distribution::block(16), CacheKind::Perfect)).run(&s);
        let par = Machine::new(config(4, Distribution::block(16), CacheKind::Perfect)).run(&s);
        assert!(par.total_cycles() <= base.total_cycles());
        let speedup = par.speedup_vs(&base);
        assert!(speedup > 1.0 && speedup <= 4.0, "speedup {speedup}");
    }

    #[test]
    fn single_processor_time_is_total_work() {
        // With a perfect cache and one node, time = sum of max(25, pixels).
        let s = stream();
        let report = Machine::new(config(1, Distribution::block(16), CacheKind::Perfect)).run(&s);
        let expected: u64 = s
            .triangles()
            .iter()
            .filter(|t| !t.is_culled())
            .map(|t| (t.fragment_count() as u64).max(25))
            .sum();
        assert_eq!(report.total_cycles(), expected);
    }

    #[test]
    fn distributions_agree_on_single_processor() {
        let s = stream();
        let a = Machine::new(config(1, Distribution::block(4), CacheKind::PaperL1)).run(&s);
        let b = Machine::new(config(1, Distribution::sli(16), CacheKind::PaperL1)).run(&s);
        assert_eq!(a.total_cycles(), b.total_cycles());
        assert_eq!(a.texel_to_fragment(), b.texel_to_fragment());
    }

    #[test]
    fn smaller_tiles_raise_texel_traffic() {
        // The locality effect (Figure 6): with 16 processors, 4-pixel tiles
        // fetch more than 64-pixel tiles.
        let s = stream();
        let small = Machine::new(config(16, Distribution::block(4), CacheKind::PaperL1)).run(&s);
        let big = Machine::new(config(16, Distribution::block(64), CacheKind::PaperL1)).run(&s);
        assert!(
            small.texel_to_fragment() > big.texel_to_fragment(),
            "small {} vs big {}",
            small.texel_to_fragment(),
            big.texel_to_fragment()
        );
    }

    #[test]
    fn tiny_fifo_hurts() {
        let s = stream();
        let mut small_cfg = config(8, Distribution::block(16), CacheKind::PaperL1);
        small_cfg.triangle_buffer = 1;
        let mut big_cfg = config(8, Distribution::block(16), CacheKind::PaperL1);
        big_cfg.triangle_buffer = 10_000;
        let small = Machine::new(small_cfg).run(&s);
        let big = Machine::new(big_cfg).run(&s);
        assert!(
            small.total_cycles() > big.total_cycles(),
            "buf1 {} vs buf10000 {}",
            small.total_cycles(),
            big.total_cycles()
        );
    }

    #[test]
    fn geometry_bus_rate_bounds_the_machine() {
        let s = stream();
        let live = s.triangles().iter().filter(|t| !t.is_culled()).count() as u64;
        let mut cfg = config(16, Distribution::block(16), CacheKind::Perfect);
        let fast = Machine::new(cfg.clone()).run(&s);
        cfg.geometry_cycles_per_triangle = 100;
        let slow = Machine::new(cfg).run(&s);
        assert!(slow.total_cycles() > fast.total_cycles());
        // The rate is a hard lower bound: the last triangle cannot be sent
        // before live * rate cycles.
        assert!(slow.total_cycles() >= live * 100);
    }

    #[test]
    fn sequence_first_frame_matches_single_run() {
        let s = stream();
        let machine = Machine::new(config(8, Distribution::block(16), CacheKind::PaperL1));
        let single = machine.run(&s);
        let seq = machine.run_sequence(&[&s, &s]);
        assert_eq!(seq.len(), 2);
        assert_eq!(seq[0].total_cycles(), single.total_cycles());
        assert_eq!(seq[0].cache_totals().misses(), single.cache_totals().misses());
    }

    #[test]
    fn warm_caches_make_the_second_frame_cheaper() {
        let s = stream();
        let machine = Machine::new(config(4, Distribution::block(16), CacheKind::PaperL1));
        let seq = machine.run_sequence(&[&s, &s]);
        // An identical second frame re-reads the same lines: every
        // compulsory miss of frame 1 becomes a hit (up to capacity).
        assert!(
            seq[1].cache_totals().misses() <= seq[0].cache_totals().misses(),
            "frame 2 misses {} vs frame 1 {}",
            seq[1].cache_totals().misses(),
            seq[0].cache_totals().misses()
        );
        assert!(seq[1].total_cycles() <= seq[0].total_cycles());
    }

    #[test]
    fn routed_triangles_grow_with_processors() {
        let s = stream();
        let few = Machine::new(config(2, Distribution::sli(1), CacheKind::Perfect)).run(&s);
        let many = Machine::new(config(32, Distribution::sli(1), CacheKind::Perfect)).run(&s);
        assert!(many.overlap_factor() >= few.overlap_factor());
        assert!(few.overlap_factor() >= 1.0);
    }
}
