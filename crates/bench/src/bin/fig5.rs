//! Figure 5 bench: load-balance analysis and perfect-cache speedups.

use sortmid::{work, CacheKind, Distribution};
use sortmid_bench::{run_machine, stream};
use sortmid_devharness::Suite;
use sortmid_scene::Benchmark;
use std::hint::black_box;

fn main() {
    let s = stream(Benchmark::Massive32_11255);
    let mut suite = Suite::new("fig5");

    suite.bench("imbalance/block-16/64p", || {
        black_box(work::pixel_imbalance(&s, &Distribution::block(16), 64))
    });
    suite.bench("imbalance/sli-4/64p", || {
        black_box(work::pixel_imbalance(&s, &Distribution::sli(4), 64))
    });
    suite.bench_with_elements("speedup/perfect/block-16/64p", s.fragment_count(), || {
        black_box(run_machine(
            &s,
            64,
            Distribution::block(16),
            CacheKind::Perfect,
            Some(1.0),
            10_000,
        ))
    });

    // One-shot artefact: the imbalance series of Figure 5 at bench scale.
    println!("\nFigure 5 imbalance (32massive11255, 64 processors):");
    for w in [4u32, 8, 16, 32, 64, 128] {
        println!(
            "  block-{w:<3} {:>8.1}%",
            work::pixel_imbalance(&s, &Distribution::block(w), 64)
        );
    }
    for l in [1u32, 2, 4, 8, 16, 32] {
        println!(
            "  sli-{l:<5} {:>8.1}%",
            work::pixel_imbalance(&s, &Distribution::sli(l), 64)
        );
    }

    suite.finish();
}
