//! Figure 9 bench: benchmark image rendering.

use criterion::{criterion_group, criterion_main, Criterion};
use sortmid_bench::scene;
use sortmid_scene::{render, Benchmark};
use std::hint::black_box;

fn bench_fig9(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9");
    group.sample_size(10);
    for b in [Benchmark::TeapotFull, Benchmark::Room3, Benchmark::Quake] {
        let s = scene(b);
        group.bench_function(format!("render/{}", b.name()), |bencher| {
            bencher.iter(|| black_box(render::render_color(&s)));
        });
    }
    group.finish();

    // Write the images once so the bench run leaves the artefact behind.
    let out = std::path::Path::new("target/fig9-bench");
    std::fs::create_dir_all(out).expect("create out dir");
    for b in [Benchmark::TeapotFull, Benchmark::Room3, Benchmark::Quake] {
        let s = scene(b);
        let img = render::render_color(&s);
        let path = out.join(format!("{}.ppm", b.name().replace('.', "_")));
        img.write_ppm(&path).expect("write ppm");
        println!("wrote {}", path.display());
    }
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
