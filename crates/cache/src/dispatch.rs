//! Concrete enum dispatch over the built-in cache models.
//!
//! The machine probes a node's cache 8 times per fragment (once per texel
//! of the trilinear footprint). Through `Box<dyn LineCache>` every probe is
//! a virtual call the compiler cannot inline; [`AnyCache`] replaces that
//! with a `match` on a concrete enum, so the dominant [`SetAssocCache`] and
//! [`PerfectCache`] probes inline straight into the texel loop.
//!
//! Exotic or user-provided models still fit: the [`AnyCache::Dyn`] variant
//! carries any boxed [`LineCache`], paying the old virtual call only for
//! caches the enum does not know.

use crate::classify::ClassifyingCache;
use crate::hierarchy::TwoLevelCache;
use crate::perfect::PerfectCache;
use crate::set_assoc::SetAssocCache;
use crate::stats::{CacheStats, MissBreakdown};
use crate::victim::VictimCache;
use crate::LineCache;
use sortmid_observe::{MissClass, MissClassCounts};

/// A cache model dispatched by `match` instead of vtable.
///
/// Implements [`LineCache`] itself, so it drops in anywhere a boxed cache
/// was used; the difference is that `access_line` on the known variants is
/// a direct (inlinable) call.
///
/// # Examples
///
/// ```
/// use sortmid_cache::{AnyCache, LineCache, PerfectCache};
///
/// let mut cache = AnyCache::from(PerfectCache::new());
/// assert!(cache.access_line(7));
/// assert_eq!(cache.stats().misses(), 0);
/// ```
pub enum AnyCache {
    /// The always-hit model.
    Perfect(PerfectCache),
    /// The set-associative LRU simulator (the paper's L1).
    SetAssoc(SetAssocCache),
    /// Set-associative with three-C miss classification.
    Classifying(ClassifyingCache),
    /// The two-level hierarchy.
    TwoLevel(TwoLevelCache),
    /// Set-associative L1 plus victim buffer.
    Victim(VictimCache),
    /// Escape hatch: any other [`LineCache`], dispatched virtually.
    Dyn(Box<dyn LineCache + Send>),
}

impl std::fmt::Debug for AnyCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnyCache::Perfect(c) => c.fmt(f),
            AnyCache::SetAssoc(c) => c.fmt(f),
            AnyCache::Classifying(c) => c.fmt(f),
            AnyCache::TwoLevel(c) => c.fmt(f),
            AnyCache::Victim(c) => c.fmt(f),
            AnyCache::Dyn(_) => f.write_str("AnyCache::Dyn(..)"),
        }
    }
}

impl AnyCache {
    /// A short human-readable model name, used to label per-node tracks in
    /// trace exports (e.g. Perfetto process names).
    pub fn label(&self) -> &'static str {
        match self {
            AnyCache::Perfect(_) => "perfect",
            AnyCache::SetAssoc(_) => "set-assoc",
            AnyCache::Classifying(_) => "classifying",
            AnyCache::TwoLevel(_) => "two-level",
            AnyCache::Victim(_) => "victim",
            AnyCache::Dyn(_) => "custom",
        }
    }
}

impl From<PerfectCache> for AnyCache {
    fn from(c: PerfectCache) -> Self {
        AnyCache::Perfect(c)
    }
}

impl From<SetAssocCache> for AnyCache {
    fn from(c: SetAssocCache) -> Self {
        AnyCache::SetAssoc(c)
    }
}

impl From<ClassifyingCache> for AnyCache {
    fn from(c: ClassifyingCache) -> Self {
        AnyCache::Classifying(c)
    }
}

impl From<TwoLevelCache> for AnyCache {
    fn from(c: TwoLevelCache) -> Self {
        AnyCache::TwoLevel(c)
    }
}

impl From<VictimCache> for AnyCache {
    fn from(c: VictimCache) -> Self {
        AnyCache::Victim(c)
    }
}

impl From<Box<dyn LineCache + Send>> for AnyCache {
    fn from(c: Box<dyn LineCache + Send>) -> Self {
        AnyCache::Dyn(c)
    }
}

macro_rules! dispatch {
    ($self:expr, $c:ident => $body:expr) => {
        match $self {
            AnyCache::Perfect($c) => $body,
            AnyCache::SetAssoc($c) => $body,
            AnyCache::Classifying($c) => $body,
            AnyCache::TwoLevel($c) => $body,
            AnyCache::Victim($c) => $body,
            AnyCache::Dyn($c) => $body,
        }
    };
}

impl LineCache for AnyCache {
    #[inline]
    fn access_line(&mut self, line: u32) -> bool {
        match self {
            AnyCache::Perfect(c) => c.access_line(line),
            AnyCache::SetAssoc(c) => c.access_line(line),
            AnyCache::Classifying(c) => c.access_line(line),
            AnyCache::TwoLevel(c) => c.access_line(line),
            AnyCache::Victim(c) => c.access_line(line),
            AnyCache::Dyn(c) => c.access_line(line),
        }
    }

    #[inline]
    fn access_line_classified(&mut self, line: u32) -> (bool, Option<MissClass>) {
        match self {
            AnyCache::Perfect(c) => c.access_line_classified(line),
            AnyCache::SetAssoc(c) => c.access_line_classified(line),
            AnyCache::Classifying(c) => c.access_line_classified(line),
            AnyCache::TwoLevel(c) => c.access_line_classified(line),
            AnyCache::Victim(c) => c.access_line_classified(line),
            AnyCache::Dyn(c) => c.access_line_classified(line),
        }
    }

    #[inline]
    fn access_lane(
        &mut self,
        lane: &[u32],
        miss_out: &mut [u32],
        classes: &mut MissClassCounts,
    ) -> usize {
        // Explicit arms (not `dispatch!`) so each model's batched probe —
        // SWAR compares for SetAssoc, counter bumps for Perfect — inlines
        // into the per-fragment loop.
        match self {
            AnyCache::Perfect(c) => c.access_lane(lane, miss_out, classes),
            AnyCache::SetAssoc(c) => c.access_lane(lane, miss_out, classes),
            AnyCache::Classifying(c) => c.access_lane(lane, miss_out, classes),
            AnyCache::TwoLevel(c) => c.access_lane(lane, miss_out, classes),
            AnyCache::Victim(c) => c.access_lane(lane, miss_out, classes),
            AnyCache::Dyn(c) => c.access_lane(lane, miss_out, classes),
        }
    }

    #[inline]
    fn stats(&self) -> &CacheStats {
        dispatch!(self, c => c.stats())
    }

    #[inline]
    fn external_fetches(&self) -> u64 {
        dispatch!(self, c => c.external_fetches())
    }

    fn breakdown(&self) -> Option<MissBreakdown> {
        // UFCS: `ClassifyingCache` also has an *inherent* `breakdown`
        // returning the bare struct, which would shadow the trait method.
        match self {
            AnyCache::Perfect(c) => LineCache::breakdown(c),
            AnyCache::SetAssoc(c) => LineCache::breakdown(c),
            AnyCache::Classifying(c) => LineCache::breakdown(c),
            AnyCache::TwoLevel(c) => LineCache::breakdown(c),
            AnyCache::Victim(c) => LineCache::breakdown(c),
            AnyCache::Dyn(c) => c.as_ref().breakdown(),
        }
    }

    fn reset(&mut self) {
        dispatch!(self, c => c.reset())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::CacheGeometry;

    fn all_kinds() -> Vec<AnyCache> {
        vec![
            AnyCache::from(PerfectCache::new()),
            AnyCache::from(SetAssocCache::new(CacheGeometry::paper_l1())),
            AnyCache::from(ClassifyingCache::new(CacheGeometry::paper_l1())),
            AnyCache::from(TwoLevelCache::new(
                CacheGeometry::paper_l1(),
                CacheGeometry::paper_l2(),
            )),
            AnyCache::from(VictimCache::new(CacheGeometry::paper_l1(), 4)),
            AnyCache::from(Box::new(PerfectCache::new()) as Box<dyn LineCache + Send>),
        ]
    }

    #[test]
    fn enum_behaves_like_the_inner_model() {
        for mut any in all_kinds() {
            any.access_line(3);
            any.access_line(3);
            assert_eq!(any.stats().accesses(), 2, "{any:?}");
            // Second access to the same line hits in every model.
            assert!(any.stats().hits() >= 1, "{any:?}");
            any.reset();
            assert_eq!(any.stats().accesses(), 0, "{any:?}");
        }
    }

    #[test]
    fn enum_matches_direct_set_assoc() {
        let geometry = CacheGeometry::new(512, 2, 64).unwrap();
        let mut direct = SetAssocCache::new(geometry);
        let mut via_enum = AnyCache::from(SetAssocCache::new(geometry));
        let mut x = 1u32;
        for _ in 0..10_000 {
            x = x.wrapping_mul(1103515245).wrapping_add(12345);
            let line = (x >> 16) % 96;
            assert_eq!(direct.access_line(line), via_enum.access_line(line));
        }
        assert_eq!(direct.stats().misses(), via_enum.stats().misses());
    }

    #[test]
    fn labels_are_distinct_per_known_variant() {
        let labels: Vec<&str> = all_kinds().iter().map(AnyCache::label).collect();
        assert_eq!(
            labels,
            ["perfect", "set-assoc", "classifying", "two-level", "victim", "custom"]
        );
    }

    #[test]
    fn classifying_breakdown_survives_dispatch() {
        let mut any = AnyCache::from(ClassifyingCache::new(CacheGeometry::paper_l1()));
        any.access_line(1);
        let b = any.breakdown().expect("classifying model tracks misses");
        assert_eq!(b.compulsory, 1);
        // Non-classifying models report no breakdown.
        assert!(AnyCache::from(PerfectCache::new()).breakdown().is_none());
    }

    #[test]
    fn access_lane_matches_scalar_loop_for_every_variant() {
        // Two independently-built pools so batched and scalar runs start
        // from identical cold caches.
        for (mut batched, mut scalar) in all_kinds().into_iter().zip(all_kinds()) {
            let mut x = 7u32;
            let mut lane = [0u32; 8];
            for _ in 0..400 {
                for slot in lane.iter_mut() {
                    x = x.wrapping_mul(1103515245).wrapping_add(12345);
                    // Small space + forced runs: duplicates are common.
                    *slot = (x >> 16) % 40;
                }
                lane[1] = lane[0];
                lane[4] = lane[3];
                let mut miss_out = [0u32; 8];
                let mut classes = MissClassCounts::default();
                let n = batched.access_lane(&lane, &mut miss_out, &mut classes);
                let mut expect = Vec::new();
                let mut expect_classes = MissClassCounts::default();
                for &line in &lane {
                    let (hit, class) = scalar.access_line_classified(line);
                    if !hit {
                        expect.push(line);
                        if let Some(class) = class {
                            expect_classes.add(class);
                        }
                    }
                }
                assert_eq!(&miss_out[..n], &expect[..], "{batched:?}");
                assert_eq!(classes, expect_classes, "{batched:?}");
            }
            assert_eq!(batched.stats(), scalar.stats(), "{batched:?}");
            assert_eq!(batched.external_fetches(), scalar.external_fetches());
            assert_eq!(
                LineCache::breakdown(&batched),
                LineCache::breakdown(&scalar),
                "{batched:?}"
            );
        }
    }

    #[test]
    fn classified_access_dispatches_per_variant() {
        let mut any = AnyCache::from(ClassifyingCache::new(CacheGeometry::paper_l1()));
        assert_eq!(
            any.access_line_classified(9),
            (false, Some(MissClass::Compulsory))
        );
        assert_eq!(any.access_line_classified(9), (true, None));
        // Unclassified models miss without a class...
        let mut sa = AnyCache::from(SetAssocCache::new(CacheGeometry::paper_l1()));
        assert_eq!(sa.access_line_classified(9), (false, None));
        // ...and the classified path must leave identical statistics.
        assert_eq!(sa.stats().accesses(), 1);
        assert_eq!(sa.stats().misses(), 1);
    }
}
