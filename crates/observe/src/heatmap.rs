//! Screen-space accumulation grids and false-color heatmap rendering.
//!
//! The paper's three interacting effects — load-balance hotspots (Figure
//! 5), setup overhead on tiny tile/triangle intersections, and texture
//! locality loss on thin stripes (Figure 6) — are *spatial* phenomena: they
//! happen at particular places on the screen. [`ScreenGrid`] is the
//! accumulator behind the spatial-metrics layer: per-pixel samples are
//! binned into square tiles of configurable granularity, and the filled
//! grid exports three ways — a false-color PPM heatmap (via
//! `sortmid_util::ppm`), JSON rows for the `HEATMAP_<preset>.json`
//! artefact, and a terminal [`GridSummary`] (max/min tile, imbalance
//! ratio).
//!
//! # Examples
//!
//! ```
//! use sortmid_observe::ScreenGrid;
//!
//! let mut grid: ScreenGrid<u64> = ScreenGrid::new(64, 32, 16);
//! assert_eq!((grid.cols(), grid.rows()), (4, 2));
//! *grid.at(17, 5) += 3; // lands in tile (1, 0)
//! assert_eq!(*grid.cell(1, 0), 3);
//! let s = grid.summarize(|&v| v as f64).unwrap();
//! assert_eq!(s.max, 3.0);
//! assert_eq!(s.max_at, (1, 0));
//! ```

use crate::palette::heat_color;
use sortmid_devharness::json::Json;
use sortmid_util::ppm::Image;
use std::fmt;

pub use crate::palette::owner_color;

/// A screen-aligned grid of accumulator cells binned at square `tile`
/// granularity. Generic over the cell type so one structure backs fragment
/// counts, cycle counts and composite per-tile statistics alike.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScreenGrid<T> {
    width: u32,
    height: u32,
    tile: u32,
    cols: u32,
    rows: u32,
    cells: Vec<T>,
}

impl<T: Default + Clone> ScreenGrid<T> {
    /// An all-default grid covering a `width`×`height` screen with square
    /// tiles of `tile` pixels (the right/bottom edge tiles may be partial).
    ///
    /// # Panics
    ///
    /// Panics if the screen is empty or `tile` is zero.
    pub fn new(width: u32, height: u32, tile: u32) -> Self {
        assert!(width > 0 && height > 0, "grid needs a non-empty screen");
        assert!(tile > 0, "tile granularity must be positive");
        let cols = width.div_ceil(tile);
        let rows = height.div_ceil(tile);
        ScreenGrid {
            width,
            height,
            tile,
            cols,
            rows,
            cells: vec![T::default(); (cols as usize) * (rows as usize)],
        }
    }
}

impl<T> ScreenGrid<T> {
    /// Screen width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Screen height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Tile edge in pixels.
    pub fn tile(&self) -> u32 {
        self.tile
    }

    /// Number of tile columns.
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Number of tile rows.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// All cells in row-major order.
    pub fn cells(&self) -> &[T] {
        &self.cells
    }

    /// The cell of tile `(col, row)`.
    ///
    /// # Panics
    ///
    /// Panics if the tile coordinates are out of range.
    pub fn cell(&self, col: u32, row: u32) -> &T {
        assert!(col < self.cols && row < self.rows, "tile out of range");
        &self.cells[(row as usize) * (self.cols as usize) + col as usize]
    }

    /// The cell owning pixel `(x, y)`; coordinates past the screen edge
    /// clamp into the border tile so callers need not pre-clip.
    pub fn at(&mut self, x: u32, y: u32) -> &mut T {
        let col = (x / self.tile).min(self.cols - 1);
        let row = (y / self.tile).min(self.rows - 1);
        &mut self.cells[(row as usize) * (self.cols as usize) + col as usize]
    }

    /// Iterates `(col, row, cell)` in row-major order.
    pub fn enumerate(&self) -> impl Iterator<Item = (u32, u32, &T)> {
        let cols = self.cols;
        self.cells
            .iter()
            .enumerate()
            .map(move |(i, c)| (i as u32 % cols, i as u32 / cols, c))
    }

    /// Max/min/mean of `value` over every tile, with the extreme tiles'
    /// coordinates; `None` only for a grid with no cells (unreachable via
    /// [`new`](Self::new)).
    pub fn summarize(&self, value: impl Fn(&T) -> f64) -> Option<GridSummary> {
        let mut it = self.enumerate();
        let (c0, r0, first) = it.next()?;
        let v0 = value(first);
        let mut s = GridSummary {
            max: v0,
            max_at: (c0, r0),
            min: v0,
            min_at: (c0, r0),
            mean: 0.0,
        };
        let mut sum = v0;
        for (c, r, cell) in it {
            let v = value(cell);
            if v > s.max {
                s.max = v;
                s.max_at = (c, r);
            }
            if v < s.min {
                s.min = v;
                s.min_at = (c, r);
            }
            sum += v;
        }
        s.mean = sum / self.cells.len() as f64;
        Some(s)
    }

    /// Renders `value` as a false-color heatmap, `px_per_tile` image pixels
    /// per tile, normalised by the grid's maximum (an all-zero grid renders
    /// black).
    ///
    /// # Panics
    ///
    /// Panics if `px_per_tile` is zero.
    pub fn render(&self, px_per_tile: u32, value: impl Fn(&T) -> f64) -> Image {
        assert!(px_per_tile > 0, "px_per_tile must be positive");
        let max = self
            .cells
            .iter()
            .map(&value)
            .fold(0.0_f64, f64::max)
            .max(f64::MIN_POSITIVE);
        self.render_rgb(px_per_tile, |cell| heat_color(value(cell) / max))
    }

    /// Renders with an explicit per-tile color (categorical maps such as
    /// tile ownership, where a normalised heat ramp would mislead).
    ///
    /// # Panics
    ///
    /// Panics if `px_per_tile` is zero.
    pub fn render_rgb(&self, px_per_tile: u32, color: impl Fn(&T) -> [u8; 3]) -> Image {
        assert!(px_per_tile > 0, "px_per_tile must be positive");
        let mut img = Image::new(self.cols * px_per_tile, self.rows * px_per_tile);
        for (col, row, cell) in self.enumerate() {
            let rgb = color(cell);
            for dy in 0..px_per_tile {
                for dx in 0..px_per_tile {
                    img.put(col * px_per_tile + dx, row * px_per_tile + dy, rgb);
                }
            }
        }
        img
    }

    /// The grid as a JSON array of row arrays (row-major, `rows` rows of
    /// `cols` entries) — the cell payload of `HEATMAP_<preset>.json`.
    pub fn rows_json(&self, value: impl Fn(&T) -> Json) -> Json {
        Json::arr((0..self.rows).map(|row| {
            Json::arr((0..self.cols).map(|col| value(self.cell(col, row))))
        }))
    }
}

/// Terminal summary of one metric over a [`ScreenGrid`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridSummary {
    /// Largest tile value.
    pub max: f64,
    /// `(col, row)` of the largest tile.
    pub max_at: (u32, u32),
    /// Smallest tile value.
    pub min: f64,
    /// `(col, row)` of the smallest tile.
    pub min_at: (u32, u32),
    /// Mean over every tile (empty tiles included).
    pub mean: f64,
}

impl GridSummary {
    /// Hottest tile over the mean tile — the spatial analogue of the
    /// paper's Figure 5 imbalance metric (1.0 = perfectly flat; 0 when the
    /// grid is empty).
    pub fn imbalance_ratio(&self) -> f64 {
        if self.mean <= 0.0 {
            0.0
        } else {
            self.max / self.mean
        }
    }
}

impl fmt::Display for GridSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "max {:.1} @({},{}) min {:.1} @({},{}) mean {:.2} imbalance {:.2}x",
            self.max,
            self.max_at.0,
            self.max_at.1,
            self.min,
            self.min_at.0,
            self.min_at.1,
            self.mean,
            self.imbalance_ratio()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning_covers_partial_edge_tiles() {
        let mut g: ScreenGrid<u64> = ScreenGrid::new(33, 17, 16);
        assert_eq!((g.cols(), g.rows()), (3, 2));
        *g.at(32, 16) += 1; // bottom-right partial tile
        assert_eq!(*g.cell(2, 1), 1);
        // Past-the-edge samples clamp into the border tile.
        *g.at(1000, 1000) += 1;
        assert_eq!(*g.cell(2, 1), 2);
    }

    #[test]
    fn summarize_finds_extremes_and_mean() {
        let mut g: ScreenGrid<u64> = ScreenGrid::new(32, 32, 16);
        *g.at(0, 0) = 8;
        *g.at(31, 31) = 2;
        let s = g.summarize(|&v| v as f64).unwrap();
        assert_eq!(s.max, 8.0);
        assert_eq!(s.max_at, (0, 0));
        assert_eq!(s.min, 0.0);
        assert_eq!(s.mean, 2.5);
        assert!((s.imbalance_ratio() - 3.2).abs() < 1e-12);
    }

    #[test]
    fn empty_grid_summary_has_zero_imbalance() {
        let g: ScreenGrid<u64> = ScreenGrid::new(16, 16, 16);
        let s = g.summarize(|&v| v as f64).unwrap();
        assert_eq!(s.imbalance_ratio(), 0.0);
    }

    #[test]
    fn render_normalizes_by_max() {
        let mut g: ScreenGrid<u64> = ScreenGrid::new(32, 16, 16);
        *g.at(0, 0) = 10;
        let img = g.render(2, |&v| v as f64);
        assert_eq!((img.width(), img.height()), (4, 2));
        assert_eq!(img.get(0, 0), heat_color(1.0), "hot tile saturates");
        assert_eq!(img.get(2, 0), heat_color(0.0), "cold tile is black");
    }

    #[test]
    fn all_zero_grid_renders_black() {
        let g: ScreenGrid<u64> = ScreenGrid::new(16, 16, 8);
        let img = g.render(1, |&v| v as f64);
        assert_eq!(img.get(0, 0), [0, 0, 0]);
    }

    #[test]
    fn rows_json_is_row_major() {
        let mut g: ScreenGrid<u64> = ScreenGrid::new(32, 32, 16);
        *g.at(16, 0) = 7;
        let json = g.rows_json(|&v| Json::U64(v));
        let rows = json.as_arr().unwrap();
        assert_eq!(rows.len(), 2);
        let row0 = rows[0].as_arr().unwrap();
        assert_eq!(row0[1].as_u64(), Some(7));
        assert_eq!(row0[0].as_u64(), Some(0));
    }

    #[test]
    #[should_panic(expected = "tile granularity")]
    fn zero_tile_panics() {
        let _: ScreenGrid<u64> = ScreenGrid::new(16, 16, 0);
    }
}
