//! Differential observability: on artefacts produced by *real* runs,
//! `diff(run, run)` must be exactly zero at every level the diff engine
//! reports — per-config cycles, five-way breakdown categories, tile
//! planes, owner assignments, miss classes, host phases — and a
//! synthetic regression injected into one artefact must be attributed
//! to the precise config, breakdown category, miss class or phase it
//! was planted in. The injection test is a devharness property: the
//! config, category and magnitude are all randomized.

use sortmid::{
    grid_hash, run_sweep, run_sweep_profiled, CacheKind, Distribution, HostProfile, Machine,
    MachineConfig, RunReport, SpatialCollector, SweepGrid, SweepOptions,
};
use sortmid_cache::CacheGeometry;
use sortmid_devharness::json::Json;
use sortmid_devharness::prop::{check, Config, Gen};
use sortmid_observe::breakdown::CATEGORY_NAMES;
use sortmid_observe::{HeatmapDiff, MetricsDiff, Provenance, SweepDiff};
use sortmid_raster::FragmentStream;
use sortmid_scene::{Benchmark, SceneBuilder};

fn stream() -> FragmentStream {
    SceneBuilder::benchmark(Benchmark::Quake)
        .scale(0.1)
        .build()
        .rasterize()
}

/// A small reference grid: two processor counts crossed with the paper's
/// balance-vs-locality distribution pair.
fn small_grid() -> Vec<MachineConfig> {
    SweepGrid::new()
        .processors([2, 4])
        .distributions([Distribution::block(16), Distribution::sli(2)])
        .caches([CacheKind::PaperL1])
        .buffers([8])
        .build()
}

/// The provenance every bench emitter stamps: the scene seed plus the
/// FNV hash of the config grid.
fn provenance(configs: &[MachineConfig]) -> Provenance {
    Provenance::collect(
        SceneBuilder::benchmark(Benchmark::Quake).config().seed,
        grid_hash(configs),
    )
}

/// Builds the `BENCH_sweep.json` shape the sweep bin emits: per config
/// the summary string, the machine time, and per node the
/// `[setup, busy, bus_stall, starved, idle, finish]` row.
fn sweep_doc(reports: &[RunReport], prov: &Provenance) -> Json {
    let mut doc = Json::obj([(
        "cycle_breakdowns",
        Json::arr(reports.iter().map(|r| {
            Json::obj([
                ("config", Json::str(r.summary())),
                ("total_cycles", Json::U64(r.total_cycles())),
                (
                    "nodes",
                    Json::arr(r.nodes().iter().map(|n| {
                        let b = n.cycle_breakdown();
                        b.verify(n.finish).expect("cycle identity must hold");
                        let mut row: Vec<Json> =
                            b.as_array().iter().map(|&c| Json::U64(c)).collect();
                        row.push(Json::U64(n.finish));
                        Json::Arr(row)
                    })),
                ),
            ])
        })),
    )]);
    doc.set("provenance", prov.to_json());
    doc
}

/// Mutable access to an object member (panics if absent — these tests
/// mutate documents they just built).
fn field<'a>(doc: &'a mut Json, key: &str) -> &'a mut Json {
    let Json::Obj(pairs) = doc else { panic!("not an object") };
    &mut pairs
        .iter_mut()
        .find(|(k, _)| k == key)
        .unwrap_or_else(|| panic!("missing key '{key}'"))
        .1
}

fn elems(doc: &mut Json) -> &mut Vec<Json> {
    let Json::Arr(items) = doc else { panic!("not an array") };
    items
}

fn bump(value: &mut Json, by: u64) {
    let Json::U64(n) = value else { panic!("not a u64") };
    *n += by;
}

/// Adds `extra` cycles of breakdown category `cat` to every node of
/// config `idx`, keeping both identities intact (each row's first five
/// entries still sum to its finish; the machine time still equals the
/// slowest node's finish).
fn inject_sweep(doc: &mut Json, idx: usize, cat: usize, extra: u64) -> String {
    let entry = &mut elems(field(doc, "cycle_breakdowns"))[idx];
    bump(field(entry, "total_cycles"), extra);
    for row in elems(field(entry, "nodes")) {
        let row = elems(row);
        bump(&mut row[cat], extra);
        bump(&mut row[5], extra);
    }
    let Json::Str(name) = field(entry, "config") else { panic!("config not a string") };
    name.clone()
}

#[test]
fn self_diff_of_a_real_sweep_is_exactly_zero() {
    let configs = small_grid();
    let reports = run_sweep(&stream(), &configs);
    let doc = sweep_doc(&reports, &provenance(&configs));

    let d = SweepDiff::between(&doc, &doc).expect("same run must be comparable");
    assert!(d.is_zero(), "diff(run, run) must be zero");
    assert_eq!(d.configs.len(), configs.len());
    assert!(d.only_base.is_empty() && d.only_current.is_empty());
    for c in &d.configs {
        assert_eq!(c.delta(), 0, "{}: machine-cycle delta must be zero", c.config);
        assert!(c.breakdown.is_zero(), "{}: every category delta must be zero", c.config);
    }
    assert!(d.ranked().is_empty(), "no config may rank as changed");
    let text = d.explanation(10).join("\n");
    assert!(
        text.contains("no differences"),
        "self-diff explanation should say so: {text}"
    );
}

#[test]
fn injected_regression_is_attributed_to_config_and_category() {
    let configs = small_grid();
    let reports = run_sweep(&stream(), &configs);
    let base = sweep_doc(&reports, &provenance(&configs));

    check(
        "injected sweep regression is attributed",
        &Config::with_cases(48),
        |g: &mut Gen| {
            let idx = g.choice(reports.len());
            let cat = g.choice(CATEGORY_NAMES.len());
            let extra = g.u64_below(100_000) + 1;
            (idx, cat, extra)
        },
        |&(idx, cat, extra)| {
            let mut cur = base.clone();
            let name = inject_sweep(&mut cur, idx, cat, extra);
            let nodes = reports[idx].nodes().len() as i64;

            let d = SweepDiff::between(&base, &cur).map_err(|e| e.to_string())?;
            if d.is_zero() {
                return Err("injection must produce a nonzero diff".into());
            }
            let ranked = d.ranked();
            let top = ranked.first().ok_or("no ranked configs")?;
            if top.config != name {
                return Err(format!("top-ranked '{}', injected '{name}'", top.config));
            }
            if top.delta() != extra as i64 {
                return Err(format!("machine delta {} != injected {extra}", top.delta()));
            }
            match top.breakdown.dominant() {
                Some((dom, total)) if dom == CATEGORY_NAMES[cat] && total == extra as i64 * nodes => {
                    Ok(())
                }
                other => Err(format!(
                    "dominant {other:?}, expected ({}, {})",
                    CATEGORY_NAMES[cat],
                    extra as i64 * nodes
                )),
            }
        },
    );
}

#[test]
fn diffs_refuse_incomparable_runs() {
    let configs = small_grid();
    let reports = run_sweep(&stream(), &configs);
    let prov = provenance(&configs);
    let base = sweep_doc(&reports, &prov);

    // Same reports, different grid hash: a run over a different config
    // grid must not be attributed against this one.
    let other = Provenance::collect(prov.seed, prov.grid_hash ^ 1);
    let cur = sweep_doc(&reports, &other);
    let err = SweepDiff::between(&base, &cur).expect_err("must refuse");
    assert!(err.contains("grid"), "error should name the grid: {err}");
}

/// The heatmap preset the CI smoke lane uses: 4 processors so the owner
/// plane is nontrivial, classifying cache so the three-C planes fill.
fn heatmap_doc() -> Json {
    let config = MachineConfig::builder()
        .processors(4)
        .distribution(Distribution::block(16))
        .cache(CacheKind::Classifying(CacheGeometry::paper_l1()))
        .build()
        .expect("valid config");
    let s = stream();
    let screen = s.screen();
    let machine = Machine::new(config.clone());
    let mut col = SpatialCollector::new(
        screen.width().max(1),
        screen.height().max(1),
        16,
        config.processors,
    );
    let report = machine.run_traced(&s, &mut col);
    let mut doc = col.to_json("tiny", report.summary());
    doc.set(
        "provenance",
        provenance(std::slice::from_ref(&config)).to_json(),
    );
    doc
}

#[test]
fn heatmap_self_diff_is_zero_on_every_plane_tile_and_node() {
    let doc = heatmap_doc();
    let d = HeatmapDiff::between(&doc, &doc).expect("same run must be comparable");
    assert!(d.is_zero());
    assert_eq!(d.owner_flips, 0, "owner plane must not flip against itself");
    for plane in &d.planes {
        assert_eq!(plane.max_abs(), 0, "plane {} must be all zero", plane.metric);
        assert_eq!(plane.changed_tiles(), 0);
        assert!(plane.deltas.iter().all(|&v| v == 0));
        // An all-zero plane renders as an all-white (unchanged) map.
        let img = plane.render(1);
        for y in 0..img.height() {
            for x in 0..img.width() {
                assert_eq!(img.get(x, y), [255, 255, 255]);
            }
        }
    }
    for node in &d.nodes {
        assert!(node.is_zero(), "node {} misses must be unchanged", node.node);
    }
}

#[test]
fn injected_conflict_misses_are_attributed_to_tile_and_node() {
    let base = heatmap_doc();
    let mut cur = base.clone();
    // Plant 7 extra conflict misses in one tile, charged to node 0.
    {
        let rows = elems(field(field(&mut cur, "tiles"), "miss_conflict"));
        bump(&mut elems(&mut rows[0])[0], 7);
        let node0 = &mut elems(field(&mut cur, "nodes"))[0];
        bump(field(node0, "conflict"), 7);
        bump(field(node0, "misses"), 7);
    }

    let d = HeatmapDiff::between(&base, &cur).expect("comparable");
    assert!(!d.is_zero());
    let plane = d
        .planes
        .iter()
        .find(|p| p.metric == "miss_conflict")
        .expect("conflict plane present");
    assert_eq!(plane.max_abs(), 7);
    assert_eq!(plane.changed_tiles(), 1);
    assert_eq!(plane.hottest().map(|(_, _, v)| v), Some(7));
    // Only the planted tile moved; every other plane is untouched.
    for other in d.planes.iter().filter(|p| p.metric != "miss_conflict") {
        assert_eq!(other.max_abs(), 0, "plane {} must be untouched", other.metric);
    }
    let node0 = d.nodes.iter().find(|n| n.node == 0).expect("node 0");
    assert_eq!((node0.conflict, node0.misses), (7, 7));
    assert!(node0.compulsory == 0 && node0.capacity == 0);
    let text = d.explanation().join("\n");
    assert!(text.contains("conflict"), "explanation must name the class: {text}");
}

/// A real host profile from a (tiny) profiled sweep.
fn metrics_doc() -> (Json, HostProfile) {
    let configs = small_grid();
    let prof = sortmid::HostProfiler::new();
    let options = SweepOptions { threads: 2, replay: true, batch: true, static_schedule: false };
    run_sweep_profiled(&stream(), &configs, options, &prof);
    let profile = prof.finish();
    profile.verify().expect("profile invariants must hold");
    let mut doc = profile.to_json("sweep");
    doc.set("provenance", provenance(&configs).to_json());
    (doc, profile)
}

#[test]
fn metrics_self_diff_is_zero_across_phases_counters_and_histograms() {
    let (doc, profile) = metrics_doc();
    let d = MetricsDiff::between(&doc, &doc).expect("same run must be comparable");
    assert!(d.is_zero());
    assert!(!d.phases.is_empty(), "a profiled sweep has phases");
    for p in &d.phases {
        assert_eq!((p.count, p.total_ns, p.self_ns), (0, 0, 0), "phase {}", p.name);
    }
    assert!(d.one_sided_phases.is_empty());
    assert!(d.counters.iter().all(|(_, delta)| *delta == 0));
    for h in &d.histograms {
        assert!(h.is_zero(), "histogram {} must not shift", h.name);
    }
    assert_eq!(d.peak_rss_delta, 0);
    drop(profile);
}

#[test]
fn injected_phase_slowdown_is_ranked_first() {
    let (base, _profile) = metrics_doc();
    let mut cur = base.clone();
    let slow = 987_654_321u64;
    let name = {
        let phases = elems(field(&mut cur, "phases"));
        let phase = phases.last_mut().expect("at least one phase");
        bump(field(phase, "total_ns"), slow);
        bump(field(phase, "self_ns"), slow);
        let Json::Str(name) = field(phase, "name") else { panic!("name not a string") };
        name.clone()
    };

    let d = MetricsDiff::between(&base, &cur).expect("comparable");
    assert!(!d.is_zero());
    let ranked = d.ranked_phases();
    let top = ranked.first().expect("a ranked phase");
    assert_eq!(top.name, name);
    assert_eq!(top.self_ns, slow as i64);
    let text = d.explanation(3).join("\n");
    assert!(text.contains(&name), "explanation must name the phase: {text}");
}
