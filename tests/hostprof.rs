//! Host-profiling integration: the profiled sweep pipeline must be
//! observationally identical to the unprofiled one, and the sealed
//! [`HostProfile`] must satisfy every invariant `bench_check` gates
//! (span nesting, sibling non-overlap, exact per-worker
//! `busy + idle == wall`) while covering the named pipeline phases.

use sortmid::{
    run_sweep_profiled, run_sweep_with_options, CacheKind, Distribution, HostProfile,
    HostProfiler, SweepGrid, SweepOptions,
};
use sortmid_cache::CacheGeometry;
use sortmid_devharness::json::Json;
use sortmid_raster::FragmentStream;
use sortmid_scene::{Benchmark, SceneBuilder};

fn stream() -> FragmentStream {
    SceneBuilder::benchmark(Benchmark::Quake)
        .scale(0.1)
        .build()
        .rasterize()
}

/// A grid that walks every config path: six set-associative geometries on
/// one plan (stack-distance replay), plus perfect/paper-L1 pairs sharing
/// captures, across two plan groups.
fn mixed_grid() -> Vec<sortmid::MachineConfig> {
    let mut caches = vec![CacheKind::Perfect, CacheKind::PaperL1];
    for log_size in 12..18 {
        let g = CacheGeometry::new(1 << log_size, 4, 64).unwrap();
        caches.push(CacheKind::SetAssoc(g));
    }
    SweepGrid::new()
        .processors([4])
        .distributions([Distribution::block(16), Distribution::sli(2)])
        .caches(caches)
        .buffers([8, 10_000])
        .build()
}

fn profiled_run() -> HostProfile {
    let s = stream();
    let configs = mixed_grid();
    let options = SweepOptions {
        threads: 3,
        replay: true,
        batch: true,
        static_schedule: false,
    };
    let prof = HostProfiler::new();
    let profiled = run_sweep_profiled(&s, &configs, options, &prof);
    let plain = run_sweep_with_options(&s, &configs, options);
    assert_eq!(
        profiled, plain,
        "host profiling must not perturb the simulation"
    );
    prof.finish()
}

#[test]
fn profiled_sweep_is_identical_and_profile_verifies() {
    let profile = profiled_run();
    profile.verify().expect("structural invariants must hold");

    let phases = profile.phase_names();
    assert!(
        phases.len() >= 6,
        "span tree must cover >= 6 pipeline phases, got {phases:?}"
    );
    for phase in [
        "run-sweep",
        "batch-pivot",
        "plan-build",
        "path-select",
        "lane-pivot",
        "trace-eval",
        "run-configs",
        "worker-run",
    ] {
        assert!(phases.contains(&phase), "missing phase {phase}: {phases:?}");
    }

    // Worker utilization: three workers, each holding the exact identity.
    let workers: Vec<_> = profile
        .workers
        .iter()
        .filter(|w| w.lane == "run-configs")
        .collect();
    assert_eq!(workers.len(), 3);
    let mut items = 0;
    for w in &workers {
        assert_eq!(w.busy_ns + w.idle_ns(), w.wall_ns);
        assert!(w.utilization() <= 1.0);
        items += w.items;
    }
    assert_eq!(items as usize, mixed_grid().len(), "every config ran on some worker");

    // The metrics registry saw the path split: 12 replay-eligible configs
    // (6 geometries x 2 buffers per plan group... per plan), the rest via
    // capture or direct.
    let counters = profile.metrics.get("counters").expect("counters object");
    let count = |name: &str| counters.get(name).and_then(Json::as_u64).unwrap_or(0);
    assert_eq!(count("sweep.configs"), mixed_grid().len() as u64);
    assert_eq!(count("sweep.plans"), 2);
    assert_eq!(
        count("sweep.path.direct") + count("sweep.path.captured") + count("sweep.path.replay"),
        mixed_grid().len() as u64,
        "every config took exactly one path"
    );
    assert!(count("sweep.path.replay") >= 12, "dense geometries replay");
}

#[test]
fn profile_json_round_trips_with_the_artefact_schema() {
    let profile = profiled_run();
    let doc = profile.to_json("sweep");
    let text = doc.render();
    let back = Json::parse(&text).expect("profile renders valid JSON");
    assert_eq!(back.render(), text, "render/parse round trip is stable");

    assert_eq!(back.get("profile").and_then(Json::as_str), Some("sweep"));
    assert!(back.get("peak_rss_bytes").and_then(Json::as_u64).is_some());

    // Spans: parents resolve, children stay inside them, on their thread.
    let spans = back.get("spans").and_then(Json::as_arr).expect("spans");
    assert!(!spans.is_empty());
    for span in spans {
        let start = span.get("start_ns").and_then(Json::as_u64).unwrap();
        let dur = span.get("dur_ns").and_then(Json::as_u64).unwrap();
        let thread = span.get("thread").and_then(Json::as_u64).unwrap();
        match span.get("parent") {
            Some(Json::Null) => {}
            Some(Json::U64(p)) => {
                let parent = &spans[*p as usize];
                let p_start = parent.get("start_ns").and_then(Json::as_u64).unwrap();
                let p_dur = parent.get("dur_ns").and_then(Json::as_u64).unwrap();
                assert_eq!(
                    parent.get("thread").and_then(Json::as_u64),
                    Some(thread),
                    "child and parent share a thread"
                );
                assert!(start >= p_start && start + dur <= p_start + p_dur);
            }
            other => panic!("span parent must be null or an index, got {other:?}"),
        }
    }

    // Workers: the serialized identity is exact.
    let workers = back.get("workers").and_then(Json::as_arr).expect("workers");
    assert!(!workers.is_empty());
    for w in workers {
        let wall = w.get("wall_ns").and_then(Json::as_u64).unwrap();
        let busy = w.get("busy_ns").and_then(Json::as_u64).unwrap();
        let idle = w.get("idle_ns").and_then(Json::as_u64).unwrap();
        assert_eq!(busy + idle, wall);
    }

    // Phase totals: self time never exceeds inclusive time.
    let phases = back.get("phases").and_then(Json::as_arr).expect("phases");
    assert!(phases.len() >= 6);
    for p in phases {
        let total = p.get("total_ns").and_then(Json::as_u64).unwrap();
        let self_ns = p.get("self_ns").and_then(Json::as_u64).unwrap();
        assert!(self_ns <= total);
    }
}

#[test]
fn sequential_sweep_still_reports_a_worker() {
    // threads=1 takes the sequential path; the calling thread must still
    // report utilization so the worker-identity gate has a record.
    let s = stream();
    let configs = SweepGrid::new()
        .processors([4])
        .distributions([Distribution::block(16)])
        .caches([CacheKind::Perfect, CacheKind::PaperL1])
        .build();
    let options = SweepOptions {
        threads: 1,
        replay: true,
        batch: true,
        static_schedule: false,
    };
    let prof = HostProfiler::new();
    let profiled = run_sweep_profiled(&s, &configs, options, &prof);
    assert_eq!(profiled, run_sweep_with_options(&s, &configs, options));
    let profile = prof.finish();
    profile.verify().unwrap();
    let rc: Vec<_> = profile.workers.iter().filter(|w| w.lane == "run-configs").collect();
    assert_eq!(rc.len(), 1);
    let w = rc[0];
    assert_eq!(w.worker, 0);
    assert_eq!(w.items as usize, configs.len());
    assert_eq!(w.busy_ns + w.idle_ns(), w.wall_ns);
    // The scheduler pool reports its own lane too, even single-threaded.
    let pool: Vec<_> = profile.workers.iter().filter(|w| w.lane == "sched-pool").collect();
    assert_eq!(pool.len(), 1);
    assert!(pool[0].items >= w.items, "pool tasks include every config run");
    assert!(profile.phase_names().contains(&"worker-run"));
}
