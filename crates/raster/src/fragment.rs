//! The compact fragment-stream representation.

use sortmid_geom::Rect;
use sortmid_texture::{TexelAddr, TextureId, TEXELS_PER_FRAGMENT};

/// One covered pixel and the 8 texel addresses its trilinear filter reads.
///
/// Fragments are 40 bytes; scenes of a few million fragments fit easily in
/// memory, which is what lets the machine simulator replay one rasterization
/// under dozens of distribution configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fragment {
    /// Pixel x coordinate.
    pub x: u16,
    /// Pixel y coordinate.
    pub y: u16,
    /// The trilinear footprint: 4 texels on each of two mip levels.
    pub texels: [TexelAddr; TEXELS_PER_FRAGMENT],
}

impl Fragment {
    /// The number of *distinct cache lines* among the 8 texel reads
    /// (between 1 and 8; typically 2 with 4×4 blocking).
    pub fn distinct_lines(&self) -> u32 {
        let mut lines = [0u32; TEXELS_PER_FRAGMENT];
        let mut n = 0;
        for t in &self.texels {
            let l = t.line();
            if !lines[..n].contains(&l) {
                lines[n] = l;
                n += 1;
            }
        }
        n as u32
    }
}

/// One triangle's entry in a [`FragmentStream`](crate::FragmentStream):
/// which texture it samples, its screen-clipped bounding box (what the
/// sort-middle network uses to route it) and the range of its fragments in
/// the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TriangleRecord {
    /// The texture sampled.
    pub texture: TextureId,
    /// Pixel bounding box clipped to the screen; empty when the triangle
    /// was culled (degenerate or fully off screen).
    pub bbox: Rect,
    /// First fragment index in the stream.
    pub frag_start: u32,
    /// One past the last fragment index.
    pub frag_end: u32,
}

impl TriangleRecord {
    /// Number of fragments this triangle produced.
    pub fn fragment_count(&self) -> u32 {
        self.frag_end - self.frag_start
    }

    /// True when the triangle was culled before setup (empty bbox).
    pub fn is_culled(&self) -> bool {
        self.bbox.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sortmid_texture::{TextureDesc, TextureRegistry};

    #[test]
    fn distinct_lines_counts_blocks() {
        let mut reg = TextureRegistry::new();
        let id = reg.register(TextureDesc::new(64, 64).unwrap()).unwrap();
        // All 8 texels inside one 4x4 block of level 0 -> 1 line.
        let a = reg.texel_addr(id, 0, 0, 0);
        let frag = Fragment {
            x: 0,
            y: 0,
            texels: [a; 8],
        };
        assert_eq!(frag.distinct_lines(), 1);
        // Footprint straddling two blocks -> 2 lines.
        let b = reg.texel_addr(id, 0, 4, 0);
        let frag2 = Fragment {
            x: 0,
            y: 0,
            texels: [a, a, b, b, a, a, b, b],
        };
        assert_eq!(frag2.distinct_lines(), 2);
    }

    #[test]
    fn record_counts() {
        let r = TriangleRecord {
            texture: TextureId(0),
            bbox: Rect::new(0, 0, 4, 4),
            frag_start: 10,
            frag_end: 16,
        };
        assert_eq!(r.fragment_count(), 6);
        assert!(!r.is_culled());
        let culled = TriangleRecord {
            texture: TextureId(0),
            bbox: Rect::EMPTY,
            frag_start: 16,
            frag_end: 16,
        };
        assert!(culled.is_culled());
    }
}
