//! The set-associative LRU cache simulator.

use crate::geometry::CacheGeometry;
use crate::stats::CacheStats;
use crate::LineCache;

/// Sentinel tag meaning "way is empty".
const EMPTY: u32 = u32::MAX;

/// A set-associative cache with true-LRU replacement, simulated at line
/// granularity.
///
/// Ways of a set are stored in recency order (index 0 = most recent), so a
/// hit is a short scan plus a rotate — fast for the small associativities
/// texture caches use.
///
/// # Examples
///
/// ```
/// use sortmid_cache::{CacheGeometry, LineCache, SetAssocCache};
///
/// let mut c = SetAssocCache::new(CacheGeometry::paper_l1());
/// c.access_line(7);
/// assert!(c.access_line(7));
/// assert_eq!(c.stats().hits(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    geometry: CacheGeometry,
    /// `sets() - 1`, precomputed: the per-access set lookup must not pay
    /// the division hiding inside [`CacheGeometry::sets`].
    set_mask: u32,
    /// `geometry.ways()`, precomputed for the same reason.
    ways: usize,
    /// `sets * ways` tags, each set's ways contiguous in recency order.
    tags: Vec<u32>,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Creates an empty cache with the given geometry.
    pub fn new(geometry: CacheGeometry) -> Self {
        SetAssocCache {
            geometry,
            set_mask: geometry.sets() - 1,
            ways: geometry.ways() as usize,
            tags: vec![EMPTY; (geometry.sets() * geometry.ways()) as usize],
            stats: CacheStats::new(),
        }
    }

    /// The cache's geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// True when `line` is currently resident (does not update LRU or
    /// statistics).
    pub fn probe(&self, line: u32) -> bool {
        debug_assert_ne!(line, EMPTY, "line address clashes with the empty sentinel");
        let ways = self.geometry.ways() as usize;
        let base = self.geometry.set_of(line) as usize * ways;
        self.tags[base..base + ways].contains(&line)
    }

    /// Number of resident lines (for tests; O(capacity)).
    pub fn resident_lines(&self) -> usize {
        self.tags.iter().filter(|&&t| t != EMPTY).count()
    }
}

impl LineCache for SetAssocCache {
    #[inline]
    fn access_line(&mut self, line: u32) -> bool {
        debug_assert_ne!(line, EMPTY, "line address clashes with the empty sentinel");
        let ways = self.ways;
        let base = (line & self.set_mask) as usize * ways;
        let set = &mut self.tags[base..base + ways];
        let hit = match set.iter().position(|&t| t == line) {
            Some(pos) => {
                // Move to front (most recently used); hits on the MRU way
                // — the common case under texture locality — skip the
                // rotate entirely.
                if pos != 0 {
                    set[..=pos].rotate_right(1);
                }
                true
            }
            None => {
                // Evict LRU (the last slot) by shifting everything down.
                set.rotate_right(1);
                set[0] = line;
                false
            }
        };
        self.stats.record(hit);
        hit
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn reset(&mut self) {
        self.tags.fill(EMPTY);
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::CacheGeometry;
    use sortmid_devharness::prop::{check, Config};
    use sortmid_devharness::prop_assert;

    fn tiny() -> SetAssocCache {
        // 4 sets x 2 ways x 64B lines = 512B.
        SetAssocCache::new(CacheGeometry::new(512, 2, 64).unwrap())
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access_line(0));
        assert!(c.access_line(0));
        assert_eq!(c.stats().accesses(), 2);
        assert_eq!(c.stats().misses(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny(); // set 0 holds lines {0, 4, 8, ...} with 2 ways
        c.access_line(0);
        c.access_line(4); // set 0 now [4, 0]
        c.access_line(0); // touch 0 -> [0, 4]
        c.access_line(8); // evicts 4 -> [8, 0]
        assert!(c.probe(0));
        assert!(c.probe(8));
        assert!(!c.probe(4));
        assert!(c.access_line(0), "0 must have survived");
    }

    #[test]
    fn sets_are_independent() {
        let mut c = tiny();
        // Fill set 0 far beyond capacity; set 1 must be untouched.
        for i in 0..16 {
            c.access_line(i * 4);
        }
        c.access_line(1);
        assert!(c.probe(1));
        assert!(c.access_line(1));
    }

    #[test]
    fn reset_clears_contents_and_stats() {
        let mut c = tiny();
        c.access_line(3);
        c.reset();
        assert_eq!(c.stats().accesses(), 0);
        assert!(!c.probe(3));
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn working_set_within_capacity_never_remisses() {
        // 256-line paper cache: a 64-line working set maps 1 line per set.
        let mut c = SetAssocCache::new(CacheGeometry::paper_l1());
        for round in 0..4 {
            for line in 0..64 {
                let hit = c.access_line(line);
                assert_eq!(hit, round > 0, "round {round} line {line}");
            }
        }
    }

    #[test]
    fn thrashing_set_always_misses() {
        let mut c = tiny(); // 2 ways
        // Three lines in one set, round-robin: classic LRU thrash.
        for _ in 0..10 {
            for line in [0, 4, 8] {
                c.access_line(line);
            }
        }
        // After warmup every access misses.
        let before = c.stats().misses();
        for line in [0, 4, 8] {
            assert!(!c.access_line(line));
        }
        assert_eq!(c.stats().misses(), before + 3);
    }

    /// Residency never exceeds capacity and a just-accessed line is
    /// always resident.
    #[test]
    fn prop_capacity_and_mru() {
        check(
            "capacity_and_mru",
            &Config::default(),
            |g| g.vec(1..200, |g| g.u32_in(0..64)),
            |lines| {
                let mut c = tiny();
                for &l in lines {
                    c.access_line(l);
                    prop_assert!(c.probe(l));
                    prop_assert!(c.resident_lines() <= 8);
                }
                Ok(())
            },
        );
    }

    /// The W most recent distinct lines of one set are all resident
    /// (true-LRU inclusion property).
    #[test]
    fn prop_lru_inclusion() {
        check(
            "lru_inclusion",
            &Config::default(),
            |g| g.vec(1..100, |g| g.u32_in(0..6)),
            |seq| {
                let mut c = tiny(); // 2 ways
                // Map everything into set 0 so recency is the only factor.
                let seq: Vec<u32> = seq.iter().map(|&x| x * 4).collect();
                for (i, &l) in seq.iter().enumerate() {
                    c.access_line(l);
                    // Find the last 2 distinct lines ending at i.
                    let mut distinct = Vec::new();
                    for &p in seq[..=i].iter().rev() {
                        if !distinct.contains(&p) {
                            distinct.push(p);
                        }
                        if distinct.len() == 2 {
                            break;
                        }
                    }
                    for &d in &distinct {
                        prop_assert!(c.probe(d), "line {d} should be resident after step {i}");
                    }
                }
                Ok(())
            },
        );
    }
}
