#!/usr/bin/env sh
# Tier-1 gate: offline release build + tests (+ clippy when available).
#
# The workspace has no registry dependencies, so everything here must pass
# on a machine with no network access. Run from anywhere:
#
#   scripts/tier1.sh
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo"

# Build warnings are errors throughout the gate.
RUSTFLAGS="${RUSTFLAGS:-} -D warnings"
export RUSTFLAGS

echo "==> cargo build --release --offline (RUSTFLAGS: -D warnings)"
cargo build --release --offline

echo "==> cargo test -q --workspace --offline"
cargo test -q --workspace --offline

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy --workspace --all-targets --offline -- -D warnings"
    cargo clippy --workspace --all-targets --offline -- -D warnings
else
    echo "==> cargo clippy not installed; skipping lint step"
fi

# Smoke-run the sweep bench (1 sample, tiny scene — includes the
# grid/trace-replay lanes pricing 100+ cache configs from one stack-
# distance replay), the trace bin (tiny preset) and the heatmap bin (tiny
# preset, small scene) into a scratch dir, then validate that the emitted
# BENCH_*.json, TRACE_*.json, HEATMAP_*.json and METRICS_*.json artefacts
# parse with the expected schemas — and gate the sweep's simulated cycle
# totals against the committed baseline at the default 15% tolerance
# (spelled out via --tolerance here so the flag stays exercised).
#
# The default sweep run also profiles the pipeline on the host and writes
# METRICS_sweep.json; bench_check fails the gate if a required pipeline
# phase is missing, a span escapes its parent or overlaps a sibling, or
# any worker breaks the exact `busy + idle == wall` identity.
echo "==> sweep bench + trace/heatmap smoke + artefact schema check + regression gate"
bench_dir=$(mktemp -d)
threads_dir=$(mktemp -d)
noreplay_dir=$(mktemp -d)
scalar_dir=$(mktemp -d)
trap 'rm -rf "$bench_dir" "$threads_dir" "$noreplay_dir" "$scalar_dir"' EXIT
SORTMID_BENCH_SAMPLES=1 SORTMID_BENCH_WARMUP=0 SORTMID_BENCH_DIR="$bench_dir" \
    cargo run -q --release --offline -p sortmid-bench --bin sweep
test -f "$bench_dir/METRICS_sweep.json" || {
    echo "tier1: sweep bench did not emit METRICS_sweep.json" >&2
    exit 1
}
SORTMID_BENCH_DIR="$bench_dir" \
    cargo run -q --release --offline -p sortmid-bench --bin trace -- --scale 0.05 tiny
SORTMID_BENCH_DIR="$bench_dir" \
    cargo run -q --release --offline -p sortmid-bench --bin heatmap -- --scale 0.05 --tile 16 tiny

# Differential observability smoke: the self-diff of the fresh sweep
# artefact must be exactly zero at every level (--expect-zero exits
# nonzero otherwise) and leaves a DIFF_selfdiff.json behind; the gate run
# below then explains its verdict against the committed baseline and
# writes DIFF_gate.json — bench_check rescans the directory afterwards,
# so both DIFF documents are themselves schema-validated.
cargo run -q --release --offline -p sortmid-bench --bin sortmid-diff -- \
    "$bench_dir/BENCH_sweep.json" "$bench_dir/BENCH_sweep.json" \
    --expect-zero --json "$bench_dir/DIFF_selfdiff.json"
cargo run -q --release --offline -p sortmid-bench --bin bench_check -- \
    "$bench_dir" --against "$repo/BENCH_baseline.json" --tolerance 15 \
    --explain --json "$bench_dir/DIFF_gate.json"

# Scheduler determinism: the work-stealing pool must simulate identical
# cycles at any thread count. Re-run the sweep pinned to 3 workers and
# demand an exactly-zero diff against the default-thread artefact
# (provenance comparison ignores host/build, so the cross-process diff
# keys purely on simulated results).
SORTMID_BENCH_SAMPLES=1 SORTMID_BENCH_WARMUP=0 SORTMID_BENCH_DIR="$threads_dir" \
    cargo run -q --release --offline -p sortmid-bench --bin sweep -- --threads 3
cargo run -q --release --offline -p sortmid-bench --bin sortmid-diff -- \
    "$bench_dir/BENCH_sweep.json" "$threads_dir/BENCH_sweep.json" \
    --expect-zero --json "$threads_dir/DIFF_threads.json"

# The --no-replay escape hatch must produce byte-identical simulated
# cycles: the same baseline gate has to pass on its artefact too. (The
# escape-hatch lanes skip the host profile on purpose — their pipelines
# don't run every phase METRICS_sweep.json is required to cover.)
SORTMID_BENCH_SAMPLES=1 SORTMID_BENCH_WARMUP=0 SORTMID_BENCH_DIR="$noreplay_dir" \
    cargo run -q --release --offline -p sortmid-bench --bin sweep -- --no-replay
cargo run -q --release --offline -p sortmid-bench --bin bench_check -- \
    "$noreplay_dir" --against "$repo/BENCH_baseline.json"

# Same for the --scalar escape hatch: the batched fragment core and the
# per-texel scalar loop must simulate identical cycles.
SORTMID_BENCH_SAMPLES=1 SORTMID_BENCH_WARMUP=0 SORTMID_BENCH_DIR="$scalar_dir" \
    cargo run -q --release --offline -p sortmid-bench --bin sweep -- --scalar --no-replay
cargo run -q --release --offline -p sortmid-bench --bin bench_check -- \
    "$scalar_dir" --against "$repo/BENCH_baseline.json"

# The batched == scalar property lane, in release (the debug run above
# already covered it functionally; release exercises the SWAR probe the
# sweep actually ships).
echo "==> batched-vs-scalar property lane (release)"
cargo test -q --release --offline --test batched

echo "tier1: OK"
