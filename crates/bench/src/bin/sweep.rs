//! Sweep bench: end-to-end wall time of a Figure-5-shaped config grid.
//!
//! Every figure in the paper is a sweep of dozens of machine configurations
//! over one fragment stream. This bench times the whole grid — routing,
//! partitioning and simulation for every config — so the perf trajectory
//! captures sweep throughput, not just single-machine speed.
//!
//! Four series are emitted into `BENCH_sweep.json`:
//!
//! * `grid/shared-plan` — [`run_sweep_with_threads`]: configs grouped by
//!   `(distribution, processors)`, one shared [`RoutingPlan`] per group,
//!   cache-heavy groups priced by stack-distance replay;
//! * `grid/per-config` — the pre-optimization baseline: every config
//!   re-derives per-fragment ownership and re-partitions the stream from
//!   scratch (what `run_sweep` did before routing plans existed);
//! * `grid/trace-replay` — a 10x-denser cache grid (every power-of-two
//!   size from 512 B to 4 MB crossed with associativities 1–128, 100+
//!   configs) on one routing plan, all priced from a single
//!   `LineAccessTrace` replay;
//! * `grid/trace-replay-base` — a small subset of the dense grid on the
//!   same plan, so the difference of the two medians isolates the
//!   *marginal* cost of each extra cache config.
//!
//! The shared-plan/per-config ratio is the plan-reuse speedup; the
//! dense/base difference prices extra cache configs.
//!
//! The artefact also carries four observability extras:
//!
//! * `provenance` — schema version, scene seed, config-grid hash, build
//!   profile and host fingerprint; `sortmid-diff` and the `bench_check`
//!   gate refuse to compare artefacts whose schema/seed/grid disagree;
//! * `cycle_breakdowns` — for every reference-grid config, each node's
//!   cycles attributed to `[setup, busy, bus_stall, starved, idle]`
//!   (summing exactly to that node's finish cycle — `bench_check` enforces
//!   the identity);
//! * `reference` — the `grid/shared-plan` median against the pre-tracing
//!   recorded median, guarding that the `NullSink` event plumbing stays
//!   monomorphized away;
//! * `trace_replay` — the dense lane's config count and the marginal
//!   nanoseconds each additional cache config costs on top of the shared
//!   trace capture.
//!
//! When the default pipeline runs (no escape hatch), the untimed
//! breakdown sweep additionally runs **host-profiled**: the reference grid
//! and the dense replay lane execute as one combined sweep under a
//! [`HostProfiler`], and the merged [`sortmid::HostProfile`] —
//! hierarchical phase spans, per-worker `busy + idle == wall`
//! utilization, scheduler claim/steal counters and queue-depth gauges,
//! per-path run-time histograms, the cost model's predicted-vs-actual
//! error histogram, peak RSS — lands in `METRICS_sweep.json` next to the
//! bench artefact (`bench_check` validates its span-nesting,
//! worker-identity and scheduler-instrumentation invariants). The same
//! combined workload then repeats on the `--static-schedule` chunked
//! path into a second profiler, and its `run-configs`
//! utilization-imbalance is sealed into the artefact as
//! `static_baseline` — the number the work-stealing scheduler is judged
//! against. The timed lanes stay on the [`NullHostSink`] path, so the
//! regression gate keeps pinning the *unprofiled* pipeline.
//!
//! Pass `--no-replay` to force every lane through the direct simulator
//! (the stack-distance escape hatch) and `--scalar` to force direct
//! simulations onto the per-texel scalar loop instead of the batched
//! fragment core; the reports are byte-identical either way, only the
//! wall-clock changes (these modes skip the profile artefact — it
//! documents the default pipeline).

use sortmid::{
    run_sweep_profiled, run_sweep_with_options, CacheKind, Distribution, HostProfiler, Machine,
    MachineConfig, RunReport, SweepGrid, SweepOptions,
};
use sortmid_bench::{run_provenance, stream};
use sortmid_cache::CacheGeometry;
use sortmid_devharness::{Json, Suite};
use sortmid_raster::FragmentStream;
use sortmid_scene::Benchmark;
use std::hint::black_box;

/// `grid/shared-plan` median recorded before the tracing subsystem landed
/// (same grid, same scene scale). The `reference.ratio` field in the
/// artefact is measured/recorded; a drift well past noise means the traced
/// hot path stopped compiling down to the untraced one.
const PRE_TRACING_MEDIAN_NS: u64 = 41_855_505;

/// The reference grid: the shape of the Figure 5/7 sweeps (processor counts
/// × distributions) with the cache and buffer axes the ablations add.
fn reference_grid() -> Vec<MachineConfig> {
    SweepGrid::new()
        .processors([4, 16, 64])
        .distributions([
            Distribution::block(8),
            Distribution::block(16),
            Distribution::block(32),
            Distribution::sli(1),
            Distribution::sli(4),
        ])
        .caches([CacheKind::Perfect, CacheKind::PaperL1])
        .buffers([100, 10_000])
        .build()
}

/// Cache geometries of the dense trace-replay lane: every power-of-two
/// size from 512 B to 4 MB crossed with associativities 1–128 (ways capped
/// so each size holds at least one full set of 64-byte lines) — 102
/// geometries, all priced from one trace replay.
fn dense_geometries() -> Vec<CacheGeometry> {
    let mut out = Vec::new();
    for log_size in 9..=22 {
        let size = 1u32 << log_size;
        for log_ways in 0..=7 {
            let ways = 1u32 << log_ways;
            if ways * 64 <= size {
                out.push(CacheGeometry::new(size, ways, 64).expect("grid geometry is valid"));
            }
        }
    }
    out
}

/// A small subset of [`dense_geometries`] — same plan, same pipeline, a
/// fraction of the configs — so `dense − base` isolates the marginal cost
/// per extra cache config.
fn base_geometries() -> Vec<CacheGeometry> {
    [2048u32, 16_384, 131_072, 1_048_576]
        .iter()
        .flat_map(|&size| {
            [1u32, 4, 16]
                .iter()
                .map(move |&ways| CacheGeometry::new(size, ways, 64).expect("valid"))
        })
        .collect()
}

/// One-plan sweep grid (16 processors, 16-pixel blocks) over the given
/// cache geometries: every config shares the routing plan and the captured
/// line trace, so wall-clock scales with the *evaluation*, not the
/// routing.
fn trace_replay_grid(geometries: &[CacheGeometry]) -> Vec<MachineConfig> {
    SweepGrid::new()
        .processors([16])
        .distributions([Distribution::block(16)])
        .caches(geometries.iter().map(|&g| CacheKind::SetAssoc(g)))
        .build()
}

/// The pre-plan sweep: every config runs [`Machine::run`] independently,
/// re-deriving ownership per fragment, on the same host-thread schedule.
fn run_grid_per_config(
    stream: &FragmentStream,
    configs: &[MachineConfig],
    threads: usize,
) -> Vec<Option<sortmid::RunReport>> {
    let mut out: Vec<Option<sortmid::RunReport>> = vec![None; configs.len()];
    let chunk = configs.len().div_ceil(threads.max(1));
    std::thread::scope(|scope| {
        for (slots, cfgs) in out.chunks_mut(chunk).zip(configs.chunks(chunk)) {
            scope.spawn(move || {
                for (slot, config) in slots.iter_mut().zip(cfgs) {
                    *slot = Some(Machine::new(config.clone()).run(stream));
                }
            });
        }
    });
    out
}

/// Extra sample multiplier for the grid lanes: on an oversubscribed host
/// (more sweep threads than cores) scheduler jitter shows in every
/// lane's wall time, so they all take 5x the suite's samples to keep
/// MAD under 5% of median.
const NOISY_LANE_SAMPLE_SCALE: u32 = 5;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let replay = !args.iter().any(|a| a == "--no-replay");
    let batch = !args.iter().any(|a| a == "--scalar");
    let static_schedule = args.iter().any(|a| a == "--static-schedule");
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .map(|i| {
            args.get(i + 1)
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n > 0)
                .expect("--threads takes a positive integer")
        })
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        });
    let s = stream(Benchmark::Quake);
    let configs = reference_grid();
    let dense = trace_replay_grid(&dense_geometries());
    let base = trace_replay_grid(&base_geometries());
    assert!(
        dense.len() >= 100,
        "the dense lane must price 100+ cache configs per plan, got {}",
        dense.len()
    );
    let options = SweepOptions { threads, replay, batch, static_schedule };
    eprintln!(
        "sweep bench: {} configs (+{} dense-cache), {} fragments, {} host threads, replay {}, \
         fragment core {}, {} schedule",
        configs.len(),
        dense.len(),
        s.fragment_count(),
        threads,
        if replay { "on" } else { "off (--no-replay)" },
        if batch { "batched" } else { "scalar (--scalar)" },
        if static_schedule { "static (--static-schedule)" } else { "work-stealing" },
    );

    let mut suite = Suite::new("sweep");
    let grid_work = s.fragment_count() * configs.len() as u64;
    suite.bench_with_elements_scaled("grid/shared-plan", grid_work, NOISY_LANE_SAMPLE_SCALE, || {
        black_box(run_sweep_with_options(&s, &configs, options))
    });
    suite.bench_with_elements_scaled("grid/per-config", grid_work, NOISY_LANE_SAMPLE_SCALE, || {
        black_box(run_grid_per_config(&s, &configs, threads))
    });
    suite.bench_with_elements_scaled(
        "grid/trace-replay",
        s.fragment_count() * dense.len() as u64,
        NOISY_LANE_SAMPLE_SCALE,
        || black_box(run_sweep_with_options(&s, &dense, options)),
    );
    suite.bench_with_elements_scaled(
        "grid/trace-replay-base",
        s.fragment_count() * base.len() as u64,
        NOISY_LANE_SAMPLE_SCALE,
        || black_box(run_sweep_with_options(&s, &base, options)),
    );

    let results = suite.results();
    let mut plan_median_ns = 0;
    let mut trace_replay = Json::Null;
    if let [plan, direct, dense_r, base_r] = results {
        let speedup = direct.median_ns as f64 / plan.median_ns.max(1) as f64;
        plan_median_ns = plan.median_ns;
        println!(
            "\nsweep grid ({} configs): shared-plan {:.1} ms vs per-config {:.1} ms -> {speedup:.2}x",
            configs.len(),
            plan.median_ns as f64 / 1e6,
            direct.median_ns as f64 / 1e6,
        );
        // Marginal cost of one extra cache config: the dense and base
        // lanes share the plan build and trace capture, so the median
        // difference divided by the config-count difference prices exactly
        // the added evaluation + report synthesis.
        let extra = (dense.len() - base.len()) as f64;
        let marginal = (dense_r.median_ns as f64 - base_r.median_ns as f64) / extra;
        println!(
            "trace-replay ({} configs, one plan): {:.1} ms dense vs {:.1} ms base \
             -> {marginal:.0} ns marginal per extra cache config",
            dense.len(),
            dense_r.median_ns as f64 / 1e6,
            base_r.median_ns as f64 / 1e6,
        );
        trace_replay = Json::obj([
            ("id", Json::str("grid/trace-replay")),
            ("replay", Json::Bool(replay)),
            ("configs", Json::U64(dense.len() as u64)),
            ("base_configs", Json::U64(base.len() as u64)),
            ("median_ns", Json::U64(dense_r.median_ns)),
            ("base_median_ns", Json::U64(base_r.median_ns)),
            ("marginal_ns_per_config", Json::F64(marginal)),
        ]);
    }

    // One more (untimed) sweep to attach per-config cycle breakdowns —
    // the reference grid and the dense cache lane run as ONE combined
    // profiled sweep, so the scheduler faces a heterogeneous mix of
    // captured and replay-path configs (the workload where static chunks
    // carry structurally unequal work). Only the first `configs.len()`
    // reports feed the regression gate's cycle breakdowns: the gate's
    // groups must not absorb the dense lane, and per-config reports are
    // schedule- and path-independent, so the prefix equals a
    // reference-grid-only run.
    let reports = if replay && batch && !static_schedule {
        let mut combined = configs.clone();
        combined.extend(dense.iter().cloned());
        let prof = HostProfiler::new();
        let mut reports = run_sweep_profiled(&s, &combined, options, &prof);
        reports.truncate(configs.len());
        let profile = prof.finish();
        profile
            .verify()
            .expect("host profile structural invariants must hold");

        // The same profiled workload once more on the static-chunk
        // schedule, into its own profiler: its run-configs
        // utilization_imbalance is the baseline the scheduler's number is
        // compared against, sealed into the same artefact.
        let static_prof = HostProfiler::new();
        let static_options = SweepOptions { static_schedule: true, ..options };
        black_box(run_sweep_profiled(&s, &combined, static_options, &static_prof));
        let static_profile = static_prof.finish();
        static_profile
            .verify()
            .expect("static-baseline profile structural invariants must hold");

        let dir = std::env::var_os("SORTMID_BENCH_DIR")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| std::path::PathBuf::from("."));
        std::fs::create_dir_all(&dir)
            .unwrap_or_else(|e| panic!("create bench dir {}: {e}", dir.display()));
        let path = dir.join("METRICS_sweep.json");
        let mut doc = profile.to_json("sweep");
        doc.set(
            "provenance",
            run_provenance(Benchmark::Quake, &configs).to_json(),
        );
        doc.set(
            "static_baseline",
            Json::obj([
                (
                    "utilization_imbalance",
                    Json::obj(
                        static_profile
                            .utilization_imbalance()
                            .into_iter()
                            .map(|(lane, v)| (lane, Json::F64(v))),
                    ),
                ),
                (
                    // The chunked schedule's per-worker run-configs rows,
                    // so the before/after utilization table in
                    // EXPERIMENTS.md reproduces from the artefact alone.
                    "workers",
                    Json::arr(
                        static_profile
                            .workers
                            .iter()
                            .filter(|w| w.lane == "run-configs")
                            .map(|w| {
                                Json::obj([
                                    ("worker", Json::U64(w.worker as u64)),
                                    ("wall_ns", Json::U64(w.wall_ns)),
                                    ("busy_ns", Json::U64(w.busy_ns)),
                                    ("items", Json::U64(w.items)),
                                ])
                            }),
                    ),
                ),
            ]),
        );
        for (lane, ws_v) in profile.utilization_imbalance() {
            if lane == "run-configs" {
                let static_v = static_profile.utilization_imbalance()[lane];
                eprintln!(
                    "run-configs utilization imbalance: {ws_v:.3} work-stealing vs {static_v:.3} \
                     static-chunk"
                );
            }
        }
        std::fs::write(&path, doc.render())
            .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        eprintln!("wrote {}", path.display());
        eprint!("{}", profile.summary());
        reports
    } else {
        run_sweep_with_options(&s, &configs, options)
    };
    suite.finish_with([
        (
            // Stamped on every lane, escape hatches included: the grid and
            // scene are identical, so self-diffs and the gate stay valid.
            "provenance".to_string(),
            run_provenance(Benchmark::Quake, &configs).to_json(),
        ),
        (
            "cycle_breakdowns".to_string(),
            Json::arr(reports.iter().map(config_breakdown)),
        ),
        (
            "reference".to_string(),
            Json::obj([
                ("id", Json::str("grid/shared-plan")),
                ("pre_pr_median_ns", Json::U64(PRE_TRACING_MEDIAN_NS)),
                ("median_ns", Json::U64(plan_median_ns)),
                (
                    "ratio",
                    Json::F64(plan_median_ns as f64 / PRE_TRACING_MEDIAN_NS as f64),
                ),
            ]),
        ),
        ("trace_replay".to_string(), trace_replay),
    ]);
}

/// One config's entry in `cycle_breakdowns`: the config summary, the
/// machine time, and per node the compact
/// `[setup, busy, bus_stall, starved, idle, finish]` array (the first five
/// sum to the sixth).
fn config_breakdown(report: &RunReport) -> Json {
    Json::obj([
        ("config", Json::str(report.summary())),
        ("total_cycles", Json::U64(report.total_cycles())),
        (
            "nodes",
            Json::arr(report.nodes().iter().map(|n| {
                let b = n.cycle_breakdown();
                b.verify(n.finish).expect("cycle identity must hold");
                let mut row: Vec<Json> = b.as_array().iter().map(|&c| Json::U64(c)).collect();
                row.push(Json::U64(n.finish));
                Json::Arr(row)
            })),
        ),
    ])
}
