//! Texture-cache simulation for the `sortmid` machine.
//!
//! The paper equips every texture-mapping node with a **16 KB, 4-way
//! set-associative cache with 64-byte lines** (one 4×4 texel block per
//! line), the configuration Hakura & Gupta showed to be effective, and
//! treats cache efficiency purely as *bandwidth reduction*: prefetching
//! hides latency, so what matters is how many lines are fetched from the
//! external texture memory per fragment drawn.
//!
//! This crate provides the cache models the machine plugs in:
//!
//! * [`geometry::CacheGeometry`] — size/associativity/line-size with
//!   validation.
//! * [`set_assoc::SetAssocCache`] — the real LRU cache simulator.
//! * [`perfect::PerfectCache`] — the paper's "perfect cache" (always hits;
//!   not even compulsory misses), used to isolate load balancing.
//! * [`classify::ClassifyingCache`] — wraps the set-associative simulator
//!   with compulsory/capacity/conflict miss classification.
//! * [`hierarchy::TwoLevelCache`] — an optional L2 between the L1 and
//!   texture memory (the paper's future-work question).
//! * [`stats::CacheStats`] — hit/miss accounting and the texel-to-fragment
//!   arithmetic.
//! * [`trace::TracingCache`] / [`trace::LineAccessTrace`] — capture the
//!   geometry-independent access sequence once per routing plan.
//! * [`stackdist::evaluate_trace`] — Mattson stack-distance replay that
//!   prices every (size × associativity) geometry of a sweep grid from one
//!   captured trace.
//!
//! All models operate on **line addresses** (global texel index / 16); the
//! rasterizer hands the machine 8 texel addresses per fragment and the node
//! probes the cache once per texel access, exactly like the 8-reads-per-cycle
//! port of the paper's engine.
//!
//! # Examples
//!
//! ```
//! use sortmid_cache::{CacheGeometry, LineCache, SetAssocCache};
//!
//! let mut cache = SetAssocCache::new(CacheGeometry::paper_l1());
//! assert!(!cache.access_line(42)); // cold miss
//! assert!(cache.access_line(42)); // now resident
//! assert_eq!(cache.stats().misses(), 1);
//! ```

pub mod classify;
pub mod dispatch;
pub mod geometry;
pub mod hierarchy;
pub mod perfect;
pub mod set_assoc;
pub mod stackdist;
pub mod stats;
pub mod trace;
pub mod victim;

pub use classify::ClassifyingCache;
pub use dispatch::AnyCache;
pub use geometry::{CacheGeometry, CacheGeometryError};
pub use hierarchy::TwoLevelCache;
pub use perfect::PerfectCache;
pub use set_assoc::SetAssocCache;
pub use stackdist::{
    evaluate_trace, evaluate_trace_auto, evaluate_trace_auto_profiled, evaluate_trace_direct,
    evaluation_cost_weight, GeometryRequest, MattsonProfile, TraceEvaluation,
    STACKDIST_MIN_REQUESTS,
};
pub use stats::{CacheStats, MissBreakdown, MissIdentityError};
pub use trace::{LineAccessTrace, TracingCache};
pub use victim::VictimCache;

use sortmid_observe::{MissClass, MissClassCounts};

/// A line-granular cache simulator.
///
/// `access_line` returns `true` on a hit. Misses are assumed to allocate
/// (fetch the full line); eviction policy is up to the implementation.
///
/// This trait is object-safe: the machine stores per-node caches as
/// `Box<dyn LineCache>`.
pub trait LineCache {
    /// Simulates one access to `line`; returns `true` on a hit.
    fn access_line(&mut self, line: u32) -> bool;

    /// [`access_line`](Self::access_line) that additionally reports which
    /// three-C class the miss falls in, for models that classify
    /// ([`ClassifyingCache`] does; the default forwards to `access_line`
    /// and reports `None`). The hit/miss result and every statistics side
    /// effect are identical to `access_line` — classification only
    /// observes, which is what keeps traced machine runs byte-identical to
    /// untraced ones.
    fn access_line_classified(&mut self, line: u32) -> (bool, Option<MissClass>) {
        (self.access_line(line), None)
    }

    /// Resolves a whole *lane* of line addresses — one fragment's texel
    /// footprint — in one call. Miss lines are written to the front of
    /// `miss_out` **in access order** and the miss count is returned;
    /// classified misses (when the model classifies) are accumulated into
    /// `classes`.
    ///
    /// The contract is strict equivalence with the scalar loop: after the
    /// call, residency, eviction order, statistics, breakdowns and the
    /// reported miss lines are byte-identical to calling
    /// [`access_line_classified`](Self::access_line_classified) once per
    /// element of `lane`. The default implementation *is* that loop;
    /// models override it only to go faster (batched compares, run
    /// collapsing), never to change observable behaviour.
    ///
    /// # Panics
    ///
    /// May panic if `miss_out.len() < lane.len()` (every probe can miss).
    #[inline]
    fn access_lane(
        &mut self,
        lane: &[u32],
        miss_out: &mut [u32],
        classes: &mut MissClassCounts,
    ) -> usize {
        let mut misses = 0;
        for &line in lane {
            let (hit, class) = self.access_line_classified(line);
            if !hit {
                miss_out[misses] = line;
                misses += 1;
                if let Some(class) = class {
                    classes.add(class);
                }
            }
        }
        misses
    }

    /// Accumulated statistics.
    fn stats(&self) -> &CacheStats;

    /// Lines fetched from *external* texture memory so far (for a
    /// single-level cache this equals `stats().misses()`).
    fn external_fetches(&self) -> u64 {
        self.stats().misses()
    }

    /// Per-kind miss decomposition, when the model tracks it
    /// ([`ClassifyingCache`] does; the others return `None`).
    fn breakdown(&self) -> Option<stats::MissBreakdown> {
        None
    }

    /// Clears contents and statistics.
    fn reset(&mut self);
}
