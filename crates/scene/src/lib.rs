//! Benchmark scenes for the `sortmid` simulator, calibrated to the paper.
//!
//! The paper drives its simulations with triangle traces captured from an
//! instrumented Mesa library replaying Quake/Quake2/Half-Life demos plus two
//! microbenchmarks (`room3`, `teapot.full`). Those traces are not
//! recoverable, so this crate builds the closest synthetic equivalent: a
//! **deterministic procedural scene generator** with one preset per row of
//! the paper's Table 1, calibrated to the published per-scene statistics —
//! screen size, triangle count, depth complexity, texture count, texture
//! megabytes and the unique texel-to-fragment ratio.
//!
//! What matters to the experiments is preserved by construction:
//!
//! * **clustered depth complexity** — objects concentrate around hotspots,
//!   so big tiles see very uneven work (the Figure 5 effect);
//! * **triangle size distribution** — a mix of small foreground triangles
//!   (that straddle tile boundaries and pay the 25-cycle setup floor) and
//!   large background ones;
//! * **texture reuse statistics** — per-scene texel density, texture sizes
//!   and Zipf-distributed texture popularity reproduce the published unique
//!   texel/fragment ratios, including the paper's magnification correction
//!   (`massive11255` ×2, `32massive11255` ×32).
//!
//! # Examples
//!
//! ```
//! use sortmid_scene::{Benchmark, SceneBuilder};
//!
//! let scene = SceneBuilder::benchmark(Benchmark::TeapotFull).scale(0.25).build();
//! let stream = scene.rasterize();
//! assert!(stream.fragment_count() > 0);
//! ```

pub mod animate;
pub mod config;
pub mod generate;
pub mod io;
pub mod presets;
pub mod render;
pub mod stats;

pub use config::{SceneBuilder, SceneConfig};
pub use io::{read_scene, write_scene, SceneIoError};
pub use generate::Scene;
pub use presets::Benchmark;
pub use stats::SceneStats;
