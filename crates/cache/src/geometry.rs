//! Cache geometry (size, associativity, line size) with validation.

use std::fmt;

/// Geometry of a set-associative cache.
///
/// # Examples
///
/// ```
/// use sortmid_cache::CacheGeometry;
///
/// let g = CacheGeometry::paper_l1();
/// assert_eq!(g.size_bytes(), 16 * 1024);
/// assert_eq!(g.ways(), 4);
/// assert_eq!(g.sets(), 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    size_bytes: u32,
    ways: u32,
    line_bytes: u32,
}

/// Errors from [`CacheGeometry::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheGeometryError {
    /// A parameter was zero or not a power of two.
    NotPowerOfTwo {
        /// Name of the offending parameter.
        field: &'static str,
        /// The offending value.
        value: u32,
    },
    /// `size / (ways * line)` came out below one set.
    TooSmall,
}

impl fmt::Display for CacheGeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheGeometryError::NotPowerOfTwo { field, value } => {
                write!(f, "cache {field} = {value} is not a positive power of two")
            }
            CacheGeometryError::TooSmall => write!(f, "cache smaller than one set"),
        }
    }
}

impl std::error::Error for CacheGeometryError {}

impl CacheGeometry {
    /// Creates a geometry.
    ///
    /// # Errors
    ///
    /// All parameters must be positive powers of two and the size must hold
    /// at least one full set (`ways * line_bytes`).
    pub fn new(size_bytes: u32, ways: u32, line_bytes: u32) -> Result<Self, CacheGeometryError> {
        for (field, value) in [
            ("size_bytes", size_bytes),
            ("ways", ways),
            ("line_bytes", line_bytes),
        ] {
            if value == 0 || !value.is_power_of_two() {
                return Err(CacheGeometryError::NotPowerOfTwo { field, value });
            }
        }
        if size_bytes < ways * line_bytes {
            return Err(CacheGeometryError::TooSmall);
        }
        Ok(CacheGeometry {
            size_bytes,
            ways,
            line_bytes,
        })
    }

    /// The paper's L1: 16 KB, 4-way, 64-byte lines.
    pub fn paper_l1() -> Self {
        CacheGeometry {
            size_bytes: 16 * 1024,
            ways: 4,
            line_bytes: 64,
        }
    }

    /// A Cox-style L2: 2 MB, 8-way, 64-byte lines.
    pub fn paper_l2() -> Self {
        CacheGeometry {
            size_bytes: 2 * 1024 * 1024,
            ways: 8,
            line_bytes: 64,
        }
    }

    /// Total capacity in bytes.
    pub fn size_bytes(&self) -> u32 {
        self.size_bytes
    }

    /// Associativity.
    pub fn ways(&self) -> u32 {
        self.ways
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u32 {
        self.line_bytes
    }

    /// Number of sets.
    pub fn sets(&self) -> u32 {
        self.size_bytes / (self.ways * self.line_bytes)
    }

    /// Total number of lines.
    pub fn total_lines(&self) -> u32 {
        self.size_bytes / self.line_bytes
    }

    /// The set index of a line address.
    #[inline]
    pub fn set_of(&self, line: u32) -> u32 {
        line & (self.sets() - 1)
    }
}

impl fmt::Display for CacheGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}KB/{}-way/{}B",
            self.size_bytes / 1024,
            self.ways,
            self.line_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_l1_dimensions() {
        let g = CacheGeometry::paper_l1();
        assert_eq!(g.sets(), 64);
        assert_eq!(g.total_lines(), 256);
        assert_eq!(g.line_bytes(), 64);
        assert_eq!(g.to_string(), "16KB/4-way/64B");
    }

    #[test]
    fn paper_l2_dimensions() {
        let g = CacheGeometry::paper_l2();
        assert_eq!(g.total_lines(), 32 * 1024);
        assert_eq!(g.ways(), 8);
    }

    #[test]
    fn rejects_non_pow2() {
        assert!(matches!(
            CacheGeometry::new(1000, 4, 64),
            Err(CacheGeometryError::NotPowerOfTwo { field: "size_bytes", .. })
        ));
        assert!(matches!(
            CacheGeometry::new(1024, 3, 64),
            Err(CacheGeometryError::NotPowerOfTwo { field: "ways", .. })
        ));
        assert!(matches!(
            CacheGeometry::new(1024, 4, 0),
            Err(CacheGeometryError::NotPowerOfTwo { field: "line_bytes", .. })
        ));
    }

    #[test]
    fn rejects_too_small() {
        assert_eq!(CacheGeometry::new(128, 4, 64), Err(CacheGeometryError::TooSmall));
    }

    #[test]
    fn set_mapping_is_modular() {
        let g = CacheGeometry::paper_l1();
        assert_eq!(g.set_of(0), 0);
        assert_eq!(g.set_of(63), 63);
        assert_eq!(g.set_of(64), 0);
        assert_eq!(g.set_of(130), 2);
    }

    #[test]
    fn direct_mapped_is_allowed() {
        let g = CacheGeometry::new(4096, 1, 64).unwrap();
        assert_eq!(g.sets(), 64);
        assert_eq!(g.total_lines(), 64);
    }
}
