//! In-repo development harness: property testing and benchmarking with no
//! external dependencies.
//!
//! The workspace must build and test **fully offline** (the tier-1 gate is
//! `cargo build --release && cargo test -q` with no registry access), so the
//! usual crates-io tools — `proptest` for randomized properties, `criterion`
//! for benches — are off the table. This crate re-implements the slices of
//! both that the simulator actually uses:
//!
//! * [`rng`] — splitmix64 and xoshiro256** generators (deterministic,
//!   seedable, platform-independent);
//! * [`prop`] — a property-test runner over a recorded *choice tape*, with
//!   configurable case counts, seed reporting on failure, and
//!   shrink-towards-zero minimisation of counterexamples;
//! * [`bench`] — a criterion-style bench suite (warmup, N timed iterations,
//!   median/p10/p90, optional throughput) that writes machine-readable
//!   `BENCH_<name>.json` files so the perf trajectory is tracked across PRs;
//! * [`json`] — the minimal JSON document model the bench writer emits.
//!
//! # Reproducing a property failure
//!
//! A falsified property panics with the base seed of the run:
//!
//! ```text
//! property 'capacity_and_mru' falsified at case 17/96 (base seed 0x5eed5eed5eed5eed)
//!   counterexample: [4, 4, 12]
//!   error: residency 9 exceeds capacity
//!   replay: DEVHARNESS_SEED=0x5eed5eed5eed5eed cargo test -q <test name>
//! ```
//!
//! Setting `DEVHARNESS_SEED` replays the identical case sequence, so the
//! failure reproduces before any code change.

pub mod bench;
pub mod json;
pub mod prop;
pub mod rng;

pub use bench::{BenchConfig, BenchResult, Suite};
pub use json::Json;
pub use prop::{check, Config, Gen};
pub use rng::{SplitMix64, Xoshiro256};
