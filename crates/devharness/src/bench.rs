//! Criterion-style bench runner with machine-readable output.
//!
//! A [`Suite`] groups named benchmarks; each benchmark runs a warmup, then N
//! timed iterations, and reports median/min/MAD plus the p10/p50/p90/p99
//! percentile ladder of wall time, with optional throughput. [`Suite::finish`] writes everything to `BENCH_<name>.json`
//! (in `SORTMID_BENCH_DIR`, default the current directory) so the perf
//! trajectory can be compared across PRs, and prints a human-readable table.
//!
//! Environment knobs:
//!
//! * `SORTMID_BENCH_SAMPLES` — timed iterations per benchmark (default 10);
//! * `SORTMID_BENCH_WARMUP` — warmup iterations (default 2);
//! * `SORTMID_BENCH_DIR` — output directory for `BENCH_*.json`.

use crate::json::Json;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

/// Per-suite run parameters.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Untimed warmup iterations before sampling.
    pub warmup_iters: u32,
    /// Timed iterations per benchmark.
    pub samples: u32,
}

impl BenchConfig {
    /// Defaults (2 warmup, 10 samples) overridden by the environment.
    pub fn from_env() -> Self {
        let get = |key: &str, default: u32| {
            std::env::var(key)
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .filter(|&v| v > 0)
                .unwrap_or(default)
        };
        BenchConfig {
            warmup_iters: get("SORTMID_BENCH_WARMUP", 2),
            samples: get("SORTMID_BENCH_SAMPLES", 10),
        }
    }
}

/// One benchmark's measurements, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark id within the suite (e.g. `"imbalance/block-16/64p"`).
    pub id: String,
    /// Raw per-iteration wall times, in sample order.
    pub samples_ns: Vec<u64>,
    /// Median of `samples_ns`.
    pub median_ns: u64,
    /// 10th percentile (nearest-rank).
    pub p10_ns: u64,
    /// 50th percentile (nearest-rank) — equals `median_ns`, kept as an
    /// explicit field so tooling can read the p50/p90/p99 triple uniformly.
    pub p50_ns: u64,
    /// 90th percentile (nearest-rank).
    pub p90_ns: u64,
    /// 99th percentile (nearest-rank) — the tail-latency figure; with
    /// fewer than 100 samples this is the slowest sample.
    pub p99_ns: u64,
    /// Fastest sample — the least-perturbed iteration on a noisy host.
    pub min_ns: u64,
    /// Median absolute deviation from the median: a robust spread measure
    /// (outlier samples cannot inflate it the way a standard deviation
    /// would).
    pub mad_ns: u64,
    /// Elements processed per iteration, when declared.
    pub elements: Option<u64>,
}

impl BenchResult {
    /// Median throughput in elements per second, when declared.
    ///
    /// For fragment-processing benches this is the *fragments/sec* figure
    /// the perf trajectory tracks.
    pub fn throughput_per_sec(&self) -> Option<f64> {
        let elements = self.elements?;
        if self.median_ns == 0 {
            return None;
        }
        Some(elements as f64 * 1e9 / self.median_ns as f64)
    }

    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("id".to_string(), Json::str(self.id.clone())),
            ("median_ns".to_string(), Json::U64(self.median_ns)),
            ("p10_ns".to_string(), Json::U64(self.p10_ns)),
            ("p50_ns".to_string(), Json::U64(self.p50_ns)),
            ("p90_ns".to_string(), Json::U64(self.p90_ns)),
            ("p99_ns".to_string(), Json::U64(self.p99_ns)),
            ("min_ns".to_string(), Json::U64(self.min_ns)),
            ("mad_ns".to_string(), Json::U64(self.mad_ns)),
            (
                "samples_ns".to_string(),
                Json::arr(self.samples_ns.iter().map(|&ns| Json::U64(ns))),
            ),
        ];
        if let Some(elements) = self.elements {
            fields.push(("elements".to_string(), Json::U64(elements)));
        }
        if let Some(tput) = self.throughput_per_sec() {
            fields.push(("throughput_per_sec".to_string(), Json::F64(tput)));
        }
        Json::Obj(fields)
    }
}

/// Nearest-rank percentile of an unsorted sample set.
fn percentile(sorted: &[u64], pct: f64) -> u64 {
    debug_assert!(!sorted.is_empty());
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// A named collection of benchmarks producing one `BENCH_<name>.json`.
///
/// # Examples
///
/// ```
/// use sortmid_devharness::bench::Suite;
///
/// let mut suite = Suite::new("doc-example");
/// suite.bench("sum-1k", || (0..1000u64).sum::<u64>());
/// let result = suite.results().last().unwrap();
/// assert!(result.median_ns > 0 || result.samples_ns.iter().all(|&s| s == 0));
/// ```
#[derive(Debug)]
pub struct Suite {
    name: String,
    config: BenchConfig,
    results: Vec<BenchResult>,
}

impl Suite {
    /// A suite named `name` with [`BenchConfig::from_env`] parameters.
    pub fn new(name: &str) -> Self {
        Suite {
            name: name.to_string(),
            config: BenchConfig::from_env(),
            results: Vec::new(),
        }
    }

    /// A suite with explicit parameters (tests use this).
    pub fn with_config(name: &str, config: BenchConfig) -> Self {
        Suite {
            name: name.to_string(),
            config,
            results: Vec::new(),
        }
    }

    /// Results measured so far, in registration order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Measures `f` (warmup, then N timed iterations) under `id`.
    pub fn bench<R>(&mut self, id: &str, f: impl FnMut() -> R) -> &BenchResult {
        self.run(id, None, 1, f)
    }

    /// Like [`Suite::bench`] with a declared per-iteration element count,
    /// enabling the throughput (elements/sec) column.
    pub fn bench_with_elements<R>(
        &mut self,
        id: &str,
        elements: u64,
        f: impl FnMut() -> R,
    ) -> &BenchResult {
        self.run(id, Some(elements), 1, f)
    }

    /// Like [`Suite::bench_with_elements`] with the suite's sample count
    /// multiplied by `scale` (0 behaves as 1). For lanes noisier than the
    /// rest of the suite: extra samples tighten their median/MAD estimate
    /// without slowing every other lane down.
    pub fn bench_with_elements_scaled<R>(
        &mut self,
        id: &str,
        elements: u64,
        scale: u32,
        f: impl FnMut() -> R,
    ) -> &BenchResult {
        self.run(id, Some(elements), scale.max(1), f)
    }

    fn run<R>(
        &mut self,
        id: &str,
        elements: Option<u64>,
        scale: u32,
        mut f: impl FnMut() -> R,
    ) -> &BenchResult {
        for _ in 0..self.config.warmup_iters {
            black_box(f());
        }
        let samples = self.config.samples.saturating_mul(scale);
        let mut samples_ns = Vec::with_capacity(samples as usize);
        for _ in 0..samples {
            let start = Instant::now();
            black_box(f());
            samples_ns.push(start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        }
        let mut sorted = samples_ns.clone();
        sorted.sort_unstable();
        let median_ns = percentile(&sorted, 50.0);
        let mut deviations: Vec<u64> = sorted.iter().map(|&s| s.abs_diff(median_ns)).collect();
        deviations.sort_unstable();
        let result = BenchResult {
            id: id.to_string(),
            median_ns,
            p10_ns: percentile(&sorted, 10.0),
            p50_ns: median_ns,
            p90_ns: percentile(&sorted, 90.0),
            p99_ns: percentile(&sorted, 99.0),
            min_ns: sorted[0],
            mad_ns: percentile(&deviations, 50.0),
            samples_ns,
            elements,
        };
        eprintln!(
            "bench {}/{id}: median {} (min {}, mad {}, p10 {}, p90 {}, p99 {}){}",
            self.name,
            fmt_ns(result.median_ns),
            fmt_ns(result.min_ns),
            fmt_ns(result.mad_ns),
            fmt_ns(result.p10_ns),
            fmt_ns(result.p90_ns),
            fmt_ns(result.p99_ns),
            result
                .throughput_per_sec()
                .map(|t| format!(", {:.3e} elem/s", t))
                .unwrap_or_default(),
        );
        self.results.push(result);
        self.results.last().expect("just pushed")
    }

    /// Serialises the suite to a [`Json`] document (what `finish` writes).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("suite", Json::str(self.name.clone())),
            ("warmup_iters", Json::U64(self.config.warmup_iters as u64)),
            ("samples", Json::U64(self.config.samples as u64)),
            (
                "benchmarks",
                Json::arr(self.results.iter().map(BenchResult::to_json)),
            ),
        ])
    }

    /// Writes `BENCH_<name>.json` and returns its path.
    ///
    /// The output directory is `SORTMID_BENCH_DIR` when set, else the
    /// current directory.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written — a bench run whose artefact is
    /// silently missing would poison the perf trajectory.
    pub fn finish(self) -> PathBuf {
        self.finish_with([])
    }

    /// Like [`finish`](Self::finish) with extra top-level fields appended
    /// to the document — how callers attach run-specific context (e.g. the
    /// sweep's per-config cycle breakdowns, or a comparison against a
    /// recorded reference median) to the same artefact.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written, or if an extra field reuses a
    /// key the suite already writes (`suite`, `warmup_iters`, `samples`,
    /// `benchmarks`).
    pub fn finish_with(self, extra: impl IntoIterator<Item = (String, Json)>) -> PathBuf {
        let dir = std::env::var_os("SORTMID_BENCH_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."));
        std::fs::create_dir_all(&dir)
            .unwrap_or_else(|e| panic!("create bench dir {}: {e}", dir.display()));
        let path = dir.join(format!("BENCH_{}.json", self.name));
        let mut doc = self.to_json();
        let Json::Obj(fields) = &mut doc else {
            unreachable!("to_json always returns an object");
        };
        for (key, value) in extra {
            assert!(
                !fields.iter().any(|(k, _)| *k == key),
                "extra bench field {key:?} collides with a suite field"
            );
            fields.push((key, value));
        }
        let body = doc.render();
        std::fs::write(&path, body.as_bytes())
            .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        eprintln!("wrote {}", path.display());
        path
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_config() -> BenchConfig {
        BenchConfig {
            warmup_iters: 1,
            samples: 5,
        }
    }

    #[test]
    fn measures_and_orders_percentiles() {
        let mut suite = Suite::with_config("unit", quiet_config());
        let r = suite.bench("spin", || {
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                acc = acc.wrapping_add(black_box(i));
            }
            acc
        });
        assert_eq!(r.samples_ns.len(), 5);
        assert!(r.min_ns <= r.p10_ns);
        assert!(r.p10_ns <= r.median_ns);
        assert_eq!(r.p50_ns, r.median_ns);
        assert!(r.median_ns <= r.p90_ns);
        assert!(r.p90_ns <= r.p99_ns);
        assert_eq!(r.p99_ns, *r.samples_ns.iter().max().unwrap(), "p99 of 5 samples is the max");
        assert!(r.mad_ns <= r.p90_ns.saturating_sub(r.p10_ns).max(r.median_ns));
    }

    #[test]
    fn min_and_mad_are_robust_to_one_outlier() {
        // Hand-check the spread stats on a known sample set: the single
        // outlier moves neither the median nor the MAD.
        let sorted = [10u64, 11, 12, 13, 1000];
        let median = percentile(&sorted, 50.0);
        assert_eq!(median, 12);
        let mut dev: Vec<u64> = sorted.iter().map(|&s| s.abs_diff(median)).collect();
        dev.sort_unstable();
        assert_eq!(percentile(&dev, 50.0), 1);
        assert_eq!(sorted[0], 10);
    }

    #[test]
    fn scaled_lanes_take_multiplied_samples() {
        let mut suite = Suite::with_config("scaled", quiet_config());
        let r = suite.bench_with_elements_scaled("noisy", 10, 3, || 1 + 1);
        assert_eq!(r.samples_ns.len(), 15, "scale multiplies the suite sample count");
        let r = suite.bench_with_elements_scaled("degenerate", 10, 0, || 1 + 1);
        assert_eq!(r.samples_ns.len(), 5, "scale 0 behaves as 1");
        let r = suite.bench_with_elements("plain", 10, || 1 + 1);
        assert_eq!(r.samples_ns.len(), 5, "unscaled lanes are untouched");
    }

    #[test]
    fn throughput_uses_median() {
        let r = BenchResult {
            id: "x".into(),
            samples_ns: vec![2_000_000; 3],
            median_ns: 2_000_000,
            p10_ns: 2_000_000,
            p50_ns: 2_000_000,
            p90_ns: 2_000_000,
            p99_ns: 2_000_000,
            min_ns: 2_000_000,
            mad_ns: 0,
            elements: Some(1_000),
        };
        let tput = r.throughput_per_sec().unwrap();
        assert!((tput - 500_000.0).abs() < 1e-6, "{tput}");
    }

    #[test]
    fn percentile_nearest_rank() {
        let s = [10, 20, 30, 40, 50];
        assert_eq!(percentile(&s, 10.0), 10);
        assert_eq!(percentile(&s, 50.0), 30);
        assert_eq!(percentile(&s, 90.0), 50);
        assert_eq!(percentile(&s, 99.0), 50);
        assert_eq!(percentile(&[7], 50.0), 7);
    }

    #[test]
    fn json_document_has_the_contract_fields() {
        let mut suite = Suite::with_config("contract", quiet_config());
        suite.bench_with_elements("t", 100, || 1 + 1);
        let doc = suite.to_json().render();
        for key in [
            "\"suite\":\"contract\"",
            "\"samples\":5",
            "\"benchmarks\":[",
            "\"median_ns\":",
            "\"p10_ns\":",
            "\"p50_ns\":",
            "\"p90_ns\":",
            "\"p99_ns\":",
            "\"min_ns\":",
            "\"mad_ns\":",
            "\"elements\":100",
        ] {
            assert!(doc.contains(key), "missing {key} in {doc}");
        }
    }

    #[test]
    fn finish_writes_the_artifact() {
        let dir = std::env::temp_dir().join(format!("sortmid-bench-test-{}", std::process::id()));
        // The env var is process-global; this is the only test that sets it.
        std::env::set_var("SORTMID_BENCH_DIR", &dir);
        let mut suite = Suite::with_config("write-test", quiet_config());
        suite.bench("noop", || ());
        let path = suite.finish_with([("reference".to_string(), Json::str("pre-pr"))]);
        std::env::remove_var("SORTMID_BENCH_DIR");
        let body = std::fs::read_to_string(&path).expect("artifact readable");
        assert!(path.ends_with("BENCH_write-test.json"), "{}", path.display());
        assert!(body.starts_with('{') && body.ends_with('}'));
        assert!(body.contains("\"reference\":\"pre-pr\""), "{body}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "collides")]
    fn finish_with_rejects_duplicate_keys() {
        let suite = Suite::with_config("dup", quiet_config());
        suite.finish_with([("suite".to_string(), Json::str("dup"))]);
    }
}
