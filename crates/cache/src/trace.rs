//! Capturing line-access traces for replay-based cache evaluation.
//!
//! Which cache lines a node touches — and in what order — depends only on
//! the fragment stream and the routing, never on the cache geometry: the
//! node probes its cache once per texel read whatever the cache answers.
//! A [`TracingCache`] plugged into the probe loop therefore records the
//! exact access sequence any set-associative geometry would see, and a
//! [`LineAccessTrace`] bundles those per-node sequences so the
//! [stack-distance evaluator](crate::stackdist) can price every geometry
//! of a sweep grid from one capture.

use crate::stats::CacheStats;
use crate::LineCache;

/// A pseudo-cache that records the line address of every access.
///
/// Plugs into the same probe loop as the real models (it implements
/// [`LineCache`]) but holds no contents: every access "misses" and is
/// appended to the captured sequence. Only the recorded addresses are
/// meaningful — the hit/miss answer exists to satisfy the trait.
///
/// # Examples
///
/// ```
/// use sortmid_cache::{LineCache, TracingCache};
///
/// let mut t = TracingCache::new();
/// t.access_line(7);
/// t.access_line(7);
/// t.access_line(9);
/// assert_eq!(t.lines(), &[7, 7, 9]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TracingCache {
    lines: Vec<u32>,
    stats: CacheStats,
}

impl TracingCache {
    /// Creates an empty capture.
    pub fn new() -> Self {
        TracingCache::default()
    }

    /// The captured access sequence so far.
    pub fn lines(&self) -> &[u32] {
        &self.lines
    }

    /// Consumes the capture, returning the access sequence.
    pub fn into_lines(self) -> Vec<u32> {
        self.lines
    }
}

impl LineCache for TracingCache {
    fn access_line(&mut self, line: u32) -> bool {
        self.lines.push(line);
        self.stats.record(false);
        false
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn reset(&mut self) {
        self.lines.clear();
        self.stats.reset();
    }
}

/// The deterministic sequence of (node, texture-line) accesses one routing
/// plan produces, grouped per node in processing order.
///
/// Accesses come in fixed-size runs (`accesses_per_fragment`, 8 for the
/// trilinear engine), so fragment boundaries are implicit — the evaluator
/// uses them to reconstruct per-fragment miss counts for timing replay.
#[derive(Debug, Clone)]
pub struct LineAccessTrace {
    nodes: Vec<Vec<u32>>,
    accesses_per_fragment: u32,
}

impl LineAccessTrace {
    /// Builds a trace from per-node access sequences.
    ///
    /// # Panics
    ///
    /// Panics if `accesses_per_fragment` is zero or any node's sequence
    /// length is not a multiple of it.
    pub fn from_nodes(nodes: Vec<Vec<u32>>, accesses_per_fragment: u32) -> Self {
        assert!(accesses_per_fragment > 0, "fragments make at least one access");
        for (i, seq) in nodes.iter().enumerate() {
            assert_eq!(
                seq.len() % accesses_per_fragment as usize,
                0,
                "node {i} trace length {} is not whole fragments",
                seq.len()
            );
        }
        LineAccessTrace {
            nodes,
            accesses_per_fragment,
        }
    }

    /// Number of nodes in the trace.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// One node's access sequence, in processing order.
    pub fn node_lines(&self, node: usize) -> &[u32] {
        &self.nodes[node]
    }

    /// Accesses per fragment (the texel reads of one pixel).
    pub fn accesses_per_fragment(&self) -> u32 {
        self.accesses_per_fragment
    }

    /// Fragments one node processes.
    pub fn fragment_count(&self, node: usize) -> usize {
        self.nodes[node].len() / self.accesses_per_fragment as usize
    }

    /// Total accesses across all nodes.
    pub fn total_accesses(&self) -> u64 {
        self.nodes.iter().map(|n| n.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracing_cache_records_in_order() {
        let mut t = TracingCache::new();
        for line in [3, 1, 4, 1, 5] {
            assert!(!t.access_line(line), "capture always reports a miss");
        }
        assert_eq!(t.lines(), &[3, 1, 4, 1, 5]);
        assert_eq!(t.stats().accesses(), 5);
        t.reset();
        assert!(t.lines().is_empty());
        assert_eq!(t.stats().accesses(), 0);
    }

    #[test]
    fn trace_counts_fragments() {
        let trace = LineAccessTrace::from_nodes(vec![vec![1, 2, 3, 4], vec![]], 2);
        assert_eq!(trace.node_count(), 2);
        assert_eq!(trace.fragment_count(0), 2);
        assert_eq!(trace.fragment_count(1), 0);
        assert_eq!(trace.total_accesses(), 4);
        assert_eq!(trace.node_lines(0), &[1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "not whole fragments")]
    fn ragged_trace_panics() {
        LineAccessTrace::from_nodes(vec![vec![1, 2, 3]], 2);
    }
}
