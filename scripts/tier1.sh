#!/usr/bin/env sh
# Tier-1 gate: offline release build + tests (+ clippy when available).
#
# The workspace has no registry dependencies, so everything here must pass
# on a machine with no network access. Run from anywhere:
#
#   scripts/tier1.sh
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo"

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --workspace --offline"
cargo test -q --workspace --offline

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy --workspace --all-targets --offline -- -D warnings"
    cargo clippy --workspace --all-targets --offline -- -D warnings
else
    echo "==> cargo clippy not installed; skipping lint step"
fi

echo "tier1: OK"
