//! Property tests pinning the batched fragment core to the scalar
//! reference, on the in-repo `sortmid-devharness` runner.
//!
//! The tentpole claim of the struct-of-arrays pipeline is *exact*
//! equivalence, not approximation: for every cache model the machine can
//! mount — set-associative, classifying, the paper L1, perfect, two-level,
//! victim-buffered, and DRAM-backed variants — the batched plan replay
//! ([`Machine::run_planned`]) must emit a [`RunReport`] byte-identical to
//! the scalar per-texel loop ([`Machine::run_planned_scalar`]) and to the
//! unplanned reference walk ([`Machine::run`]). The same holds under
//! observation (spatial three-C attribution, full event traces) and for
//! the trace-capture path the stack-distance replay feeds on.

use sortmid::{
    capture_line_trace, CacheKind, Distribution, Machine, MachineConfig, PlanLanes, RoutingPlan,
    SpatialCollector, TraceRecorder,
};
use sortmid_cache::CacheGeometry;
use sortmid_devharness::prop::{check, Config, Gen};
use sortmid_devharness::prop_assert_eq;
use sortmid_memsys::{BusConfig, DramConfig};
use sortmid_raster::FragmentStream;
use sortmid_scene::{Benchmark, SceneBuilder};
use std::sync::OnceLock;

/// One small shared stream (building scenes per property case is too slow).
fn stream() -> &'static FragmentStream {
    static STREAM: OnceLock<FragmentStream> = OnceLock::new();
    STREAM.get_or_init(|| {
        SceneBuilder::benchmark(Benchmark::Quake)
            .scale(0.08)
            .build()
            .rasterize()
    })
}

/// Block with width 1..200 or SLI with 1..64 lines.
fn arb_distribution(g: &mut Gen) -> Distribution {
    match g.choice(2) {
        0 => Distribution::block(g.u32_in(1..200)),
        _ => Distribution::sli(g.u32_in(1..64)),
    }
}

/// A random small power-of-two geometry (512 B – 512 KB, 1–16 ways,
/// 64-byte lines) — small enough that random footprints actually churn it.
fn arb_geometry(g: &mut Gen) -> CacheGeometry {
    let size = 512u32 << g.u32_in(0..11);
    let max_log_ways = (size / 64).trailing_zeros().min(4);
    let ways = 1u32 << g.u32_in(0..max_log_ways + 1);
    CacheGeometry::new(size, ways, 64).expect("power-of-two grid point")
}

/// Every cache model the machine can mount, geometry randomized.
fn arb_cache(g: &mut Gen) -> CacheKind {
    match g.choice(6) {
        0 => CacheKind::Perfect,
        1 => CacheKind::PaperL1,
        2 => CacheKind::SetAssoc(arb_geometry(g)),
        3 => CacheKind::Classifying(arb_geometry(g)),
        4 => {
            let l1 = arb_geometry(g);
            // An L2 at least as large as the L1 (the hierarchy invariant).
            let l2 = CacheGeometry::new((l1.size_bytes() * 4).max(16 * 1024), 4, 64)
                .expect("valid L2");
            CacheKind::TwoLevel(l1, l2)
        }
        _ => CacheKind::Victim(arb_geometry(g), g.u32_in(1..16)),
    }
}

fn arb_config(g: &mut Gen) -> MachineConfig {
    let mut b = MachineConfig::builder();
    b.processors(g.u32_in(1..32))
        .distribution(arb_distribution(g))
        .cache(arb_cache(g))
        .bus_ratio(g.pick(&[0.5, 1.0, 2.0]))
        .triangle_buffer(g.pick(&[1usize, 100, 10_000]));
    if g.bool() {
        // A DRAM row model makes fill cost depend on miss *addresses*, so
        // the batched path must hand over exact miss lines, not counts.
        b.dram(Some(DramConfig::sdram_like(BusConfig::ratio(1.0))));
    }
    b.build().expect("valid config")
}

/// The tentpole equivalence: batched plan replay == scalar plan replay ==
/// unplanned reference, full-report, for every cache model (including
/// DRAM-backed machines, which need exact per-miss line addresses).
#[test]
fn prop_batched_core_equals_scalar_for_every_cache_model() {
    check(
        "prop_batched_core_equals_scalar_for_every_cache_model",
        &Config::with_cases(24),
        arb_config,
        |config| {
            let s = stream();
            let machine = Machine::new(config.clone());
            let plan = RoutingPlan::build(s, &config.distribution, config.processors);
            let batched = machine.run_planned(s, &plan);
            let scalar = machine.run_planned_scalar(s, &plan);
            prop_assert_eq!(
                &batched,
                &scalar,
                "batched vs scalar plan replay diverge for {}",
                config.summary()
            );
            let reference = machine.run(s);
            prop_assert_eq!(
                &batched,
                &reference,
                "batched plan replay diverges from the unplanned walk for {}",
                config.summary()
            );
            // The shared-lanes entry point must agree with the per-call
            // pivot (it is what the sweep actually runs).
            let lanes = PlanLanes::build(s, &plan);
            prop_assert_eq!(
                &machine.run_planned_with_lanes(s, &plan, &lanes),
                &batched,
                "prebuilt lanes diverge for {}",
                config.summary()
            );
            Ok(())
        },
    );
}

/// Observed equivalence: under a classifying cache, the batched and scalar
/// paths must agree on everything the spatial collector sees — per-tile
/// fragment counts, per-node fragment/line totals, and the per-node
/// three-C miss decomposition — and on the report itself.
#[test]
fn prop_batched_three_c_attribution_matches_scalar() {
    check(
        "prop_batched_three_c_attribution_matches_scalar",
        &Config::with_cases(12),
        |g| (arb_distribution(g), g.u32_in(1..24), arb_geometry(g)),
        |(dist, procs, geometry)| {
            let s = stream();
            let screen = s.screen();
            let config = MachineConfig::builder()
                .processors(*procs)
                .distribution(dist.clone())
                .cache(CacheKind::Classifying(*geometry))
                .bus_ratio(1.0)
                .build()
                .expect("valid config");
            let machine = Machine::new(config);
            let plan = RoutingPlan::build(s, dist, *procs);
            let collect = || SpatialCollector::new(screen.width().max(1), screen.height().max(1), 16, *procs);
            let mut batched_col = collect();
            let batched = machine.run_planned_traced(s, &plan, &mut batched_col);
            let mut scalar_col = collect();
            let scalar = machine.run_planned_scalar_traced(s, &plan, &mut scalar_col);
            prop_assert_eq!(&batched, &scalar, "traced reports diverge");
            prop_assert_eq!(
                batched_col.grid(),
                scalar_col.grid(),
                "per-tile spatial samples diverge"
            );
            prop_assert_eq!(batched_col.node_fragments(), scalar_col.node_fragments());
            prop_assert_eq!(batched_col.node_lines(), scalar_col.node_lines());
            prop_assert_eq!(batched_col.node_setup(), scalar_col.node_setup());
            prop_assert_eq!(
                batched_col.node_misses(),
                scalar_col.node_misses(),
                "three-C attribution diverges"
            );
            for (i, node) in batched.nodes().iter().enumerate() {
                let b = node.miss_breakdown.expect("classifying cache reports classes");
                let c = batched_col.node_misses()[i];
                prop_assert_eq!(c.total(), b.total(), "node {i} collected class total");
            }
            Ok(())
        },
    );
}

/// Event-stream equivalence: the batched path must emit the identical
/// trace event sequence (FIFO pushes/pops, triangle lifecycle, every bus
/// fill with its slot and cost) as the scalar path.
#[test]
fn prop_batched_event_stream_matches_scalar() {
    check(
        "prop_batched_event_stream_matches_scalar",
        &Config::with_cases(8),
        |g| (arb_distribution(g), g.u32_in(1..16), arb_cache(g)),
        |(dist, procs, cache)| {
            let s = stream();
            let config = MachineConfig::builder()
                .processors(*procs)
                .distribution(dist.clone())
                .cache(*cache)
                .bus_ratio(1.0)
                .triangle_buffer(100)
                .build()
                .expect("valid config");
            let machine = Machine::new(config);
            let plan = RoutingPlan::build(s, dist, *procs);
            let mut batched_rec = TraceRecorder::new();
            let batched = machine.run_planned_traced(s, &plan, &mut batched_rec);
            let mut scalar_rec = TraceRecorder::new();
            let scalar = machine.run_planned_scalar_traced(s, &plan, &mut scalar_rec);
            prop_assert_eq!(&batched, &scalar, "traced reports diverge");
            prop_assert_eq!(
                batched_rec.events(),
                scalar_rec.events(),
                "event streams diverge for {}",
                batched.summary()
            );
            Ok(())
        },
    );
}

/// Trace capture through the lanes pivot equals a hand-walked reference:
/// the exact per-node line sequence the scalar simulator would probe, in
/// plan walk order.
#[test]
fn prop_lane_trace_capture_matches_manual_walk() {
    check(
        "prop_lane_trace_capture_matches_manual_walk",
        &Config::with_cases(16),
        |g| (arb_distribution(g), g.u32_in(1..32)),
        |(dist, procs)| {
            let s = stream();
            let plan = RoutingPlan::build(s, dist, *procs);
            let trace = capture_line_trace(s, &plan);
            prop_assert_eq!(trace.node_count(), *procs as usize);

            // Reference: route every fragment by asking the distribution
            // directly, in stream order — the semantics the plan encodes.
            let mut expect: Vec<Vec<u32>> = vec![Vec::new(); *procs as usize];
            for tri in s.triangles() {
                if tri.is_culled() {
                    continue;
                }
                for frag in s.fragments_of(tri) {
                    let owner = dist.owner(frag.x as i32, frag.y as i32, *procs) as usize;
                    expect[owner].extend(frag.texels.iter().map(|t| t.line()));
                }
            }
            for (node, lines) in expect.iter().enumerate() {
                prop_assert_eq!(
                    trace.node_lines(node),
                    &lines[..],
                    "node {node} line sequence diverges"
                );
            }

            // And the lanes' own framing agrees with the capture.
            let lanes = PlanLanes::build(s, &plan);
            let framed = lanes.to_trace();
            for node in 0..*procs as usize {
                prop_assert_eq!(framed.node_lines(node), trace.node_lines(node));
                prop_assert_eq!(framed.fragment_count(node), trace.fragment_count(node));
            }
            Ok(())
        },
    );
}
