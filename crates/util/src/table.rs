//! Fixed-width ASCII table and CSV rendering for the experiment harness.
//!
//! The experiment binaries print the same rows and series the paper reports;
//! this module keeps that output aligned and machine-readable.

use std::fmt::Write as _;

/// Column alignment inside a [`Table`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Align {
    /// Left-justified (labels).
    #[default]
    Left,
    /// Right-justified (numbers).
    Right,
}

/// An in-memory table that renders either as aligned ASCII or CSV.
///
/// # Examples
///
/// ```
/// use sortmid_util::table::Table;
///
/// let mut t = Table::new(&["scene", "speedup"]);
/// t.row(&["quake", "12.3"]);
/// let ascii = t.to_ascii();
/// assert!(ascii.contains("quake"));
/// let csv = t.to_csv();
/// assert!(csv.starts_with("scene,speedup"));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Table {
    header: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers; all columns align
    /// right except the first.
    pub fn new(header: &[&str]) -> Self {
        let aligns = header
            .iter()
            .enumerate()
            .map(|(i, _)| if i == 0 { Align::Left } else { Align::Right })
            .collect();
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            aligns,
            rows: Vec::new(),
        }
    }

    /// Overrides the per-column alignment.
    ///
    /// # Panics
    ///
    /// Panics if `aligns.len()` differs from the number of columns.
    pub fn with_aligns(mut self, aligns: &[Align]) -> Self {
        assert_eq!(aligns.len(), self.header.len(), "alignment arity mismatch");
        self.aligns = aligns.to_vec();
        self
    }

    /// Appends a row of pre-formatted cells.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the header.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Appends a row of owned cells (convenient with `format!`).
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the header.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned ASCII with a separator under the header.
    pub fn to_ascii(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String], widths: &[usize], aligns: &[Align]| {
            for i in 0..cols {
                if i > 0 {
                    out.push_str("  ");
                }
                match aligns[i] {
                    Align::Left => {
                        let _ = write!(out, "{:<width$}", cells[i], width = widths[i]);
                    }
                    Align::Right => {
                        let _ = write!(out, "{:>width$}", cells[i], width = widths[i]);
                    }
                }
            }
            // Trim trailing padding of left-aligned last columns.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        emit(&mut out, &self.header, &widths, &self.aligns);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            emit(&mut out, row, &widths, &self.aligns);
        }
        out
    }

    /// Renders the table as RFC-4180-style CSV (quoting cells that contain
    /// commas, quotes or newlines).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&csv_escape(cell));
            }
            out.push('\n');
        };
        emit(&mut out, &self.header);
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }
}

fn csv_escape(cell: &str) -> String {
    if cell.contains([',', '"', '\n']) {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// Formats a float with `digits` decimal places, trimming `-0`.
pub fn fmt_f(x: f64, digits: usize) -> String {
    let s = format!("{x:.digits$}");
    if s.starts_with("-0.") && s[3..].bytes().all(|b| b == b'0') {
        s[1..].to_string()
    } else {
        s
    }
}

/// Formats a count with thousands separators (`1234567` → `1,234,567`).
pub fn fmt_count(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_alignment() {
        let mut t = Table::new(&["name", "val"]);
        t.row(&["a", "1"]);
        t.row(&["longer", "123"]);
        let s = t.to_ascii();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // numbers right-aligned in a 3-wide column
        assert!(lines[2].ends_with("  1"));
        assert!(lines[3].ends_with("123"));
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["x,y", "he said \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_f(-0.0001, 2), "0.00");
        assert_eq!(fmt_count(0), "0");
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(1000), "1,000");
        assert_eq!(fmt_count(1234567), "1,234,567");
    }

    #[test]
    fn custom_alignment() {
        let t = {
            let mut t = Table::new(&["a", "b"]).with_aligns(&[Align::Right, Align::Left]);
            t.row(&["1", "x"]);
            t.row(&["22", "yy"]);
            t
        };
        let s = t.to_ascii();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[2].starts_with(" 1"), "right-aligned first column: {s}");
        assert!(lines[2].contains("x"), "{s}");
    }

    #[test]
    #[should_panic(expected = "alignment arity mismatch")]
    fn alignment_arity_checked() {
        let _ = Table::new(&["a", "b"]).with_aligns(&[Align::Left]);
    }

    #[test]
    fn row_owned_and_len() {
        let mut t = Table::new(&["k", "v"]);
        assert!(t.is_empty());
        t.row_owned(vec!["k1".into(), "v1".into()]);
        assert_eq!(t.len(), 1);
    }
}
