//! Frame sequences and warm caches: how much inter-frame locality survives
//! camera motion on a parallel machine?
//!
//! The paper's closing paragraph predicts that a per-node L2 loses its
//! inter-frame locality once the viewpoint moves further than the tile
//! size. This example animates a camera pan over a benchmark scene, runs
//! the frames back-to-back on machines with warm two-level caches, and
//! prints per-frame external traffic for a 1-processor and a 16-processor
//! machine.
//!
//! ```text
//! cargo run --release --example frame_sequence [pan_px_per_frame]
//! ```

use sortmid::{CacheKind, Distribution, Machine, MachineConfig};
use sortmid_cache::CacheGeometry;
use sortmid_scene::animate::{camera_path, CameraStep};
use sortmid_scene::{Benchmark, SceneBuilder};
use sortmid_util::table::{fmt_f, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pan: f32 = std::env::args().nth(1).map(|s| s.parse()).transpose()?.unwrap_or(24.0);
    let frames = 5;

    let scene = SceneBuilder::benchmark(Benchmark::TeapotFull).scale(0.25).build();
    println!("scene: {} panning {pan} px/frame for {frames} frames\n", scene.name());
    let views = camera_path(&scene, frames, CameraStep::pan(pan, 0.0));
    let streams: Vec<_> = views.iter().map(|v| v.rasterize()).collect();
    let refs: Vec<&_> = streams.iter().collect();

    let run = |procs: u32| {
        let config = MachineConfig::builder()
            .processors(procs)
            .distribution(Distribution::block(16))
            .cache(CacheKind::TwoLevel(
                CacheGeometry::paper_l1(),
                CacheGeometry::paper_l2(),
            ))
            .infinite_bus()
            .build()
            .expect("valid");
        Machine::new(config).run_sequence(&refs)
    };
    let solo = run(1);
    let parallel = run(16);

    let mut table = Table::new(&["frame", "1p texel/frag", "16p texel/frag"]);
    for (i, (a, b)) in solo.iter().zip(&parallel).enumerate() {
        table.row_owned(vec![
            i.to_string(),
            fmt_f(a.texel_to_fragment(), 3),
            fmt_f(b.texel_to_fragment(), 3),
        ]);
    }
    print!("{}", table.to_ascii());
    println!(
        "\nFrame 0 is cold everywhere. From frame 1 on, the single L2 retains most\n\
         of the working set across the pan, while the 16 per-node L2s each face\n\
         texels that last frame belonged to a *different* node's screen share —\n\
         the paper's predicted failure mode for multiprocessor L2 caching."
    );
    Ok(())
}
