//! Screen-space textured triangles and their interpolation setup.

use crate::rect::Rect;
use crate::vec2::Vec2;
use std::fmt;

/// One triangle vertex: screen position in pixels plus texture coordinates
/// in *texels of the texture's base mip level*.
///
/// Texture coordinates are kept in texels (not normalised) because the
/// mip-level selection of the rasterizer works directly on texel-per-pixel
/// derivatives, exactly as the texel-to-fragment accounting of the paper
/// requires.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vertex {
    /// Screen position (pixels).
    pub pos: Vec2,
    /// Texture coordinate (texels at mip level 0).
    pub uv: Vec2,
}

impl Vertex {
    /// Creates a vertex from raw components.
    pub const fn new(x: f32, y: f32, u: f32, v: f32) -> Self {
        Vertex {
            pos: Vec2::new(x, y),
            uv: Vec2::new(u, v),
        }
    }
}

/// A screen-space triangle bound to a texture.
///
/// The winding is normalised to counter-clockwise at construction so the
/// rasterizer's edge functions are uniformly non-negative inside.
///
/// # Examples
///
/// ```
/// use sortmid_geom::{Triangle, Vertex};
///
/// let t = Triangle::new(
///     3,
///     [
///         Vertex::new(0.0, 0.0, 0.0, 0.0),
///         Vertex::new(0.0, 4.0, 0.0, 4.0), // clockwise input...
///         Vertex::new(4.0, 0.0, 4.0, 0.0),
///     ],
/// );
/// assert!(t.signed_area() > 0.0); // ...normalised to CCW
/// assert_eq!(t.texture(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triangle {
    texture: u32,
    vertices: [Vertex; 3],
}

impl Triangle {
    /// Creates a triangle over texture `texture`, normalising winding to
    /// counter-clockwise (in a y-down screen coordinate system this is the
    /// orientation with positive [`signed_area`](Self::signed_area)).
    pub fn new(texture: u32, mut vertices: [Vertex; 3]) -> Self {
        let ab = vertices[1].pos - vertices[0].pos;
        let ac = vertices[2].pos - vertices[0].pos;
        if ab.cross(ac) < 0.0 {
            vertices.swap(1, 2);
        }
        Triangle { texture, vertices }
    }

    /// The texture this triangle samples.
    pub fn texture(&self) -> u32 {
        self.texture
    }

    /// The three vertices, CCW.
    pub fn vertices(&self) -> &[Vertex; 3] {
        &self.vertices
    }

    /// Twice the signed area is the edge-function normaliser; this returns
    /// the (positive, post-normalisation) signed area in pixels².
    pub fn signed_area(&self) -> f32 {
        let ab = self.vertices[1].pos - self.vertices[0].pos;
        let ac = self.vertices[2].pos - self.vertices[0].pos;
        0.5 * ab.cross(ac)
    }

    /// True for degenerate (zero-area) triangles, which rasterize to nothing.
    pub fn is_degenerate(&self) -> bool {
        self.signed_area().abs() < f32::EPSILON
    }

    /// The smallest half-open integer rectangle containing every pixel
    /// *center* that can be covered (pixel `(x, y)` has center
    /// `(x + 0.5, y + 0.5)`).
    pub fn pixel_bbox(&self) -> Rect {
        let mut lo = self.vertices[0].pos;
        let mut hi = lo;
        for v in &self.vertices[1..] {
            lo = lo.min(v.pos);
            hi = hi.max(v.pos);
        }
        // Pixel x is a candidate iff x + 0.5 ∈ [lo.x, hi.x] ⇔
        // x ∈ [lo.x - 0.5, hi.x - 0.5]; round outward to integers.
        Rect::new(
            (lo.x - 0.5).ceil() as i32,
            (lo.y - 0.5).ceil() as i32,
            (hi.x - 0.5).floor() as i32 + 1,
            (hi.y - 0.5).floor() as i32 + 1,
        )
    }

    /// Affine texture-coordinate gradients
    /// `(du/dx, du/dy, dv/dx, dv/dy)` in texels per pixel.
    ///
    /// Screen-space triangles use affine interpolation, so the gradients are
    /// constant per triangle; the rasterizer derives the mip level from them
    /// once per triangle.
    ///
    /// Returns `None` for degenerate triangles.
    pub fn uv_gradients(&self) -> Option<UvGradients> {
        let [a, b, c] = self.vertices;
        let e1 = b.pos - a.pos;
        let e2 = c.pos - a.pos;
        let det = e1.cross(e2);
        if det.abs() < f32::EPSILON {
            return None;
        }
        let du1 = b.uv.x - a.uv.x;
        let du2 = c.uv.x - a.uv.x;
        let dv1 = b.uv.y - a.uv.y;
        let dv2 = c.uv.y - a.uv.y;
        let inv = 1.0 / det;
        Some(UvGradients {
            du_dx: (du1 * e2.y - du2 * e1.y) * inv,
            du_dy: (du2 * e1.x - du1 * e2.x) * inv,
            dv_dx: (dv1 * e2.y - dv2 * e1.y) * inv,
            dv_dy: (dv2 * e1.x - dv1 * e2.x) * inv,
        })
    }

    /// Interpolates the texture coordinate at an arbitrary screen point
    /// (typically a pixel center) using the affine mapping.
    ///
    /// Returns `None` for degenerate triangles.
    pub fn uv_at(&self, p: Vec2) -> Option<Vec2> {
        let g = self.uv_gradients()?;
        let a = self.vertices[0];
        let d = p - a.pos;
        Some(Vec2::new(
            a.uv.x + g.du_dx * d.x + g.du_dy * d.y,
            a.uv.y + g.dv_dx * d.x + g.dv_dy * d.y,
        ))
    }

    /// Barycentric coordinates of `p` with respect to the triangle.
    ///
    /// Returns `None` for degenerate triangles. `p` is inside (or on an
    /// edge) iff all three coordinates are ≥ 0.
    pub fn barycentric(&self, p: Vec2) -> Option<[f32; 3]> {
        let [a, b, c] = self.vertices;
        let area2 = (b.pos - a.pos).cross(c.pos - a.pos);
        if area2.abs() < f32::EPSILON {
            return None;
        }
        let w0 = (c.pos - b.pos).cross(p - b.pos) / area2;
        let w1 = (a.pos - c.pos).cross(p - c.pos) / area2;
        let w2 = 1.0 - w0 - w1;
        Some([w0, w1, w2])
    }

    /// Translates the triangle in screen space (texture coordinates are
    /// unchanged).
    pub fn translated(&self, delta: Vec2) -> Triangle {
        let mut t = *self;
        for v in &mut t.vertices {
            v.pos += delta;
        }
        t
    }

    /// Scales the triangle's screen positions about the origin (texture
    /// coordinates are unchanged, so scaling changes texel density).
    pub fn scaled(&self, factor: f32) -> Triangle {
        let mut t = *self;
        for v in &mut t.vertices {
            v.pos = v.pos * factor;
        }
        t
    }
}

impl fmt::Display for Triangle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Triangle(tex={}, {} {} {})",
            self.texture, self.vertices[0].pos, self.vertices[1].pos, self.vertices[2].pos
        )
    }
}

/// Constant affine texture-coordinate gradients of a triangle, in texels per
/// pixel; produced by [`Triangle::uv_gradients`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UvGradients {
    /// ∂u/∂x.
    pub du_dx: f32,
    /// ∂u/∂y.
    pub du_dy: f32,
    /// ∂v/∂x.
    pub dv_dx: f32,
    /// ∂v/∂y.
    pub dv_dy: f32,
}

impl UvGradients {
    /// The OpenGL scale factor ρ: the larger of the texel displacement per
    /// horizontal or vertical pixel step.
    pub fn rho(&self) -> f32 {
        let rx = (self.du_dx * self.du_dx + self.dv_dx * self.dv_dx).sqrt();
        let ry = (self.du_dy * self.du_dy + self.dv_dy * self.dv_dy).sqrt();
        rx.max(ry)
    }

    /// The continuous mip level λ = log2(ρ), clamped at 0 (magnification
    /// samples the base level).
    pub fn lod(&self) -> f32 {
        let rho = self.rho();
        if rho <= 1.0 {
            0.0
        } else {
            rho.log2()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_right() -> Triangle {
        Triangle::new(
            0,
            [
                Vertex::new(0.0, 0.0, 0.0, 0.0),
                Vertex::new(8.0, 0.0, 16.0, 0.0),
                Vertex::new(0.0, 8.0, 0.0, 16.0),
            ],
        )
    }

    #[test]
    fn winding_is_normalised() {
        let ccw = unit_right();
        let cw = Triangle::new(
            0,
            [
                Vertex::new(0.0, 0.0, 0.0, 0.0),
                Vertex::new(0.0, 8.0, 0.0, 16.0),
                Vertex::new(8.0, 0.0, 16.0, 0.0),
            ],
        );
        assert!(ccw.signed_area() > 0.0);
        assert!(cw.signed_area() > 0.0);
        assert_eq!(ccw.signed_area(), cw.signed_area());
    }

    #[test]
    fn area_of_right_triangle() {
        assert_eq!(unit_right().signed_area(), 32.0);
        assert!(!unit_right().is_degenerate());
    }

    #[test]
    fn degenerate_detection() {
        let t = Triangle::new(
            0,
            [
                Vertex::new(0.0, 0.0, 0.0, 0.0),
                Vertex::new(4.0, 4.0, 0.0, 0.0),
                Vertex::new(8.0, 8.0, 0.0, 0.0),
            ],
        );
        assert!(t.is_degenerate());
        assert!(t.uv_gradients().is_none());
        assert!(t.uv_at(Vec2::new(1.0, 1.0)).is_none());
        assert!(t.barycentric(Vec2::ZERO).is_none());
    }

    #[test]
    fn pixel_bbox_covers_centers() {
        let t = unit_right();
        let bb = t.pixel_bbox();
        assert_eq!(bb, Rect::new(0, 0, 8, 8));
        // Pixel 7 has center 7.5 which is within [0, 8].
        assert!(bb.contains(7, 0));
        assert!(!bb.contains(8, 0));
    }

    #[test]
    fn pixel_bbox_of_subpixel_triangle() {
        let t = Triangle::new(
            0,
            [
                Vertex::new(3.1, 3.1, 0.0, 0.0),
                Vertex::new(3.3, 3.1, 1.0, 0.0),
                Vertex::new(3.1, 3.3, 0.0, 1.0),
            ],
        );
        // No pixel center inside [3.1, 3.3] -> empty candidate box.
        assert!(t.pixel_bbox().is_empty());
    }

    #[test]
    fn uv_gradients_of_identity_mapping() {
        // uv = 2 * pos, so gradients are diag(2, 2).
        let g = unit_right().uv_gradients().unwrap();
        assert!((g.du_dx - 2.0).abs() < 1e-6);
        assert!((g.dv_dy - 2.0).abs() < 1e-6);
        assert!(g.du_dy.abs() < 1e-6);
        assert!(g.dv_dx.abs() < 1e-6);
        assert!((g.rho() - 2.0).abs() < 1e-6);
        assert!((g.lod() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn magnified_lod_clamps_to_zero() {
        let t = Triangle::new(
            0,
            [
                Vertex::new(0.0, 0.0, 0.0, 0.0),
                Vertex::new(100.0, 0.0, 10.0, 0.0),
                Vertex::new(0.0, 100.0, 0.0, 10.0),
            ],
        );
        assert_eq!(t.uv_gradients().unwrap().lod(), 0.0);
    }

    #[test]
    fn uv_interpolation_matches_vertices() {
        let t = unit_right();
        for v in t.vertices() {
            let uv = t.uv_at(v.pos).unwrap();
            assert!((uv - v.uv).length() < 1e-4);
        }
        let mid = t.uv_at(Vec2::new(4.0, 0.0)).unwrap();
        assert!((mid - Vec2::new(8.0, 0.0)).length() < 1e-4);
    }

    #[test]
    fn barycentric_inside_outside() {
        let t = unit_right();
        let inside = t.barycentric(Vec2::new(1.0, 1.0)).unwrap();
        assert!(inside.iter().all(|&w| w >= 0.0));
        assert!((inside.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        let outside = t.barycentric(Vec2::new(10.0, 10.0)).unwrap();
        assert!(outside.iter().any(|&w| w < 0.0));
    }

    #[test]
    fn translate_and_scale() {
        let t = unit_right().translated(Vec2::new(10.0, 20.0));
        assert_eq!(t.vertices()[0].pos, Vec2::new(10.0, 20.0));
        assert_eq!(t.vertices()[0].uv, Vec2::ZERO);
        let s = unit_right().scaled(2.0);
        assert_eq!(s.signed_area(), 128.0);
        // Texel density halves when the triangle doubles on screen.
        assert!((s.uv_gradients().unwrap().du_dx - 1.0).abs() < 1e-6);
    }
}
