//! Scene statistics: the columns of the paper's Table 1.

use crate::generate::Scene;
use sortmid_raster::FragmentStream;
use sortmid_texture::TexelSet;
use std::fmt;

/// Measured characteristics of a scene, matching Table 1's columns.
///
/// # Examples
///
/// ```
/// use sortmid_scene::{Benchmark, SceneBuilder, SceneStats};
///
/// let scene = SceneBuilder::benchmark(Benchmark::Quake).scale(0.2).build();
/// let stats = SceneStats::measure(&scene);
/// assert!(stats.depth_complexity > 0.5);
/// assert!(stats.unique_texel_per_fragment > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SceneStats {
    /// Screen width in pixels.
    pub screen_width: u32,
    /// Screen height in pixels.
    pub screen_height: u32,
    /// Fragments drawn ("pixels rendered").
    pub pixels_rendered: u64,
    /// Fragments per screen pixel.
    pub depth_complexity: f64,
    /// Triangles in the stream.
    pub triangles: u32,
    /// Distinct textures registered.
    pub textures: u32,
    /// Total *allocated* texture memory (base + mips, blocked) in bytes.
    pub texture_bytes: u64,
    /// Distinct texels touched by the frame.
    pub unique_texels: u64,
    /// Distinct texels touched / fragments drawn — the bandwidth floor of an
    /// ideal cache (Igehy et al.'s definition).
    pub unique_texel_per_fragment: f64,
    /// Distinct texels touched / screen pixels — the normalisation Table 1's
    /// "unique texel/fragment" column actually uses (it reconciles exactly
    /// with the table's "Texture Used (MB)" column as `unique × 4 bytes` for
    /// every scene).
    pub unique_texel_per_screen_pixel: f64,
    /// Distinct cache lines touched (cold-miss floor of a real cache).
    pub unique_lines: u64,
}

impl SceneStats {
    /// Rasterizes `scene` and measures it.
    pub fn measure(scene: &Scene) -> SceneStats {
        let stream = scene.rasterize();
        Self::measure_stream(scene, &stream)
    }

    /// Measures a scene with an already-rasterized stream (avoids repeating
    /// the scan when the caller needs the stream anyway).
    pub fn measure_stream(scene: &Scene, stream: &FragmentStream) -> SceneStats {
        let mut unique = TexelSet::with_capacity(scene.registry().total_texels());
        for frag in stream.fragments() {
            for t in &frag.texels {
                unique.insert(*t);
            }
        }
        let fragments = stream.fragment_count();
        let screen_area = scene.screen().area();
        SceneStats {
            screen_width: scene.screen().width(),
            screen_height: scene.screen().height(),
            pixels_rendered: fragments,
            depth_complexity: stream.depth_complexity(),
            triangles: stream.triangle_count() as u32,
            textures: scene.registry().len() as u32,
            texture_bytes: scene.registry().total_bytes(),
            unique_texels: unique.len(),
            unique_texel_per_fragment: if fragments == 0 {
                0.0
            } else {
                unique.len() as f64 / fragments as f64
            },
            unique_texel_per_screen_pixel: if screen_area == 0 {
                0.0
            } else {
                unique.len() as f64 / screen_area as f64
            },
            unique_lines: unique.line_count(),
        }
    }

    /// Total *allocated* texture memory in megabytes.
    pub fn texture_mbytes(&self) -> f64 {
        self.texture_bytes as f64 / (1024.0 * 1024.0)
    }

    /// Texture memory actually *used* by the frame in megabytes
    /// (unique texels × 4 bytes) — Table 1's "Texture Used (MB)" column.
    pub fn texture_used_mbytes(&self) -> f64 {
        self.unique_texels as f64 * 4.0 / (1024.0 * 1024.0)
    }

    /// Pixels rendered in millions.
    pub fn mpixels(&self) -> f64 {
        self.pixels_rendered as f64 / 1.0e6
    }

    /// Extrapolates scale-dependent columns back to paper scale: a scene
    /// generated at scale `s` has `s²` times fewer pixels and triangles than
    /// the full-resolution benchmark, while the density-like columns (depth
    /// complexity, unique texel/fragment) are scale-invariant.
    pub fn extrapolated(&self, scale: f64) -> SceneStats {
        assert!(scale > 0.0, "scale must be positive");
        let inv_area = 1.0 / (scale * scale);
        SceneStats {
            screen_width: (self.screen_width as f64 / scale).round() as u32,
            screen_height: (self.screen_height as f64 / scale).round() as u32,
            pixels_rendered: (self.pixels_rendered as f64 * inv_area).round() as u64,
            triangles: (self.triangles as f64 * inv_area).round() as u32,
            texture_bytes: (self.texture_bytes as f64 * inv_area).round() as u64,
            unique_texels: (self.unique_texels as f64 * inv_area).round() as u64,
            unique_lines: (self.unique_lines as f64 * inv_area).round() as u64,
            ..*self
        }
    }
}

impl fmt::Display for SceneStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{}: {:.1} Mpix, depth {:.1}, {} tris, {} textures, {:.1} MB, {:.2} uniq t/f",
            self.screen_width,
            self.screen_height,
            self.mpixels(),
            self.depth_complexity,
            self.triangles,
            self.textures,
            self.texture_mbytes(),
            self.unique_texel_per_fragment
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SceneBuilder;
    use crate::presets::Benchmark;

    #[test]
    fn stats_are_internally_consistent() {
        let scene = SceneBuilder::benchmark(Benchmark::Quake).scale(0.2).build();
        let stats = SceneStats::measure(&scene);
        assert_eq!(stats.screen_width, scene.screen().width());
        assert_eq!(stats.triangles as usize, scene.triangles().len());
        assert_eq!(stats.textures as usize, scene.registry().len());
        assert_eq!(stats.texture_bytes, scene.registry().total_bytes());
        let depth = stats.pixels_rendered as f64
            / (stats.screen_width as f64 * stats.screen_height as f64);
        assert!((depth - stats.depth_complexity).abs() < 1e-9);
    }

    #[test]
    fn unique_ratio_is_bounded_by_eight() {
        let scene = SceneBuilder::benchmark(Benchmark::TeapotFull).scale(0.15).build();
        let stats = SceneStats::measure(&scene);
        assert!(stats.unique_texel_per_fragment > 0.0);
        assert!(stats.unique_texel_per_fragment <= 8.0);
    }

    #[test]
    fn extrapolation_scales_area_quantities_only() {
        let scene = SceneBuilder::benchmark(Benchmark::Quake).scale(0.25).build();
        let stats = SceneStats::measure(&scene);
        let full = stats.extrapolated(0.25);
        assert_eq!(full.pixels_rendered, stats.pixels_rendered * 16);
        assert_eq!(full.depth_complexity, stats.depth_complexity);
        assert_eq!(full.unique_texel_per_fragment, stats.unique_texel_per_fragment);
        assert!(full.screen_width > stats.screen_width);
    }

    #[test]
    fn measure_stream_matches_measure() {
        let scene = SceneBuilder::benchmark(Benchmark::Blowout775).scale(0.1).build();
        let stream = scene.rasterize();
        let a = SceneStats::measure(&scene);
        let b = SceneStats::measure_stream(&scene, &stream);
        assert_eq!(a, b);
    }

    #[test]
    fn display_mentions_name_quantities() {
        let scene = SceneBuilder::benchmark(Benchmark::Quake).scale(0.1).build();
        let s = SceneStats::measure(&scene).to_string();
        assert!(s.contains("Mpix"));
        assert!(s.contains("uniq t/f"));
    }
}
