//! The paper's "perfect cache": every access hits.
//!
//! > "In this paper, a perfect cache is a cache that always hit. We do not
//! > take into account the compulsory misses."
//!
//! Used by the load-balancing study (Figure 5) to isolate pixel-distribution
//! effects from memory behaviour.

use crate::stats::CacheStats;
use crate::LineCache;
use sortmid_observe::MissClassCounts;

/// A cache model that always hits and never touches external memory.
///
/// # Examples
///
/// ```
/// use sortmid_cache::{LineCache, PerfectCache};
///
/// let mut c = PerfectCache::new();
/// assert!(c.access_line(12345));
/// assert_eq!(c.stats().misses(), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PerfectCache {
    stats: CacheStats,
}

impl PerfectCache {
    /// Creates a perfect cache.
    pub fn new() -> Self {
        Self::default()
    }
}

impl LineCache for PerfectCache {
    #[inline]
    fn access_line(&mut self, _line: u32) -> bool {
        self.stats.record(true);
        true
    }

    /// A whole lane of always-hits collapses to one counter bump.
    #[inline]
    fn access_lane(
        &mut self,
        lane: &[u32],
        _miss_out: &mut [u32],
        _classes: &mut MissClassCounts,
    ) -> usize {
        self.stats.record_hits(lane.len() as u64);
        0
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn reset(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_hits() {
        let mut c = PerfectCache::new();
        for line in [0, 1, 1, 99, u32::MAX - 1] {
            assert!(c.access_line(line));
        }
        assert_eq!(c.stats().accesses(), 5);
        assert_eq!(c.stats().misses(), 0);
        assert_eq!(c.external_fetches(), 0);
    }

    #[test]
    fn reset_zeroes_stats() {
        let mut c = PerfectCache::new();
        c.access_line(1);
        c.reset();
        assert_eq!(c.stats().accesses(), 0);
    }
}
