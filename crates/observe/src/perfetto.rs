//! Chrome-trace-event (Perfetto) export of a recorded run.
//!
//! The JSON this module emits follows the Trace Event Format that
//! `ui.perfetto.dev` and `chrome://tracing` load directly: a top-level
//! `traceEvents` array of `M` (metadata), `X` (complete/duration), `i`
//! (instant) and `C` (counter) events. The mapping:
//!
//! * each simulated **node is a process** (`pid` = node id), named via
//!   `process_name` metadata;
//! * `tid` 0 is the node's **scan engine** (triangle spans, discard
//!   instants), `tid` 1 its **texture bus** (line-fill spans);
//! * the **FIFO depth** is a per-node counter track, stepped at every
//!   push/pop;
//! * one simulated **cycle is rendered as one microsecond** (`ts`/`dur`
//!   are µs in the trace format; cycle counts read directly off the
//!   Perfetto timeline).
//!
//! [`chrome_trace_with_host`] additionally renders a [`HostProfile`]'s
//! wall-time phase spans as one extra process ([`HOST_PID`], well above
//! any node id) with one thread track per host-thread lane. Host spans
//! keep their **nanosecond** integers verbatim in `ts`/`dur` (so 1 ns
//! renders as 1 µs and wall nanoseconds read directly off the timeline);
//! host and simulated tracks are different time domains that merely
//! coexist in one document.

use crate::host::HostProfile;
use crate::sink::TraceRecorder;
use crate::TraceEvent;
use sortmid_devharness::json::Json;

/// The `pid` of the synthetic "host" process in a combined trace — far
/// above any simulated node id (the paper's grids top out at 64 nodes).
pub const HOST_PID: u32 = 1000;

fn meta_event(name: &str, pid: u32, tid: Option<u32>, value: &str) -> Json {
    let mut fields = vec![
        ("name".to_string(), Json::str(name)),
        ("ph".to_string(), Json::str("M")),
        ("pid".to_string(), Json::U64(pid as u64)),
    ];
    if let Some(tid) = tid {
        fields.push(("tid".to_string(), Json::U64(tid as u64)));
    }
    fields.push((
        "args".to_string(),
        Json::obj([("name", Json::str(value))]),
    ));
    Json::Obj(fields)
}

fn complete_event(
    name: String,
    cat: &str,
    pid: u32,
    tid: u32,
    ts: u64,
    dur: u64,
    args: Vec<(String, Json)>,
) -> Json {
    Json::obj([
        ("name", Json::Str(name)),
        ("cat", Json::str(cat)),
        ("ph", Json::str("X")),
        ("ts", Json::U64(ts)),
        ("dur", Json::U64(dur)),
        ("pid", Json::U64(pid as u64)),
        ("tid", Json::U64(tid as u64)),
        ("args", Json::Obj(args)),
    ])
}

/// Exports a recorded run as a Chrome-trace-event document.
///
/// `node_labels[i]` names node `i`'s process track (e.g. its cache model);
/// nodes beyond the slice fall back to `node <i>`.
///
/// # Examples
///
/// ```
/// use sortmid_observe::{chrome_trace, TraceEvent, TraceRecorder, TraceSink};
///
/// let mut rec = TraceRecorder::new();
/// rec.record(TraceEvent::TriStart { node: 0, tri: 0, at: 0, frags: 2 });
/// rec.record(TraceEvent::TriRetire { node: 0, tri: 0, at: 25 });
/// let doc = chrome_trace(&rec, &[]);
/// let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
/// assert!(events.iter().any(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X")));
/// ```
pub fn chrome_trace(rec: &TraceRecorder, node_labels: &[String]) -> Json {
    let mut events: Vec<Json> = Vec::new();
    let nodes = rec.node_count();

    for node in 0..nodes {
        let label = node_labels
            .get(node as usize)
            .cloned()
            .unwrap_or_else(|| format!("node {node}"));
        events.push(meta_event("process_name", node, None, &label));
        events.push(meta_event("thread_name", node, Some(0), "engine"));
        events.push(meta_event("thread_name", node, Some(1), "texture-bus"));
    }

    // Engine and bus spans, plus discard instants, straight from events.
    for e in rec.events() {
        match *e {
            TraceEvent::BusFill { node, line, at, cost } => {
                events.push(complete_event(
                    format!("fill L{line}"),
                    "bus",
                    node,
                    1,
                    at,
                    cost,
                    vec![("line".to_string(), Json::U64(line as u64))],
                ));
            }
            TraceEvent::TriDiscard { node, tri, at } => {
                events.push(Json::obj([
                    ("name", Json::Str(format!("discard tri {tri}"))),
                    ("cat", Json::str("discard")),
                    ("ph", Json::str("i")),
                    ("ts", Json::U64(at)),
                    ("pid", Json::U64(node as u64)),
                    ("tid", Json::U64(0)),
                    ("s", Json::str("t")),
                ]));
            }
            _ => {}
        }
    }

    // Triangle spans need start/retire pairing per node.
    for node in 0..nodes {
        for (start, end, tri) in rec.triangle_spans(node) {
            events.push(complete_event(
                format!("tri {tri}"),
                "triangle",
                node,
                0,
                start,
                end - start,
                vec![("tri".to_string(), Json::U64(tri as u64))],
            ));
        }

        // FIFO depth as a counter track, one sample per change.
        let mut depth: i64 = 0;
        let mut last_at: Option<u64> = None;
        for (at, step) in rec.fifo_steps(node) {
            depth += step;
            // Coalesce simultaneous steps into the final value at `at`.
            if last_at == Some(at) {
                if let Some(Json::Obj(fields)) = events.last_mut() {
                    if let Some((_, args)) = fields.iter_mut().find(|(k, _)| k == "args") {
                        *args = Json::obj([("triangles", Json::U64(depth.max(0) as u64))]);
                        continue;
                    }
                }
            }
            last_at = Some(at);
            events.push(Json::obj([
                ("name", Json::str("fifo-depth")),
                ("ph", Json::str("C")),
                ("ts", Json::U64(at)),
                ("pid", Json::U64(node as u64)),
                ("args", Json::obj([("triangles", Json::U64(depth.max(0) as u64))])),
            ]));
        }
    }

    Json::obj([
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::str("ms")),
    ])
}

/// Exports a recorded run *plus* a sealed [`HostProfile`] as one
/// Chrome-trace document: the simulated node tracks of [`chrome_trace`]
/// and, under process [`HOST_PID`], one thread track per host-thread lane
/// carrying the profile's phase spans (`ts`/`dur` are the span's wall
/// nanoseconds, verbatim — see the module docs).
///
/// # Examples
///
/// ```
/// use sortmid_observe::{chrome_trace_with_host, HostProfiler, HostSink,
///                       TraceRecorder, HOST_PID};
/// use sortmid_devharness::json::Json;
///
/// let prof = HostProfiler::new();
/// { let _s = prof.span("plan-build"); }
/// let doc = chrome_trace_with_host(&TraceRecorder::new(), &[], &prof.finish());
/// let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
/// assert!(events.iter().any(|e| {
///     e.get("pid").and_then(Json::as_u64) == Some(HOST_PID as u64)
///         && e.get("cat").and_then(Json::as_str) == Some("host")
/// }));
/// ```
pub fn chrome_trace_with_host(
    rec: &TraceRecorder,
    node_labels: &[String],
    host: &HostProfile,
) -> Json {
    let mut doc = chrome_trace(rec, node_labels);
    let Json::Obj(fields) = &mut doc else {
        unreachable!("chrome_trace always emits an object");
    };
    let Some((_, Json::Arr(events))) = fields.iter_mut().find(|(k, _)| k == "traceEvents") else {
        unreachable!("chrome_trace always emits a traceEvents array");
    };

    events.push(meta_event("process_name", HOST_PID, None, "host"));
    let lanes = host
        .spans
        .iter()
        .map(|s| s.thread)
        .max()
        .map_or(0, |max| max + 1);
    for lane in 0..lanes {
        let label = if lane == 0 {
            "host-main".to_string()
        } else {
            format!("host-worker {lane}")
        };
        events.push(meta_event("thread_name", HOST_PID, Some(lane), &label));
    }

    for span in &host.spans {
        events.push(complete_event(
            span.name.to_string(),
            "host",
            HOST_PID,
            span.thread,
            span.start_ns,
            span.dur_ns(),
            vec![("depth".to_string(), Json::U64(span.depth as u64))],
        ));
    }
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceSink;

    fn sample_recorder() -> TraceRecorder {
        let mut rec = TraceRecorder::new();
        rec.record(TraceEvent::FifoPush { node: 0, at: 0 });
        rec.record(TraceEvent::FifoPop { node: 0, at: 5 });
        rec.record(TraceEvent::TriStart { node: 0, tri: 3, at: 5, frags: 2 });
        rec.record(TraceEvent::BusFill { node: 0, line: 9, at: 6, cost: 16 });
        rec.record(TraceEvent::TriRetire { node: 0, tri: 3, at: 30 });
        rec.record(TraceEvent::TriDiscard { node: 1, tri: 3, at: 5 });
        rec
    }

    #[test]
    fn document_round_trips_through_the_parser() {
        let doc = chrome_trace(&sample_recorder(), &["16KB".to_string()]);
        let text = doc.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.render(), text);
    }

    #[test]
    fn has_metadata_spans_counters_and_instants() {
        let doc = chrome_trace(&sample_recorder(), &[]);
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let phase = |ph: &str| {
            events
                .iter()
                .filter(|e| e.get("ph").and_then(Json::as_str) == Some(ph))
                .count()
        };
        assert_eq!(phase("M"), 6, "2 nodes x (process + 2 thread names)");
        assert_eq!(phase("X"), 2, "one triangle span + one bus fill");
        assert_eq!(phase("C"), 2, "fifo push + pop samples");
        assert_eq!(phase("i"), 1, "one discard instant");
    }

    #[test]
    fn host_tracks_coexist_with_simulated_tracks() {
        use crate::host::{HostProfiler, HostSink};

        let prof = HostProfiler::new();
        {
            let _outer = prof.span("run-sweep");
            let _inner = prof.span("plan-build");
        }
        let profile = prof.finish();
        let doc = chrome_trace_with_host(&sample_recorder(), &[], &profile);
        let text = doc.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.render(), text);

        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let host_spans: Vec<_> = events
            .iter()
            .filter(|e| e.get("cat").and_then(Json::as_str) == Some("host"))
            .collect();
        assert_eq!(host_spans.len(), 2);
        for e in &host_spans {
            assert_eq!(e.get("pid").and_then(Json::as_u64), Some(HOST_PID as u64));
        }
        // Simulated tracks are untouched: same events as plain chrome_trace.
        let plain = chrome_trace(&sample_recorder(), &[]);
        let plain_n = plain.get("traceEvents").unwrap().as_arr().unwrap().len();
        // host additions: 1 process meta + 1 thread meta + 2 spans
        assert_eq!(events.len(), plain_n + 4);
        // Nanosecond integers survive verbatim.
        let inner = host_spans
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("plan-build"))
            .unwrap();
        let ts = inner.get("ts").and_then(Json::as_u64).unwrap();
        let dur = inner.get("dur").and_then(Json::as_u64).unwrap();
        let rec = profile
            .spans
            .iter()
            .find(|s| s.name == "plan-build")
            .unwrap();
        assert_eq!((ts, dur), (rec.start_ns, rec.dur_ns()));
    }

    #[test]
    fn triangle_span_duration_matches_retire() {
        let doc = chrome_trace(&sample_recorder(), &[]);
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let tri = events
            .iter()
            .find(|e| e.get("cat").and_then(Json::as_str) == Some("triangle"))
            .unwrap();
        assert_eq!(tri.get("ts").and_then(Json::as_u64), Some(5));
        assert_eq!(tri.get("dur").and_then(Json::as_u64), Some(25));
    }
}
