//! Deterministic work-stealing task scheduler for the sweep pipeline.
//!
//! Per-config cost varies by an order of magnitude across the sweep's
//! direct / captured / stack-distance-replay paths, so a static chunked
//! schedule leaves the wall clock hostage to its slowest chunk. This
//! module schedules the pipeline dynamically while keeping the *results*
//! bit-for-bit deterministic:
//!
//! * **Preassigned output slots.** A task never returns a value through
//!   the scheduler — it writes its own slot (the sweep uses one
//!   [`std::sync::OnceLock`] per plan/capture/evaluation/report). Which
//!   worker runs a task, and in which order, changes only wall time.
//! * **Dependency-ordered batches.** [`TaskGraph`] edges must point at
//!   earlier-added tasks ([`TaskGraph::depend`] asserts it), so the graph
//!   is acyclic by construction and [`run_graph`] can never deadlock: a
//!   task enters a worker queue only after its last dependency completed.
//! * **LPT dispatch.** Tasks carry cost estimates (see [`CostModel`]).
//!   Dependency-free tasks are seeded greedily, longest first, onto the
//!   least-loaded worker ([`lpt_order`]); released dependents are queued
//!   so the owner pops the longest next. Longest-Processing-Time-first
//!   shrinks the idle tail that static chunking suffers.
//! * **Work stealing.** Each worker owns a deque: it pops its own back
//!   (freshest, longest), and when empty steals from the front of the
//!   deepest victim queue. Tasks are coarse (a plan build, a trace
//!   evaluation, a config simulation — microseconds to milliseconds), so
//!   a mutex per deque is nowhere near any hot path and keeps the pool
//!   dependency-free safe `std`.
//!
//! Instrumentation (all folded away under
//! [`NullHostSink`](sortmid_observe::NullHostSink)): a `scheduler` span
//! around each batch, a `worker-run` span plus a `sched-pool` utilization
//! record per worker, `sweep.claims`/`sweep.steals` counters, and
//! per-worker `sweep.queue_depth.*` high-water gauges.

use sortmid_observe::HostSink;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Per-worker queue-depth gauge names ([`HostSink::gauge_max`] needs
/// `&'static str`); workers past the table share the last name.
const QUEUE_DEPTH_GAUGES: [&str; 16] = [
    "sweep.queue_depth.w00",
    "sweep.queue_depth.w01",
    "sweep.queue_depth.w02",
    "sweep.queue_depth.w03",
    "sweep.queue_depth.w04",
    "sweep.queue_depth.w05",
    "sweep.queue_depth.w06",
    "sweep.queue_depth.w07",
    "sweep.queue_depth.w08",
    "sweep.queue_depth.w09",
    "sweep.queue_depth.w10",
    "sweep.queue_depth.w11",
    "sweep.queue_depth.w12",
    "sweep.queue_depth.w13",
    "sweep.queue_depth.w14",
    "sweep.queue_depth.w15",
];

fn queue_gauge(worker: usize) -> &'static str {
    QUEUE_DEPTH_GAUGES[worker.min(QUEUE_DEPTH_GAUGES.len() - 1)]
}

/// Task indices ordered longest-estimated-first: descending cost, ties
/// broken by ascending index so the order is a deterministic permutation
/// of `0..costs.len()`.
pub fn lpt_order(costs: &[u64]) -> Vec<u32> {
    let mut order: Vec<u32> = (0..costs.len() as u32).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(costs[i as usize]), i));
    order
}

/// A dependency-ordered batch of costed tasks for [`run_graph`].
///
/// Tasks are identified by their insertion index. Edges point backward
/// (a task may only depend on earlier-added tasks), which makes the graph
/// a DAG by construction — the price is that callers add tasks in
/// topological order, which the sweep's pipeline shape (plans → lanes /
/// captures → evaluations → configs) gives for free.
#[derive(Debug, Default)]
pub struct TaskGraph {
    costs: Vec<u64>,
    dep_count: Vec<u32>,
    dependents: Vec<Vec<u32>>,
}

impl TaskGraph {
    /// An empty graph.
    pub fn new() -> Self {
        TaskGraph::default()
    }

    /// An empty graph with room for `n` tasks.
    pub fn with_capacity(n: usize) -> Self {
        TaskGraph {
            costs: Vec::with_capacity(n),
            dep_count: Vec::with_capacity(n),
            dependents: Vec::with_capacity(n),
        }
    }

    /// Adds a task with estimated cost `cost` (any unit, used only for
    /// LPT ordering) and returns its index.
    pub fn add(&mut self, cost: u64) -> usize {
        self.costs.push(cost);
        self.dep_count.push(0);
        self.dependents.push(Vec::new());
        self.costs.len() - 1
    }

    /// Declares that `task` must run after `on`.
    ///
    /// # Panics
    ///
    /// Panics unless `on < task` (edges point backward — see the type
    /// docs) or either index is out of range.
    pub fn depend(&mut self, task: usize, on: usize) {
        assert!(
            on < task && task < self.costs.len(),
            "dependency edges must point at earlier-added tasks (task {task}, on {on})"
        );
        self.dep_count[task] += 1;
        self.dependents[on].push(task as u32);
    }

    /// Number of tasks added so far.
    pub fn len(&self) -> usize {
        self.costs.len()
    }

    /// Whether the graph holds no tasks.
    pub fn is_empty(&self) -> bool {
        self.costs.is_empty()
    }

    /// The estimated cost `task` was added with.
    pub fn cost(&self, task: usize) -> u64 {
        self.costs[task]
    }
}

/// Sets the abort flag when its worker unwinds, so sibling workers stop
/// spinning instead of waiting for tasks that will never complete.
struct AbortOnPanic<'a>(&'a AtomicBool);

impl Drop for AbortOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.store(true, Ordering::Release);
        }
    }
}

/// Executes every task in `graph` exactly once across `workers` host
/// threads (the calling thread is worker 0), respecting dependency order.
/// `exec(task, worker)` runs the task body; results must go into the
/// task's preassigned output slot, never through the scheduler — that is
/// what keeps the output independent of the steal interleaving.
///
/// Runs under a `scheduler` span; each worker runs under a `worker-run`
/// span and reports a `sched-pool` utilization record plus its share of
/// the `sweep.claims`/`sweep.steals` counters.
///
/// # Panics
///
/// Propagates task panics (sibling workers drain and stop early).
pub fn run_graph<S: HostSink>(
    graph: TaskGraph,
    workers: usize,
    sink: &S,
    exec: &(impl Fn(usize, usize) + Sync),
) {
    let n = graph.len();
    if n == 0 {
        return;
    }
    let _sched = sink.span("scheduler");
    let workers = workers.clamp(1, n);
    if S::ENABLED {
        sink.count("sweep.tasks", n as u64);
    }

    let mut graph = graph;
    // Released dependents are pushed in ascending-cost order, so the last
    // push — the one the owner pops next — is the longest (LPT at every
    // release point, not just the seed).
    for deps in &mut graph.dependents {
        deps.sort_by_key(|&d| (graph.costs[d as usize], d));
    }

    // Seed the dependency-free tasks greedily, longest first, onto the
    // least-loaded worker. push_front keeps each deque's *back* — the
    // owner's pop end — holding its longest seed.
    let mut seeds: Vec<VecDeque<u32>> = (0..workers).map(|_| VecDeque::new()).collect();
    let mut load = vec![0u64; workers];
    for t in lpt_order(&graph.costs) {
        if graph.dep_count[t as usize] > 0 {
            continue;
        }
        let w = (0..workers)
            .min_by_key(|&w| (load[w], w))
            .expect("at least one worker");
        load[w] += graph.costs[t as usize].max(1);
        seeds[w].push_front(t);
    }
    let queues: Vec<Mutex<VecDeque<u32>>> = seeds.into_iter().map(Mutex::new).collect();
    let dep_count: Vec<AtomicU32> = graph.dep_count.iter().map(|&d| AtomicU32::new(d)).collect();
    let remaining = AtomicUsize::new(n);
    let abort = AtomicBool::new(false);
    let graph = &graph;

    let worker_loop = |widx: usize| {
        let _bail = AbortOnPanic(&abort);
        let _span = sink.span("worker-run");
        let t_start = S::ENABLED.then(Instant::now);
        let (mut busy, mut items, mut claims, mut steals) = (0u64, 0u64, 0u64, 0u64);
        loop {
            if abort.load(Ordering::Acquire) || remaining.load(Ordering::Acquire) == 0 {
                break;
            }
            // Own queue first; otherwise steal from the deepest victim's
            // front (its oldest seed), leaving the owner its pop end.
            let mut task = queues[widx].lock().expect("queue poisoned").pop_back();
            let mut stolen = false;
            if task.is_none() {
                let victim = (0..queues.len())
                    .filter(|&v| v != widx)
                    .map(|v| (queues[v].lock().expect("queue poisoned").len(), v))
                    .filter(|&(len, _)| len > 0)
                    .max_by_key(|&(len, v)| (len, usize::MAX - v));
                if let Some((_, v)) = victim {
                    task = queues[v].lock().expect("queue poisoned").pop_front();
                    stolen = task.is_some();
                }
            }
            let Some(t) = task else {
                // Every queue looked empty but tasks remain in flight on
                // other workers; their dependents are not released yet.
                std::thread::yield_now();
                continue;
            };
            if stolen {
                steals += 1;
            } else {
                claims += 1;
            }
            let t0 = S::ENABLED.then(Instant::now);
            exec(t as usize, widx);
            if let Some(t0) = t0 {
                busy += t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            }
            items += 1;
            for &d in &graph.dependents[t as usize] {
                if dep_count[d as usize].fetch_sub(1, Ordering::AcqRel) == 1 {
                    let mut q = queues[widx].lock().expect("queue poisoned");
                    q.push_back(d);
                    if S::ENABLED {
                        sink.gauge_max(queue_gauge(widx), q.len() as u64);
                    }
                }
            }
            // Decremented after the dependents are queued, so "remaining
            // == 0" really means "nothing left anywhere".
            remaining.fetch_sub(1, Ordering::AcqRel);
        }
        if let Some(t_start) = t_start {
            let wall = t_start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            sink.worker("sched-pool", widx as u32, wall, busy, items);
            sink.count("sweep.claims", claims);
            sink.count("sweep.steals", steals);
        }
    };

    if workers == 1 {
        worker_loop(0);
    } else {
        let worker_loop = &worker_loop;
        std::thread::scope(|scope| {
            for w in 1..workers {
                scope.spawn(move || worker_loop(w));
            }
            worker_loop(0);
        });
    }
    assert_eq!(
        remaining.load(Ordering::Acquire),
        0,
        "the scheduler must drain the whole task graph"
    );
}

/// Host-cost estimates for the sweep's task kinds, in nanoseconds,
/// scaled by the stream's fragment count.
///
/// The per-fragment rates are seeded from the committed
/// `METRICS_sweep.json` `host.run_ns.*` histograms and phase totals
/// (reference grid + dense replay lane on the bench host). Absolute
/// accuracy is not the point — LPT only needs the *ordering* to be right,
/// and the profiled sweep records the model's predicted-vs-actual error
/// as the `sweep.cost_err_pct` histogram so drift stays visible.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    fragments: u64,
}

/// Per-fragment nanosecond rates (see [`CostModel`]). Kept together so a
/// recalibration against a fresh `METRICS_sweep.json` is one edit;
/// current values come from the bench-host phase totals and
/// `host.run_ns.*` means over the 27k-fragment reference scene.
mod rates {
    /// Direct plan-replay simulation of one config (`grid/per-config`
    /// lane median minus one plan build).
    pub const DIRECT: f64 = 33.0;
    /// Engine/FIFO replay of a shared (plan, cache-model) capture
    /// (`host.run_ns.captured` mean).
    pub const CAPTURED: f64 = 6.2;
    /// Report synthesis from a stack-distance evaluation
    /// (`host.run_ns.replay` mean) — every cycle category is priced from
    /// the distance histograms, which costs more than re-walking a
    /// capture's classification.
    pub const REPLAY: f64 = 10.6;
    /// Routing-plan build (owner LUT + counting sort; `plan-build`
    /// phase total / count).
    pub const PLAN: f64 = 7.9;
    /// Struct-of-arrays lane pivot of one plan (`lane-pivot` span).
    pub const LANES: f64 = 7.8;
    /// One cache-model capture pass over a plan's buckets (`capture`
    /// phase total / count).
    pub const CAPTURE: f64 = 17.7;
    /// One trace pass of the stack-distance machinery — multiplied by
    /// [`sortmid_cache::evaluation_cost_weight`]'s pass count
    /// (`trace-eval` span / weight(requests)).
    pub const TRACE_PASS: f64 = 23.0;
}

impl CostModel {
    /// A model scaled to a stream of `fragments` fragments.
    pub fn for_stream(fragments: u64) -> Self {
        CostModel { fragments }
    }

    fn scaled(&self, rate: f64) -> u64 {
        ((self.fragments as f64 * rate) as u64).max(1)
    }

    /// Estimated cost of building one routing plan.
    pub fn plan_build(&self) -> u64 {
        self.scaled(rates::PLAN)
    }

    /// Estimated cost of pivoting one plan into SoA lanes.
    pub fn lane_pivot(&self) -> u64 {
        self.scaled(rates::LANES)
    }

    /// Estimated cost of one (plan, cache-model) capture pass.
    pub fn capture(&self) -> u64 {
        self.scaled(rates::CAPTURE)
    }

    /// Estimated cost of evaluating `requests` geometries from one plan's
    /// line trace (Mattson walk or direct backend, whichever
    /// [`sortmid_cache::evaluate_trace_auto`] would pick).
    pub fn trace_eval(&self, requests: usize) -> u64 {
        self.scaled(rates::TRACE_PASS)
            .saturating_mul(sortmid_cache::evaluation_cost_weight(requests))
    }

    /// Estimated cost of one direct config simulation.
    pub fn run_direct(&self) -> u64 {
        self.scaled(rates::DIRECT)
    }

    /// Estimated cost of one captured-path config replay.
    pub fn run_captured(&self) -> u64 {
        self.scaled(rates::CAPTURED)
    }

    /// Estimated cost of one replay-path report synthesis.
    pub fn run_replay(&self) -> u64 {
        self.scaled(rates::REPLAY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sortmid_observe::{HostProfiler, NullHostSink};
    use std::sync::atomic::AtomicU64;

    /// Deterministic pseudo-random costs (no external RNG in the
    /// workspace by design).
    fn lcg_costs(n: usize, seed: u64) -> Vec<u64> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                state >> 40
            })
            .collect()
    }

    #[test]
    fn lpt_order_is_a_permutation_sorted_by_descending_cost() {
        for seed in [1u64, 7, 42, 1 << 33] {
            let costs = lcg_costs(257, seed);
            let order = lpt_order(&costs);
            assert_eq!(order.len(), costs.len());
            // Never drops or duplicates an index: sorting the permutation
            // back must give exactly 0..n.
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert!(
                sorted.iter().enumerate().all(|(i, &t)| i as u32 == t),
                "lpt_order dropped or duplicated an index (seed {seed})"
            );
            for pair in order.windows(2) {
                let (a, b) = (costs[pair[0] as usize], costs[pair[1] as usize]);
                assert!(a > b || (a == b && pair[0] < pair[1]), "descending, ties by index");
            }
        }
    }

    #[test]
    fn lpt_order_of_equal_costs_is_identity() {
        assert_eq!(lpt_order(&[5, 5, 5, 5]), vec![0, 1, 2, 3]);
        assert_eq!(lpt_order(&[]), Vec::<u32>::new());
    }

    #[test]
    fn run_graph_executes_every_task_exactly_once() {
        for workers in [1usize, 2, 3, 8] {
            let costs = lcg_costs(100, 9);
            let mut graph = TaskGraph::with_capacity(costs.len());
            for &c in &costs {
                graph.add(c);
            }
            let runs: Vec<AtomicU64> = (0..costs.len()).map(|_| AtomicU64::new(0)).collect();
            run_graph(graph, workers, &NullHostSink, &|t, _w| {
                runs[t].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                runs.iter().all(|r| r.load(Ordering::Relaxed) == 1),
                "every task ran exactly once on {workers} workers"
            );
        }
    }

    #[test]
    fn run_graph_respects_dependency_order() {
        // A fan-in/fan-out diamond repeated 32 times: children must always
        // observe their parents' completion stamps.
        let mut graph = TaskGraph::new();
        let mut edges = Vec::new();
        for _ in 0..32 {
            let a = graph.add(3);
            let b = graph.add(2);
            let c = graph.add(2);
            let d = graph.add(1);
            graph.depend(b, a);
            graph.depend(c, a);
            graph.depend(d, b);
            graph.depend(d, c);
            edges.extend([(a, b), (a, c), (b, d), (c, d)]);
        }
        let ticket = AtomicU64::new(0);
        let stamp: Vec<AtomicU64> = (0..graph.len()).map(|_| AtomicU64::new(0)).collect();
        run_graph(graph, 4, &NullHostSink, &|t, _w| {
            stamp[t].store(1 + ticket.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
        });
        for (parent, child) in edges {
            let (p, c) = (
                stamp[parent].load(Ordering::Relaxed),
                stamp[child].load(Ordering::Relaxed),
            );
            assert!(p != 0 && c != 0 && p < c, "task {parent} must finish before {child}");
        }
    }

    #[test]
    #[should_panic(expected = "earlier-added tasks")]
    fn forward_dependency_edges_are_rejected() {
        let mut graph = TaskGraph::new();
        let a = graph.add(1);
        let b = graph.add(1);
        graph.depend(a, b);
    }

    #[test]
    fn pool_accounting_covers_every_task() {
        let prof = HostProfiler::new();
        let mut graph = TaskGraph::new();
        let tasks: Vec<usize> = (0..40).map(|i| graph.add(i as u64 + 1)).collect();
        for &t in tasks.iter().skip(20) {
            graph.depend(t, tasks[t % 20]);
        }
        run_graph(graph, 3, &prof, &|_, _| {});
        let profile = prof.finish();
        profile.verify().expect("scheduler spans and records are well-formed");

        let pool: Vec<_> = profile.workers.iter().filter(|w| w.lane == "sched-pool").collect();
        assert_eq!(pool.len(), 3, "one sched-pool record per worker");
        assert_eq!(pool.iter().map(|w| w.items).sum::<u64>(), 40);

        let counters = profile.metrics.get("counters").expect("counters object");
        let counter =
            |name: &str| counters.get(name).and_then(sortmid_devharness::Json::as_u64).unwrap_or(0);
        assert_eq!(counter("sweep.tasks"), 40);
        assert_eq!(
            counter("sweep.claims") + counter("sweep.steals"),
            40,
            "every task is either claimed or stolen"
        );
        assert!(
            profile.spans.iter().any(|s| s.name == "scheduler"),
            "the batch runs under a scheduler span"
        );
        assert_eq!(
            profile.spans.iter().filter(|s| s.name == "worker-run").count(),
            3,
            "one worker-run span per worker"
        );
    }

    #[test]
    fn cost_model_orders_paths_sanely() {
        let model = CostModel::for_stream(100_000);
        // Direct simulation dominates; replay synthesis prices every
        // cycle category from the distance histograms, which measures
        // costlier than re-walking a capture's classification.
        assert!(model.run_direct() > model.run_replay());
        assert!(model.run_replay() > model.run_captured());
        assert!(model.trace_eval(102) > model.trace_eval(12));
        // A dense evaluation is the most expensive single task in the
        // dense lane — the LPT seed must front-load it.
        assert!(model.trace_eval(102) > model.run_replay());
    }
}
