//! Figure 5 bench: load-balance analysis and perfect-cache speedups.

use criterion::{criterion_group, criterion_main, Criterion};
use sortmid::{work, CacheKind, Distribution};
use sortmid_bench::{run_machine, stream};
use sortmid_scene::Benchmark;
use std::hint::black_box;

fn bench_fig5(c: &mut Criterion) {
    let s = stream(Benchmark::Massive32_11255);
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);

    group.bench_function("imbalance/block-16/64p", |b| {
        b.iter(|| black_box(work::pixel_imbalance(&s, &Distribution::block(16), 64)));
    });
    group.bench_function("imbalance/sli-4/64p", |b| {
        b.iter(|| black_box(work::pixel_imbalance(&s, &Distribution::sli(4), 64)));
    });
    group.bench_function("speedup/perfect/block-16/64p", |b| {
        b.iter(|| {
            black_box(run_machine(
                &s,
                64,
                Distribution::block(16),
                CacheKind::Perfect,
                Some(1.0),
                10_000,
            ))
        });
    });
    group.finish();

    // One-shot artefact: the imbalance series of Figure 5 at bench scale.
    println!("\nFigure 5 imbalance (32massive11255, 64 processors):");
    for w in [4u32, 8, 16, 32, 64, 128] {
        println!(
            "  block-{w:<3} {:>8.1}%",
            work::pixel_imbalance(&s, &Distribution::block(w), 64)
        );
    }
    for l in [1u32, 2, 4, 8, 16, 32] {
        println!(
            "  sli-{l:<5} {:>8.1}%",
            work::pixel_imbalance(&s, &Distribution::sli(l), 64)
        );
    }
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
