//! `sortmid-experiments` — regenerate every table and figure of the paper.
//!
//! ```text
//! sortmid-experiments <command> [--scale S] [--ratio R] [--out DIR] [--csv] [--trace]
//!
//! commands:
//!   table1      Table 1  — benchmark scene characteristics
//!   fig5        Figure 5 — load balancing (imbalance + perfect-cache speedups)
//!   fig6        Figure 6 — texel-to-fragment ratio vs processors
//!   fig7        Figure 7 — machine speedups (--ratio 1 or 2)
//!   fig8        Figure 8 — block width x triangle-buffer size (--trace adds
//!               the FIFO-starvation cycle share behind the speedup grid)
//!   fig9        Figure 9 — benchmark images (PPM, into --out)
//!   ablations   prefetch window, cache geometry, block skew, dynamic SLI,
//!               L2 (+ inter-frame pan), sort-last, miss classes, tile shape
//!   seeds       headline conclusion across 5 generator seeds
//!   all         every table/figure/ablation above in order
//!
//!   capture <benchmark>      generate a scene + fragment-stream trace (--out DIR)
//!   replay <trace.smfs>      run one machine over a captured trace
//!                            (--procs N --dist block-16|sli-4 --ratio R --buffer B)
//! ```

use sortmid_experiments::{ablations, fig5, fig6, fig7, fig8, fig9, seeds, table1};
use sortmid_util::chart::{Chart, Series};
use sortmid_util::table::Table;
use std::path::PathBuf;
use std::process::ExitCode;

#[derive(Debug)]
struct Options {
    command: String,
    target: Option<String>,
    scale: f64,
    ratio: f64,
    out: PathBuf,
    csv: bool,
    procs: u32,
    dist: String,
    buffer: usize,
    trace: bool,
    heatmap: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or_else(usage)?;
    // Per-command default scales: load-balance geometry (fig5) needs a
    // large screen to keep block-128 meaningful; cache sweeps are costlier.
    let default_scale = match command.as_str() {
        "fig5" => 1.0,
        "seeds" => 0.3,
        "table1" | "fig9" => 0.35,
        _ => 0.3,
    };
    let mut opt = Options {
        command,
        target: None,
        scale: default_scale,
        ratio: 1.0,
        out: PathBuf::from("target/fig9"),
        csv: false,
        procs: 16,
        dist: "block-16".to_string(),
        buffer: 10_000,
        trace: false,
        heatmap: false,
    };
    while let Some(flag) = args.next() {
        if !flag.starts_with("--") && opt.target.is_none() {
            opt.target = Some(flag);
            continue;
        }
        match flag.as_str() {
            "--procs" => {
                let v = args.next().ok_or("--procs needs a value")?;
                opt.procs = v.parse().map_err(|_| format!("bad procs '{v}'"))?;
            }
            "--dist" => {
                opt.dist = args.next().ok_or("--dist needs a value")?;
            }
            "--buffer" => {
                let v = args.next().ok_or("--buffer needs a value")?;
                opt.buffer = v.parse().map_err(|_| format!("bad buffer '{v}'"))?;
            }
            "--scale" => {
                let v = args.next().ok_or("--scale needs a value")?;
                opt.scale = v.parse().map_err(|_| format!("bad scale '{v}'"))?;
                if !(opt.scale > 0.0 && opt.scale <= 4.0) {
                    return Err(format!("scale {v} outside (0, 4]"));
                }
            }
            "--ratio" => {
                let v = args.next().ok_or("--ratio needs a value")?;
                opt.ratio = v.parse().map_err(|_| format!("bad ratio '{v}'"))?;
            }
            "--out" => {
                opt.out = PathBuf::from(args.next().ok_or("--out needs a value")?);
            }
            "--csv" => opt.csv = true,
            "--trace" => opt.trace = true,
            "--heatmap" => opt.heatmap = true,
            other => return Err(format!("unknown flag '{other}'\n{}", usage())),
        }
    }
    Ok(opt)
}

fn usage() -> String {
    "usage: sortmid-experiments <table1|fig5|fig6|fig7|fig8|fig9|ablations|seeds|all> \
     [--scale S] [--ratio R] [--out DIR] [--csv] [--trace] [--heatmap]\n\
     \x20      sortmid-experiments capture <benchmark> [--scale S] [--out DIR]\n\
     \x20      sortmid-experiments replay <trace.smfs> [--procs N] [--dist D] \
     [--ratio R] [--buffer B]"
        .to_string()
}

fn capture(opt: &Options) -> Result<(), String> {
    use sortmid_scene::{Benchmark, SceneBuilder};
    let name = opt.target.as_deref().ok_or("capture needs a benchmark name")?;
    let benchmark: Benchmark = name.parse().map_err(|e| format!("{e}"))?;
    let scene = SceneBuilder::benchmark(benchmark).scale(opt.scale).build();
    let stream = scene.rasterize();
    std::fs::create_dir_all(&opt.out).map_err(|e| format!("create {}: {e}", opt.out.display()))?;
    let stem = name.replace('.', "_");
    let scene_path = opt.out.join(format!("{stem}.smsc"));
    let stream_path = opt.out.join(format!("{stem}.smfs"));
    let sf = std::fs::File::create(&scene_path).map_err(|e| format!("{e}"))?;
    sortmid_scene::write_scene(std::io::BufWriter::new(sf), &scene).map_err(|e| format!("{e}"))?;
    let tf = std::fs::File::create(&stream_path).map_err(|e| format!("{e}"))?;
    sortmid_raster::write_stream(std::io::BufWriter::new(tf), &stream).map_err(|e| format!("{e}"))?;
    println!(
        "captured {name} at scale {}: {} ({} triangles) and {} ({} fragments)",
        opt.scale,
        scene_path.display(),
        scene.triangles().len(),
        stream_path.display(),
        stream.fragment_count()
    );
    Ok(())
}

fn replay(opt: &Options) -> Result<(), String> {
    use sortmid::{CacheKind, Distribution, Machine, MachineConfig};
    let path = opt.target.as_deref().ok_or("replay needs a trace path")?;
    let file = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    let stream =
        sortmid_raster::read_stream(std::io::BufReader::new(file)).map_err(|e| format!("{e}"))?;
    let dist: Distribution = opt.dist.parse().map_err(|e| format!("{e}"))?;
    let build = |procs: u32| {
        MachineConfig::builder()
            .processors(procs)
            .distribution(dist.clone())
            .cache(CacheKind::PaperL1)
            .bus_ratio(opt.ratio)
            .triangle_buffer(opt.buffer)
            .build()
            .map_err(|e| format!("{e}"))
    };
    let baseline = Machine::new(build(1)?).run(&stream);
    let report = Machine::new(build(opt.procs)?).run(&stream);
    println!("trace    : {path} ({} fragments, {} triangles)", stream.fragment_count(), stream.triangle_count());
    println!("machine  : {}", report.summary());
    println!("cycles   : {}", report.total_cycles());
    println!("speedup  : {:.2}x vs 1 processor", report.speedup_vs(&baseline));
    println!("texel/frag: {:.3}", report.texel_to_fragment());
    println!("imbalance: {:.1}% (pixels), {:.1}% (busy cycles)", report.pixel_imbalance_percent(), report.busy_imbalance_percent());
    println!("overlap  : {:.2} nodes/triangle", report.overlap_factor());
    println!("stalls   : {} engine cycles on saturated buses", report.total_stalls());
    Ok(())
}

/// Renders a "curves" table (first column = x, remaining columns = one
/// series each) as an ASCII chart.
fn chart_curves(table: &Table, series_prefix: &str) -> String {
    let csv = table.to_csv();
    let mut lines = csv.lines();
    let header: Vec<String> = lines
        .next()
        .map(|h| h.split(',').skip(1).map(str::to_string).collect())
        .unwrap_or_default();
    let mut columns: Vec<Vec<(f64, f64)>> = vec![Vec::new(); header.len()];
    for line in lines {
        let mut cells = line.split(',');
        let x: f64 = match cells.next().and_then(|c| c.parse().ok()) {
            Some(x) => x,
            None => continue,
        };
        for (col, cell) in cells.enumerate() {
            if let Ok(y) = cell.parse::<f64>() {
                columns[col].push((x, y));
            }
        }
    }
    let mut chart = Chart::new(56, 14);
    for (name, points) in header.into_iter().zip(columns) {
        chart = chart.series(Series::new(format!("{series_prefix}{name}"), points));
    }
    chart.render()
}

fn emit(title: &str, table: &Table, csv: bool) {
    println!("== {title} ==");
    if csv {
        print!("{}", table.to_csv());
    } else {
        print!("{}", table.to_ascii());
    }
    println!();
}

fn run(opt: &Options) -> Result<(), String> {
    match opt.command.as_str() {
        "capture" => return capture(opt),
        "replay" => return replay(opt),
        _ => {}
    }
    let wants = |name: &str| opt.command == name || opt.command == "all";
    let mut matched = false;

    if wants("table1") {
        matched = true;
        let rows = table1::run(opt.scale);
        emit(
            &format!("Table 1: benchmark scene characteristics (measured at scale {}, extrapolated)", opt.scale),
            &table1::render(&rows),
            opt.csv,
        );
    }
    if wants("fig5") {
        matched = true;
        let (imb_block, imb_sli, sp_block, sp_sli) = fig5::run(opt.scale);
        emit("Figure 5a: imbalance % per block width, 64 processors", &imb_block, opt.csv);
        emit("Figure 5b: imbalance % per SLI group size, 64 processors", &imb_sli, opt.csv);
        emit(
            "Figure 5c: perfect-cache speedup vs processors, 32massive11255, block",
            &sp_block,
            opt.csv,
        );
        emit(
            "Figure 5d: perfect-cache speedup vs processors, 32massive11255, SLI",
            &sp_sli,
            opt.csv,
        );
        if !opt.csv {
            println!("speedup vs processors (block widths):");
            print!("{}", chart_curves(&sp_block, "block-"));
            println!("speedup vs processors (SLI groups):");
            print!("{}", chart_curves(&sp_sli, "sli-"));
        }
        if opt.heatmap {
            std::fs::create_dir_all(&opt.out)
                .map_err(|e| format!("create {}: {e}", opt.out.display()))?;
            println!("Figure 5 heatmaps (quake, 64 procs) -> {}:", opt.out.display());
            for (label, gini) in fig5::heatmaps(opt.scale, &opt.out) {
                println!("   {label}: fragment-load gini {gini:.3}");
            }
            println!();
        }
    }
    if wants("fig6") {
        matched = true;
        for (name, block, sli) in fig6::run(opt.scale) {
            emit(&format!("Figure 6: texel/fragment vs processors, {name}, block"), &block, opt.csv);
            emit(&format!("Figure 6: texel/fragment vs processors, {name}, SLI"), &sli, opt.csv);
        }
        if opt.heatmap {
            std::fs::create_dir_all(&opt.out)
                .map_err(|e| format!("create {}: {e}", opt.out.display()))?;
            println!("Figure 6 heatmaps (quake, 64 procs, classifying 16KB) -> {}:", opt.out.display());
            for (label, t2f, classes) in fig6::heatmaps(opt.scale, &opt.out) {
                println!("   {label}: texel/fragment {t2f:.3}, {classes}");
            }
            println!();
        }
    }
    if wants("fig7") {
        matched = true;
        for (title, panel) in fig7::run(opt.scale, opt.ratio) {
            emit(&format!("Figure 7: speedup, {title}"), &panel, opt.csv);
            let best = fig7::best_params(&panel);
            let summary: Vec<String> = best
                .iter()
                .map(|(name, p, s)| format!("{name}: best={p} ({s:.2}x)"))
                .collect();
            println!("   best parameter per scene: {}", summary.join(", "));
            println!();
        }
    }
    if wants("fig8") {
        matched = true;
        let (perfect, cached) = fig8::run(opt.scale);
        emit("Figure 8a: speedup, truc640, 64 procs, perfect cache (width x buffer)", &perfect, opt.csv);
        for (buffer, width, best) in fig8::best_width_per_buffer(&perfect) {
            println!("   buffer {buffer}: best width {width} ({best:.2}x)");
        }
        println!();
        emit("Figure 8b: speedup, truc640, 64 procs, 16KB cache + 2 texel/pixel bus", &cached, opt.csv);
        for (buffer, width, best) in fig8::best_width_per_buffer(&cached) {
            println!("   buffer {buffer}: best width {width} ({best:.2}x)");
        }
        println!();
        if opt.trace {
            let (perfect_starved, cached_starved) = fig8::run_trace(opt.scale);
            emit(
                "Figure 8a (trace): % of node cycles FIFO-starved, perfect cache (width x buffer)",
                &perfect_starved,
                opt.csv,
            );
            emit(
                "Figure 8b (trace): % of node cycles FIFO-starved, 16KB cache + 2x bus",
                &cached_starved,
                opt.csv,
            );
            println!(
                "   the starved share is the mechanism behind Figure 8: it shrinks as the\n   \
                 triangle buffer grows, vanishing where the speedup curves saturate."
            );
            println!();
        }
    }
    if wants("fig9") {
        matched = true;
        let paths = fig9::run(&opt.out, opt.scale).map_err(|e| format!("fig9: {e}"))?;
        println!("== Figure 9: benchmark images ==");
        for p in paths {
            println!("   wrote {}", p.display());
        }
        println!();
    }
    if wants("ablations") {
        matched = true;
        emit("Ablation: prefetch window depth (32massive11255, 16p, block-16, 1x bus)", &ablations::prefetch_window(opt.scale), opt.csv);
        emit("Ablation: cache geometry (texel/fragment, 32massive11255, 16p)", &ablations::cache_geometry(opt.scale), opt.csv);
        emit("Ablation: skewed vs raster block interleave (room3)", &ablations::block_skew(opt.scale), opt.csv);
        emit("Extension: dynamic SLI vs static (room3)", &ablations::dynamic_sli(opt.scale), opt.csv);
        emit("Extension: L2 texture cache (texel/fragment)", &ablations::l2_cache(opt.scale), opt.csv);
        emit("Extension: L2 inter-frame locality vs viewpoint pan (teapot.full)", &ablations::l2_interframe(opt.scale), opt.csv);
        emit("Extension: sort-middle vs sort-last (32massive11255)", &ablations::architectures(opt.scale), opt.csv);
        emit("Analysis: miss classification vs processor count (32massive11255, block-16)", &ablations::miss_classification(opt.scale), opt.csv);
        emit("Analysis: tile shape at constant area (32massive11255, 64p, 256-px tiles)", &ablations::tile_shape(opt.scale), opt.csv);
        emit("Analysis: SDRAM page-mode vs flat bus (32massive11255, 16p)", &ablations::dram_page_mode(opt.scale), opt.csv);
        emit("Analysis: raster vs Morton texture block order (32massive11255, 16p)", &ablations::block_order(opt.scale), opt.csv);
        emit("Analysis: victim buffer vs associativity (32massive11255, 16p)", &ablations::victim_buffer(opt.scale), opt.csv);
    }
    if wants("seeds") && opt.command != "all" {
        matched = true;
        let study = seeds::run(sortmid_scene::Benchmark::Truc640, opt.scale, 5);
        emit(
            "Robustness: headline conclusion across 5 generator seeds (truc640, 64p)",
            &seeds::render(&study),
            opt.csv,
        );
    }

    if !matched {
        return Err(format!("unknown command '{}'\n{}", opt.command, usage()));
    }
    Ok(())
}

fn main() -> ExitCode {
    match parse_args() {
        Ok(opt) => match run(&opt) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
