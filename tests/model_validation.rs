//! Cross-validation of the timing simulation against static bounds.
//!
//! The discrete-event machine must sit between the analytic limits the
//! static analyses (`sortmid::work`, `sortmid::analysis`) compute: it may
//! never beat the critical-path lower bound, and with ideal buffers and a
//! perfect cache it must *match* it.

use sortmid::{analysis, work, CacheKind, Distribution, Machine, MachineConfig, SweepGrid};
use sortmid_raster::FragmentStream;
use sortmid_scene::{Benchmark, SceneBuilder};

fn stream(b: Benchmark) -> FragmentStream {
    SceneBuilder::benchmark(b).scale(0.12).build().rasterize()
}

fn run(stream: &FragmentStream, procs: u32, dist: Distribution, cache: CacheKind, buffer: usize) -> u64 {
    Machine::new(
        MachineConfig::builder()
            .processors(procs)
            .distribution(dist)
            .cache(cache)
            .bus_ratio(1.0)
            .triangle_buffer(buffer)
            .build()
            .expect("valid"),
    )
    .run(stream)
    .total_cycles()
}

/// With a perfect cache and the near-ideal buffer, machine time equals the
/// busiest node's engine work exactly (no other resource constrains).
#[test]
fn perfect_cache_ideal_buffer_matches_static_work() {
    let s = stream(Benchmark::Massive11255);
    for (procs, dist) in [
        (1u32, Distribution::block(16)),
        (4, Distribution::block(16)),
        (16, Distribution::sli(4)),
        (64, Distribution::block(8)),
    ] {
        let simulated = run(&s, procs, dist.clone(), CacheKind::Perfect, 10_000);
        let bound = work::engine_work(&s, &dist, procs, 25)
            .into_iter()
            .max()
            .unwrap();
        assert_eq!(simulated, bound, "{dist} {procs}p");
    }
}

/// The engine-work critical path lower-bounds every configuration: caches
/// and small buffers only add time.
#[test]
fn static_work_lower_bounds_all_machines() {
    let s = stream(Benchmark::Truc640);
    for procs in [4u32, 16] {
        for dist in [Distribution::block(16), Distribution::sli(2)] {
            let bound = work::engine_work(&s, &dist, procs, 25)
                .into_iter()
                .max()
                .unwrap();
            for cache in [CacheKind::Perfect, CacheKind::PaperL1] {
                for buffer in [1usize, 50, 10_000] {
                    let t = run(&s, procs, dist.clone(), cache, buffer);
                    assert!(
                        t >= bound,
                        "{dist} {procs}p {cache} buf{buffer}: {t} < bound {bound}"
                    );
                }
            }
        }
    }
}

/// The single-node serial time upper-bounds every parallel machine with an
/// ideal buffer (adding processors never hurts when nothing serialises).
#[test]
fn serial_time_upper_bounds_ideal_buffer_machines() {
    let s = stream(Benchmark::Blowout775);
    let serial = run(&s, 1, Distribution::block(16), CacheKind::Perfect, 10_000);
    let grid = SweepGrid::new()
        .processors([2, 4, 16, 64])
        .distributions([Distribution::block(16), Distribution::sli(4)])
        .caches([CacheKind::Perfect])
        .build();
    for config in grid {
        let t = Machine::new(config.clone()).run(&s).total_cycles();
        assert!(t <= serial, "{}: {t} > serial {serial}", config.summary());
    }
}

/// The measured routing fan-out matches the machine's own accounting, and
/// the analytic overlap model stays in its ballpark.
#[test]
fn overlap_accounting_is_consistent() {
    let s = stream(Benchmark::Quake);
    for dist in [Distribution::block(16), Distribution::sli(4)] {
        let procs = 16;
        let report = Machine::new(
            MachineConfig::builder()
                .processors(procs)
                .distribution(dist.clone())
                .cache(CacheKind::Perfect)
                .build()
                .expect("valid"),
        )
        .run(&s);
        let measured = analysis::measured_overlap(&s, &dist, procs);
        assert!((report.overlap_factor() - measured).abs() < 1e-9, "{dist}");
        let model = analysis::model_overlap(&s, &dist, procs);
        assert!(model > 0.9 && (model - measured).abs() / measured < 0.5, "{dist}: model {model} vs {measured}");
    }
}

/// Bus work lower-bounds memory-bound machines: a node that fetched L lines
/// on a 16-cycle bus cannot finish before 16·L.
#[test]
fn bus_occupancy_lower_bounds_memory_bound_nodes() {
    let s = stream(Benchmark::TeapotFull);
    let report = Machine::new(
        MachineConfig::builder()
            .processors(4)
            .distribution(Distribution::block(16))
            .cache(CacheKind::PaperL1)
            .bus_ratio(1.0)
            .build()
            .expect("valid"),
    )
    .run(&s);
    for node in report.nodes() {
        assert!(
            node.finish >= node.bus_busy_cycles,
            "node finished at {} with {} bus cycles",
            node.finish,
            node.bus_busy_cycles
        );
        assert_eq!(node.bus_busy_cycles, node.external_fetches * 16);
    }
}
