//! End-to-end pipeline tests: scene generation → rasterization → machine
//! simulation, across benchmarks, distributions and cache models.

use sortmid::{CacheKind, Distribution, Machine, MachineConfig};
use sortmid_scene::{Benchmark, SceneBuilder, SceneStats};

const SCALE: f64 = 0.12;

fn machine(procs: u32, dist: Distribution, cache: CacheKind, ratio: f64) -> Machine {
    Machine::new(
        MachineConfig::builder()
            .processors(procs)
            .distribution(dist)
            .cache(cache)
            .bus_ratio(ratio)
            .build()
            .expect("valid"),
    )
}

#[test]
fn every_benchmark_runs_end_to_end() {
    for b in Benchmark::ALL {
        let scene = SceneBuilder::benchmark(b).scale(SCALE).build();
        let stream = scene.rasterize();
        assert!(stream.fragment_count() > 0, "{b}: no fragments");
        let report = machine(4, Distribution::block(16), CacheKind::PaperL1, 1.0).run(&stream);
        assert!(report.total_cycles() > 0, "{b}: no cycles");
        let drawn: u64 = report.nodes().iter().map(|n| n.pixels).sum();
        assert_eq!(drawn, stream.fragment_count(), "{b}: fragments lost");
    }
}

#[test]
fn fragments_partition_exactly_across_processors() {
    let stream = SceneBuilder::benchmark(Benchmark::Room3)
        .scale(SCALE)
        .build()
        .rasterize();
    for procs in [2u32, 5, 16, 64, 128] {
        for dist in [Distribution::block(4), Distribution::block(16), Distribution::sli(1), Distribution::sli(8)] {
            let report = machine(procs, dist.clone(), CacheKind::Perfect, 1.0).run(&stream);
            let drawn: u64 = report.nodes().iter().map(|n| n.pixels).sum();
            assert_eq!(drawn, stream.fragment_count(), "{dist} {procs}p");
            assert_eq!(report.nodes().len(), procs as usize);
        }
    }
}

#[test]
fn single_processor_is_distribution_invariant() {
    let stream = SceneBuilder::benchmark(Benchmark::Quake)
        .scale(SCALE)
        .build()
        .rasterize();
    let reference = machine(1, Distribution::block(16), CacheKind::PaperL1, 1.0).run(&stream);
    for dist in [Distribution::block(1), Distribution::block(128), Distribution::sli(1), Distribution::sli(32)] {
        let run = machine(1, dist.clone(), CacheKind::PaperL1, 1.0).run(&stream);
        assert_eq!(run.total_cycles(), reference.total_cycles(), "{dist}");
        assert_eq!(
            run.cache_totals().misses(),
            reference.cache_totals().misses(),
            "{dist}"
        );
    }
}

#[test]
fn speedup_never_exceeds_processor_count() {
    let stream = SceneBuilder::benchmark(Benchmark::Truc640)
        .scale(SCALE)
        .build()
        .rasterize();
    let baseline = machine(1, Distribution::block(16), CacheKind::Perfect, 1.0).run(&stream);
    for procs in [2u32, 4, 8, 16] {
        let run = machine(procs, Distribution::block(16), CacheKind::Perfect, 1.0).run(&stream);
        let speedup = run.speedup_vs(&baseline);
        assert!(
            speedup <= procs as f64 + 1e-9,
            "{procs}p: impossible speedup {speedup}"
        );
        assert!(speedup >= 1.0, "{procs}p: slowdown {speedup}");
    }
}

#[test]
fn faster_bus_never_slows_the_machine() {
    let stream = SceneBuilder::benchmark(Benchmark::TeapotFull)
        .scale(SCALE)
        .build()
        .rasterize();
    let mut previous = u64::MAX;
    for ratio in [0.5, 1.0, 2.0, 4.0] {
        let run = machine(8, Distribution::block(16), CacheKind::PaperL1, ratio).run(&stream);
        assert!(
            run.total_cycles() <= previous,
            "ratio {ratio} slower: {} > {previous}",
            run.total_cycles()
        );
        previous = run.total_cycles();
    }
}

#[test]
fn perfect_cache_bounds_real_cache() {
    let stream = SceneBuilder::benchmark(Benchmark::Massive32_11255)
        .scale(SCALE)
        .build()
        .rasterize();
    for procs in [1u32, 16] {
        let perfect = machine(procs, Distribution::block(16), CacheKind::Perfect, 1.0).run(&stream);
        let real = machine(procs, Distribution::block(16), CacheKind::PaperL1, 1.0).run(&stream);
        assert!(
            perfect.total_cycles() <= real.total_cycles(),
            "{procs}p: perfect cache must be a lower bound"
        );
        assert_eq!(perfect.texel_to_fragment(), 0.0);
        assert!(real.texel_to_fragment() > 0.0);
    }
}

#[test]
fn scene_stats_survive_the_full_pipeline() {
    let scene = SceneBuilder::benchmark(Benchmark::Blowout775).scale(SCALE).build();
    let stream = scene.rasterize();
    let stats = SceneStats::measure_stream(&scene, &stream);
    assert_eq!(stats.pixels_rendered, stream.fragment_count());
    // The machine's fragment accounting matches the scene's.
    let report = machine(4, Distribution::sli(4), CacheKind::PaperL1, 2.0).run(&stream);
    assert_eq!(report.fragments(), stats.pixels_rendered);
}

#[test]
fn empty_streams_are_handled_gracefully() {
    use sortmid_geom::Rect;
    use sortmid_texture::TextureRegistry;

    let reg = TextureRegistry::new();
    let empty = sortmid_raster::rasterize(&[], &reg, Rect::of_size(64, 64));
    assert_eq!(empty.fragment_count(), 0);
    let report = machine(8, Distribution::block(16), CacheKind::PaperL1, 1.0).run(&empty);
    assert_eq!(report.total_cycles(), 0);
    assert_eq!(report.fragments(), 0);
    assert_eq!(report.texel_to_fragment(), 0.0);
    assert_eq!(report.pixel_imbalance_percent(), 0.0);
}

#[test]
fn fully_offscreen_scene_costs_nothing() {
    use sortmid_geom::{Rect, Triangle, Vertex};
    use sortmid_texture::{TextureDesc, TextureRegistry};

    let mut reg = TextureRegistry::new();
    let id = reg.register(TextureDesc::new(16, 16).unwrap()).unwrap();
    let tri = Triangle::new(
        id.0,
        [
            Vertex::new(1000.0, 1000.0, 0.0, 0.0),
            Vertex::new(1100.0, 1000.0, 16.0, 0.0),
            Vertex::new(1000.0, 1100.0, 0.0, 16.0),
        ],
    );
    let stream = sortmid_raster::rasterize(&[tri], &reg, Rect::of_size(64, 64));
    assert_eq!(stream.fragment_count(), 0);
    assert!(stream.triangles()[0].is_culled());
    // Culled triangles are never sent: no setup, no FIFO slot.
    let report = machine(4, Distribution::block(16), CacheKind::Perfect, 1.0).run(&stream);
    assert_eq!(report.total_cycles(), 0);
    assert_eq!(report.triangles_routed(), 0);
    for node in report.nodes() {
        assert_eq!(node.triangles + node.discarded, 0);
    }
}

#[test]
fn deterministic_across_runs() {
    let mk = || {
        let stream = SceneBuilder::benchmark(Benchmark::Quake)
            .scale(SCALE)
            .build()
            .rasterize();
        machine(16, Distribution::block(16), CacheKind::PaperL1, 1.0)
            .run(&stream)
            .total_cycles()
    };
    assert_eq!(mk(), mk());
}

#[test]
fn sweep_reports_are_identical_across_host_thread_counts() {
    // Host parallelism is a scheduling detail: the same MachineConfig grid
    // over the same FragmentStream must produce byte-identical RunReports
    // on 1 thread and on every available core.
    use sortmid::{run_sweep_with_threads, SweepGrid};

    let stream = SceneBuilder::benchmark(Benchmark::Quake)
        .scale(SCALE)
        .build()
        .rasterize();
    let configs = SweepGrid::new()
        .processors([1, 4, 16])
        .distributions([Distribution::block(16), Distribution::sli(4)])
        .buffers([100, 10_000])
        .build();
    let serial = run_sweep_with_threads(&stream, &configs, 1);
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let parallel = run_sweep_with_threads(&stream, &configs, threads);
    assert_eq!(serial.len(), parallel.len());
    for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(a, b, "config {i} diverged between 1 and {threads} host threads");
        // Belt and braces: the Debug rendering (every field, every node
        // counter) must match byte for byte too.
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "config {i} Debug differs");
    }
}

#[test]
fn warm_cache_second_frame_strictly_reduces_misses() {
    // Machine::run_sequence keeps node caches warm across frames. Replaying
    // an identical stream must turn some of frame 1's compulsory misses
    // into hits: strictly fewer misses, never more cycles. Scale 0.1 keeps
    // the per-node working set near the paper L1 capacity without tipping
    // over it (larger scenes evict every line between reuses and frame 2
    // re-misses everything).
    let stream = SceneBuilder::benchmark(Benchmark::Quake)
        .scale(0.1)
        .build()
        .rasterize();
    let machine = machine(4, Distribution::block(16), CacheKind::PaperL1, 1.0);
    let reports = machine.run_sequence(&[&stream, &stream]);
    assert_eq!(reports.len(), 2);
    let cold = reports[0].cache_totals().misses();
    let warm = reports[1].cache_totals().misses();
    assert!(cold > 0, "frame 1 must have compulsory misses");
    assert!(
        warm < cold,
        "warm caches must strictly reduce misses: frame 2 {warm} vs frame 1 {cold}"
    );
    assert!(reports[1].total_cycles() <= reports[0].total_cycles());
}
