//! Shared scaffolding for the experiment modules.

use sortmid::{CacheKind, Distribution, MachineConfig};
use sortmid_raster::FragmentStream;
use sortmid_scene::{Benchmark, Scene, SceneBuilder};

/// The block widths the paper sweeps for the square-block distribution
/// (widths 1 and 2 are shown in Figure 5 but dropped from the locality
/// plots, "for they often have ratios bigger than 8").
pub const BLOCK_WIDTHS: [u32; 6] = [4, 8, 16, 32, 64, 128];

/// The full block sweep including the degenerate tiny widths (Figures 5
/// and 8 use them).
pub const BLOCK_WIDTHS_FULL: [u32; 8] = [1, 2, 4, 8, 16, 32, 64, 128];

/// The SLI group sizes the paper sweeps.
pub const SLI_LINES: [u32; 6] = [1, 2, 4, 8, 16, 32];

/// The processor counts of Figure 7's panels.
pub const PROC_PANELS: [u32; 3] = [4, 16, 64];

/// The processor counts of the speedup-vs-P curves.
pub const PROC_CURVE: [u32; 7] = [1, 2, 4, 8, 16, 32, 64];

/// The triangle-buffer sizes of Figure 8.
pub const BUFFER_SIZES: [usize; 8] = [1, 5, 10, 20, 50, 100, 500, 10_000];

/// A benchmark scene generated at a given scale, with its rasterized
/// stream, ready for machine sweeps.
#[derive(Debug)]
pub struct PreparedScene {
    /// Which benchmark this is.
    pub benchmark: Benchmark,
    /// The generated scene.
    pub scene: Scene,
    /// Its rasterization.
    pub stream: FragmentStream,
    /// The scale it was generated at.
    pub scale: f64,
}

impl PreparedScene {
    /// Generates and rasterizes `benchmark` at `scale`.
    pub fn new(benchmark: Benchmark, scale: f64) -> Self {
        let scene = SceneBuilder::benchmark(benchmark).scale(scale).build();
        let stream = scene.rasterize();
        PreparedScene {
            benchmark,
            scene,
            stream,
            scale,
        }
    }

    /// Prepares every benchmark at `scale`.
    pub fn all(scale: f64) -> Vec<PreparedScene> {
        Benchmark::ALL
            .iter()
            .map(|&b| PreparedScene::new(b, scale))
            .collect()
    }
}

/// Short column label for a benchmark (the paper abbreviates in figure
/// axes: `32massiv`, `blowout7`, `teapot_f`, ...).
pub fn short_name(benchmark: Benchmark) -> &'static str {
    match benchmark {
        Benchmark::Room3 => "room3",
        Benchmark::TeapotFull => "teapot_f",
        Benchmark::Quake => "quake",
        Benchmark::Massive11255 => "massive1",
        Benchmark::Massive32_11255 => "32massiv",
        Benchmark::Blowout775 => "blowout7",
        Benchmark::Truc640 => "truc640",
    }
}

/// Builds the paper's standard machine configuration.
///
/// # Panics
///
/// Panics on invalid parameter combinations (the sweeps only use valid
/// ones).
pub fn machine(
    procs: u32,
    dist: Distribution,
    cache: CacheKind,
    bus_ratio: Option<f64>,
    buffer: usize,
) -> MachineConfig {
    let mut b = MachineConfig::builder();
    b.processors(procs)
        .distribution(dist)
        .cache(cache)
        .triangle_buffer(buffer);
    match bus_ratio {
        Some(r) => b.bus_ratio(r),
        None => b.infinite_bus(),
    };
    b.build().expect("sweep configs are valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepared_scene_has_fragments() {
        let p = PreparedScene::new(Benchmark::Quake, 0.1);
        assert!(p.stream.fragment_count() > 1000);
        assert_eq!(p.scene.name(), "quake");
    }

    #[test]
    fn short_names_are_unique() {
        let names: std::collections::HashSet<_> =
            Benchmark::ALL.iter().map(|&b| short_name(b)).collect();
        assert_eq!(names.len(), 7);
    }

    #[test]
    fn machine_helper_builds_infinite_bus() {
        let c = machine(4, Distribution::sli(2), CacheKind::PaperL1, None, 100);
        assert!(c.bus.is_infinite());
        assert_eq!(c.triangle_buffer, 100);
        let c2 = machine(4, Distribution::block(16), CacheKind::Perfect, Some(2.0), 10);
        assert_eq!(c2.bus.line_cost(), 8);
    }
}
