//! Table 1 — benchmark scene characteristics, paper vs measured.

use sortmid_scene::{Benchmark, SceneBuilder, SceneStats};
use sortmid_util::table::{fmt_count, fmt_f, Table};

/// One scene's paper-vs-measured comparison.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Which benchmark.
    pub benchmark: Benchmark,
    /// Measured stats (extrapolated to paper scale).
    pub measured: SceneStats,
    /// Distinct textures at paper scale (from the full-scale config, since
    /// the scaled generator reduces the pool proportionally).
    pub textures_full: u32,
}

/// Measures every benchmark at `scale` and extrapolates to paper scale.
pub fn run(scale: f64) -> Vec<Table1Row> {
    Benchmark::ALL
        .iter()
        .map(|&b| {
            let scene = SceneBuilder::benchmark(b).scale(scale).build();
            let measured = SceneStats::measure(&scene).extrapolated(scale);
            Table1Row {
                benchmark: b,
                measured,
                textures_full: b.config().texture_count,
            }
        })
        .collect()
}

/// Renders the rows as the paper's Table 1 with paper reference values.
pub fn render(rows: &[Table1Row]) -> Table {
    let mut t = Table::new(&[
        "scene",
        "screen",
        "Mpix",
        "(paper)",
        "depth",
        "(paper)",
        "triangles",
        "(paper)",
        "textures",
        "(paper)",
        "used MB",
        "(paper)",
        "uniq t/f",
        "(paper)",
    ]);
    for row in rows {
        let (w, h, mpix, depth, tris, tex, mb, utf) = row.benchmark.paper_row();
        let m = &row.measured;
        t.row_owned(vec![
            row.benchmark.name().to_string(),
            format!("{w}x{h}"),
            fmt_f(m.mpixels(), 1),
            fmt_f(mpix, 1),
            fmt_f(m.depth_complexity, 1),
            fmt_f(depth, 1),
            fmt_count(m.triangles as u64),
            fmt_count(tris as u64),
            row.textures_full.to_string(),
            tex.to_string(),
            fmt_f(m.texture_used_mbytes(), 2),
            fmt_f(mb, 1),
            fmt_f(m.unique_texel_per_screen_pixel, 2),
            fmt_f(utf, 2),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_cover_all_benchmarks_and_land_near_paper() {
        let rows = run(0.15);
        assert_eq!(rows.len(), 7);
        for row in &rows {
            let (_, _, mpix, depth, _, _, _, _) = row.benchmark.paper_row();
            let m = &row.measured;
            // Loose sanity at tiny scale; the real run uses a bigger scale.
            assert!(
                (m.mpixels() - mpix).abs() / mpix < 0.5,
                "{}: {} vs {}",
                row.benchmark,
                m.mpixels(),
                mpix
            );
            assert!((m.depth_complexity - depth).abs() / depth < 0.4);
        }
    }

    #[test]
    fn render_emits_one_line_per_scene() {
        let rows = run(0.1);
        let table = render(&rows);
        assert_eq!(table.len(), 7);
        let ascii = table.to_ascii();
        assert!(ascii.contains("room3"));
        assert!(ascii.contains("32massive11255"));
    }
}
