//! Ablations and extensions beyond the paper's figures.
//!
//! * [`prefetch_window`] — how deep the Igehy-style fragment FIFO must be
//!   before "latency is hidden" actually holds (the paper assumes it).
//! * [`cache_geometry`] — sensitivity of the texel-to-fragment ratio to
//!   cache size and associativity around the Hakura-Gupta 16 KB/4-way
//!   point.
//! * [`dynamic_sli`] — the paper's future-work machine: per-frame
//!   work-balanced scanline groups vs static SLI and block.
//! * [`l2_cache`] — the paper's closing question: what a second cache level
//!   buys each node.

use crate::common::{machine, PreparedScene};
use sortmid::{dynamic, work, CacheKind, Distribution, Machine};
use sortmid_cache::CacheGeometry;
use sortmid_scene::Benchmark;
use sortmid_util::table::{fmt_f, Table};

/// Sweep of the prefetch window on a bus-bound configuration.
pub fn prefetch_window(scale: f64) -> Table {
    let scene = PreparedScene::new(Benchmark::Massive32_11255, scale);
    let mut t = Table::new(&["window", "cycles", "stall cycles", "slowdown vs unbounded"]);
    let mut config = machine(
        16,
        Distribution::block(16),
        CacheKind::PaperL1,
        Some(1.0),
        10_000,
    );
    config.prefetch_window = None;
    let unbounded = Machine::new(config.clone()).run(&scene.stream);
    for window in [1usize, 2, 4, 8, 16, 32, 64, 128] {
        config.prefetch_window = Some(window);
        let r = Machine::new(config.clone()).run(&scene.stream);
        t.row_owned(vec![
            window.to_string(),
            r.total_cycles().to_string(),
            r.total_stalls().to_string(),
            fmt_f(r.total_cycles() as f64 / unbounded.total_cycles() as f64, 3),
        ]);
    }
    t.row_owned(vec![
        "unbounded".to_string(),
        unbounded.total_cycles().to_string(),
        unbounded.total_stalls().to_string(),
        fmt_f(1.0, 3),
    ]);
    t
}

/// Texel-to-fragment ratio across cache sizes and associativities
/// (16 processors, block-16, infinite bus).
pub fn cache_geometry(scale: f64) -> Table {
    let scene = PreparedScene::new(Benchmark::Massive32_11255, scale);
    let mut t = Table::new(&["size KB", "1-way", "2-way", "4-way", "8-way"]);
    for size_kb in [4u32, 8, 16, 32, 64] {
        let mut row = vec![size_kb.to_string()];
        for ways in [1u32, 2, 4, 8] {
            let geometry = CacheGeometry::new(size_kb * 1024, ways, 64).expect("valid");
            let r = Machine::new(machine(
                16,
                Distribution::block(16),
                CacheKind::SetAssoc(geometry),
                None,
                10_000,
            ))
            .run(&scene.stream);
            row.push(fmt_f(r.texel_to_fragment(), 3));
        }
        t.row_owned(row);
    }
    t
}

/// Victim buffer vs associativity: can a direct-mapped L1 with a few
/// victim slots stand in for the 4-way Hakura-Gupta design on texture
/// streams? (16 processors, block-16, infinite bus.)
pub fn victim_buffer(scale: f64) -> Table {
    use sortmid::Machine;

    let scene = PreparedScene::new(Benchmark::Massive32_11255, scale);
    let dm = CacheGeometry::new(16 * 1024, 1, 64).expect("valid");
    let configs: Vec<(&str, CacheKind)> = vec![
        ("16KB direct-mapped", CacheKind::SetAssoc(dm)),
        ("16KB DM + 4 victims", CacheKind::Victim(dm, 4)),
        ("16KB DM + 16 victims", CacheKind::Victim(dm, 16)),
        ("16KB 2-way", CacheKind::SetAssoc(CacheGeometry::new(16 * 1024, 2, 64).expect("valid"))),
        ("16KB 4-way (paper)", CacheKind::PaperL1),
    ];
    let mut t = Table::new(&["cache", "texel/frag"]);
    for (label, cache) in configs {
        let r = Machine::new(machine(16, Distribution::block(16), cache, None, 10_000))
            .run(&scene.stream);
        t.row_owned(vec![label.to_string(), fmt_f(r.texel_to_fragment(), 3)]);
    }
    t
}

/// Dynamic-SLI vs the static schemes: imbalance and speedup per processor
/// count on a clustered scene.
pub fn dynamic_sli(scale: f64) -> Table {
    let scene = PreparedScene::new(Benchmark::Room3, scale);
    let mut t = Table::new(&[
        "procs",
        "static sli imb%",
        "dyn sli imb%",
        "block-16 imb%",
        "static sli speedup",
        "dyn sli speedup",
        "block-16 speedup",
    ]);
    let baseline = Machine::new(machine(
        1,
        Distribution::block(16),
        CacheKind::PaperL1,
        Some(1.0),
        10_000,
    ))
    .run(&scene.stream);
    for procs in [4u32, 16, 64] {
        // The static comparator: one equal-height band group per processor
        // interleaved in round robin — the configuration dynamic adjustment
        // replaces. (Fine static interleave like sli-4 is the *other* cure,
        // with the locality cost Figure 6 quantifies.)
        let lines = (scene.stream.screen().height() / (4 * procs)).max(1);
        let static_dist = Distribution::sli(lines);
        let dyn_dist = dynamic::balanced_sli_for(&scene.stream, procs, 4);
        let block = Distribution::block(16);
        let mut row = vec![procs.to_string()];
        for d in [&static_dist, &dyn_dist, &block] {
            row.push(fmt_f(work::pixel_imbalance(&scene.stream, d, procs), 1));
        }
        for d in [&static_dist, &dyn_dist, &block] {
            let r = Machine::new(machine(
                procs,
                d.clone(),
                CacheKind::PaperL1,
                Some(1.0),
                10_000,
            ))
            .run(&scene.stream);
            row.push(fmt_f(r.speedup_vs(&baseline), 2));
        }
        t.row_owned(row);
    }
    t
}

/// Skewed vs raster-order block interleave: why [`Distribution::Block`]
/// assigns tile `(tx, ty)` to `(tx + ceil(sqrt(P))·ty) mod P` instead of
/// naive raster round robin (which degenerates into vertical stripes when
/// the per-row tile count divides the processor count).
pub fn block_skew(scale: f64) -> Table {
    let scene = PreparedScene::new(Benchmark::Room3, scale);
    let screen_w = scene.stream.screen().width();
    let mut t = Table::new(&[
        "procs",
        "width",
        "raster imb%",
        "skewed imb%",
        "raster speedup",
        "skewed speedup",
    ]);
    let baseline = Machine::new(machine(
        1,
        Distribution::block(16),
        CacheKind::PaperL1,
        Some(1.0),
        10_000,
    ))
    .run(&scene.stream);
    for procs in [4u32, 16] {
        // The raster interleave only stripes when the per-row tile count is
        // a multiple of the processor count — the situation a full-screen
        // power-of-two design hits constantly. Pick a width that triggers
        // it on this screen.
        let width = (8..=32)
            .find(|w| screen_w.div_ceil(*w) % procs == 0)
            .unwrap_or(16);
        let raster = Distribution::block_raster(width, screen_w);
        let skewed = Distribution::block(width);
        let mut row = vec![procs.to_string(), width.to_string()];
        for d in [&raster, &skewed] {
            row.push(fmt_f(work::pixel_imbalance(&scene.stream, d, procs), 1));
        }
        for d in [&raster, &skewed] {
            let r = Machine::new(machine(procs, d.clone(), CacheKind::PaperL1, Some(1.0), 10_000))
                .run(&scene.stream);
            row.push(fmt_f(r.speedup_vs(&baseline), 2));
        }
        t.row_owned(row);
    }
    t
}

/// Single-level vs two-level cache hierarchies: external texel traffic.
pub fn l2_cache(scale: f64) -> Table {
    let mut t = Table::new(&["benchmark", "procs", "L1-only t/f", "L1+L2 t/f", "reduction"]);
    for b in [Benchmark::Massive32_11255, Benchmark::TeapotFull] {
        let scene = PreparedScene::new(b, scale);
        for procs in [1u32, 16, 64] {
            let l1 = Machine::new(machine(
                procs,
                Distribution::block(16),
                CacheKind::PaperL1,
                None,
                10_000,
            ))
            .run(&scene.stream);
            let l2 = Machine::new(machine(
                procs,
                Distribution::block(16),
                CacheKind::TwoLevel(CacheGeometry::paper_l1(), CacheGeometry::paper_l2()),
                None,
                10_000,
            ))
            .run(&scene.stream);
            let a = l1.texel_to_fragment();
            let bb = l2.texel_to_fragment();
            t.row_owned(vec![
                b.name().to_string(),
                procs.to_string(),
                fmt_f(a, 3),
                fmt_f(bb, 3),
                fmt_f(if a > 0.0 { 1.0 - bb / a } else { 0.0 }, 3),
            ]);
        }
    }
    t
}

/// Raster vs Morton block linearisation of texture memory: the block
/// *order* does not change which lines exist (4×4 blocking fixes that),
/// but it changes where neighbouring blocks land — which shows up in
/// set-conflict behaviour and, with the SDRAM model, in row locality.
pub fn block_order(scale: f64) -> Table {
    use sortmid::Machine;
    use sortmid_memsys::{BusConfig, DramConfig};
    use sortmid_scene::Scene;
    use sortmid_texture::{BlockOrder, TextureRegistry};

    let base = PreparedScene::new(Benchmark::Massive32_11255, scale);
    // Re-lay the same textures out in Morton order and re-resolve the
    // fragment footprints against the new address map.
    let mut morton_reg = TextureRegistry::with_block_order(BlockOrder::Morton);
    for id in base.scene.registry().ids() {
        morton_reg
            .register(base.scene.registry().desc(id))
            .expect("same textures fit");
    }
    let morton_scene = Scene::from_parts(
        format!("{}+morton", base.scene.name()),
        base.scene.screen(),
        base.scene.triangles().to_vec(),
        morton_reg,
    );
    let morton_stream = morton_scene.rasterize();

    let mut t = Table::new(&[
        "layout",
        "conflict misses",
        "total misses",
        "sdram cycles",
        "dram slowdown vs flat",
    ]);
    for (label, stream) in [("raster", &base.stream), ("morton", &morton_stream)] {
        let classified = Machine::new(machine(
            16,
            Distribution::block(16),
            CacheKind::Classifying(CacheGeometry::paper_l1()),
            None,
            10_000,
        ))
        .run(stream);
        let breakdown = classified.miss_breakdown().expect("classifying cache");
        let flat = Machine::new(machine(
            16,
            Distribution::block(16),
            CacheKind::PaperL1,
            Some(1.0),
            10_000,
        ))
        .run(stream);
        let mut cfg = machine(16, Distribution::block(16), CacheKind::PaperL1, Some(1.0), 10_000);
        cfg.dram = Some(DramConfig::sdram_like(BusConfig::ratio(1.0)));
        let paged = Machine::new(cfg).run(stream);
        t.row_owned(vec![
            label.to_string(),
            breakdown.conflict.to_string(),
            classified.cache_totals().misses().to_string(),
            paged.total_cycles().to_string(),
            fmt_f(paged.total_cycles() as f64 / flat.total_cycles() as f64, 3),
        ]);
    }
    t
}

/// SDRAM page-mode vs the paper's flat bandwidth bus: how much does the
/// flat-bus abstraction hide? Blocked texture layout keeps consecutive
/// fills in the same DRAM row, so the penalty should be modest — and grow
/// as blocks shrink and fetches scatter.
pub fn dram_page_mode(scale: f64) -> Table {
    use sortmid::Machine;
    use sortmid_memsys::{BusConfig, DramConfig};

    let scene = PreparedScene::new(Benchmark::Massive32_11255, scale);
    let mut t = Table::new(&["width", "flat cycles", "sdram cycles", "slowdown"]);
    for width in [4u32, 16, 64] {
        let flat = Machine::new(machine(
            16,
            Distribution::block(width),
            CacheKind::PaperL1,
            Some(1.0),
            10_000,
        ))
        .run(&scene.stream);
        let mut cfg = machine(
            16,
            Distribution::block(width),
            CacheKind::PaperL1,
            Some(1.0),
            10_000,
        );
        cfg.dram = Some(DramConfig::sdram_like(BusConfig::ratio(1.0)));
        let paged = Machine::new(cfg).run(&scene.stream);
        t.row_owned(vec![
            width.to_string(),
            flat.total_cycles().to_string(),
            paged.total_cycles().to_string(),
            fmt_f(paged.total_cycles() as f64 / flat.total_cycles() as f64, 3),
        ]);
    }
    t
}

/// Tile *shape* at constant tile *area*: is the square the right aspect
/// ratio, or only the right size? ("Different tile shapes might be used in
/// such machines.") 256-pixel tiles from 64×4 to 4×64, 64 processors.
pub fn tile_shape(scale: f64) -> Table {
    use sortmid::Machine;

    let scene = PreparedScene::new(Benchmark::Massive32_11255, scale);
    let mut t = Table::new(&["shape", "imbalance %", "texel/frag", "speedup"]);
    let baseline = Machine::new(machine(
        1,
        Distribution::block(16),
        CacheKind::PaperL1,
        Some(1.0),
        10_000,
    ))
    .run(&scene.stream);
    for (w, h) in [(64u32, 4u32), (32, 8), (16, 16), (8, 32), (4, 64)] {
        let dist = Distribution::tile(w, h);
        let imb = work::pixel_imbalance(&scene.stream, &dist, 64);
        let r = Machine::new(machine(64, dist, CacheKind::PaperL1, Some(1.0), 10_000))
            .run(&scene.stream);
        t.row_owned(vec![
            format!("{w}x{h}"),
            fmt_f(imb, 1),
            fmt_f(r.texel_to_fragment(), 3),
            fmt_f(r.speedup_vs(&baseline), 2),
        ]);
    }
    t
}

/// Where do the extra multiprocessor misses come from? Classifies every
/// miss (compulsory / capacity / conflict) as the machine grows; the
/// paper's locality loss (Figure 2's shared cache lines) shows up as extra
/// compulsory-per-node *and* reduced reuse, not as conflict artefacts.
pub fn miss_classification(scale: f64) -> Table {
    use sortmid::Machine;

    let scene = PreparedScene::new(Benchmark::Massive32_11255, scale);
    let mut t = Table::new(&[
        "procs",
        "misses/frag",
        "compulsory",
        "capacity",
        "conflict",
    ]);
    for procs in [1u32, 4, 16, 64] {
        let r = Machine::new(machine(
            procs,
            Distribution::block(16),
            CacheKind::Classifying(CacheGeometry::paper_l1()),
            None,
            10_000,
        ))
        .run(&scene.stream);
        let b = r.miss_breakdown().expect("classifying cache tracks kinds");
        let frags = r.fragments() as f64;
        t.row_owned(vec![
            procs.to_string(),
            fmt_f(r.cache_totals().misses() as f64 / frags, 4),
            fmt_f(b.compulsory as f64 / frags, 4),
            fmt_f(b.capacity as f64 / frags, 4),
            fmt_f(b.conflict as f64 / frags, 4),
        ]);
    }
    t
}

/// Sort-middle vs sort-last: the architectural comparison behind the
/// paper's motivation (its references \[13\]/\[14\] studied texture caches in a
/// sort-last machine). Same node model everywhere; sort-last deals whole
/// triangles (round-robin or in object-sized runs) and pays no overlap,
/// sort-middle splits the screen and pays setup on every overlapped node.
pub fn architectures(scale: f64) -> Table {
    use sortmid::sortlast::{run_sort_last, TriangleAssignment};
    use sortmid::Machine;

    let scene = PreparedScene::new(Benchmark::Massive32_11255, scale);
    let mut t = Table::new(&[
        "procs",
        "sort-middle speedup",
        "t/f",
        "sort-last rr speedup",
        "t/f",
        "sort-last chunked speedup",
        "t/f",
    ]);
    let base_cfg = machine(1, Distribution::block(16), CacheKind::PaperL1, Some(1.0), 10_000);
    let baseline = Machine::new(base_cfg).run(&scene.stream);
    for procs in [4u32, 16, 64] {
        let cfg = machine(procs, Distribution::block(16), CacheKind::PaperL1, Some(1.0), 10_000);
        let sm = Machine::new(cfg.clone()).run(&scene.stream);
        let rr = run_sort_last(&scene.stream, &cfg, TriangleAssignment::RoundRobin);
        let ch = run_sort_last(&scene.stream, &cfg, TriangleAssignment::Chunked { chunk: 32 });
        let mut row = vec![procs.to_string()];
        for r in [&sm, &rr, &ch] {
            row.push(fmt_f(r.speedup_vs(&baseline), 2));
            row.push(fmt_f(r.texel_to_fragment(), 3));
        }
        t.row_owned(row);
    }
    t
}

/// Inter-frame locality of a per-node L2 under viewpoint translation — the
/// paper's final paragraph: "if this translation was greater than the tile
/// size, the L2 would reload different textures in the next frame and the
/// efficiency would be reduced."
///
/// Frame 1 warms the caches; frame 2 is the same scene panned by `dx`
/// pixels. Reported: frame-2 external texels per fragment for several pan
/// distances, on single- and 16-processor machines.
pub fn l2_interframe(scale: f64) -> Table {
    use sortmid::Machine;

    let scene = PreparedScene::new(Benchmark::TeapotFull, scale);
    let mut t = Table::new(&["pan px", "1p frame2 t/f", "16p frame2 t/f", "16p retention"]);
    let cache = CacheKind::TwoLevel(CacheGeometry::paper_l1(), CacheGeometry::paper_l2());
    let run_pair = |procs: u32, dx: f32| {
        let frame2 = scene.scene.translated_view(dx, 0.0).rasterize();
        let machine = Machine::new(machine(
            procs,
            Distribution::block(16),
            cache,
            None,
            10_000,
        ));
        let reports = machine.run_sequence(&[&scene.stream, &frame2]);
        reports[1].texel_to_fragment()
    };
    let repeat_16 = run_pair(16, 0.0);
    // Pan distances stay a fraction of the screen so the scene remains in
    // view at any generator scale.
    let width = scene.stream.screen().width() as f32;
    for pan_frac in [0.0f32, 0.02, 0.1, 0.3] {
        let pan = (width * pan_frac).round();
        let one = run_pair(1, pan);
        let sixteen = run_pair(16, pan);
        t.row_owned(vec![
            format!("{pan}"),
            fmt_f(one, 3),
            fmt_f(sixteen, 3),
            fmt_f(if sixteen > 0.0 { repeat_16 / sixteen } else { 1.0 }, 3),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_window_monotone() {
        let t = prefetch_window(0.1);
        let csv = t.to_csv();
        let cycles: Vec<u64> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(1).unwrap().parse().unwrap())
            .collect();
        // Deeper windows never slow the machine down.
        for w in cycles.windows(2) {
            assert!(w[1] <= w[0], "deeper window should not be slower: {cycles:?}");
        }
    }

    #[test]
    fn bigger_caches_fetch_less() {
        let t = cache_geometry(0.1);
        let csv = t.to_csv();
        let rows: Vec<Vec<f64>> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').skip(1).map(|c| c.parse().unwrap()).collect())
            .collect();
        // 64KB 4-way fetches no more than 4KB 4-way.
        assert!(rows.last().unwrap()[2] <= rows.first().unwrap()[2]);
    }

    #[test]
    fn skewed_interleave_beats_raster() {
        let t = block_skew(0.12);
        let csv = t.to_csv();
        // At some processor count the raster interleave must balance
        // clearly worse than the skewed one.
        let mut raster_worse = false;
        for line in csv.lines().skip(1) {
            let cells: Vec<f64> = line.split(',').skip(1).map(|c| c.parse().unwrap()).collect();
            if cells[0] > 1.5 * cells[1] {
                raster_worse = true;
            }
        }
        assert!(raster_worse, "expected stripes to hurt somewhere:\n{csv}");
    }

    #[test]
    fn victim_buffer_sits_between_dm_and_4way() {
        let t = victim_buffer(0.1);
        let csv = t.to_csv();
        let vals: Vec<f64> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(1).unwrap().parse().unwrap())
            .collect();
        let (dm, dm_v16, four_way) = (vals[0], vals[2], vals[4]);
        assert!(dm_v16 <= dm, "victims must not hurt: {dm_v16} vs {dm}");
        assert!(four_way <= dm, "associativity helps: {four_way} vs {dm}");
    }

    #[test]
    fn block_order_changes_addressing_not_compulsory_lines() {
        let t = block_order(0.1);
        let csv = t.to_csv();
        let rows: Vec<Vec<f64>> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').skip(1).map(|c| c.parse().unwrap()).collect())
            .collect();
        assert_eq!(rows.len(), 2);
        // Both layouts see the same blocking, so total misses stay close.
        let (raster_total, morton_total) = (rows[0][1], rows[1][1]);
        let rel = (raster_total - morton_total).abs() / raster_total;
        assert!(rel < 0.2, "layouts should miss similarly: {raster_total} vs {morton_total}");
    }

    #[test]
    fn page_mode_costs_something_but_not_everything() {
        let t = dram_page_mode(0.1);
        let csv = t.to_csv();
        for line in csv.lines().skip(1) {
            let slowdown: f64 = line.split(',').nth(3).unwrap().parse().unwrap();
            assert!(
                (1.0..1.8).contains(&slowdown),
                "page-mode slowdown should be modest: {line}"
            );
        }
    }

    #[test]
    fn miss_classification_partitions_and_grows() {
        let t = miss_classification(0.1);
        let csv = t.to_csv();
        let rows: Vec<Vec<f64>> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').skip(1).map(|c| c.parse().unwrap()).collect())
            .collect();
        for r in &rows {
            // misses == compulsory + capacity + conflict (per fragment).
            assert!((r[0] - (r[1] + r[2] + r[3])).abs() < 1e-3, "{r:?}");
        }
        // Total misses per fragment grow with the machine.
        assert!(rows.last().unwrap()[0] > rows.first().unwrap()[0]);
    }

    #[test]
    fn sort_last_trades_overlap_for_locality() {
        let t = architectures(0.1);
        assert_eq!(t.len(), 3);
        let csv = t.to_csv();
        // Every speedup is positive and bounded by the processor count.
        for (line, procs) in csv.lines().skip(1).zip([4.0f64, 16.0, 64.0]) {
            let cells: Vec<f64> = line.split(',').skip(1).map(|c| c.parse().unwrap()).collect();
            for s in [cells[0], cells[2], cells[4]] {
                assert!(s > 0.5 && s <= procs + 0.5, "speedup {s} at {procs}p");
            }
        }
    }

    #[test]
    fn interframe_pan_degrades_l2_reuse() {
        let t = l2_interframe(0.1);
        let csv = t.to_csv();
        let rows: Vec<Vec<f64>> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').skip(1).map(|c| c.parse().unwrap()).collect())
            .collect();
        // A repeated frame (pan 0) refetches less than a far-panned one on
        // the parallel machine.
        let repeat = rows.first().unwrap()[1];
        let panned = rows.last().unwrap()[1];
        assert!(
            panned > repeat,
            "large pan ({panned:.3}) should refetch more than repeat ({repeat:.3})"
        );
    }

    #[test]
    fn l2_reduces_external_traffic() {
        let t = l2_cache(0.1);
        let csv = t.to_csv();
        for line in csv.lines().skip(1) {
            let reduction: f64 = line.split(',').nth(4).unwrap().parse().unwrap();
            assert!(reduction >= -0.01, "L2 must not increase traffic: {line}");
        }
    }
}
