//! Evaluating a *custom* workload: build your own scene configuration and
//! ask which machine draws it fastest.
//!
//! The paper's presets model 1999 game frames; this example models a
//! heavier VR crowd scene (more hotspots, deeper overdraw, denser textures)
//! and runs the same methodology: measure its Table 1-style stats, then
//! sweep processor counts with the fixed block-16 distribution the paper
//! recommends, plus the dynamic-SLI extension for comparison.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use sortmid::{dynamic, CacheKind, Distribution, Machine, MachineConfig};
use sortmid_scene::{SceneBuilder, SceneConfig, SceneStats};
use sortmid_util::table::{fmt_f, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A dense VR crowd: 1024x1024, heavy clustered overdraw, mid-size
    // textures sampled near 1 texel/pixel.
    let config = SceneConfig {
        name: "vr-crowd".to_string(),
        width: 1024,
        height: 1024,
        target_triangles: 40_000,
        target_depth: 6.0,
        texture_count: 400,
        tex_size_log2: (6, 7),
        texel_density: 0.9,
        hotspots: 12,
        cluster_sigma: 0.05,
        cluster_fraction: 0.9,
        background_layers: 2,
        patch_quads: (2, 7),
        seed: 2026,
    };
    let scene = SceneBuilder::custom(config).scale(0.5).build();
    let stats = SceneStats::measure(&scene);
    println!("workload: {stats}\n");

    let stream = scene.rasterize();
    let baseline = Machine::new(MachineConfig::uniprocessor()).run(&stream);

    let mut table = Table::new(&["procs", "block-16", "sli-4", "dynamic sli", "t/f block-16"]);
    for procs in [4u32, 8, 16, 32, 64] {
        let mut row = vec![procs.to_string()];
        let mut block_tf = 0.0;
        for dist in [
            Distribution::block(16),
            Distribution::sli(4),
            dynamic::balanced_sli_for(&stream, procs, 4),
        ] {
            let cfg = MachineConfig::builder()
                .processors(procs)
                .distribution(dist.clone())
                .cache(CacheKind::PaperL1)
                .bus_ratio(1.0)
                .build()?;
            let report = Machine::new(cfg).run(&stream);
            if matches!(dist, Distribution::Block { .. }) {
                block_tf = report.texel_to_fragment();
            }
            row.push(fmt_f(report.speedup_vs(&baseline), 2));
        }
        row.push(fmt_f(block_tf, 3));
        table.row_owned(row);
    }
    print!("{}", table.to_ascii());
    println!(
        "\nBlock-16 needs no tuning as the machine grows; dynamic SLI is the\n\
         price of making scanline interleaving competitive (paper, Section 9)."
    );
    Ok(())
}
