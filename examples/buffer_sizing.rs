//! Triangle-FIFO sizing: how much buffering does a texture-mapping node
//! actually need?
//!
//! Section 8 of the paper shows the FIFO between the geometry stage and the
//! engines hides *local* load imbalance, and that real caches make it more
//! important. This example sizes the buffer for a workload: it sweeps the
//! FIFO depth and reports the speedup retained relative to a near-infinite
//! buffer, with both a perfect cache and the real 16 KB one.
//!
//! ```text
//! cargo run --release --example buffer_sizing [benchmark] [procs]
//! ```

use sortmid::{CacheKind, Distribution, Machine, MachineConfig};
use sortmid_scene::{Benchmark, SceneBuilder};
use sortmid_util::table::{fmt_f, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let benchmark: Benchmark = args
        .next()
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(Benchmark::Truc640);
    let procs: u32 = args.next().map(|s| s.parse()).transpose()?.unwrap_or(64);

    let stream = SceneBuilder::benchmark(benchmark).scale(0.25).build().rasterize();
    println!(
        "workload: {benchmark}, {procs} processors, block-16, 2 texel/pixel bus\n"
    );

    let run = |cache: CacheKind, buffer: usize| {
        let config = MachineConfig::builder()
            .processors(procs)
            .distribution(Distribution::block(16))
            .cache(cache)
            .bus_ratio(2.0)
            .triangle_buffer(buffer)
            .build()
            .expect("valid");
        Machine::new(config).run(&stream)
    };

    let ideal_perfect = run(CacheKind::Perfect, 10_000).total_cycles() as f64;
    let ideal_cached = run(CacheKind::PaperL1, 10_000).total_cycles() as f64;

    let mut table = Table::new(&["buffer", "perfect cache %", "16KB cache %"]);
    let mut recommended = None;
    for buffer in [1usize, 5, 10, 20, 50, 100, 200, 500, 1000, 10_000] {
        let p = ideal_perfect / run(CacheKind::Perfect, buffer).total_cycles() as f64 * 100.0;
        let c = ideal_cached / run(CacheKind::PaperL1, buffer).total_cycles() as f64 * 100.0;
        if recommended.is_none() && c >= 99.0 {
            recommended = Some(buffer);
        }
        table.row_owned(vec![buffer.to_string(), fmt_f(p, 1), fmt_f(c, 1)]);
    }
    print!("{}", table.to_ascii());
    match recommended {
        Some(buffer) => println!(
            "\nrecommendation: {buffer} entries retain 99% of the ideal-buffer \
             performance with the real cache."
        ),
        None => println!("\nrecommendation: use the near-ideal 10000-entry buffer."),
    }
    Ok(())
}
