//! Differential observability: attributed deltas between two runs'
//! artefacts.
//!
//! The paper's argument is comparative (which distribution wins, what a
//! small buffer costs), and so is the day-to-day question a regression
//! gate answers: *what changed between this run and the baseline, and
//! why?* This module compares **artefacts, not runs** — structured
//! comparison of the JSON documents the bins already emit is
//! deterministic and free, where re-measurement is neither. Three
//! differs cover every level the instrumentation records:
//!
//! * [`SweepDiff`] — two `BENCH_sweep.json` documents: per-config
//!   simulated-cycle deltas, each split by the five-way
//!   [`CycleBreakdown`] identity (setup / busy / bus-stall / starved /
//!   idle, summed over nodes);
//! * [`HeatmapDiff`] — two `HEATMAP_<preset>.json` documents: tile-level
//!   delta grids for every numeric metric plane (rendered as
//!   diverging-palette PPMs via [`crate::palette::diverging_color`]),
//!   owner-flip counts, and per-node three-C miss-class deltas;
//! * [`MetricsDiff`] — two `METRICS_<name>.json` host profiles:
//!   per-phase wall-time deltas from the span tree, counter deltas, and
//!   [`Log2Histogram`](crate::metrics::Log2Histogram) distribution
//!   shifts (count/sum/percentile movement plus sparse per-bucket
//!   deltas).
//!
//! Every differ starts by reading both documents' [`Provenance`] blocks
//! and refuses incomparable pairs (different schema, scene seed or
//! config grid) with a clear error. Diffing a document against itself is
//! **exactly zero at every level** — a devharness property pins this —
//! so any nonzero delta is a real difference between the runs, never
//! comparison noise.

use crate::breakdown::{BreakdownDelta, CycleBreakdown};
use crate::palette::diverging_color;
use crate::provenance::Provenance;
use sortmid_devharness::json::Json;
use sortmid_util::ppm::Image;
use std::collections::BTreeMap;

/// Exact signed difference of two `u64` counters.
fn delta64(cur: u64, base: u64) -> i64 {
    i64::try_from(cur as i128 - base as i128).expect("artefact counters fit well inside i64")
}

/// `cur` vs `base` as a signed percentage string, or `(was 0)` when the
/// base cannot anchor a ratio.
fn fmt_pct(cur: u64, base: u64) -> String {
    if base == 0 {
        if cur == 0 {
            "+0.0%".to_string()
        } else {
            "(was 0)".to_string()
        }
    } else {
        format!("{:+.1}%", (cur as f64 / base as f64 - 1.0) * 100.0)
    }
}

/// Compacts sorted indices into a `2-5,7` style range list.
fn compact_ranges(indices: &[usize]) -> String {
    let mut out = String::new();
    let mut i = 0;
    while i < indices.len() {
        let start = indices[i];
        let mut end = start;
        while i + 1 < indices.len() && indices[i + 1] == end + 1 {
            i += 1;
            end = indices[i];
        }
        if !out.is_empty() {
            out.push(',');
        }
        if start == end {
            out.push_str(&start.to_string());
        } else {
            out.push_str(&format!("{start}-{end}"));
        }
        i += 1;
    }
    out
}

/// Reads and cross-checks both documents' provenance blocks.
///
/// # Errors
///
/// Returns the missing-block / field error of the offending side, or the
/// comparability error naming the mismatched field.
fn comparable_provenance(base: &Json, cur: &Json) -> Result<(Provenance, Provenance), String> {
    let b = Provenance::from_doc(base).map_err(|e| format!("baseline: {e}"))?;
    let c = Provenance::from_doc(cur).map_err(|e| format!("current: {e}"))?;
    b.comparable(&c)?;
    Ok((b, c))
}

// ---------------------------------------------------------------------------
// Sweep diff
// ---------------------------------------------------------------------------

/// One config's change between two sweep artefacts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigDelta {
    /// The config summary (`<procs>p/<distribution>/<cache>/<buffer>...`).
    pub config: String,
    /// Baseline machine time (max node finish).
    pub base_cycles: u64,
    /// Current machine time.
    pub cur_cycles: u64,
    /// Five-way attribution of the change, summed over all nodes. Its
    /// [`BreakdownDelta::total`] equals the change in *node-cycle sum*
    /// (machine time is the max finish, so the two differ whenever load
    /// shifts between nodes — both views are reported).
    pub breakdown: BreakdownDelta,
}

impl ConfigDelta {
    /// Signed machine-time change in cycles.
    pub fn delta(&self) -> i64 {
        delta64(self.cur_cycles, self.base_cycles)
    }

    /// True when neither the machine time nor any per-node category
    /// moved.
    pub fn is_zero(&self) -> bool {
        self.delta() == 0 && self.breakdown.is_zero()
    }

    /// The `<procs>p/<distribution>` group this config belongs to (what
    /// the regression gate medians over).
    pub fn group(&self) -> String {
        config_group(&self.config).unwrap_or_else(|| self.config.clone())
    }
}

/// The regression gate's group key of a config summary: its first two
/// `/`-separated segments (`None` when the summary has fewer).
pub fn config_group(config: &str) -> Option<String> {
    let segments: Vec<&str> = config.splitn(3, '/').collect();
    (segments.len() >= 2).then(|| format!("{}/{}", segments[0], segments[1]))
}

/// Attributed difference between two `BENCH_sweep.json` documents.
#[derive(Debug, Clone)]
pub struct SweepDiff {
    /// Provenance of the baseline document.
    pub base: Provenance,
    /// Provenance of the current document.
    pub current: Provenance,
    /// Per-config deltas, in the current document's order.
    pub configs: Vec<ConfigDelta>,
    /// Configs only the baseline has (coverage drift).
    pub only_base: Vec<String>,
    /// Configs only the current document has.
    pub only_current: Vec<String>,
}

/// Parses a sweep document's `cycle_breakdowns` into
/// `config -> (total, per-node breakdowns)`, preserving order.
fn parse_breakdowns(
    label: &str,
    doc: &Json,
) -> Result<Vec<(String, u64, Vec<CycleBreakdown>)>, String> {
    let configs = doc
        .get("cycle_breakdowns")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{label}: missing or mistyped 'cycle_breakdowns'"))?;
    let mut out = Vec::with_capacity(configs.len());
    for (i, entry) in configs.iter().enumerate() {
        let config = entry
            .get("config")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{label}: breakdown #{i} has no 'config'"))?;
        let total = entry
            .get("total_cycles")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("{label}/{config}: missing 'total_cycles'"))?;
        let rows = entry
            .get("nodes")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("{label}/{config}: missing 'nodes'"))?;
        let mut nodes = Vec::with_capacity(rows.len());
        for (n, row) in rows.iter().enumerate() {
            let cells: Option<Vec<u64>> = row
                .as_arr()
                .map(|r| r.iter().filter_map(Json::as_u64).collect());
            match cells.as_deref() {
                Some(&[setup, busy, bus_stall, starved, idle, _finish]) => {
                    nodes.push(CycleBreakdown { setup, busy, bus_stall, starved, idle });
                }
                _ => {
                    return Err(format!(
                        "{label}/{config}/node{n}: expected 6 integers \
                         [setup, busy, bus_stall, starved, idle, finish]"
                    ))
                }
            }
        }
        out.push((config.to_string(), total, nodes));
    }
    Ok(out)
}

impl SweepDiff {
    /// Diffs two sweep documents (baseline first).
    ///
    /// # Errors
    ///
    /// Returns an error for missing/incomparable provenance, a malformed
    /// `cycle_breakdowns` section, or a node-count mismatch on a shared
    /// config (the grids hash equal, so that means a corrupt document).
    pub fn between(base_doc: &Json, cur_doc: &Json) -> Result<SweepDiff, String> {
        let (base_prov, cur_prov) = comparable_provenance(base_doc, cur_doc)?;
        let base = parse_breakdowns("baseline", base_doc)?;
        let cur = parse_breakdowns("current", cur_doc)?;
        let base_by_name: BTreeMap<&str, (&u64, &Vec<CycleBreakdown>)> = base
            .iter()
            .map(|(c, t, n)| (c.as_str(), (t, n)))
            .collect();
        let cur_names: BTreeMap<&str, ()> = cur.iter().map(|(c, _, _)| (c.as_str(), ())).collect();

        let mut configs = Vec::new();
        for (config, cur_total, cur_nodes) in &cur {
            let Some((base_total, base_nodes)) = base_by_name.get(config.as_str()) else {
                continue;
            };
            if base_nodes.len() != cur_nodes.len() {
                return Err(format!(
                    "config '{config}': node count {} vs {} — corrupt artefact \
                     (the grids hash equal)",
                    base_nodes.len(),
                    cur_nodes.len()
                ));
            }
            let mut breakdown = BreakdownDelta::default();
            for (c, b) in cur_nodes.iter().zip(base_nodes.iter()) {
                breakdown += c.delta(b);
            }
            configs.push(ConfigDelta {
                config: config.clone(),
                base_cycles: **base_total,
                cur_cycles: *cur_total,
                breakdown,
            });
        }
        Ok(SweepDiff {
            base: base_prov,
            current: cur_prov,
            configs,
            only_base: base
                .iter()
                .filter(|(c, _, _)| !cur_names.contains_key(c.as_str()))
                .map(|(c, _, _)| c.clone())
                .collect(),
            only_current: cur
                .iter()
                .filter(|(c, _, _)| !base_by_name.contains_key(c.as_str()))
                .map(|(c, _, _)| c.clone())
                .collect(),
        })
    }

    /// True when every config is unchanged at every level and neither
    /// side has extra configs.
    pub fn is_zero(&self) -> bool {
        self.only_base.is_empty()
            && self.only_current.is_empty()
            && self.configs.iter().all(ConfigDelta::is_zero)
    }

    /// Changed configs ranked by absolute machine-time delta, largest
    /// first (ties break on the config name for determinism).
    pub fn ranked(&self) -> Vec<&ConfigDelta> {
        let mut changed: Vec<&ConfigDelta> =
            self.configs.iter().filter(|c| !c.is_zero()).collect();
        changed.sort_by(|a, b| {
            b.delta()
                .unsigned_abs()
                .cmp(&a.delta().unsigned_abs())
                .then_with(|| a.config.cmp(&b.config))
        });
        changed
    }

    /// Ranked, human-readable explanation lines for the top `top`
    /// changed configs: the cycle change plus the dominant breakdown
    /// categories driving it.
    pub fn explanation(&self, top: usize) -> Vec<String> {
        let mut lines = Vec::new();
        if let Some(drift) = self.base.environment_drift(&self.current) {
            lines.push(format!("note: environment drift ({drift})"));
        }
        for c in self.ranked().into_iter().take(top) {
            lines.push(explain_config(c));
        }
        for config in &self.only_base {
            lines.push(format!("{config}: only in baseline (coverage drift)"));
        }
        for config in &self.only_current {
            lines.push(format!("{config}: only in current run (coverage drift)"));
        }
        if lines.is_empty() {
            lines.push("no differences: every config identical at every level".to_string());
        }
        lines
    }

    /// The diff as a `DIFF_*.json`-shaped document (`kind: "sweep-diff"`).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("kind", Json::str("sweep-diff")),
            ("zero", Json::Bool(self.is_zero())),
            ("base_provenance", self.base.to_json()),
            ("current_provenance", self.current.to_json()),
            (
                "configs",
                Json::arr(self.configs.iter().map(|c| {
                    Json::obj([
                        ("config", Json::str(&c.config)),
                        ("base_cycles", Json::U64(c.base_cycles)),
                        ("cur_cycles", Json::U64(c.cur_cycles)),
                        ("delta", Json::I64(c.delta())),
                        (
                            "breakdown",
                            Json::obj(
                                crate::breakdown::CATEGORY_NAMES
                                    .iter()
                                    .zip(c.breakdown.as_array())
                                    .map(|(&k, d)| (k, Json::I64(d))),
                            ),
                        ),
                    ])
                })),
            ),
            (
                "only_base",
                Json::arr(self.only_base.iter().map(Json::str)),
            ),
            (
                "only_current",
                Json::arr(self.only_current.iter().map(Json::str)),
            ),
        ])
    }
}

/// One config's explanation line: cycle movement plus its top breakdown
/// categories.
fn explain_config(c: &ConfigDelta) -> String {
    let verb = if c.delta() > 0 { "regressed" } else { "improved" };
    let mut line = format!(
        "{}: {verb} {} ({} -> {} cycles, {:+} machine cycles)",
        c.config,
        fmt_pct(c.cur_cycles, c.base_cycles),
        c.base_cycles,
        c.cur_cycles,
        c.delta(),
    );
    let mut cats: Vec<(&'static str, i64)> = crate::breakdown::CATEGORY_NAMES
        .iter()
        .zip(c.breakdown.as_array())
        .filter(|(_, d)| *d != 0)
        .map(|(&k, d)| (k, d))
        .collect();
    cats.sort_by_key(|(_, d)| std::cmp::Reverse(d.unsigned_abs()));
    if !cats.is_empty() {
        let parts: Vec<String> = cats
            .iter()
            .take(3)
            .map(|(k, d)| format!("{k} {d:+}"))
            .collect();
        line.push_str(&format!(": {} node cycles", parts.join(", ")));
    }
    line
}

// ---------------------------------------------------------------------------
// Heatmap diff
// ---------------------------------------------------------------------------

/// One node's three-C miss-class movement between two heatmap artefacts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeMissDelta {
    /// Node index.
    pub node: usize,
    /// Fragment-count change.
    pub fragments: i64,
    /// Compulsory-miss change.
    pub compulsory: i64,
    /// Capacity-miss change.
    pub capacity: i64,
    /// Conflict-miss change.
    pub conflict: i64,
    /// Total-miss change (equals the three-C sum by the identity both
    /// documents already satisfy).
    pub misses: i64,
}

impl NodeMissDelta {
    /// True when nothing moved on this node.
    pub fn is_zero(&self) -> bool {
        self.fragments == 0 && self.misses == 0 && self.compulsory == 0
            && self.capacity == 0 && self.conflict == 0
    }
}

/// A tile-level delta grid for one metric plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileDeltaPlane {
    /// The metric plane (`fragments`, `setup_cycles`, ...).
    pub metric: String,
    /// Tile columns.
    pub cols: usize,
    /// Tile rows.
    pub rows: usize,
    /// Row-major signed per-tile deltas.
    pub deltas: Vec<i64>,
}

impl TileDeltaPlane {
    /// Largest absolute tile delta (the diverging palette's
    /// normalisation anchor).
    pub fn max_abs(&self) -> i64 {
        self.deltas.iter().map(|d| d.abs()).max().unwrap_or(0)
    }

    /// How many tiles changed at all.
    pub fn changed_tiles(&self) -> usize {
        self.deltas.iter().filter(|&&d| d != 0).count()
    }

    /// `(col, row, delta)` of the largest-magnitude change (`None` when
    /// the plane is all-zero).
    pub fn hottest(&self) -> Option<(usize, usize, i64)> {
        let (i, &d) = self
            .deltas
            .iter()
            .enumerate()
            .max_by_key(|(_, d)| d.unsigned_abs())?;
        (d != 0).then_some((i % self.cols, i / self.cols, d))
    }

    /// Renders the plane through the diverging palette (blue improved,
    /// white unchanged, red regressed), normalised by [`max_abs`]
    /// (an all-zero plane renders solid white).
    ///
    /// [`max_abs`]: Self::max_abs
    ///
    /// # Panics
    ///
    /// Panics if `px_per_tile` is zero.
    pub fn render(&self, px_per_tile: u32) -> Image {
        assert!(px_per_tile > 0, "px_per_tile must be positive");
        let scale = self.max_abs().max(1) as f64;
        let mut img = Image::new(
            self.cols as u32 * px_per_tile,
            self.rows as u32 * px_per_tile,
        );
        for (i, &d) in self.deltas.iter().enumerate() {
            let rgb = diverging_color(d as f64 / scale);
            let (col, row) = (i % self.cols, i / self.cols);
            for dy in 0..px_per_tile {
                for dx in 0..px_per_tile {
                    img.put(
                        col as u32 * px_per_tile + dx,
                        row as u32 * px_per_tile + dy,
                        rgb,
                    );
                }
            }
        }
        img
    }
}

/// Attributed difference between two `HEATMAP_<preset>.json` documents.
#[derive(Debug, Clone)]
pub struct HeatmapDiff {
    /// The preset both documents render.
    pub preset: String,
    /// The machine config both documents ran.
    pub config: String,
    /// Provenance of the baseline document.
    pub base: Provenance,
    /// Provenance of the current document.
    pub current: Provenance,
    /// Tile delta grids, one per numeric metric plane.
    pub planes: Vec<TileDeltaPlane>,
    /// Tiles whose owning node flipped (the owner plane is categorical,
    /// so a signed delta would be meaningless).
    pub owner_flips: usize,
    /// Per-node three-C miss-class deltas.
    pub nodes: Vec<NodeMissDelta>,
}

/// The numeric tile planes a heatmap diff compares (the `owner` plane is
/// categorical and handled as flip counts instead).
pub const NUMERIC_TILE_METRICS: [&str; 6] = [
    "fragments",
    "setup_cycles",
    "lines_fetched",
    "miss_compulsory",
    "miss_capacity",
    "miss_conflict",
];

/// Reads one `rows x cols` integer plane out of a heatmap document.
fn parse_plane(label: &str, doc: &Json, metric: &str) -> Result<Vec<u64>, String> {
    let rows = doc
        .get("tiles")
        .and_then(|t| t.get(metric))
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{label}: missing or mistyped 'tiles.{metric}'"))?;
    let mut out = Vec::new();
    for row in rows {
        let cells = row
            .as_arr()
            .ok_or_else(|| format!("{label}: 'tiles.{metric}' row is not an array"))?;
        for cell in cells {
            out.push(
                cell.as_u64()
                    .ok_or_else(|| format!("{label}: non-integer cell in 'tiles.{metric}'"))?,
            );
        }
    }
    Ok(out)
}

impl HeatmapDiff {
    /// Diffs two heatmap documents (baseline first).
    ///
    /// # Errors
    ///
    /// Returns an error for missing/incomparable provenance, mismatched
    /// preset/config/grid geometry, or malformed planes and node tables.
    pub fn between(base_doc: &Json, cur_doc: &Json) -> Result<HeatmapDiff, String> {
        let (base_prov, cur_prov) = comparable_provenance(base_doc, cur_doc)?;
        let field = |doc: &Json, side: &str, key: &str| -> Result<String, String> {
            doc.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("{side}: missing or mistyped '{key}'"))
        };
        let preset = field(base_doc, "baseline", "preset")?;
        let cur_preset = field(cur_doc, "current", "preset")?;
        if preset != cur_preset {
            return Err(format!(
                "incomparable heatmaps: preset '{preset}' vs '{cur_preset}'"
            ));
        }
        let config = field(base_doc, "baseline", "config")?;
        let cur_config = field(cur_doc, "current", "config")?;
        if config != cur_config {
            return Err(format!(
                "incomparable heatmaps: config '{config}' vs '{cur_config}'"
            ));
        }
        let geom = |doc: &Json, side: &str| -> Result<(u64, u64, u64), String> {
            let g = |key: &str| {
                doc.get(key)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("{side}: missing or mistyped '{key}'"))
            };
            Ok((g("tile")?, g("cols")?, g("rows")?))
        };
        let (tile, cols, rows) = geom(base_doc, "baseline")?;
        let cur_geom = geom(cur_doc, "current")?;
        if (tile, cols, rows) != cur_geom {
            return Err(format!(
                "incomparable heatmaps: grid {cols}x{rows} @{tile}px vs {}x{} @{}px",
                cur_geom.1, cur_geom.2, cur_geom.0
            ));
        }
        let (cols, rows) = (cols as usize, rows as usize);

        let mut planes = Vec::new();
        for metric in NUMERIC_TILE_METRICS {
            let base = parse_plane("baseline", base_doc, metric)?;
            let cur = parse_plane("current", cur_doc, metric)?;
            if base.len() != cols * rows || cur.len() != cols * rows {
                return Err(format!(
                    "'tiles.{metric}' is not {cols}x{rows} on both sides"
                ));
            }
            planes.push(TileDeltaPlane {
                metric: metric.to_string(),
                cols,
                rows,
                deltas: cur
                    .iter()
                    .zip(&base)
                    .map(|(&c, &b)| delta64(c, b))
                    .collect(),
            });
        }
        let base_owner = parse_plane("baseline", base_doc, "owner")?;
        let cur_owner = parse_plane("current", cur_doc, "owner")?;
        let owner_flips = cur_owner
            .iter()
            .zip(&base_owner)
            .filter(|(c, b)| c != b)
            .count();

        let parse_nodes = |doc: &Json, side: &str| -> Result<Vec<[u64; 5]>, String> {
            let rows = doc
                .get("nodes")
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("{side}: missing or mistyped 'nodes'"))?;
            rows.iter()
                .enumerate()
                .map(|(i, node)| {
                    let mut out = [0u64; 5];
                    for (slot, key) in out
                        .iter_mut()
                        .zip(["fragments", "compulsory", "capacity", "conflict", "misses"])
                    {
                        *slot = node.get(key).and_then(Json::as_u64).ok_or_else(|| {
                            format!("{side}/node{i}: missing or mistyped '{key}'")
                        })?;
                    }
                    Ok(out)
                })
                .collect()
        };
        let base_nodes = parse_nodes(base_doc, "baseline")?;
        let cur_nodes = parse_nodes(cur_doc, "current")?;
        if base_nodes.len() != cur_nodes.len() {
            return Err(format!(
                "incomparable heatmaps: {} nodes vs {}",
                base_nodes.len(),
                cur_nodes.len()
            ));
        }
        let nodes = cur_nodes
            .iter()
            .zip(&base_nodes)
            .enumerate()
            .map(|(node, (c, b))| NodeMissDelta {
                node,
                fragments: delta64(c[0], b[0]),
                compulsory: delta64(c[1], b[1]),
                capacity: delta64(c[2], b[2]),
                conflict: delta64(c[3], b[3]),
                misses: delta64(c[4], b[4]),
            })
            .collect();

        Ok(HeatmapDiff {
            preset,
            config,
            base: base_prov,
            current: cur_prov,
            planes,
            owner_flips,
            nodes,
        })
    }

    /// True when every tile plane, the owner map and every node's miss
    /// classes are unchanged.
    pub fn is_zero(&self) -> bool {
        self.owner_flips == 0
            && self.planes.iter().all(|p| p.max_abs() == 0)
            && self.nodes.iter().all(NodeMissDelta::is_zero)
    }

    /// Total change of one miss class over all nodes, with the baseline
    /// total for a percentage, and the changed node indices.
    fn miss_class_movement(&self, pick: impl Fn(&NodeMissDelta) -> i64) -> (i64, Vec<usize>) {
        let mut total = 0;
        let mut changed = Vec::new();
        for n in &self.nodes {
            let d = pick(n);
            total += d;
            if d != 0 {
                changed.push(n.node);
            }
        }
        (total, changed)
    }

    /// Ranked, human-readable explanation lines: miss-class movement
    /// with the nodes carrying it, then the hottest tile per changed
    /// plane.
    pub fn explanation(&self) -> Vec<String> {
        let mut lines = Vec::new();
        for (class, pick) in [
            ("compulsory", (|n: &NodeMissDelta| n.compulsory) as fn(&NodeMissDelta) -> i64),
            ("capacity", |n| n.capacity),
            ("conflict", |n| n.conflict),
        ] {
            let (total, nodes) = self.miss_class_movement(pick);
            if total != 0 {
                lines.push(format!(
                    "{class} misses {total:+} on nodes {}",
                    compact_ranges(&nodes)
                ));
            }
        }
        for plane in &self.planes {
            if let Some((col, row, d)) = plane.hottest() {
                lines.push(format!(
                    "{}: {} tiles changed, hottest {d:+} at ({col},{row})",
                    plane.metric,
                    plane.changed_tiles(),
                ));
            }
        }
        if self.owner_flips > 0 {
            lines.push(format!("{} tiles changed owner", self.owner_flips));
        }
        if lines.is_empty() {
            lines.push("no differences: tiles, owners and miss classes identical".to_string());
        }
        lines
    }

    /// The diff as a `DIFF_*.json`-shaped document (`kind: "heatmap-diff"`).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("kind", Json::str("heatmap-diff")),
            ("zero", Json::Bool(self.is_zero())),
            ("preset", Json::str(&self.preset)),
            ("config", Json::str(&self.config)),
            ("base_provenance", self.base.to_json()),
            ("current_provenance", self.current.to_json()),
            ("owner_flips", Json::U64(self.owner_flips as u64)),
            (
                "planes",
                Json::arr(self.planes.iter().map(|p| {
                    Json::obj([
                        ("metric", Json::str(&p.metric)),
                        ("changed_tiles", Json::U64(p.changed_tiles() as u64)),
                        ("max_abs", Json::I64(p.max_abs())),
                        (
                            "deltas",
                            Json::arr((0..p.rows).map(|row| {
                                Json::arr(
                                    p.deltas[row * p.cols..(row + 1) * p.cols]
                                        .iter()
                                        .map(|&d| Json::I64(d)),
                                )
                            })),
                        ),
                    ])
                })),
            ),
            (
                "nodes",
                Json::arr(self.nodes.iter().map(|n| {
                    Json::obj([
                        ("node", Json::U64(n.node as u64)),
                        ("fragments", Json::I64(n.fragments)),
                        ("compulsory", Json::I64(n.compulsory)),
                        ("capacity", Json::I64(n.capacity)),
                        ("conflict", Json::I64(n.conflict)),
                        ("misses", Json::I64(n.misses)),
                    ])
                })),
            ),
        ])
    }
}

// ---------------------------------------------------------------------------
// Metrics (host profile) diff
// ---------------------------------------------------------------------------

/// One pipeline phase's wall-time movement between two host profiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseDelta {
    /// Phase (span) name.
    pub name: String,
    /// Change in occurrence count.
    pub count: i64,
    /// Change in inclusive wall time.
    pub total_ns: i64,
    /// Change in self (exclusive) wall time.
    pub self_ns: i64,
    /// Baseline self time, anchoring percentages.
    pub base_self_ns: u64,
}

/// One histogram's distribution shift between two host profiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramShift {
    /// Histogram name.
    pub name: String,
    /// Change in sample count.
    pub count: i64,
    /// Change in sample sum.
    pub sum: i64,
    /// Bucket-resolution percentile movement `[p50, p90, p99]`.
    pub percentiles: [i64; 3],
    /// Sparse per-bucket count deltas `(bucket index, delta)`, ascending.
    pub buckets: Vec<(usize, i64)>,
}

impl HistogramShift {
    /// True when the distribution did not move at all.
    pub fn is_zero(&self) -> bool {
        self.count == 0 && self.sum == 0 && self.percentiles == [0; 3] && self.buckets.is_empty()
    }
}

/// Attributed difference between two `METRICS_<name>.json` host
/// profiles. Host wall times are *not* deterministic across runs — this
/// differ explains where time moved, it does not gate.
#[derive(Debug, Clone)]
pub struct MetricsDiff {
    /// Provenance of the baseline document.
    pub base: Provenance,
    /// Provenance of the current document.
    pub current: Provenance,
    /// Per-phase deltas for phases present on both sides, baseline order.
    pub phases: Vec<PhaseDelta>,
    /// Phases only one side has (name, which side).
    pub one_sided_phases: Vec<(String, &'static str)>,
    /// Counter deltas (all counters on either side, by name).
    pub counters: Vec<(String, i64)>,
    /// Histogram distribution shifts for histograms on both sides.
    pub histograms: Vec<HistogramShift>,
    /// Histograms only one side has (name, which side).
    pub one_sided_histograms: Vec<(String, &'static str)>,
    /// Peak-RSS change in bytes.
    pub peak_rss_delta: i64,
}

/// Reads the `phases` table as `name -> (count, total_ns, self_ns)`.
fn parse_phases(label: &str, doc: &Json) -> Result<Vec<(String, [u64; 3])>, String> {
    let rows = doc
        .get("phases")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{label}: missing or mistyped 'phases'"))?;
    rows.iter()
        .enumerate()
        .map(|(i, row)| {
            let name = row
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("{label}/phase#{i}: missing 'name'"))?;
            let mut vals = [0u64; 3];
            for (slot, key) in vals.iter_mut().zip(["count", "total_ns", "self_ns"]) {
                *slot = row
                    .get(key)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("{label}/{name}: missing or mistyped '{key}'"))?;
            }
            Ok((name.to_string(), vals))
        })
        .collect()
}

/// Reads `metrics.counters` as `name -> value`.
fn parse_counters(label: &str, doc: &Json) -> Result<BTreeMap<String, u64>, String> {
    let Some(Json::Obj(pairs)) = doc.get("metrics").and_then(|m| m.get("counters")) else {
        return Err(format!("{label}: missing or mistyped 'metrics.counters'"));
    };
    pairs
        .iter()
        .map(|(k, v)| {
            v.as_u64()
                .map(|v| (k.clone(), v))
                .ok_or_else(|| format!("{label}: counter '{k}' is not an integer"))
        })
        .collect()
}

/// One histogram snapshot: `(count, sum, [p50, p90, p99], buckets)`.
type HistogramSnapshot = (u64, u64, [u64; 3], BTreeMap<usize, u64>);

/// Reads `metrics.histograms` keyed by name.
fn parse_histograms(
    label: &str,
    doc: &Json,
) -> Result<BTreeMap<String, HistogramSnapshot>, String> {
    let Some(Json::Obj(pairs)) = doc.get("metrics").and_then(|m| m.get("histograms")) else {
        return Err(format!("{label}: missing or mistyped 'metrics.histograms'"));
    };
    let mut out = BTreeMap::new();
    for (name, h) in pairs {
        let field = |key: &str| {
            h.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{label}/{name}: missing or mistyped '{key}'"))
        };
        let mut buckets = BTreeMap::new();
        for pair in h
            .get("buckets")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("{label}/{name}: missing or mistyped 'buckets'"))?
        {
            match pair.as_arr() {
                Some([k, n]) => {
                    let (Some(k), Some(n)) = (k.as_u64(), n.as_u64()) else {
                        return Err(format!("{label}/{name}: non-integer bucket entry"));
                    };
                    buckets.insert(k as usize, n);
                }
                _ => return Err(format!("{label}/{name}: bucket entry is not a pair")),
            }
        }
        out.insert(
            name.clone(),
            (
                field("count")?,
                field("sum")?,
                [field("p50")?, field("p90")?, field("p99")?],
                buckets,
            ),
        );
    }
    Ok(out)
}

impl MetricsDiff {
    /// Diffs two host-profile documents (baseline first).
    ///
    /// # Errors
    ///
    /// Returns an error for missing/incomparable provenance or malformed
    /// phase/metric tables.
    pub fn between(base_doc: &Json, cur_doc: &Json) -> Result<MetricsDiff, String> {
        let (base_prov, cur_prov) = comparable_provenance(base_doc, cur_doc)?;
        let base_phases = parse_phases("baseline", base_doc)?;
        let cur_phases = parse_phases("current", cur_doc)?;
        let cur_by_name: BTreeMap<&str, &[u64; 3]> =
            cur_phases.iter().map(|(n, v)| (n.as_str(), v)).collect();
        let base_names: BTreeMap<&str, ()> =
            base_phases.iter().map(|(n, _)| (n.as_str(), ())).collect();

        let mut phases = Vec::new();
        let mut one_sided_phases = Vec::new();
        for (name, b) in &base_phases {
            match cur_by_name.get(name.as_str()) {
                Some(c) => phases.push(PhaseDelta {
                    name: name.clone(),
                    count: delta64(c[0], b[0]),
                    total_ns: delta64(c[1], b[1]),
                    self_ns: delta64(c[2], b[2]),
                    base_self_ns: b[2],
                }),
                None => one_sided_phases.push((name.clone(), "baseline")),
            }
        }
        for (name, _) in &cur_phases {
            if !base_names.contains_key(name.as_str()) {
                one_sided_phases.push((name.clone(), "current"));
            }
        }

        let base_counters = parse_counters("baseline", base_doc)?;
        let cur_counters = parse_counters("current", cur_doc)?;
        let mut counter_names: Vec<&String> = base_counters.keys().collect();
        for name in cur_counters.keys() {
            if !base_counters.contains_key(name) {
                counter_names.push(name);
            }
        }
        let counters = counter_names
            .into_iter()
            .map(|name| {
                let b = base_counters.get(name).copied().unwrap_or(0);
                let c = cur_counters.get(name).copied().unwrap_or(0);
                (name.clone(), delta64(c, b))
            })
            .collect();

        let base_hists = parse_histograms("baseline", base_doc)?;
        let cur_hists = parse_histograms("current", cur_doc)?;
        let mut histograms = Vec::new();
        let mut one_sided_histograms = Vec::new();
        for (name, (b_count, b_sum, b_pct, b_buckets)) in &base_hists {
            let Some((c_count, c_sum, c_pct, c_buckets)) = cur_hists.get(name) else {
                one_sided_histograms.push((name.clone(), "baseline"));
                continue;
            };
            let mut keys: Vec<usize> = b_buckets.keys().chain(c_buckets.keys()).copied().collect();
            keys.sort_unstable();
            keys.dedup();
            let buckets = keys
                .into_iter()
                .filter_map(|k| {
                    let d = delta64(
                        c_buckets.get(&k).copied().unwrap_or(0),
                        b_buckets.get(&k).copied().unwrap_or(0),
                    );
                    (d != 0).then_some((k, d))
                })
                .collect();
            histograms.push(HistogramShift {
                name: name.clone(),
                count: delta64(*c_count, *b_count),
                sum: delta64(*c_sum, *b_sum),
                percentiles: [
                    delta64(c_pct[0], b_pct[0]),
                    delta64(c_pct[1], b_pct[1]),
                    delta64(c_pct[2], b_pct[2]),
                ],
                buckets,
            });
        }
        for name in cur_hists.keys() {
            if !base_hists.contains_key(name) {
                one_sided_histograms.push((name.clone(), "current"));
            }
        }

        let rss = |doc: &Json, side: &str| {
            doc.get("peak_rss_bytes")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{side}: missing or mistyped 'peak_rss_bytes'"))
        };
        let peak_rss_delta = delta64(rss(cur_doc, "current")?, rss(base_doc, "baseline")?);

        Ok(MetricsDiff {
            base: base_prov,
            current: cur_prov,
            phases,
            one_sided_phases,
            counters,
            histograms,
            one_sided_histograms,
            peak_rss_delta,
        })
    }

    /// True when phases, counters, histograms and peak RSS are all
    /// unchanged (only diffing a profile against itself achieves this —
    /// wall times jitter between real runs).
    pub fn is_zero(&self) -> bool {
        self.one_sided_phases.is_empty()
            && self.one_sided_histograms.is_empty()
            && self.peak_rss_delta == 0
            && self
                .phases
                .iter()
                .all(|p| p.count == 0 && p.total_ns == 0 && p.self_ns == 0)
            && self.counters.iter().all(|(_, d)| *d == 0)
            && self.histograms.iter().all(HistogramShift::is_zero)
    }

    /// Phases ranked by absolute self-time movement, largest first.
    pub fn ranked_phases(&self) -> Vec<&PhaseDelta> {
        let mut changed: Vec<&PhaseDelta> = self
            .phases
            .iter()
            .filter(|p| p.self_ns != 0 || p.count != 0)
            .collect();
        changed.sort_by(|a, b| {
            b.self_ns
                .unsigned_abs()
                .cmp(&a.self_ns.unsigned_abs())
                .then_with(|| a.name.cmp(&b.name))
        });
        changed
    }

    /// Ranked, human-readable explanation lines: where host wall time
    /// moved, counter drift, and histogram shifts.
    pub fn explanation(&self, top: usize) -> Vec<String> {
        let mut lines = Vec::new();
        if let Some(drift) = self.base.environment_drift(&self.current) {
            lines.push(format!(
                "note: environment drift ({drift}) — wall times are not portable"
            ));
        }
        for p in self.ranked_phases().into_iter().take(top) {
            let pct = fmt_pct(
                (p.base_self_ns as i128 + p.self_ns as i128).max(0) as u64,
                p.base_self_ns,
            );
            lines.push(format!(
                "phase '{}': self {:+.3} ms ({pct}), inclusive {:+.3} ms",
                p.name,
                p.self_ns as f64 / 1e6,
                p.total_ns as f64 / 1e6,
            ));
        }
        for (name, d) in self.counters.iter().filter(|(_, d)| *d != 0).take(top) {
            lines.push(format!("counter '{name}': {d:+}"));
        }
        for h in self.histograms.iter().filter(|h| !h.is_zero()).take(top) {
            lines.push(format!(
                "histogram '{}': count {:+}, p50 {:+} ns, p99 {:+} ns, {} buckets moved",
                h.name,
                h.count,
                h.percentiles[0],
                h.percentiles[2],
                h.buckets.len(),
            ));
        }
        if lines.is_empty() {
            lines.push("no differences: phases, counters and histograms identical".to_string());
        }
        lines
    }

    /// The diff as a `DIFF_*.json`-shaped document (`kind: "metrics-diff"`).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("kind", Json::str("metrics-diff")),
            ("zero", Json::Bool(self.is_zero())),
            ("base_provenance", self.base.to_json()),
            ("current_provenance", self.current.to_json()),
            ("peak_rss_delta", Json::I64(self.peak_rss_delta)),
            (
                "phases",
                Json::arr(self.phases.iter().map(|p| {
                    Json::obj([
                        ("name", Json::str(&p.name)),
                        ("count", Json::I64(p.count)),
                        ("total_ns", Json::I64(p.total_ns)),
                        ("self_ns", Json::I64(p.self_ns)),
                    ])
                })),
            ),
            (
                "counters",
                Json::obj(self.counters.iter().map(|(k, d)| (k.clone(), Json::I64(*d)))),
            ),
            (
                "histograms",
                Json::arr(self.histograms.iter().map(|h| {
                    Json::obj([
                        ("name", Json::str(&h.name)),
                        ("count", Json::I64(h.count)),
                        ("sum", Json::I64(h.sum)),
                        ("p50", Json::I64(h.percentiles[0])),
                        ("p90", Json::I64(h.percentiles[1])),
                        ("p99", Json::I64(h.percentiles[2])),
                        (
                            "buckets",
                            Json::arr(h.buckets.iter().map(|&(k, d)| {
                                Json::arr([Json::U64(k as u64), Json::I64(d)])
                            })),
                        ),
                    ])
                })),
            ),
            (
                "one_sided",
                Json::arr(
                    self.one_sided_phases
                        .iter()
                        .map(|(n, side)| Json::str(format!("phase '{n}' only in {side}")))
                        .chain(self.one_sided_histograms.iter().map(|(n, side)| {
                            Json::str(format!("histogram '{n}' only in {side}"))
                        })),
                ),
            ),
        ])
    }
}

/// Which differ a parsed artefact belongs to, from its structure:
/// `sweep`, `heatmap` or `metrics` (`None` for anything else).
pub fn detect_kind(doc: &Json) -> Option<&'static str> {
    if doc.get("cycle_breakdowns").is_some() {
        Some("sweep")
    } else if doc.get("tiles").is_some() {
        Some("heatmap")
    } else if doc.get("spans").is_some() {
        Some("metrics")
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prov() -> Json {
        Provenance::collect(7, 0xabc).to_json()
    }

    fn sweep_doc(bus_stall: u64) -> Json {
        let finish = 100 + bus_stall;
        Json::obj([
            ("provenance", prov()),
            (
                "cycle_breakdowns",
                Json::arr([
                    Json::obj([
                        ("config", Json::str("16p/block-16/16KB/buf100")),
                        ("total_cycles", Json::U64(finish)),
                        (
                            "nodes",
                            Json::arr([Json::arr(
                                [25, 60, bus_stall, 10, 5, finish].map(Json::U64),
                            )]),
                        ),
                    ]),
                    Json::obj([
                        ("config", Json::str("64p/sli-4/16KB/buf100")),
                        ("total_cycles", Json::U64(50)),
                        (
                            "nodes",
                            Json::arr([Json::arr([10, 30, 0, 5, 5, 50].map(Json::U64))]),
                        ),
                    ]),
                ]),
            ),
        ])
    }

    #[test]
    fn sweep_self_diff_is_exactly_zero() {
        let doc = sweep_doc(0);
        let d = SweepDiff::between(&doc, &doc).unwrap();
        assert!(d.is_zero());
        assert_eq!(d.ranked().len(), 0);
        assert!(d.explanation(5)[0].contains("no differences"));
        assert_eq!(d.to_json().get("zero"), Some(&Json::Bool(true)));
    }

    #[test]
    fn sweep_diff_attributes_an_injected_bus_stall_regression() {
        let base = sweep_doc(0);
        let cur = sweep_doc(40);
        let d = SweepDiff::between(&base, &cur).unwrap();
        assert!(!d.is_zero());
        let ranked = d.ranked();
        assert_eq!(ranked.len(), 1);
        assert_eq!(ranked[0].config, "16p/block-16/16KB/buf100");
        assert_eq!(ranked[0].delta(), 40);
        assert_eq!(ranked[0].breakdown.dominant(), Some(("bus_stall", 40)));
        assert_eq!(ranked[0].group(), "16p/block-16");
        let line = &d.explanation(5)[0];
        assert!(line.contains("regressed") && line.contains("bus_stall +40"), "{line}");
        // The reverse diff reads as an improvement of the same size.
        let r = SweepDiff::between(&cur, &base).unwrap();
        assert_eq!(r.ranked()[0].delta(), -40);
        assert!(r.explanation(5)[0].contains("improved"));
    }

    #[test]
    fn sweep_diff_rejects_incomparable_provenance() {
        let base = sweep_doc(0);
        let mut cur = sweep_doc(0);
        cur.set(
            "provenance",
            Provenance::collect(7, 0xdef).to_json(),
        );
        let e = SweepDiff::between(&base, &cur).unwrap_err();
        assert!(e.contains("grid_hash"), "{e}");
        let mut cur = sweep_doc(0);
        cur.set("provenance", Provenance::collect(8, 0xabc).to_json());
        let e = SweepDiff::between(&base, &cur).unwrap_err();
        assert!(e.contains("seed"), "{e}");
        let Json::Obj(pairs) = sweep_doc(0) else { unreachable!() };
        let stripped = Json::Obj(pairs.into_iter().filter(|(k, _)| k != "provenance").collect());
        let e = SweepDiff::between(&stripped, &base).unwrap_err();
        assert!(e.contains("missing provenance"), "{e}");
    }

    #[test]
    fn sweep_diff_reports_coverage_drift() {
        let base = sweep_doc(0);
        let Json::Obj(mut pairs) = sweep_doc(0) else { unreachable!() };
        for (k, v) in &mut pairs {
            if k == "cycle_breakdowns" {
                let Json::Arr(items) = v else { unreachable!() };
                items.pop();
            }
        }
        let cur = Json::Obj(pairs);
        let d = SweepDiff::between(&base, &cur).unwrap();
        assert!(!d.is_zero());
        assert_eq!(d.only_base, vec!["64p/sli-4/16KB/buf100".to_string()]);
        assert!(d
            .explanation(5)
            .iter()
            .any(|l| l.contains("only in baseline")), "{:?}", d.explanation(5));
    }

    fn heatmap_doc(conflict: u64, owner: u64) -> Json {
        Json::obj([
            ("provenance", prov()),
            ("preset", Json::str("demo")),
            ("config", Json::str("4p/block-16/16KB/buf100")),
            ("tile", Json::U64(16)),
            ("cols", Json::U64(2)),
            ("rows", Json::U64(1)),
            (
                "tiles",
                Json::obj([
                    ("fragments", Json::arr([Json::arr([Json::U64(5), Json::U64(3)])])),
                    ("setup_cycles", Json::arr([Json::arr([Json::U64(25), Json::U64(25)])])),
                    ("lines_fetched", Json::arr([Json::arr([Json::U64(2), Json::U64(1)])])),
                    ("miss_compulsory", Json::arr([Json::arr([Json::U64(1), Json::U64(1)])])),
                    ("miss_capacity", Json::arr([Json::arr([Json::U64(0), Json::U64(0)])])),
                    (
                        "miss_conflict",
                        Json::arr([Json::arr([Json::U64(conflict), Json::U64(0)])]),
                    ),
                    ("owner", Json::arr([Json::arr([Json::U64(0), Json::U64(owner)])])),
                ]),
            ),
            (
                "nodes",
                Json::arr([
                    Json::obj([
                        ("node", Json::U64(0)),
                        ("fragments", Json::U64(5)),
                        ("compulsory", Json::U64(1)),
                        ("capacity", Json::U64(0)),
                        ("conflict", Json::U64(conflict)),
                        ("misses", Json::U64(1 + conflict)),
                    ]),
                    Json::obj([
                        ("node", Json::U64(1)),
                        ("fragments", Json::U64(3)),
                        ("compulsory", Json::U64(1)),
                        ("capacity", Json::U64(0)),
                        ("conflict", Json::U64(0)),
                        ("misses", Json::U64(1)),
                    ]),
                ]),
            ),
        ])
    }

    #[test]
    fn heatmap_self_diff_is_exactly_zero() {
        let doc = heatmap_doc(0, 1);
        let d = HeatmapDiff::between(&doc, &doc).unwrap();
        assert!(d.is_zero());
        assert_eq!(d.owner_flips, 0);
        // An all-zero plane renders solid neutral white.
        let img = d.planes[0].render(1);
        assert_eq!(img.get(0, 0), [255, 255, 255]);
    }

    #[test]
    fn heatmap_diff_attributes_conflict_misses_and_tiles() {
        let base = heatmap_doc(0, 1);
        let cur = heatmap_doc(4, 0);
        let d = HeatmapDiff::between(&base, &cur).unwrap();
        assert!(!d.is_zero());
        assert_eq!(d.owner_flips, 1);
        assert_eq!(d.nodes[0].conflict, 4);
        assert_eq!(d.nodes[0].misses, 4);
        assert!(d.nodes[1].is_zero());
        let conflict_plane = d
            .planes
            .iter()
            .find(|p| p.metric == "miss_conflict")
            .unwrap();
        assert_eq!(conflict_plane.changed_tiles(), 1);
        assert_eq!(conflict_plane.hottest(), Some((0, 0, 4)));
        // The regressed tile renders red-ish, the untouched one white.
        let img = conflict_plane.render(2);
        assert_eq!(img.get(0, 0), diverging_color(1.0));
        assert_eq!(img.get(2, 0), [255, 255, 255]);
        let lines = d.explanation();
        assert!(
            lines.iter().any(|l| l.contains("conflict misses +4 on nodes 0")),
            "{lines:?}"
        );
        assert!(lines.iter().any(|l| l.contains("changed owner")), "{lines:?}");
    }

    #[test]
    fn heatmap_diff_rejects_mismatched_geometry_and_preset() {
        let base = heatmap_doc(0, 1);
        let mut cur = heatmap_doc(0, 1);
        cur.set("cols", Json::U64(3));
        let e = HeatmapDiff::between(&base, &cur).unwrap_err();
        assert!(e.contains("grid"), "{e}");
        let mut cur = heatmap_doc(0, 1);
        cur.set("preset", Json::str("other"));
        let e = HeatmapDiff::between(&base, &cur).unwrap_err();
        assert!(e.contains("preset"), "{e}");
    }

    fn metrics_doc(capture_ns: u64, runs: u64) -> Json {
        Json::obj([
            ("provenance", prov()),
            ("profile", Json::str("sweep")),
            ("peak_rss_bytes", Json::U64(1 << 20)),
            ("spans", Json::arr([])),
            (
                "phases",
                Json::arr([
                    Json::obj([
                        ("name", Json::str("run-sweep")),
                        ("count", Json::U64(1)),
                        ("total_ns", Json::U64(1_000_000 + capture_ns)),
                        ("self_ns", Json::U64(500_000)),
                    ]),
                    Json::obj([
                        ("name", Json::str("capture")),
                        ("count", Json::U64(2)),
                        ("total_ns", Json::U64(capture_ns)),
                        ("self_ns", Json::U64(capture_ns)),
                    ]),
                ]),
            ),
            (
                "metrics",
                Json::obj([
                    (
                        "counters",
                        Json::obj([("sweep.configs", Json::U64(runs))]),
                    ),
                    ("gauges", Json::obj::<&str>([])),
                    (
                        "histograms",
                        Json::obj([(
                            "host.run_ns.direct",
                            Json::obj([
                                ("count", Json::U64(runs)),
                                ("sum", Json::U64(runs * 1000)),
                                ("min", Json::U64(900)),
                                ("max", Json::U64(1100)),
                                ("p50", Json::U64(1023)),
                                ("p90", Json::U64(1100)),
                                ("p99", Json::U64(1100)),
                                (
                                    "buckets",
                                    Json::arr([Json::arr([Json::U64(10), Json::U64(runs)])]),
                                ),
                            ]),
                        )]),
                    ),
                ]),
            ),
        ])
    }

    #[test]
    fn metrics_self_diff_is_exactly_zero() {
        let doc = metrics_doc(200_000, 60);
        let d = MetricsDiff::between(&doc, &doc).unwrap();
        assert!(d.is_zero());
        assert!(d.explanation(5)[0].contains("no differences"));
    }

    #[test]
    fn metrics_diff_ranks_the_moved_phase_and_histogram() {
        let base = metrics_doc(200_000, 60);
        let cur = metrics_doc(500_000, 75);
        let d = MetricsDiff::between(&base, &cur).unwrap();
        assert!(!d.is_zero());
        let ranked = d.ranked_phases();
        assert_eq!(ranked[0].name, "capture");
        assert_eq!(ranked[0].self_ns, 300_000);
        assert_eq!(
            d.counters,
            vec![("sweep.configs".to_string(), 15)]
        );
        assert_eq!(d.histograms[0].count, 15);
        assert_eq!(d.histograms[0].buckets, vec![(10, 15)]);
        let lines = d.explanation(5);
        assert!(lines[0].contains("capture"), "{lines:?}");
    }

    #[test]
    fn detect_kind_distinguishes_the_artefact_families() {
        assert_eq!(detect_kind(&sweep_doc(0)), Some("sweep"));
        assert_eq!(detect_kind(&heatmap_doc(0, 0)), Some("heatmap"));
        assert_eq!(detect_kind(&metrics_doc(1, 1)), Some("metrics"));
        assert_eq!(detect_kind(&Json::obj::<&str>([])), None);
    }

    #[test]
    fn compact_ranges_compresses_runs() {
        assert_eq!(compact_ranges(&[2, 3, 4, 5, 7]), "2-5,7");
        assert_eq!(compact_ranges(&[0]), "0");
        assert_eq!(compact_ranges(&[]), "");
    }
}
