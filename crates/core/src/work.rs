//! Static load-balance analysis (Figure 5's imbalance metric).
//!
//! With a perfect cache the work a node performs is just the pixels it owns
//! (plus setup floors), so global load balance can be measured without a
//! timing simulation: one pass over the fragment stream counting owners.

use crate::distribution::Distribution;
use sortmid_raster::FragmentStream;
use sortmid_util::stats::imbalance_percent;

/// Pixels owned by each of `procs` nodes under `dist`.
///
/// # Examples
///
/// ```
/// use sortmid::{work, Distribution};
/// use sortmid_scene::{Benchmark, SceneBuilder};
///
/// let stream = SceneBuilder::benchmark(Benchmark::Quake).scale(0.1).build().rasterize();
/// let w = work::pixel_work(&stream, &Distribution::block(16), 4);
/// assert_eq!(w.iter().sum::<u64>(), stream.fragment_count());
/// ```
pub fn pixel_work(stream: &FragmentStream, dist: &Distribution, procs: u32) -> Vec<u64> {
    let mut work = vec![0u64; procs as usize];
    for frag in stream.fragments() {
        let owner = dist.owner(frag.x as i32, frag.y as i32, procs);
        work[owner as usize] += 1;
    }
    work
}

/// The paper's Figure 5 metric: percent by which the busiest node's pixel
/// count exceeds the average.
pub fn pixel_imbalance(stream: &FragmentStream, dist: &Distribution, procs: u32) -> f64 {
    let work = pixel_work(stream, dist, procs);
    let as_f: Vec<f64> = work.iter().map(|&w| w as f64).collect();
    imbalance_percent(&as_f)
}

/// A per-pixel map of how much total work the *owner* of each pixel
/// carries — Figure 1's "assigned workload" intuition as data. Returns a
/// row-major `width × height` grid where every pixel holds its owning
/// node's total fragment count.
pub fn work_map(stream: &FragmentStream, dist: &Distribution, procs: u32) -> Vec<u64> {
    let work = pixel_work(stream, dist, procs);
    let w = stream.screen().width();
    let h = stream.screen().height();
    let mut map = vec![0u64; (w * h) as usize];
    for y in 0..h as i32 {
        for x in 0..w as i32 {
            map[(y as u32 * w + x as u32) as usize] = work[dist.owner(x, y, procs) as usize];
        }
    }
    map
}

/// Per-node *engine work* including the 25-cycle setup floor: what bounds
/// the perfect-cache speedup with an ideal buffer.
pub fn engine_work(
    stream: &FragmentStream,
    dist: &Distribution,
    procs: u32,
    setup_cycles: u64,
) -> Vec<u64> {
    let mut work = vec![0u64; procs as usize];
    let mut per_tri = vec![0u64; procs as usize];
    for tri in stream.triangles() {
        if tri.is_culled() {
            continue;
        }
        let mask = dist.overlap_mask(&tri.bbox, procs);
        for frag in stream.fragments_of(tri) {
            let owner = dist.owner(frag.x as i32, frag.y as i32, procs);
            per_tri[owner as usize] += 1;
        }
        let mut m = mask;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            m &= m - 1;
            work[i] += per_tri[i].max(setup_cycles);
            per_tri[i] = 0;
        }
    }
    work
}

#[cfg(test)]
mod tests {
    use super::*;
    use sortmid_scene::{Benchmark, SceneBuilder};

    fn stream() -> FragmentStream {
        SceneBuilder::benchmark(Benchmark::Massive11255)
            .scale(0.12)
            .build()
            .rasterize()
    }

    #[test]
    fn pixel_work_partitions_fragments() {
        let s = stream();
        for procs in [1u32, 4, 16, 64] {
            for d in [Distribution::block(16), Distribution::sli(4)] {
                let w = pixel_work(&s, &d, procs);
                assert_eq!(w.len(), procs as usize);
                assert_eq!(w.iter().sum::<u64>(), s.fragment_count(), "{d} {procs}p");
            }
        }
    }

    #[test]
    fn imbalance_grows_with_block_size() {
        // Figure 5: bigger tiles balance worse (16 procs, same scene).
        let s = stream();
        let small = pixel_imbalance(&s, &Distribution::block(8), 16);
        let big = pixel_imbalance(&s, &Distribution::block(128), 16);
        assert!(
            big > small,
            "expected imbalance to grow: block-8 {small:.1}% vs block-128 {big:.1}%"
        );
    }

    #[test]
    fn imbalance_grows_with_processors() {
        let s = stream();
        let few = pixel_imbalance(&s, &Distribution::sli(16), 4);
        let many = pixel_imbalance(&s, &Distribution::sli(16), 64);
        assert!(
            many > few,
            "expected imbalance to grow: 4p {few:.1}% vs 64p {many:.1}%"
        );
    }

    #[test]
    fn single_processor_is_perfectly_balanced() {
        let s = stream();
        assert_eq!(pixel_imbalance(&s, &Distribution::block(16), 1), 0.0);
    }

    #[test]
    fn work_map_reflects_owner_loads() {
        let s = stream();
        let dist = Distribution::block(16);
        let procs = 4;
        let map = work_map(&s, &dist, procs);
        assert_eq!(map.len(), (s.screen().width() * s.screen().height()) as usize);
        let work = pixel_work(&s, &dist, procs);
        // Spot-check a few pixels against their owner's load.
        for (x, y) in [(0i32, 0i32), (31, 7), (100, 99)] {
            let owner = dist.owner(x, y, procs) as usize;
            let idx = (y as u32 * s.screen().width() + x as u32) as usize;
            assert_eq!(map[idx], work[owner]);
        }
        // The map takes exactly the per-node values.
        let distinct: std::collections::HashSet<u64> = map.iter().copied().collect();
        assert!(distinct.len() <= procs as usize);
    }

    #[test]
    fn engine_work_includes_setup_floor() {
        let s = stream();
        let pixels = pixel_work(&s, &Distribution::block(16), 4);
        let engine = engine_work(&s, &Distribution::block(16), 4, 25);
        for (p, e) in pixels.iter().zip(&engine) {
            assert!(e >= p, "engine work must dominate pixel work");
        }
        // With a zero setup floor and block-16, engine == pixels.
        let engine0 = engine_work(&s, &Distribution::block(16), 4, 0);
        assert_eq!(engine0, pixels);
    }

    #[test]
    fn tiny_tiles_inflate_engine_work() {
        // Setup floors dominate when triangles shatter across tiny tiles;
        // the effect needs triangles small enough that a 16-way split drops
        // below the 25-pixel floor, so use the small-triangle quake scene.
        let s = SceneBuilder::benchmark(Benchmark::Quake)
            .scale(0.12)
            .build()
            .rasterize();
        let w2: u64 = engine_work(&s, &Distribution::block(2), 16, 25).iter().sum();
        let w16: u64 = engine_work(&s, &Distribution::block(16), 16, 25).iter().sum();
        assert!(w2 > w16, "block-2 total work {w2} should exceed block-16 {w16}");
    }
}
