//! The global blocked texel address space.
//!
//! Every registered texture's every mip level gets a contiguous range of the
//! 32-bit *global texel index* space, each level padded to whole 4×4 blocks.
//! Texels within a level are laid out **block-major**: the level is a
//! row-major grid of 4×4 blocks and each block stores its 16 texels
//! row-major. One block is one 64-byte cache line, so the cache-line address
//! of a texel is simply `texel_index / 16` — the same trick the paper's
//! blocked cache uses to make spatial locality two-dimensional.

use crate::desc::TextureDesc;
use crate::{TextureError, BLOCK_DIM, TEXELS_PER_LINE, TEXEL_BYTES};
use std::fmt;

/// Identifier of a registered texture (dense, starting at 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TextureId(pub u32);

impl fmt::Display for TextureId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tex{}", self.0)
    }
}

/// A global texel address: an index into the unified blocked texel space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TexelAddr(u32);

impl TexelAddr {
    /// Reconstructs an address from a raw global texel index.
    ///
    /// Addresses normally come from a [`TextureRegistry`]; this constructor
    /// exists for deserializing captured fragment streams and for tests.
    /// An index that no registry produced is harmless to the simulator (it
    /// is just a line address) but meaningless.
    pub fn from_index(index: u32) -> Self {
        TexelAddr(index)
    }

    /// The raw global texel index.
    pub fn index(self) -> u32 {
        self.0
    }

    /// The cache-line (= 4×4 block) address containing this texel.
    #[inline]
    pub fn line(self) -> u32 {
        self.0 / TEXELS_PER_LINE
    }

    /// The byte address of this texel in texture memory.
    pub fn byte_addr(self) -> u64 {
        self.0 as u64 * TEXEL_BYTES as u64
    }
}

impl fmt::Display for TexelAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// How a level's 4×4 blocks are linearised in memory.
///
/// Hakura & Gupta's study covers both: simple raster order of blocks, and
/// recursively tiled ("6D") orders that keep 2-D-adjacent blocks close in
/// the address space. The order changes conflict-miss behaviour and DRAM
/// row locality, not correctness — making it an addressing ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BlockOrder {
    /// Blocks in row-major order (the default).
    #[default]
    Raster,
    /// Blocks in Morton (Z-curve) order: bit-interleaved `(bu, bv)`, so a
    /// 2-D neighbourhood of blocks occupies a compact address range.
    Morton,
}

/// Interleaves the low 16 bits of `x` and `y` (`y` in the odd positions).
fn morton_interleave(x: u32, y: u32) -> u32 {
    fn spread(mut v: u32) -> u32 {
        v &= 0xFFFF;
        v = (v | (v << 8)) & 0x00FF_00FF;
        v = (v | (v << 4)) & 0x0F0F_0F0F;
        v = (v | (v << 2)) & 0x3333_3333;
        v = (v | (v << 1)) & 0x5555_5555;
        v
    }
    spread(x) | (spread(y) << 1)
}

#[derive(Debug, Clone)]
struct LevelLayout {
    /// First global texel index of this level.
    base: u32,
    /// Level dimensions in texels.
    width: u32,
    height: u32,
    /// Blocks per row.
    blocks_x: u32,
    /// Block linearisation.
    order: BlockOrder,
}

impl LevelLayout {
    /// Index of block `(bu, bv)` within this level.
    fn block_index(&self, bu: u32, bv: u32) -> u32 {
        match self.order {
            BlockOrder::Raster => bv * self.blocks_x + bu,
            BlockOrder::Morton => morton_interleave(bu, bv),
        }
    }

    /// Blocks this level's address range spans (Morton pads to a power-of-
    /// two square).
    fn block_span(width: u32, height: u32, order: BlockOrder) -> u64 {
        let bw = width.div_ceil(BLOCK_DIM) as u64;
        let bh = height.div_ceil(BLOCK_DIM) as u64;
        match order {
            BlockOrder::Raster => bw * bh,
            BlockOrder::Morton => {
                let side = bw.max(bh).next_power_of_two();
                side * side
            }
        }
    }
}

#[derive(Debug, Clone)]
struct TextureLayout {
    desc: TextureDesc,
    levels: Vec<LevelLayout>,
}

/// Registry assigning every texture and mip level its place in the global
/// blocked texel space.
///
/// # Examples
///
/// ```
/// use sortmid_texture::{TextureDesc, TextureRegistry};
///
/// let mut reg = TextureRegistry::new();
/// let a = reg.register(TextureDesc::new(16, 16)?)?;
/// let b = reg.register(TextureDesc::new(8, 8)?)?;
/// assert_ne!(reg.texel_addr(a, 0, 0, 0), reg.texel_addr(b, 0, 0, 0));
/// assert!(reg.total_bytes() > 0);
/// # Ok::<(), sortmid_texture::TextureError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct TextureRegistry {
    textures: Vec<TextureLayout>,
    next_texel: u64,
    order: BlockOrder,
}

impl TextureRegistry {
    /// Creates an empty registry with raster block order.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty registry with the given block linearisation.
    pub fn with_block_order(order: BlockOrder) -> Self {
        TextureRegistry {
            order,
            ..Self::default()
        }
    }

    /// The block linearisation this registry lays textures out with.
    pub fn block_order(&self) -> BlockOrder {
        self.order
    }

    /// Registers a texture and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`TextureError::AddressSpaceExhausted`] if the 32-bit global
    /// texel space would overflow.
    pub fn register(&mut self, desc: TextureDesc) -> Result<TextureId, TextureError> {
        let texels_per_block = (BLOCK_DIM * BLOCK_DIM) as u64;
        let needed: u64 = desc
            .mip_chain()
            .iter()
            .map(|(w, h)| LevelLayout::block_span(w, h, self.order) * texels_per_block)
            .sum();
        if self.next_texel + needed > u32::MAX as u64 + 1 {
            return Err(TextureError::AddressSpaceExhausted);
        }
        let mut levels = Vec::with_capacity(desc.mip_levels() as usize);
        let mut base = self.next_texel as u32;
        for (w, h) in desc.mip_chain().iter() {
            levels.push(LevelLayout {
                base,
                width: w,
                height: h,
                blocks_x: w.div_ceil(BLOCK_DIM),
                order: self.order,
            });
            let span = LevelLayout::block_span(w, h, self.order) * texels_per_block;
            base = base.wrapping_add(span as u32);
        }
        self.next_texel += needed;
        let id = TextureId(self.textures.len() as u32);
        self.textures.push(TextureLayout { desc, levels });
        Ok(id)
    }

    /// Number of registered textures.
    pub fn len(&self) -> usize {
        self.textures.len()
    }

    /// True when no texture has been registered.
    pub fn is_empty(&self) -> bool {
        self.textures.is_empty()
    }

    /// The descriptor a texture was registered with.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this registry.
    pub fn desc(&self, id: TextureId) -> TextureDesc {
        self.textures[id.0 as usize].desc
    }

    /// Total texels in the global space (padded to blocks).
    pub fn total_texels(&self) -> u64 {
        self.next_texel
    }

    /// Total texture memory in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.next_texel * TEXEL_BYTES as u64
    }

    /// Number of mip levels of texture `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this registry.
    pub fn mip_levels(&self, id: TextureId) -> u32 {
        self.textures[id.0 as usize].levels.len() as u32
    }

    /// Dimensions of level `level` of texture `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` or `level` is out of range.
    pub fn level_dims(&self, id: TextureId, level: u32) -> (u32, u32) {
        let l = &self.textures[id.0 as usize].levels[level as usize];
        (l.width, l.height)
    }

    /// Global address of texel `(u, v)` of mip `level` of texture `id`.
    /// Coordinates wrap (GL_REPEAT).
    ///
    /// # Panics
    ///
    /// Panics if `id` or `level` is out of range.
    pub fn texel_addr(&self, id: TextureId, level: u32, u: i32, v: i32) -> TexelAddr {
        let l = &self.textures[id.0 as usize].levels[level as usize];
        // Wrap with Euclidean remainder; dims are powers of two but this
        // stays correct for any padding.
        let u = u.rem_euclid(l.width as i32) as u32;
        let v = v.rem_euclid(l.height as i32) as u32;
        let block = l.block_index(u / BLOCK_DIM, v / BLOCK_DIM);
        let within = (v % BLOCK_DIM) * BLOCK_DIM + (u % BLOCK_DIM);
        TexelAddr(l.base + block * TEXELS_PER_LINE + within)
    }

    /// The cache-line address of a texel (convenience for
    /// [`TexelAddr::line`]).
    pub fn line_of(&self, addr: TexelAddr) -> u32 {
        addr.line()
    }

    /// Iterates over registered ids.
    pub fn ids(&self) -> impl Iterator<Item = TextureId> + '_ {
        (0..self.textures.len() as u32).map(TextureId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sortmid_devharness::prop::{check, Config};
    use sortmid_devharness::{prop_assert, prop_assert_eq};
    use std::collections::HashSet;

    fn reg_one(w: u32, h: u32) -> (TextureRegistry, TextureId) {
        let mut reg = TextureRegistry::new();
        let id = reg.register(TextureDesc::new(w, h).unwrap()).unwrap();
        (reg, id)
    }

    #[test]
    fn addresses_are_unique_within_level() {
        let (reg, id) = reg_one(16, 16);
        let mut seen = HashSet::new();
        for v in 0..16 {
            for u in 0..16 {
                assert!(seen.insert(reg.texel_addr(id, 0, u, v)), "dup at {u},{v}");
            }
        }
        assert_eq!(seen.len(), 256);
    }

    #[test]
    fn blocking_groups_4x4_into_one_line() {
        let (reg, id) = reg_one(16, 16);
        // All 16 texels of the block at (4..8, 4..8) share one line.
        let line = reg.texel_addr(id, 0, 4, 4).line();
        for v in 4..8 {
            for u in 4..8 {
                assert_eq!(reg.texel_addr(id, 0, u, v).line(), line);
            }
        }
        // A horizontally adjacent texel in the next block does not.
        assert_ne!(reg.texel_addr(id, 0, 8, 4).line(), line);
        // Nor does the block below.
        assert_ne!(reg.texel_addr(id, 0, 4, 8).line(), line);
    }

    #[test]
    fn levels_do_not_overlap() {
        let (reg, id) = reg_one(8, 8);
        let l0: HashSet<u32> = (0..8)
            .flat_map(|v| (0..8).map(move |u| (u, v)))
            .map(|(u, v)| reg.texel_addr(id, 0, u, v).index())
            .collect();
        let l1: HashSet<u32> = (0..4)
            .flat_map(|v| (0..4).map(move |u| (u, v)))
            .map(|(u, v)| reg.texel_addr(id, 1, u, v).index())
            .collect();
        assert!(l0.is_disjoint(&l1));
    }

    #[test]
    fn textures_do_not_overlap() {
        let mut reg = TextureRegistry::new();
        let a = reg.register(TextureDesc::new(8, 8).unwrap()).unwrap();
        let b = reg.register(TextureDesc::new(8, 8).unwrap()).unwrap();
        let mut seen = HashSet::new();
        for id in [a, b] {
            for lvl in 0..reg.mip_levels(id) {
                let (w, h) = reg.level_dims(id, lvl);
                for v in 0..h as i32 {
                    for u in 0..w as i32 {
                        assert!(seen.insert(reg.texel_addr(id, lvl, u, v)));
                    }
                }
            }
        }
    }

    #[test]
    fn wrapping_repeats() {
        let (reg, id) = reg_one(16, 8);
        assert_eq!(reg.texel_addr(id, 0, 16, 0), reg.texel_addr(id, 0, 0, 0));
        assert_eq!(reg.texel_addr(id, 0, -1, 0), reg.texel_addr(id, 0, 15, 0));
        assert_eq!(reg.texel_addr(id, 0, 0, -3), reg.texel_addr(id, 0, 0, 5));
    }

    #[test]
    fn total_bytes_accumulates() {
        let mut reg = TextureRegistry::new();
        assert!(reg.is_empty());
        assert_eq!(reg.total_bytes(), 0);
        reg.register(TextureDesc::new(8, 8).unwrap()).unwrap();
        let one = reg.total_bytes();
        reg.register(TextureDesc::new(8, 8).unwrap()).unwrap();
        assert_eq!(reg.total_bytes(), 2 * one);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.ids().count(), 2);
    }

    #[test]
    fn byte_addr_is_texel_index_times_four() {
        let (reg, id) = reg_one(8, 8);
        let a = reg.texel_addr(id, 0, 3, 3);
        assert_eq!(a.byte_addr(), a.index() as u64 * 4);
    }

    #[test]
    fn morton_interleaving_is_the_z_curve() {
        assert_eq!(morton_interleave(0, 0), 0);
        assert_eq!(morton_interleave(1, 0), 1);
        assert_eq!(morton_interleave(0, 1), 2);
        assert_eq!(morton_interleave(1, 1), 3);
        assert_eq!(morton_interleave(2, 0), 4);
        assert_eq!(morton_interleave(3, 5), 0b100111);
    }

    #[test]
    fn morton_layout_is_still_injective() {
        let mut reg = TextureRegistry::with_block_order(BlockOrder::Morton);
        let id = reg.register(TextureDesc::new(32, 16).unwrap()).unwrap();
        let mut seen = HashSet::new();
        for lvl in 0..reg.mip_levels(id) {
            let (w, h) = reg.level_dims(id, lvl);
            for v in 0..h as i32 {
                for u in 0..w as i32 {
                    assert!(seen.insert(reg.texel_addr(id, lvl, u, v)), "dup at l{lvl} {u},{v}");
                }
            }
        }
        assert_eq!(reg.block_order(), BlockOrder::Morton);
    }

    #[test]
    fn morton_keeps_2d_block_neighbourhoods_compact() {
        // The 2x2 block neighbourhood (blocks 0..2 x 0..2) spans 4
        // consecutive lines under Morton but blocks_x + 2 under raster.
        let mut m = TextureRegistry::with_block_order(BlockOrder::Morton);
        let mid = m.register(TextureDesc::new(64, 64).unwrap()).unwrap();
        let mut r = TextureRegistry::new();
        let rid = r.register(TextureDesc::new(64, 64).unwrap()).unwrap();
        let span = |reg: &TextureRegistry, id| {
            let lines: Vec<u32> = [(0, 0), (4, 0), (0, 4), (4, 4)]
                .iter()
                .map(|&(u, v)| reg.texel_addr(id, 0, u, v).line())
                .collect();
            lines.iter().max().unwrap() - lines.iter().min().unwrap()
        };
        assert_eq!(span(&m, mid), 3, "Morton packs the quad");
        assert!(span(&r, rid) > 3, "raster scatters it");
    }

    #[test]
    fn morton_padding_extends_the_address_space() {
        // Non-square levels pad to a square: more address space, same
        // texels.
        let mut m = TextureRegistry::with_block_order(BlockOrder::Morton);
        m.register(TextureDesc::new(64, 16).unwrap()).unwrap();
        let mut r = TextureRegistry::new();
        r.register(TextureDesc::new(64, 16).unwrap()).unwrap();
        assert!(m.total_texels() > r.total_texels());
    }

    /// The address map is a bijection between (u, v) pairs and a
    /// contiguous range of blocked addresses on every level.
    #[test]
    fn prop_level_addressing_is_injective() {
        check(
            "level_addressing_is_injective",
            &Config::default(),
            |g| (g.u32_in(0..7), g.u32_in(0..7), g.u32_in(0..3)),
            |&(wlog, hlog, level)| {
                let w = 1u32 << wlog;
                let h = 1u32 << hlog;
                let (reg, id) = reg_one(w, h);
                let level = level.min(reg.mip_levels(id) - 1);
                let (lw, lh) = reg.level_dims(id, level);
                let mut seen = HashSet::new();
                for v in 0..lh as i32 {
                    for u in 0..lw as i32 {
                        prop_assert!(seen.insert(reg.texel_addr(id, level, u, v)));
                    }
                }
                Ok(())
            },
        );
    }

    /// Every 4x4-aligned block maps onto exactly one line.
    #[test]
    fn prop_block_line_coherence() {
        check(
            "block_line_coherence",
            &Config::default(),
            |g| (g.i32_in(0..28), g.i32_in(0..28)),
            |&(u0, v0)| {
                let (reg, id) = reg_one(32, 32);
                let bu = (u0 / 4) * 4;
                let bv = (v0 / 4) * 4;
                let line = reg.texel_addr(id, 0, bu, bv).line();
                for dv in 0..4 {
                    for du in 0..4 {
                        prop_assert_eq!(reg.texel_addr(id, 0, bu + du, bv + dv).line(), line);
                    }
                }
                Ok(())
            },
        );
    }
}
