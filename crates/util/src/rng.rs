//! Deterministic pseudo-random number generation.
//!
//! The scene generator must be reproducible across platforms and compiler
//! versions, so we implement PCG32 (O'Neill, *PCG: A Family of Simple Fast
//! Space-Efficient Statistically Good Algorithms for Random Number
//! Generation*) directly instead of depending on a crate whose stream might
//! change between releases.

/// A 32-bit output PCG (XSH-RR variant) pseudo-random number generator.
///
/// The generator is cheap to copy and fork; every scene object derives its
/// own sub-stream from a stable hash of its index so that inserting an object
/// does not perturb the others.
///
/// # Examples
///
/// ```
/// use sortmid_util::rng::Pcg32;
///
/// let mut rng = Pcg32::seed_from_u64(7);
/// let x = rng.next_f64();
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;
const PCG_DEFAULT_INC: u64 = 1442695040888963407;

impl Pcg32 {
    /// Creates a generator from a 64-bit seed with the default stream.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self::with_stream(seed, PCG_DEFAULT_INC >> 1)
    }

    /// Creates a generator with an explicit stream selector.
    ///
    /// Two generators with the same seed but different streams produce
    /// uncorrelated sequences; this is how the scene generator gives each
    /// object an independent sub-stream.
    pub fn with_stream(seed: u64, stream: u64) -> Self {
        let mut rng = Pcg32 {
            state: 0,
            inc: (stream << 1) | 1,
        };
        let _ = rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        let _ = rng.next_u32();
        rng
    }

    /// Forks an independent child generator; `tag` selects the sub-stream.
    pub fn fork(&self, tag: u64) -> Self {
        // splitmix64 on the tag decorrelates adjacent tags.
        let mut z = tag.wrapping_add(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        Self::with_stream(self.state ^ z, z | 1)
    }

    /// Returns the next 32 bits of the stream.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Returns the next 64 bits of the stream.
    pub fn next_u64(&mut self) -> u64 {
        let hi = self.next_u32() as u64;
        let lo = self.next_u32() as u64;
        (hi << 32) | lo
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniformly distributed `f32` in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Returns a uniform integer in `[0, bound)` using Lemire rejection.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "next_below bound must be positive");
        // Unbiased multiply-shift rejection sampling.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u32();
            let m = (r as u64) * (bound as u64);
            if (m as u32) >= threshold {
                return (m >> 32) as u32;
            }
        }
    }

    /// Returns a uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is non-finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi);
        lo + (hi - lo) * self.next_f64()
    }

    /// Returns an approximately standard-normal sample (Box-Muller).
    pub fn next_normal(&mut self) -> f64 {
        // Avoid ln(0) by shifting the open interval.
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Samples an index from a discrete Zipf distribution over `n` items
    /// with exponent `s` (by inversion over the precomputed CDF supplied by
    /// [`zipf_cdf`]).
    pub fn next_zipf(&mut self, cdf: &[f64]) -> usize {
        let x = self.next_f64();
        match cdf.binary_search_by(|p| p.partial_cmp(&x).expect("cdf is finite")) {
            Ok(i) => i,
            Err(i) => i.min(cdf.len() - 1),
        }
    }
}

/// Builds the cumulative distribution for a Zipf law with exponent `s` over
/// `n` items. The last entry is exactly `1.0`.
///
/// # Panics
///
/// Panics if `n` is zero.
///
/// # Examples
///
/// ```
/// let cdf = sortmid_util::rng::zipf_cdf(4, 1.0);
/// assert_eq!(cdf.len(), 4);
/// assert!((cdf[3] - 1.0).abs() < 1e-12);
/// ```
pub fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    assert!(n > 0, "zipf_cdf needs at least one item");
    let mut weights: Vec<f64> = (1..=n).map(|k| (k as f64).powf(-s)).collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    for w in &mut weights {
        acc += *w / total;
        *w = acc;
    }
    *weights.last_mut().expect("n > 0") = 1.0;
    weights
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Pcg32::seed_from_u64(123);
        let mut b = Pcg32::seed_from_u64(123);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Pcg32::seed_from_u64(1);
        let mut b = Pcg32::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "streams should be essentially uncorrelated");
    }

    #[test]
    fn fork_is_deterministic_and_distinct() {
        let root = Pcg32::seed_from_u64(9);
        let mut c1 = root.fork(0);
        let mut c1b = root.fork(0);
        let mut c2 = root.fork(1);
        assert_eq!(c1.next_u64(), c1b.next_u64());
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn next_below_is_in_range_and_covers() {
        let mut rng = Pcg32::seed_from_u64(5);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.next_below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should occur");
    }

    #[test]
    fn next_f64_unit_interval_mean() {
        let mut rng = Pcg32::seed_from_u64(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn normal_has_unit_variance() {
        let mut rng = Pcg32::seed_from_u64(13);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.next_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }

    #[test]
    fn zipf_cdf_is_monotone_and_normalised() {
        let cdf = zipf_cdf(100, 1.2);
        assert!(cdf.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*cdf.last().unwrap(), 1.0);
    }

    #[test]
    fn zipf_sampling_prefers_low_ranks() {
        let cdf = zipf_cdf(50, 1.0);
        let mut rng = Pcg32::seed_from_u64(17);
        let mut counts = [0u32; 50];
        for _ in 0..10_000 {
            counts[rng.next_zipf(&cdf)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[1] > counts[30]);
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        Pcg32::seed_from_u64(0).next_below(0);
    }
}
