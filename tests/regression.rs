//! Golden-value regression tests.
//!
//! The whole stack (generator → rasterizer → cache → timing) is
//! deterministic, so exact cycle and miss counts for a fixed scene pin the
//! model: any unintended change to the RNG stream, the fill rule, the
//! footprint math, the LRU policy or the FIFO semantics shows up here.
//! When a change to the *model* is intentional, update the constants and
//! say why in the commit.

use sortmid::{CacheKind, Distribution, Machine, MachineConfig, RunReport};
use sortmid_raster::FragmentStream;
use sortmid_scene::{Benchmark, SceneBuilder};

fn stream() -> FragmentStream {
    SceneBuilder::benchmark(Benchmark::Quake)
        .scale(0.1)
        .build()
        .rasterize()
}

fn run(
    stream: &FragmentStream,
    procs: u32,
    dist: Distribution,
    cache: CacheKind,
    ratio: f64,
    buffer: usize,
) -> RunReport {
    Machine::new(
        MachineConfig::builder()
            .processors(procs)
            .distribution(dist)
            .cache(cache)
            .bus_ratio(ratio)
            .triangle_buffer(buffer)
            .build()
            .expect("valid"),
    )
    .run(stream)
}

#[test]
fn scene_shape_is_pinned() {
    let s = stream();
    assert_eq!(s.fragment_count(), 18_059);
    assert_eq!(s.triangle_count(), 58);
}

#[test]
fn uniprocessor_run_is_pinned() {
    let s = stream();
    let r = run(&s, 1, Distribution::block(16), CacheKind::PaperL1, 1.0, 10_000);
    assert_eq!(r.total_cycles(), 37_379);
    assert_eq!(r.cache_totals().misses(), 1_967);
    assert_eq!(r.triangles_routed(), 56);
}

#[test]
fn parallel_block_run_is_pinned() {
    let s = stream();
    let r = run(&s, 16, Distribution::block(16), CacheKind::PaperL1, 1.0, 10_000);
    assert_eq!(r.total_cycles(), 6_120);
    assert_eq!(r.cache_totals().misses(), 4_296);
    assert_eq!(r.triangles_routed(), 338);
}

#[test]
fn sli_with_small_buffer_is_pinned() {
    let s = stream();
    let r = run(&s, 16, Distribution::sli(4), CacheKind::PaperL1, 2.0, 500);
    assert_eq!(r.total_cycles(), 2_921);
    assert_eq!(r.cache_totals().misses(), 3_265);
    assert_eq!(r.triangles_routed(), 384);
}

#[test]
fn perfect_cache_tiny_buffer_is_pinned() {
    let s = stream();
    let r = run(&s, 64, Distribution::block(8), CacheKind::Perfect, 1.0, 20);
    assert_eq!(r.total_cycles(), 835);
    assert_eq!(r.cache_totals().misses(), 0);
    assert_eq!(r.triangles_routed(), 891);
}

/// Regression for the seed's tier-1 failure: the workspace pulled `proptest`
/// and `criterion` from crates-io, so `cargo build` died at dependency
/// resolution on any machine without registry access and *no* test could
/// even compile. Every dependency in every manifest must resolve inside the
/// repository (a `path =` entry, or `workspace = true` pointing at one).
#[test]
fn workspace_manifests_resolve_offline() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut manifests = vec![root.join("Cargo.toml")];
    for entry in std::fs::read_dir(root.join("crates")).expect("crates dir") {
        let dir = entry.expect("dir entry").path();
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            manifests.push(manifest);
        }
    }
    assert!(manifests.len() >= 11, "expected the whole workspace, got {manifests:?}");

    for manifest in manifests {
        let text = std::fs::read_to_string(&manifest).expect("readable manifest");
        let mut in_dep_section = false;
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.starts_with('[') {
                in_dep_section = line.contains("dependencies");
                continue;
            }
            if !in_dep_section || line.is_empty() || line.starts_with('#') {
                continue;
            }
            let local = line.contains("workspace = true")
                || line.ends_with(".workspace = true")
                || line.contains("path =");
            assert!(
                local,
                "{}:{}: registry dependency '{}' would break offline builds",
                manifest.display(),
                lineno + 1,
                line
            );
        }
    }
}
