//! Trace capture and report synthesis for one-pass multi-config sweeps.
//!
//! Which texture lines a node touches depends only on the fragment stream
//! and the [`RoutingPlan`] — never on the cache, bus or buffer parameters.
//! This module exploits that split: [`capture_line_trace`] frames each
//! node's access sequence once per plan from the batched
//! [`PlanLanes`](crate::batch::PlanLanes) pivot, the
//! [stack-distance evaluator](sortmid_cache::stackdist) prices every
//! set-associative geometry of the sweep grid from that one trace, and
//! [`run_replayed`] re-derives a [`RunReport`] for each config by driving
//! the exact engine/FIFO timing model with the replayed per-fragment miss
//! counts. The synthesized reports are byte-identical to
//! [`Machine::run_planned`](crate::machine::Machine::run_planned) —
//! property tests and the sweep's own internal grouping enforce it.

use crate::batch::PlanLanes;
use crate::config::{CacheKind, MachineConfig};
use crate::plan::RoutingPlan;
use crate::report::{NodeReport, RunReport};
use sortmid_cache::{
    AnyCache, CacheGeometry, CacheStats, LineAccessTrace, LineCache, MissBreakdown,
    TraceEvaluation,
};
use sortmid_memsys::{Cycle, EngineTiming, TriangleFifo};
use sortmid_observe::MissClassCounts;
use sortmid_raster::{FragBatch, FragmentStream};
use sortmid_texture::TEXELS_PER_FRAGMENT;

/// Captures the per-node texture-line access sequence one routing plan
/// produces: every node's fragments in processing order, 8 texel lines per
/// fragment — the geometry-independent half of a machine run.
///
/// The sequence is exactly the batched core's [`PlanLanes`] pivot — callers
/// already holding the lanes should frame them directly with
/// [`PlanLanes::to_trace`] instead of re-pivoting here.
pub fn capture_line_trace(stream: &FragmentStream, plan: &RoutingPlan) -> LineAccessTrace {
    PlanLanes::build(stream, plan).into_trace()
}

/// The stack-distance request a config's cache maps to, when the replay
/// path can serve it: the set-associative geometry plus whether the config
/// wants the three-C decomposition. `None` for cache models the Mattson
/// machinery cannot express (perfect, two-level, victim) and for machines
/// with a DRAM row model (fill cost then depends on miss *addresses*, not
/// just counts).
pub(crate) fn replay_request(config: &MachineConfig) -> Option<(CacheGeometry, bool)> {
    if config.dram.is_some() {
        return None;
    }
    match config.cache {
        CacheKind::PaperL1 => Some((CacheGeometry::paper_l1(), false)),
        CacheKind::SetAssoc(g) => Some((g, false)),
        CacheKind::Classifying(g) => Some((g, true)),
        CacheKind::Perfect
        | CacheKind::TwoLevel(_, _)
        | CacheKind::Victim(_, _) => None,
    }
}

/// Synthesizes the [`RunReport`] of `config` from a plan evaluation,
/// byte-identical to [`Machine::run_planned`](crate::machine::Machine::run_planned):
/// the routing walk, FIFO backpressure, engine scan/stall/setup-floor
/// timing and bus occupancy are simulated exactly as in the direct path,
/// but every texel probe is replaced by the precomputed per-fragment miss
/// count of the config's geometry.
///
/// `geom` indexes the config's geometry in `eval`'s request grid;
/// `classify` selects whether the report carries the three-C breakdown
/// (a [`CacheKind::Classifying`] config does, a plain set-associative one
/// does not, even when both share a geometry slot).
pub(crate) fn run_replayed(
    config: &MachineConfig,
    stream: &FragmentStream,
    plan: &RoutingPlan,
    eval: &TraceEvaluation,
    geom: usize,
    classify: bool,
) -> RunReport {
    assert!(
        plan.matches(&config.distribution, config.processors),
        "plan built for {}x{} does not fit machine {}x{}",
        plan.distribution(),
        plan.procs(),
        config.distribution,
        config.processors,
    );
    let procs = config.processors as usize;
    let triangles = stream.triangles();

    let mut engines: Vec<EngineTiming> = (0..procs)
        .map(|_| EngineTiming::new(config.bus, config.prefetch_window))
        .collect();
    let mut fifos: Vec<TriangleFifo> = (0..procs)
        .map(|_| TriangleFifo::new(config.triangle_buffer))
        .collect();
    let mut pixels = vec![0u64; procs];
    let mut routed_tris = vec![0u64; procs];
    let mut discarded = vec![0u64; procs];
    // Per-node cursor into the replayed per-fragment miss counts; the walk
    // below visits fragments in exactly the order the trace recorded them.
    let mut cursor = vec![0usize; procs];
    let mut send_time: Cycle = 0;

    for pt in &plan.triangles {
        let mut send = send_time + config.geometry_cycles_per_triangle;
        for fifo in &fifos {
            send = send.max(fifo.earliest_send());
        }
        send_time = send;

        let tri = &triangles[pt.tri as usize];
        let mut seg = pt.seg_start as usize;
        let seg_end = pt.seg_end as usize;
        let mut bucket_start = tri.frag_start as usize;

        let mut m = pt.mask;
        for i in 0..procs {
            if m & 1 != 0 {
                let count = if seg < seg_end && plan.segments[seg].owner == i as u32 {
                    let end = plan.segments[seg].end as usize;
                    seg += 1;
                    let count = end - bucket_start;
                    bucket_start = end;
                    count
                } else {
                    // Bounding-box overlap without owned fragments: the
                    // setup floor still applies.
                    0
                };
                let start = engines[i].start_triangle(send);
                fifos[i].record_start(start);
                routed_tris[i] += 1;
                pixels[i] += count as u64;
                // Run-length walk over the replayed miss counts: all-hit
                // stretches advance the engine in bulk.
                let frag_misses = eval.fragment_misses(i, geom);
                let end = cursor[i] + count;
                let mut j = cursor[i];
                while j < end {
                    let misses = frag_misses[j];
                    if misses == 0 {
                        let run = j;
                        while j < end && frag_misses[j] == 0 {
                            j += 1;
                        }
                        engines[i].fragments_clean((j - run) as u64);
                    } else {
                        engines[i].fragment(misses as u32);
                        j += 1;
                    }
                }
                cursor[i] = end;
                engines[i].finish_triangle(config.setup_cycles);
            } else {
                let start = engines[i].engine_free().max(send);
                fifos[i].record_start(start);
                discarded[i] += 1;
            }
            m >>= 1;
        }
    }

    let node_reports: Vec<NodeReport> = (0..procs)
        .map(|i| {
            let stats = eval.stats(i, geom);
            NodeReport {
                pixels: pixels[i],
                triangles: routed_tris[i],
                discarded: discarded[i],
                finish: engines[i].finish_time(),
                busy_cycles: engines[i].busy_cycles(),
                stall_cycles: engines[i].stall_cycles(),
                setup_floor_cycles: engines[i].setup_floor_cycles(),
                starved_cycles: engines[i].starved_cycles(),
                idle_cycles: engines[i].fill_tail_cycles(),
                bus_busy_cycles: engines[i].bus_busy_cycles(),
                cache: stats,
                miss_breakdown: if classify { eval.breakdown(i, geom) } else { None },
                external_fetches: stats.misses(),
            }
        })
        .collect();
    let total_cycles = node_reports.iter().map(|n| n.finish).max().unwrap_or(0);
    RunReport::new(
        config.summary(),
        total_cycles,
        node_reports,
        stream.fragment_count(),
        stream.triangle_count() as u64,
        plan.routed(),
    )
}

/// One cache model's pass over a plan's per-node access sequences, shared
/// by every machine config that mounts that model on that plan.
///
/// Which texel probes hit or miss depends only on the cache model and the
/// per-node access sequence — never on the bus, buffer, or DRAM
/// parameters. [`capture_direct`] therefore runs the model once per
/// `(plan, cache)` pair, recording each node's sparse missing fragments
/// (index, miss count, exact miss line addresses) plus the model's final
/// statistics; [`run_direct_captured`] then re-derives a full
/// [`RunReport`] per config by driving only the engine/FIFO timing model
/// against the recording — clean fragment runs advance in bulk via
/// [`EngineTiming::fragments_clean`].
#[derive(Debug, Clone)]
pub(crate) struct DirectCapture {
    /// Per node: `(fragment index in lane order, miss count)` for every
    /// fragment with at least one miss, ascending by index.
    miss_frags: Vec<Vec<(u32, u32)>>,
    /// Per node: the miss line addresses, concatenated in access order
    /// (DRAM-backed machines price fills by address, not count).
    miss_lines: Vec<Vec<u32>>,
    stats: Vec<CacheStats>,
    breakdown: Vec<Option<MissBreakdown>>,
    external_fetches: Vec<u64>,
}

/// Runs `kind`'s cache model over `plan`'s per-node access sequences once,
/// recording the sparse miss structure [`run_direct_captured`] replays.
///
/// The walk reads footprint lanes straight out of the shared [`FragBatch`]
/// through the plan's fragment buckets — the per-node sequence is exactly
/// the [`PlanLanes`] pivot order, without materialising the pivot. Plans
/// whose configs are all captured therefore skip the lane arrays entirely.
pub(crate) fn capture_direct(
    kind: CacheKind,
    batch: &FragBatch,
    stream: &FragmentStream,
    plan: &RoutingPlan,
) -> DirectCapture {
    let procs = plan.procs() as usize;
    let mut caches: Vec<AnyCache> = (0..procs).map(|_| kind.build_model()).collect();
    let mut frags: Vec<Vec<(u32, u32)>> = vec![Vec::new(); procs];
    let mut lines: Vec<Vec<u32>> = vec![Vec::new(); procs];
    let mut next = vec![0u32; procs];
    let triangles = stream.triangles();
    for pt in &plan.triangles {
        let tri = &triangles[pt.tri as usize];
        let mut bucket_start = tri.frag_start as usize;
        for seg in &plan.segments[pt.seg_start as usize..pt.seg_end as usize] {
            let end = seg.end as usize;
            let bucket = &plan.frag_order[bucket_start..end];
            bucket_start = end;
            let node = seg.owner as usize;
            let (frags, lines, next) = (&mut frags[node], &mut lines[node], &mut next[node]);
            // Dispatch on the cache variant once per *bucket*, not once
            // per fragment, so the concrete batched probe inlines.
            match &mut caches[node] {
                AnyCache::Perfect(c) => capture_bucket(c, batch, bucket, next, frags, lines),
                AnyCache::SetAssoc(c) => capture_bucket(c, batch, bucket, next, frags, lines),
                AnyCache::Classifying(c) => capture_bucket(c, batch, bucket, next, frags, lines),
                AnyCache::TwoLevel(c) => capture_bucket(c, batch, bucket, next, frags, lines),
                AnyCache::Victim(c) => capture_bucket(c, batch, bucket, next, frags, lines),
                AnyCache::Dyn(c) => capture_bucket(c.as_mut(), batch, bucket, next, frags, lines),
            }
        }
    }
    DirectCapture {
        miss_frags: frags,
        miss_lines: lines,
        stats: caches.iter().map(|c| *c.stats()).collect(),
        breakdown: caches.iter().map(|c| c.breakdown()).collect(),
        external_fetches: caches.iter().map(|c| c.external_fetches()).collect(),
    }
}

/// One owner bucket of [`capture_direct`]'s walk: probes each fragment's
/// footprint lane through the concrete cache model and records the sparse
/// misses.
#[inline]
fn capture_bucket<C: LineCache + ?Sized>(
    cache: &mut C,
    batch: &FragBatch,
    bucket: &[u32],
    next: &mut u32,
    frags: &mut Vec<(u32, u32)>,
    lines: &mut Vec<u32>,
) {
    let mut miss_buf = [0u32; TEXELS_PER_FRAGMENT];
    let mut classes = MissClassCounts::default();
    for &fi in bucket {
        let misses = cache.access_lane(batch.lane_array(fi as usize), &mut miss_buf, &mut classes);
        if misses > 0 {
            frags.push((*next, misses as u32));
            lines.extend_from_slice(&miss_buf[..misses]);
        }
        *next += 1;
    }
}

/// Synthesizes the [`RunReport`] of `config` from a [`DirectCapture`] of
/// its cache model on its plan, byte-identical to
/// [`Machine::run_planned`](crate::machine::Machine::run_planned): the
/// routing walk, FIFO backpressure and engine timing run exactly as in the
/// direct path, but the texel probes are replaced by the recorded miss
/// lines (all-hit stretches advance in bulk).
pub(crate) fn run_direct_captured(
    config: &MachineConfig,
    stream: &FragmentStream,
    plan: &RoutingPlan,
    capture: &DirectCapture,
) -> RunReport {
    assert!(
        plan.matches(&config.distribution, config.processors),
        "plan built for {}x{} does not fit machine {}x{}",
        plan.distribution(),
        plan.procs(),
        config.distribution,
        config.processors,
    );
    assert_eq!(
        capture.stats.len(),
        config.processors as usize,
        "capture and machine disagree on node count"
    );
    let procs = config.processors as usize;
    let triangles = stream.triangles();

    let mut engines: Vec<EngineTiming> = (0..procs)
        .map(|_| match config.dram {
            Some(dram) => EngineTiming::with_dram(config.bus, config.prefetch_window, dram),
            None => EngineTiming::new(config.bus, config.prefetch_window),
        })
        .collect();
    let mut fifos: Vec<TriangleFifo> = (0..procs)
        .map(|_| TriangleFifo::new(config.triangle_buffer))
        .collect();
    let mut pixels = vec![0u64; procs];
    let mut routed_tris = vec![0u64; procs];
    let mut discarded = vec![0u64; procs];
    // Per-node cursors: the next fragment index in lane order, the next
    // entry of the sparse miss-fragment list, and the next miss line.
    let mut cursor = vec![0usize; procs];
    let mut frag_cursor = vec![0usize; procs];
    let mut line_cursor = vec![0usize; procs];
    let mut send_time: Cycle = 0;

    for pt in &plan.triangles {
        let mut send = send_time + config.geometry_cycles_per_triangle;
        for fifo in &fifos {
            send = send.max(fifo.earliest_send());
        }
        send_time = send;

        let tri = &triangles[pt.tri as usize];
        let mut seg = pt.seg_start as usize;
        let seg_end = pt.seg_end as usize;
        let mut bucket_start = tri.frag_start as usize;

        let mut m = pt.mask;
        for i in 0..procs {
            if m & 1 != 0 {
                let count = if seg < seg_end && plan.segments[seg].owner == i as u32 {
                    let end = plan.segments[seg].end as usize;
                    seg += 1;
                    let count = end - bucket_start;
                    bucket_start = end;
                    count
                } else {
                    0
                };
                let start = engines[i].start_triangle(send);
                fifos[i].record_start(start);
                routed_tris[i] += 1;
                pixels[i] += count as u64;
                let end = cursor[i] + count;
                let miss_frags = &capture.miss_frags[i];
                let miss_lines = &capture.miss_lines[i];
                let mut prev = cursor[i];
                while frag_cursor[i] < miss_frags.len()
                    && (miss_frags[frag_cursor[i]].0 as usize) < end
                {
                    let (fi, misses) = miss_frags[frag_cursor[i]];
                    let (fi, misses) = (fi as usize, misses as usize);
                    if fi > prev {
                        engines[i].fragments_clean((fi - prev) as u64);
                    }
                    engines[i].fragment_lines(&miss_lines[line_cursor[i]..line_cursor[i] + misses]);
                    line_cursor[i] += misses;
                    frag_cursor[i] += 1;
                    prev = fi + 1;
                }
                if end > prev {
                    engines[i].fragments_clean((end - prev) as u64);
                }
                cursor[i] = end;
                engines[i].finish_triangle(config.setup_cycles);
            } else {
                let start = engines[i].engine_free().max(send);
                fifos[i].record_start(start);
                discarded[i] += 1;
            }
            m >>= 1;
        }
    }

    let node_reports: Vec<NodeReport> = (0..procs)
        .map(|i| NodeReport {
            pixels: pixels[i],
            triangles: routed_tris[i],
            discarded: discarded[i],
            finish: engines[i].finish_time(),
            busy_cycles: engines[i].busy_cycles(),
            stall_cycles: engines[i].stall_cycles(),
            setup_floor_cycles: engines[i].setup_floor_cycles(),
            starved_cycles: engines[i].starved_cycles(),
            idle_cycles: engines[i].fill_tail_cycles(),
            bus_busy_cycles: engines[i].bus_busy_cycles(),
            cache: capture.stats[i],
            miss_breakdown: capture.breakdown[i],
            external_fetches: capture.external_fetches[i],
        })
        .collect();
    let total_cycles = node_reports.iter().map(|n| n.finish).max().unwrap_or(0);
    RunReport::new(
        config.summary(),
        total_cycles,
        node_reports,
        stream.fragment_count(),
        stream.triangle_count() as u64,
        plan.routed(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::Distribution;
    use crate::machine::Machine;
    use sortmid_cache::{evaluate_trace, GeometryRequest};
    use sortmid_scene::{Benchmark, SceneBuilder};

    fn stream() -> FragmentStream {
        SceneBuilder::benchmark(Benchmark::Quake)
            .scale(0.1)
            .build()
            .rasterize()
    }

    fn config(procs: u32, cache: CacheKind) -> MachineConfig {
        MachineConfig::builder()
            .processors(procs)
            .distribution(Distribution::block(16))
            .cache(cache)
            .build()
            .unwrap()
    }

    #[test]
    fn trace_covers_every_fragment_once() {
        let s = stream();
        let plan = RoutingPlan::build(&s, &Distribution::block(16), 4);
        let trace = capture_line_trace(&s, &plan);
        assert_eq!(trace.node_count(), 4);
        let fragments: usize = (0..4).map(|n| trace.fragment_count(n)).sum();
        assert_eq!(fragments as u64, s.fragment_count());
    }

    #[test]
    fn replayed_report_is_byte_identical_to_direct() {
        let s = stream();
        let geometry = CacheGeometry::paper_l1();
        for (cache, classify) in [
            (CacheKind::PaperL1, false),
            (CacheKind::Classifying(geometry), true),
        ] {
            let cfg = config(4, cache);
            let plan = RoutingPlan::build(&s, &cfg.distribution, cfg.processors);
            let trace = capture_line_trace(&s, &plan);
            let eval = evaluate_trace(&trace, &[GeometryRequest { geometry, classify }]);
            let replayed = run_replayed(&cfg, &s, &plan, &eval, 0, classify);
            let direct = Machine::new(cfg).run(&s);
            assert_eq!(replayed, direct);
        }
    }

    #[test]
    fn replay_request_covers_the_mattson_expressible_kinds() {
        let g = CacheGeometry::paper_l1();
        assert_eq!(
            replay_request(&config(2, CacheKind::PaperL1)),
            Some((g, false))
        );
        assert_eq!(
            replay_request(&config(2, CacheKind::SetAssoc(g))),
            Some((g, false))
        );
        assert_eq!(
            replay_request(&config(2, CacheKind::Classifying(g))),
            Some((g, true))
        );
        assert_eq!(replay_request(&config(2, CacheKind::Perfect)), None);
        assert_eq!(
            replay_request(&config(2, CacheKind::Victim(g, 4))),
            None
        );
    }
}
