//! Struct-of-arrays routing lanes: a [`RoutingPlan`] materialised as dense
//! per-node line-id/coordinate arrays.
//!
//! The plan-replay path used to gather 40-byte [`Fragment`]s through
//! `frag_order` for *every* config sharing a plan, then walk 8 dependent
//! `TexelAddr::line()` probes per fragment. [`PlanLanes`] hoists both out:
//! it pivots the stream through [`FragBatch`] once and lays each node's
//! footprint line ids (8 per fragment, processing order) plus pixel
//! coordinates out contiguously. Every machine configuration sharing the
//! plan then streams its per-node lanes front to back — no gather, no
//! address math — and the stack-distance replay gets its
//! [`LineAccessTrace`] from the same arrays for free.
//!
//! The lane order is **exactly** the order the scalar
//! `run_frame_planned` walk processes fragments (triangles in stream
//! order, each triangle's per-owner buckets in ascending owner order,
//! bucket contents in fragment-stream order), which is what keeps batched
//! reports byte-identical to scalar ones.
//!
//! [`Fragment`]: sortmid_raster::Fragment

use crate::plan::RoutingPlan;
use sortmid_cache::LineAccessTrace;
use sortmid_raster::{FragBatch, FragmentStream};
use sortmid_texture::TEXELS_PER_FRAGMENT;

/// A routing plan's fragments pivoted into per-node struct-of-arrays lanes.
///
/// Built once per `(distribution, processors)` plan group and shared
/// read-only by every config in the group — direct simulations and trace
/// replays alike.
///
/// # Examples
///
/// ```
/// use sortmid::{Distribution, PlanLanes, RoutingPlan};
/// use sortmid_scene::{Benchmark, SceneBuilder};
///
/// let stream = SceneBuilder::benchmark(Benchmark::Quake).scale(0.05).build().rasterize();
/// let plan = RoutingPlan::build(&stream, &Distribution::block(16), 4);
/// let lanes = PlanLanes::build(&stream, &plan);
/// assert_eq!(lanes.procs(), 4);
/// assert_eq!(lanes.fragment_count(), stream.fragment_count());
/// ```
#[derive(Debug, Clone)]
pub struct PlanLanes {
    /// Per node: `TEXELS_PER_FRAGMENT` footprint line ids per owned
    /// fragment, in processing order.
    lines: Vec<Vec<u32>>,
    /// Per node: pixel x of each owned fragment, same order.
    xs: Vec<Vec<u16>>,
    /// Per node: pixel y of each owned fragment, same order.
    ys: Vec<Vec<u16>>,
}

/// One triangle's slice of a node's lanes: `lines` holds
/// `TEXELS_PER_FRAGMENT` line ids per fragment, `xs`/`ys` one coordinate
/// pair per fragment.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TriangleLanes<'a> {
    pub(crate) lines: &'a [u32],
    pub(crate) xs: &'a [u16],
    pub(crate) ys: &'a [u16],
}

impl TriangleLanes<'_> {
    /// Number of fragments in the slice.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.xs.len()
    }
}

impl PlanLanes {
    /// Pivots `stream` into `plan`-ordered lanes (one [`FragBatch`] pass
    /// plus one plan walk).
    pub fn build(stream: &FragmentStream, plan: &RoutingPlan) -> PlanLanes {
        Self::from_batch(&FragBatch::from_stream(stream), stream, plan)
    }

    /// Like [`build`](Self::build) with the stream's [`FragBatch`] already
    /// pivoted (callers amortising the batch across several plans).
    pub fn from_batch(batch: &FragBatch, stream: &FragmentStream, plan: &RoutingPlan) -> PlanLanes {
        let procs = plan.procs() as usize;
        let triangles = stream.triangles();
        // Exact per-node sizing first: the lane arrays are the sweep's
        // biggest allocation, growing them piecemeal would fragment.
        let mut counts = vec![0usize; procs];
        for pt in &plan.triangles {
            let tri = &triangles[pt.tri as usize];
            let mut bucket_start = tri.frag_start as usize;
            for seg in &plan.segments[pt.seg_start as usize..pt.seg_end as usize] {
                counts[seg.owner as usize] += seg.end as usize - bucket_start;
                bucket_start = seg.end as usize;
            }
        }
        let mut lines: Vec<Vec<u32>> = counts
            .iter()
            .map(|&n| Vec::with_capacity(n * TEXELS_PER_FRAGMENT))
            .collect();
        let mut xs: Vec<Vec<u16>> = counts.iter().map(|&n| Vec::with_capacity(n)).collect();
        let mut ys: Vec<Vec<u16>> = counts.iter().map(|&n| Vec::with_capacity(n)).collect();

        // Same walk order as `run_frame_planned`: triangles in stream
        // order, each owner's bucket in fragment-stream order. The owner's
        // destination vectors are hoisted out of the gather loop, and the
        // lane copy is a fixed `TEXELS_PER_FRAGMENT`-wide array move.
        for pt in &plan.triangles {
            let tri = &triangles[pt.tri as usize];
            let mut bucket_start = tri.frag_start as usize;
            for seg in &plan.segments[pt.seg_start as usize..pt.seg_end as usize] {
                let end = seg.end as usize;
                let bucket = &plan.frag_order[bucket_start..end];
                bucket_start = end;
                let owner = seg.owner as usize;
                let line_dst = &mut lines[owner];
                let x_dst = &mut xs[owner];
                let y_dst = &mut ys[owner];
                for &fi in bucket {
                    let fi = fi as usize;
                    line_dst.extend_from_slice(batch.lane_array(fi));
                    x_dst.push(batch.x(fi));
                    y_dst.push(batch.y(fi));
                }
            }
        }
        PlanLanes { lines, xs, ys }
    }

    /// The processor count the lanes were built for.
    #[inline]
    pub fn procs(&self) -> u32 {
        self.lines.len() as u32
    }

    /// Total fragments across all nodes.
    pub fn fragment_count(&self) -> u64 {
        self.xs.iter().map(|v| v.len() as u64).sum()
    }

    /// Fragments owned by `node`.
    #[inline]
    pub fn node_fragments(&self, node: usize) -> usize {
        self.xs[node].len()
    }

    /// The lanes of `count` consecutive fragments of `node` starting at
    /// fragment index `start`.
    #[inline]
    pub(crate) fn triangle_lanes(&self, node: usize, start: usize, count: usize) -> TriangleLanes<'_> {
        TriangleLanes {
            lines: &self.lines[node][start * TEXELS_PER_FRAGMENT..(start + count) * TEXELS_PER_FRAGMENT],
            xs: &self.xs[node][start..start + count],
            ys: &self.ys[node][start..start + count],
        }
    }

    /// The per-node line-access trace these lanes describe — the input of
    /// the stack-distance replay. The lane arrays *are* the trace; this
    /// just frames them.
    pub fn to_trace(&self) -> LineAccessTrace {
        LineAccessTrace::from_nodes(self.lines.clone(), TEXELS_PER_FRAGMENT as u32)
    }

    /// [`to_trace`](Self::to_trace) without the copy.
    pub fn into_trace(self) -> LineAccessTrace {
        LineAccessTrace::from_nodes(self.lines, TEXELS_PER_FRAGMENT as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::Distribution;
    use sortmid_scene::{Benchmark, SceneBuilder};

    fn stream() -> FragmentStream {
        SceneBuilder::benchmark(Benchmark::Quake)
            .scale(0.08)
            .build()
            .rasterize()
    }

    #[test]
    fn lanes_cover_every_fragment_once() {
        let s = stream();
        for procs in [1u32, 3, 8] {
            let plan = RoutingPlan::build(&s, &Distribution::block(16), procs);
            let lanes = PlanLanes::build(&s, &plan);
            assert_eq!(lanes.procs(), procs);
            assert_eq!(lanes.fragment_count(), s.fragment_count());
        }
    }

    #[test]
    fn lanes_follow_the_plan_walk_order() {
        // Reference: walk the plan the way `run_frame_planned` does and
        // expand fragments by hand.
        let s = stream();
        let plan = RoutingPlan::build(&s, &Distribution::sli(2), 4);
        let lanes = PlanLanes::build(&s, &plan);
        let fragments = s.fragments();
        let triangles = s.triangles();
        let mut expect_lines: Vec<Vec<u32>> = vec![Vec::new(); 4];
        let mut expect_xy: Vec<Vec<(u16, u16)>> = vec![Vec::new(); 4];
        for pt in &plan.triangles {
            let tri = &triangles[pt.tri as usize];
            let mut bucket_start = tri.frag_start as usize;
            for seg in &plan.segments[pt.seg_start as usize..pt.seg_end as usize] {
                let end = seg.end as usize;
                for &fi in &plan.frag_order[bucket_start..end] {
                    let f = &fragments[fi as usize];
                    expect_lines[seg.owner as usize].extend(f.texels.iter().map(|t| t.line()));
                    expect_xy[seg.owner as usize].push((f.x, f.y));
                }
                bucket_start = end;
            }
        }
        for node in 0..4usize {
            assert_eq!(lanes.lines[node], expect_lines[node], "node {node} lines");
            let got: Vec<(u16, u16)> = lanes.xs[node]
                .iter()
                .zip(&lanes.ys[node])
                .map(|(&x, &y)| (x, y))
                .collect();
            assert_eq!(got, expect_xy[node], "node {node} coords");
        }
    }

    #[test]
    fn trace_framing_matches_fragment_counts() {
        let s = stream();
        let plan = RoutingPlan::build(&s, &Distribution::block(8), 3);
        let lanes = PlanLanes::build(&s, &plan);
        let trace = lanes.to_trace();
        assert_eq!(trace.node_count(), 3);
        for node in 0..3 {
            assert_eq!(trace.fragment_count(node), lanes.node_fragments(node));
        }
        assert_eq!(lanes.into_trace().node_count(), 3);
    }
}
