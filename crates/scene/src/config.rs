//! Scene-generation parameters and the builder that produces scenes.

use crate::generate::{generate, Scene};
use crate::presets::Benchmark;
use std::fmt;

/// Full parameter set of the procedural scene generator.
///
/// Obtain one from [`Benchmark::config`](crate::Benchmark::config) (the
/// calibrated presets) or build a custom one with [`SceneBuilder::custom`].
#[derive(Debug, Clone, PartialEq)]
pub struct SceneConfig {
    /// Human-readable scene name (the paper's benchmark name).
    pub name: String,
    /// Screen width in pixels.
    pub width: u32,
    /// Screen height in pixels.
    pub height: u32,
    /// Total triangles to emit (background + objects).
    pub target_triangles: u32,
    /// Average depth complexity to calibrate for (fragments per pixel).
    pub target_depth: f64,
    /// Number of distinct textures.
    pub texture_count: u32,
    /// Inclusive range of log₂ texture side lengths (e.g. `(5, 7)` gives
    /// 32..=128 texel sides).
    pub tex_size_log2: (u32, u32),
    /// Texels sampled per screen pixel (controls mip level and the unique
    /// texel/fragment ratio; < 1 means magnified textures).
    pub texel_density: f64,
    /// Number of depth-complexity hotspots.
    pub hotspots: u32,
    /// Hotspot Gaussian radius as a fraction of the screen diagonal.
    pub cluster_sigma: f64,
    /// Fraction of objects pinned to hotspots (the rest spread uniformly).
    pub cluster_fraction: f64,
    /// Full-screen background layers (walls/floors; each ≈ 1.0 depth).
    pub background_layers: u32,
    /// Inclusive range of object patch sizes, in quads per side.
    pub patch_quads: (u32, u32),
    /// RNG seed; identical configs generate identical scenes.
    pub seed: u64,
}

impl SceneConfig {
    /// Scales the screen and the triangle budget by `factor`, keeping the
    /// *per-triangle* statistics (pixel area, texel density, depth
    /// complexity) unchanged. Use small factors for fast tests; stats can
    /// be extrapolated back with [`SceneStats`](crate::SceneStats).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < factor <= 4`.
    pub fn scaled(&self, factor: f64) -> SceneConfig {
        assert!(factor > 0.0 && factor <= 4.0, "scale must be in (0, 4]");
        let mut c = self.clone();
        c.width = ((self.width as f64 * factor).round() as u32).max(64);
        c.height = ((self.height as f64 * factor).round() as u32).max(64);
        let area_ratio =
            (c.width as f64 * c.height as f64) / (self.width as f64 * self.height as f64);
        c.target_triangles = ((self.target_triangles as f64 * area_ratio).round() as u32).max(16);
        // Texture memory must scale with the scene or the unique
        // texel/fragment ratio drifts: with many textures, drop the *count*
        // (objects sample proportionally fewer distinct textures); with few
        // textures (e.g. teapot.full's single one), shrink the *dimensions*
        // instead.
        let scaled_count = self.texture_count as f64 * area_ratio;
        if scaled_count >= 8.0 {
            c.texture_count = scaled_count.round() as u32;
        } else {
            let shift = ((1.0 / area_ratio).log2() / 2.0).max(0.0).round() as u32;
            c.tex_size_log2 = (
                self.tex_size_log2.0.saturating_sub(shift).max(2),
                self.tex_size_log2.1.saturating_sub(shift).max(2),
            );
        }
        c
    }

    /// The scale of this config relative to `reference` (sqrt of the screen
    /// area ratio); used to extrapolate measured stats back to paper scale.
    pub fn scale_vs(&self, reference: &SceneConfig) -> f64 {
        ((self.width as f64 * self.height as f64)
            / (reference.width as f64 * reference.height as f64))
            .sqrt()
    }
}

impl fmt::Display for SceneConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}x{}, {} tris, depth {:.1})",
            self.name, self.width, self.height, self.target_triangles, self.target_depth
        )
    }
}

/// Builder for scenes: pick a benchmark preset (or custom config), optionally
/// rescale or reseed it, then [`build`](SceneBuilder::build).
///
/// # Examples
///
/// ```
/// use sortmid_scene::{Benchmark, SceneBuilder};
///
/// let scene = SceneBuilder::benchmark(Benchmark::Quake)
///     .scale(0.25)
///     .seed(7)
///     .build();
/// assert_eq!(scene.name(), "quake");
/// ```
#[derive(Debug, Clone)]
pub struct SceneBuilder {
    config: SceneConfig,
}

impl SceneBuilder {
    /// Starts from a calibrated benchmark preset.
    pub fn benchmark(benchmark: Benchmark) -> Self {
        SceneBuilder {
            config: benchmark.config(),
        }
    }

    /// Starts from an explicit configuration.
    pub fn custom(config: SceneConfig) -> Self {
        SceneBuilder { config }
    }

    /// Rescales screen and triangle budget (see [`SceneConfig::scaled`]).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < factor <= 4`.
    pub fn scale(mut self, factor: f64) -> Self {
        self.config = self.config.scaled(factor);
        self
    }

    /// Overrides the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Overrides the texel density (texels per pixel).
    pub fn texel_density(mut self, density: f64) -> Self {
        self.config.texel_density = density;
        self
    }

    /// The configuration as currently set up.
    pub fn config(&self) -> &SceneConfig {
        &self.config
    }

    /// Generates the scene (deterministic in the config).
    pub fn build(self) -> Scene {
        generate(&self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_preserves_density_metrics() {
        let base = Benchmark::Quake.config();
        let half = base.scaled(0.5);
        assert_eq!(half.width, base.width / 2);
        // Triangle budget scales with area.
        let ratio = half.target_triangles as f64 / base.target_triangles as f64;
        assert!((ratio - 0.25).abs() < 0.01, "ratio {ratio}");
        assert_eq!(half.texel_density, base.texel_density);
        assert_eq!(half.target_depth, base.target_depth);
        assert!((half.scale_vs(&base) - 0.5).abs() < 0.01);
    }

    #[test]
    fn scale_floors_protect_tiny_configs() {
        let tiny = Benchmark::TeapotFull.config().scaled(0.05);
        assert!(tiny.width >= 64);
        assert!(tiny.target_triangles >= 16);
        assert!(tiny.texture_count >= 1);
    }

    #[test]
    #[should_panic(expected = "scale must be in")]
    fn zero_scale_panics() {
        Benchmark::Quake.config().scaled(0.0);
    }

    #[test]
    fn builder_overrides() {
        let b = SceneBuilder::benchmark(Benchmark::Room3).seed(99).texel_density(2.5);
        assert_eq!(b.config().seed, 99);
        assert_eq!(b.config().texel_density, 2.5);
        assert_eq!(b.config().name, "room3");
    }

    #[test]
    fn same_config_same_scene() {
        let a = SceneBuilder::benchmark(Benchmark::TeapotFull).scale(0.1).build();
        let b = SceneBuilder::benchmark(Benchmark::TeapotFull).scale(0.1).build();
        assert_eq!(a.triangles().len(), b.triangles().len());
        assert_eq!(a.triangles()[0], b.triangles()[0]);
    }
}
