//! Table 1 bench: scene generation + characteristic measurement.
//!
//! Regenerates the Table 1 pipeline (generate → rasterize → measure) for a
//! representative subset of the benchmarks and reports the measured
//! statistics alongside the timing.

use sortmid_bench::{scene, BENCH_SCALE};
use sortmid_devharness::Suite;
use sortmid_scene::{Benchmark, SceneStats};
use std::hint::black_box;

fn main() {
    let mut suite = Suite::new("table1");
    for b in [Benchmark::Quake, Benchmark::Massive32_11255, Benchmark::Room3] {
        suite.bench(b.name(), || {
            let s = scene(black_box(b));
            black_box(SceneStats::measure(&s))
        });
    }

    // Print the table rows once so the bench run shows the artefact.
    println!("\nTable 1 (measured at scale {BENCH_SCALE}, density columns are scale-invariant):");
    for b in Benchmark::ALL {
        let stats = SceneStats::measure(&scene(b));
        let (_, _, _, depth, _, _, mb, utf) = b.paper_row();
        println!(
            "  {:<16} depth {:.2} (paper {:.1})  uniq-t/f {:.3} (paper {:.2})  used-MB-extrapolated {:.2} (paper {:.1})",
            b.name(),
            stats.depth_complexity,
            depth,
            stats.unique_texel_per_screen_pixel,
            utf,
            stats.texture_used_mbytes() / (BENCH_SCALE * BENCH_SCALE),
            mb,
        );
    }

    suite.finish();
}
