//! The one shared color vocabulary for every false-color artefact.
//!
//! Three families of maps come out of the observability layer, and each
//! needs a different palette:
//!
//! * **sequential** — magnitudes (depth complexity, setup cycles):
//!   [`heat_color`], the black → blue → magenta → orange → white ramp
//!   (re-exported from `sortmid_util::ppm`, which the scene renderer also
//!   uses);
//! * **categorical** — identities (which node owns a tile):
//!   [`owner_color`], golden-angle hue stepping so adjacent node ids stay
//!   visibly distinct at any processor count;
//! * **diverging** — signed deltas (this run minus the baseline):
//!   [`diverging_color`], blue for improvements through white at zero to
//!   red for regressions, so a delta heatmap reads at a glance.
//!
//! Before this module the golden-angle math lived in `heatmap.rs` and the
//! channel normalisation for miss-class maps was inlined in the heatmap
//! bin; they are hoisted here so the delta PPMs introduced by the artefact
//! differ reuse them instead of growing a third copy.

pub use sortmid_util::ppm::heat_color;

/// A categorical color for tile-ownership maps: well-separated hues by
/// golden-angle stepping, so adjacent node ids get visibly different
/// colors at any processor count.
pub fn owner_color(owner: u32) -> [u8; 3] {
    // Hue in [0, 1) stepped by the golden-ratio conjugate.
    let hue = (owner as f64 * 0.618_033_988_749_895).fract();
    let h = hue * 6.0;
    let x = 1.0 - (h % 2.0 - 1.0).abs();
    let (r, g, b) = match h as u32 {
        0 => (1.0, x, 0.0),
        1 => (x, 1.0, 0.0),
        2 => (0.0, 1.0, x),
        3 => (0.0, x, 1.0),
        4 => (x, 0.0, 1.0),
        _ => (1.0, 0.0, x),
    };
    // Keep away from full black/white so the map reads as categorical.
    [
        (64.0 + r * 180.0) as u8,
        (64.0 + g * 180.0) as u8,
        (64.0 + b * 180.0) as u8,
    ]
}

/// A diverging color for signed deltas in `[-1, 1]`: saturated blue at
/// -1 (improvement), white at 0 (no change), saturated red at +1
/// (regression). Non-finite inputs render as the neutral white so a
/// degenerate normalisation cannot paint a false signal.
pub fn diverging_color(t: f64) -> [u8; 3] {
    if !t.is_finite() {
        return [255, 255, 255];
    }
    let t = t.clamp(-1.0, 1.0);
    // Interpolate the two non-neutral channels toward the extreme; keep
    // the dominant channel saturated so small deltas stay near-white.
    let fade = |extreme: f64| (255.0 - (255.0 - extreme) * t.abs()).round() as u8;
    if t < 0.0 {
        // toward blue [59, 76, 192]
        [fade(59.0), fade(76.0), 255]
    } else {
        // toward red [180, 4, 38]
        [255, fade(4.0), fade(38.0)]
    }
}

/// Square-root-compressed channel intensity for count maps whose dynamic
/// range spans orders of magnitude (the three-C miss-class RGB planes):
/// `value` against the shared per-map maximum, as one 8-bit channel.
pub fn sqrt_channel(value: u64, max: f64) -> u8 {
    if max <= 0.0 {
        return 0;
    }
    ((value as f64 / max).clamp(0.0, 1.0).sqrt() * 255.0).round() as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_colors_differ_for_neighbours() {
        assert_ne!(owner_color(0), owner_color(1));
        assert_ne!(owner_color(1), owner_color(2));
    }

    #[test]
    fn diverging_palette_is_anchored() {
        assert_eq!(diverging_color(0.0), [255, 255, 255]);
        assert_eq!(diverging_color(-1.0), [59, 76, 255]);
        assert_eq!(diverging_color(1.0), [255, 4, 38]);
        // Clamped past the ends, neutral on garbage.
        assert_eq!(diverging_color(-7.0), diverging_color(-1.0));
        assert_eq!(diverging_color(f64::NAN), [255, 255, 255]);
    }

    #[test]
    fn diverging_palette_orders_by_magnitude() {
        // Bigger |delta| means a less white (more saturated) color.
        let near = diverging_color(0.1);
        let far = diverging_color(0.9);
        assert!(far[1] < near[1] && far[2] < near[2], "{near:?} vs {far:?}");
    }

    #[test]
    fn sqrt_channel_compresses_and_guards_zero_max() {
        assert_eq!(sqrt_channel(0, 100.0), 0);
        assert_eq!(sqrt_channel(100, 100.0), 255);
        assert_eq!(sqrt_channel(25, 100.0), 128); // sqrt(0.25) = 0.5
        assert_eq!(sqrt_channel(5, 0.0), 0);
    }
}
