//! CI validator for `BENCH_*.json`, `TRACE_*.json`, `HEATMAP_*.json` and
//! `METRICS_*.json` artefacts, plus the bench regression gate.
//!
//! Parses every `BENCH_*.json` in a directory (argument, or the workspace
//! root when run without one — resolved from the manifest so the check
//! works from any cwd) with the devharness JSON reader and checks the
//! schema that [`sortmid_devharness::bench::Suite`] emits: top-level
//! `suite`, `warmup_iters`, `samples`, and a `benchmarks` array whose
//! entries carry `id`, `median_ns`, the `p10_ns`/`p50_ns`/`p90_ns`/`p99_ns`
//! percentile ladder and a non-empty `samples_ns` array. The sweep artefact must additionally carry the
//! observability extras: `cycle_breakdowns` (per config, per node
//! `[setup, busy, bus_stall, starved, idle, finish]` — the first five must
//! sum *exactly* to the sixth, and the machine total must be the max node
//! finish) and a `reference` comparison against the pre-tracing median.
//!
//! `TRACE_*.json` files are checked for Chrome-trace-event structure (what
//! ui.perfetto.dev loads): a non-empty `traceEvents` array whose entries
//! all carry a `ph` phase and a `pid`, duration (`X`) events with
//! `ts`/`dur`/`name`, counter (`C`) events with an `args` object, and at
//! least one metadata (`M`) event naming a track.
//!
//! `HEATMAP_*.json` files (from the `heatmap` bin) are checked for grid
//! geometry consistency (every per-tile metric is `rows`×`cols`), fragment
//! conservation (tile sums and node sums both equal the `fragments`
//! total), and the per-node three-C identity
//! `compulsory + capacity + conflict == misses`.
//!
//! `METRICS_*.json` host profiles (from the sweep bench's profiled run)
//! are checked for the `HostProfile` schema and its structural invariants:
//! every span nests inside its parent on the parent's thread, siblings
//! never overlap within a thread, every worker satisfies
//! `busy + idle == wall` *exactly*, and a sweep profile's span tree must
//! name the whole pipeline (at least [`REQUIRED_SWEEP_PHASES`]).
//!
//! With `--against <baseline>` the sweep artefact's *simulated* cycle
//! totals are additionally gated against a committed baseline (e.g.
//! `BENCH_baseline.json`): configs are grouped by processor count and
//! distribution, and any group whose median `total_cycles` regresses by
//! more than the tolerance (15% default, `--tolerance <pct>` to override)
//! fails the check — as does any group present on only one
//! side (coverage drift). Cycles are deterministic — unlike the
//! wall-clock `median_ns`, which varies with the host and is therefore
//! only reported, never gated.
//!
//! Every sweep/trace/heatmap/metrics artefact must carry a `provenance`
//! block (schema version, scene seed, config-grid hash, build profile,
//! host fingerprint) at the current schema version, and the gate refuses
//! to compare a current run against a baseline whose provenance is
//! incomparable — a different scene or config grid would attribute
//! phantom deltas to the code under test.
//!
//! With `--explain` a gate run additionally prints a ranked attribution
//! of what moved: per-config cycle deltas split by the five-way
//! breakdown identity (via `sortmid_observe::SweepDiff`), plus host
//! phase wall-time movement when a baseline `METRICS_sweep.json` sits
//! next to the baseline artefact. With `--json <out>` the whole gate
//! verdict (per-group medians, ratios, pass/fail, the explanation) is
//! written as a machine-readable `DIFF_*.json` document — the shape the
//! future CI endpoint serves. `DIFF_*.json` files found during the scan
//! are themselves schema-validated.
//!
//! Exits non-zero (listing every problem) if any artefact is malformed or
//! regressed, so a bench binary that silently emits garbage — or a change
//! that silently slows a machine configuration — fails tier-1.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use sortmid_devharness::json::Json;
use sortmid_observe::{MetricsDiff, Provenance, SweepDiff, SCHEMA_VERSION};

/// Fractional simulated-cycle growth a config group may show over the
/// baseline before the gate fails (the `--tolerance` default).
const REGRESSION_TOLERANCE: f64 = 0.15;

/// Pipeline phases a sweep host profile must cover: if any is absent the
/// instrumentation regressed (the sweep bench profiles both the reference
/// grid and the dense replay lane, so every stage below runs).
const REQUIRED_SWEEP_PHASES: [&str; 9] = [
    "run-sweep",
    "batch-pivot",
    "plan-build",
    "path-select",
    "lane-pivot",
    "capture",
    "trace-eval",
    "run-configs",
    "worker-run",
];

/// The workspace root, resolved from this crate's manifest
/// (`crates/bench` → two levels up) so the default paths work from any
/// current directory.
fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench manifest sits two levels under the workspace root")
}

/// Checks one parsed artefact, appending human-readable problems.
fn check_doc(name: &str, doc: &Json, problems: &mut Vec<String>) {
    let mut need = |key: &str, ok: bool| {
        if !ok {
            problems.push(format!("{name}: missing or mistyped key '{key}'"));
        }
    };
    need("suite", doc.get("suite").and_then(Json::as_str).is_some());
    need(
        "warmup_iters",
        doc.get("warmup_iters").and_then(Json::as_u64).is_some(),
    );
    need("samples", doc.get("samples").and_then(Json::as_u64).is_some());

    let Some(benches) = doc.get("benchmarks").and_then(Json::as_arr) else {
        problems.push(format!("{name}: missing or mistyped key 'benchmarks'"));
        return;
    };
    if benches.is_empty() {
        problems.push(format!("{name}: 'benchmarks' is empty"));
    }
    for (i, b) in benches.iter().enumerate() {
        let id = b.get("id").and_then(Json::as_str);
        let label = id.map_or_else(|| format!("{name}#{i}"), |id| format!("{name}/{id}"));
        if id.is_none() {
            problems.push(format!("{label}: missing or mistyped key 'id'"));
        }
        for key in ["median_ns", "p10_ns", "p50_ns", "p90_ns", "p99_ns"] {
            if b.get(key).and_then(Json::as_u64).is_none() {
                problems.push(format!("{label}: missing or mistyped key '{key}'"));
            }
        }
        match b.get("samples_ns").and_then(Json::as_arr) {
            None => problems.push(format!("{label}: missing or mistyped key 'samples_ns'")),
            Some([]) => problems.push(format!("{label}: 'samples_ns' is empty")),
            Some(s) => {
                if s.iter().any(|v| v.as_u64().is_none()) {
                    problems.push(format!("{label}: non-integer entry in 'samples_ns'"));
                }
            }
        }
    }

    // The sweep artefact carries the tracing extras; enforce them there.
    if doc.get("suite").and_then(Json::as_str) == Some("sweep") {
        check_sweep_extras(name, doc, problems);
    }
}

/// Requires a valid `provenance` block at the current schema version.
fn check_provenance(name: &str, doc: &Json, problems: &mut Vec<String>) {
    match Provenance::from_doc(doc) {
        Ok(p) => {
            if p.schema != SCHEMA_VERSION {
                problems.push(format!(
                    "{name}: provenance schema {} (this checker expects {SCHEMA_VERSION}); \
                     regenerate the artefact",
                    p.schema
                ));
            }
        }
        Err(e) => problems.push(format!("{name}: {e}")),
    }
}

/// Validates the sweep artefact's `provenance`, `cycle_breakdowns` and
/// `reference` fields, including the exact per-node accounting identity.
fn check_sweep_extras(name: &str, doc: &Json, problems: &mut Vec<String>) {
    check_provenance(name, doc, problems);
    match doc.get("reference") {
        None => problems.push(format!("{name}: missing 'reference' comparison")),
        Some(r) => {
            for key in ["pre_pr_median_ns", "median_ns"] {
                if r.get(key).and_then(Json::as_u64).is_none() {
                    problems.push(format!("{name}/reference: missing or mistyped '{key}'"));
                }
            }
            if r.get("ratio").and_then(Json::as_f64).is_none() {
                problems.push(format!("{name}/reference: missing or mistyped 'ratio'"));
            }
        }
    }

    match doc.get("trace_replay") {
        None => problems.push(format!("{name}: missing 'trace_replay' extra")),
        Some(t) => {
            for key in ["configs", "base_configs", "median_ns", "base_median_ns"] {
                if t.get(key).and_then(Json::as_u64).is_none() {
                    problems.push(format!("{name}/trace_replay: missing or mistyped '{key}'"));
                }
            }
            // The dense lane's whole point is pricing 100+ cache configs
            // from one replay; a shrunken grid silently weakens the bench.
            if let Some(n) = t.get("configs").and_then(Json::as_u64) {
                if n < 100 {
                    problems.push(format!(
                        "{name}/trace_replay: dense lane covers only {n} cache configs (< 100)"
                    ));
                }
            }
            match t.get("marginal_ns_per_config").and_then(Json::as_f64) {
                None => problems.push(format!(
                    "{name}/trace_replay: missing or mistyped 'marginal_ns_per_config'"
                )),
                Some(m) if !m.is_finite() => problems.push(format!(
                    "{name}/trace_replay: non-finite marginal cost {m}"
                )),
                Some(_) => {}
            }
        }
    }

    let Some(configs) = doc.get("cycle_breakdowns").and_then(Json::as_arr) else {
        problems.push(format!("{name}: missing or mistyped 'cycle_breakdowns'"));
        return;
    };
    if configs.is_empty() {
        problems.push(format!("{name}: 'cycle_breakdowns' is empty"));
    }
    for (i, entry) in configs.iter().enumerate() {
        let label = entry
            .get("config")
            .and_then(Json::as_str)
            .map_or_else(|| format!("{name}/breakdown#{i}"), |c| format!("{name}/{c}"));
        let Some(total) = entry.get("total_cycles").and_then(Json::as_u64) else {
            problems.push(format!("{label}: missing or mistyped 'total_cycles'"));
            continue;
        };
        let Some(nodes) = entry.get("nodes").and_then(Json::as_arr) else {
            problems.push(format!("{label}: missing or mistyped 'nodes'"));
            continue;
        };
        let mut max_finish = 0;
        for (n, row) in nodes.iter().enumerate() {
            let cells: Option<Vec<u64>> = row
                .as_arr()
                .map(|r| r.iter().filter_map(Json::as_u64).collect());
            match cells.as_deref() {
                Some([setup, busy, bus_stall, starved, idle, finish]) => {
                    let sum = setup + busy + bus_stall + starved + idle;
                    if sum != *finish {
                        problems.push(format!(
                            "{label}/node{n}: breakdown sums to {sum}, finish is {finish}"
                        ));
                    }
                    max_finish = max_finish.max(*finish);
                }
                _ => problems.push(format!(
                    "{label}/node{n}: expected 6 integers [setup, busy, bus_stall, starved, idle, finish]"
                )),
            }
        }
        if !nodes.is_empty() && max_finish != total {
            problems.push(format!(
                "{label}: total_cycles {total} != max node finish {max_finish}"
            ));
        }
    }
}

/// Validates one `TRACE_*.json` Chrome-trace-event document.
fn check_trace(name: &str, doc: &Json, problems: &mut Vec<String>) {
    check_provenance(name, doc, problems);
    let Some(events) = doc.get("traceEvents").and_then(Json::as_arr) else {
        problems.push(format!("{name}: missing or mistyped 'traceEvents'"));
        return;
    };
    if events.is_empty() {
        problems.push(format!("{name}: 'traceEvents' is empty"));
        return;
    }
    let mut metadata = 0usize;
    for (i, e) in events.iter().enumerate() {
        let Some(ph) = e.get("ph").and_then(Json::as_str) else {
            problems.push(format!("{name}#{i}: event without 'ph' phase"));
            continue;
        };
        if e.get("pid").and_then(Json::as_u64).is_none() {
            problems.push(format!("{name}#{i}: event without integer 'pid'"));
        }
        match ph {
            "M" => metadata += 1,
            "X" => {
                for key in ["ts", "dur"] {
                    if e.get(key).and_then(Json::as_u64).is_none() {
                        problems.push(format!("{name}#{i}: X event without integer '{key}'"));
                    }
                }
                if e.get("name").and_then(Json::as_str).is_none() {
                    problems.push(format!("{name}#{i}: X event without 'name'"));
                }
            }
            "C" => {
                if !matches!(e.get("args"), Some(Json::Obj(_))) {
                    problems.push(format!("{name}#{i}: C event without 'args' object"));
                }
            }
            "i" => {
                if e.get("ts").and_then(Json::as_u64).is_none() {
                    problems.push(format!("{name}#{i}: i event without integer 'ts'"));
                }
            }
            other => problems.push(format!("{name}#{i}: unexpected phase '{other}'")),
        }
    }
    if metadata == 0 {
        problems.push(format!("{name}: no metadata (M) events naming tracks"));
    }
}

/// The per-tile metric planes every `HEATMAP_*.json` must carry.
const HEATMAP_TILE_METRICS: [&str; 7] = [
    "fragments",
    "setup_cycles",
    "lines_fetched",
    "miss_compulsory",
    "miss_capacity",
    "miss_conflict",
    "owner",
];

/// Validates one `HEATMAP_*.json` spatial-attribution document: grid
/// geometry, fragment conservation, and the per-node three-C identity.
fn check_heatmap(name: &str, doc: &Json, problems: &mut Vec<String>) {
    check_provenance(name, doc, problems);
    for key in ["preset", "config"] {
        if doc.get(key).and_then(Json::as_str).is_none() {
            problems.push(format!("{name}: missing or mistyped key '{key}'"));
        }
    }
    for key in ["width", "height"] {
        if doc
            .get("screen")
            .and_then(|s| s.get(key))
            .and_then(Json::as_u64)
            .is_none()
        {
            problems.push(format!("{name}: missing or mistyped 'screen.{key}'"));
        }
    }
    if doc.get("fragment_gini").and_then(Json::as_f64).is_none() {
        problems.push(format!("{name}: missing or mistyped key 'fragment_gini'"));
    }
    let geometry: Option<(u64, u64)> = match (
        doc.get("tile").and_then(Json::as_u64),
        doc.get("cols").and_then(Json::as_u64),
        doc.get("rows").and_then(Json::as_u64),
    ) {
        (Some(tile), Some(cols), Some(rows)) if tile > 0 && cols > 0 && rows > 0 => {
            Some((cols, rows))
        }
        _ => {
            problems.push(format!(
                "{name}: 'tile'/'cols'/'rows' must be positive integers"
            ));
            None
        }
    };
    let Some(fragments) = doc.get("fragments").and_then(Json::as_u64) else {
        problems.push(format!("{name}: missing or mistyped key 'fragments'"));
        return;
    };

    // Every metric plane is rows x cols of integers; the fragment plane
    // must additionally conserve the total.
    let mut tile_fragment_sum: Option<u64> = None;
    match doc.get("tiles") {
        None => problems.push(format!("{name}: missing 'tiles' object")),
        Some(tiles) => {
            for metric in HEATMAP_TILE_METRICS {
                let Some(rows) = tiles.get(metric).and_then(Json::as_arr) else {
                    problems.push(format!("{name}: missing or mistyped 'tiles.{metric}'"));
                    continue;
                };
                let mut sum = 0u64;
                let mut shape_ok = geometry.is_none_or(|(_, r)| rows.len() as u64 == r);
                for row in rows {
                    match row.as_arr() {
                        Some(cells) => {
                            shape_ok &= geometry.is_none_or(|(c, _)| cells.len() as u64 == c);
                            for cell in cells {
                                match cell.as_u64() {
                                    Some(v) => sum += v,
                                    None => shape_ok = false,
                                }
                            }
                        }
                        None => shape_ok = false,
                    }
                }
                if !shape_ok {
                    problems.push(format!(
                        "{name}: 'tiles.{metric}' is not a rows x cols integer grid"
                    ));
                }
                if metric == "fragments" {
                    tile_fragment_sum = Some(sum);
                }
            }
        }
    }
    if let Some(sum) = tile_fragment_sum {
        if sum != fragments {
            problems.push(format!(
                "{name}: tile fragments sum to {sum}, document total is {fragments}"
            ));
        }
    }

    let Some(nodes) = doc.get("nodes").and_then(Json::as_arr) else {
        problems.push(format!("{name}: missing or mistyped 'nodes'"));
        return;
    };
    if nodes.is_empty() {
        problems.push(format!("{name}: 'nodes' is empty"));
    }
    let mut node_fragment_sum = 0u64;
    for (i, node) in nodes.iter().enumerate() {
        let counts: Vec<Option<u64>> = ["fragments", "misses", "compulsory", "capacity", "conflict"]
            .iter()
            .map(|k| node.get(k).and_then(Json::as_u64))
            .collect();
        match counts[..] {
            [Some(frags), Some(misses), Some(com), Some(cap), Some(con)] => {
                node_fragment_sum += frags;
                if com + cap + con != misses {
                    problems.push(format!(
                        "{name}/node{i}: three-C identity broken: \
                         {com}+{cap}+{con} != {misses} misses"
                    ));
                }
            }
            _ => problems.push(format!(
                "{name}/node{i}: missing or mistyped fragment/miss counters"
            )),
        }
    }
    if node_fragment_sum != fragments {
        problems.push(format!(
            "{name}: node fragments sum to {node_fragment_sum}, document total is {fragments}"
        ));
    }
}

/// Validates one `METRICS_*.json` host profile: schema, span-nesting and
/// sibling-overlap invariants, the exact per-worker `busy + idle == wall`
/// identity, and (for the sweep profile) full pipeline-phase coverage.
fn check_metrics(name: &str, doc: &Json, problems: &mut Vec<String>) {
    check_provenance(name, doc, problems);
    let profile = doc.get("profile").and_then(Json::as_str);
    if profile.is_none() {
        problems.push(format!("{name}: missing or mistyped key 'profile'"));
    }
    if doc.get("peak_rss_bytes").and_then(Json::as_u64).is_none() {
        problems.push(format!("{name}: missing or mistyped key 'peak_rss_bytes'"));
    }
    for key in ["counters", "gauges", "histograms"] {
        if !matches!(doc.get("metrics").and_then(|m| m.get(key)), Some(Json::Obj(_))) {
            problems.push(format!("{name}: missing or mistyped 'metrics.{key}'"));
        }
    }

    // Spans: decode, then check the tree invariants.
    struct Span {
        name: String,
        thread: u64,
        parent: Option<usize>,
        start: u64,
        end: u64,
    }
    let mut spans: Vec<Span> = Vec::new();
    match doc.get("spans").and_then(Json::as_arr) {
        None => problems.push(format!("{name}: missing or mistyped 'spans'")),
        Some(rows) => {
            if rows.is_empty() {
                problems.push(format!("{name}: 'spans' is empty"));
            }
            for (i, row) in rows.iter().enumerate() {
                let fields = (
                    row.get("name").and_then(Json::as_str),
                    row.get("thread").and_then(Json::as_u64),
                    row.get("depth").and_then(Json::as_u64),
                    row.get("start_ns").and_then(Json::as_u64),
                    row.get("dur_ns").and_then(Json::as_u64),
                );
                let parent = match row.get("parent") {
                    Some(Json::Null) => None,
                    Some(Json::U64(p)) => Some(*p as usize),
                    _ => {
                        problems.push(format!(
                            "{name}/span#{i}: 'parent' must be null or an integer index"
                        ));
                        continue;
                    }
                };
                let (Some(sname), Some(thread), Some(_), Some(start), Some(dur)) = fields else {
                    problems.push(format!(
                        "{name}/span#{i}: missing or mistyped name/thread/depth/start_ns/dur_ns"
                    ));
                    continue;
                };
                spans.push(Span {
                    name: sname.to_string(),
                    thread,
                    parent,
                    start,
                    end: start + dur,
                });
            }
            for (i, span) in spans.iter().enumerate() {
                if let Some(p) = span.parent {
                    match spans.get(p) {
                        None => problems.push(format!(
                            "{name}/span#{i} '{}': parent index {p} out of range",
                            span.name
                        )),
                        Some(parent) => {
                            if parent.thread != span.thread {
                                problems.push(format!(
                                    "{name}/span#{i} '{}': crosses threads (parent '{}')",
                                    span.name, parent.name
                                ));
                            }
                            if span.start < parent.start || span.end > parent.end {
                                problems.push(format!(
                                    "{name}/span#{i} '{}': [{}, {}] escapes parent '{}' [{}, {}]",
                                    span.name, span.start, span.end,
                                    parent.name, parent.start, parent.end
                                ));
                            }
                        }
                    }
                }
            }
            // Siblings (same thread, same parent) must not overlap.
            type Siblings<'a> = Vec<(u64, u64, &'a str)>;
            let mut groups: BTreeMap<(u64, Option<usize>), Siblings> = BTreeMap::new();
            for span in &spans {
                groups
                    .entry((span.thread, span.parent))
                    .or_default()
                    .push((span.start, span.end, &span.name));
            }
            for ((thread, _), mut siblings) in groups {
                siblings.sort_unstable();
                for pair in siblings.windows(2) {
                    if pair[1].0 < pair[0].1 {
                        problems.push(format!(
                            "{name}: spans '{}' and '{}' overlap on thread {thread}",
                            pair[0].2, pair[1].2
                        ));
                    }
                }
            }
        }
    }

    // Workers: the identity must hold exactly, not approximately.
    match doc.get("workers").and_then(Json::as_arr) {
        None => problems.push(format!("{name}: missing or mistyped 'workers'")),
        Some(rows) => {
            if rows.is_empty() {
                problems.push(format!("{name}: 'workers' is empty"));
            }
            for (i, row) in rows.iter().enumerate() {
                if row.get("lane").and_then(Json::as_str).is_none() {
                    problems.push(format!("{name}/worker#{i}: missing or mistyped 'lane'"));
                }
                let counters = (
                    row.get("wall_ns").and_then(Json::as_u64),
                    row.get("busy_ns").and_then(Json::as_u64),
                    row.get("idle_ns").and_then(Json::as_u64),
                    row.get("items").and_then(Json::as_u64),
                );
                let (Some(wall), Some(busy), Some(idle), Some(_)) = counters else {
                    problems.push(format!(
                        "{name}/worker#{i}: missing or mistyped wall_ns/busy_ns/idle_ns/items"
                    ));
                    continue;
                };
                if busy + idle != wall {
                    problems.push(format!(
                        "{name}/worker#{i}: utilization identity broken: \
                         busy {busy} + idle {idle} != wall {wall}"
                    ));
                }
            }
        }
    }

    // Phases: aggregate table, and full coverage for the sweep profile.
    let mut phase_names: Vec<String> = Vec::new();
    match doc.get("phases").and_then(Json::as_arr) {
        None => problems.push(format!("{name}: missing or mistyped 'phases'")),
        Some(rows) => {
            for (i, row) in rows.iter().enumerate() {
                match row.get("name").and_then(Json::as_str) {
                    Some(p) => phase_names.push(p.to_string()),
                    None => problems.push(format!("{name}/phase#{i}: missing or mistyped 'name'")),
                }
                for key in ["count", "total_ns", "self_ns"] {
                    if row.get(key).and_then(Json::as_u64).is_none() {
                        problems.push(format!("{name}/phase#{i}: missing or mistyped '{key}'"));
                    }
                }
            }
        }
    }
    for phase in &phase_names {
        if !spans.iter().any(|s| s.name == *phase) {
            problems.push(format!(
                "{name}: phase '{phase}' has no backing span"
            ));
        }
    }
    // Per-lane worker-utilization imbalance: every lane's spread must be a
    // fraction of the stage window.
    let check_imbalance = |ctx: &str, block: Option<&Json>, problems: &mut Vec<String>| -> bool {
        let mut has_run_configs = false;
        match block {
            Some(Json::Obj(lanes)) => {
                for (lane, value) in lanes {
                    has_run_configs |= lane == "run-configs";
                    match value.as_f64() {
                        Some(v) if (0.0..=1.0).contains(&v) => {}
                        _ => problems.push(format!(
                            "{ctx}: utilization_imbalance['{lane}'] must be a number in [0, 1]"
                        )),
                    }
                }
            }
            _ => problems.push(format!("{ctx}: missing or mistyped 'utilization_imbalance'")),
        }
        has_run_configs
    };
    let has_run_configs = check_imbalance(name, doc.get("utilization_imbalance"), problems);

    if profile == Some("sweep") {
        for phase in REQUIRED_SWEEP_PHASES {
            if !phase_names.iter().any(|p| p == phase) {
                problems.push(format!(
                    "{name}: sweep profile is missing required pipeline phase '{phase}'"
                ));
            }
        }

        // Scheduler instrumentation: claim/steal counters, per-worker
        // queue-depth gauges, and the run-configs imbalance summary the
        // static baseline is compared against.
        for key in ["sweep.claims", "sweep.steals", "sweep.tasks"] {
            let present = doc
                .get("metrics")
                .and_then(|m| m.get("counters"))
                .and_then(|c| c.get(key))
                .and_then(Json::as_u64)
                .is_some();
            if !present {
                problems.push(format!(
                    "{name}: sweep profile is missing scheduler counter '{key}'"
                ));
            }
        }
        if let Some(Json::Obj(gauges)) = doc.get("metrics").and_then(|m| m.get("gauges")) {
            let mut depth_gauges = 0usize;
            for (key, value) in gauges {
                if key.starts_with("sweep.queue_depth.") {
                    depth_gauges += 1;
                    if value.as_u64().is_none() {
                        problems.push(format!(
                            "{name}: queue-depth gauge '{key}' must be a non-negative integer"
                        ));
                    }
                }
            }
            if depth_gauges == 0 {
                problems.push(format!(
                    "{name}: sweep profile has no 'sweep.queue_depth.*' gauges"
                ));
            }
        } else {
            problems.push(format!(
                "{name}: sweep profile has no 'sweep.queue_depth.*' gauges"
            ));
        }
        if !has_run_configs {
            problems.push(format!(
                "{name}: sweep utilization_imbalance is missing the 'run-configs' lane"
            ));
        }
        // The static-chunk baseline recorded next to the work-stealing
        // profile, for the imbalance comparison.
        let static_block = doc
            .get("static_baseline")
            .and_then(|b| b.get("utilization_imbalance"));
        if !check_imbalance(
            &format!("{name}/static_baseline"),
            static_block,
            problems,
        ) {
            problems.push(format!(
                "{name}: static_baseline utilization_imbalance is missing the 'run-configs' lane"
            ));
        }
    }
}

/// Validates one `DIFF_*.json` document (from `sortmid-diff` or the
/// `--json` gate verdict) against its `kind`'s schema.
fn check_diff(name: &str, doc: &Json, problems: &mut Vec<String>) {
    // Both provenance blocks of a pairwise diff must be full blocks.
    let check_prov_block = |key: &str, problems: &mut Vec<String>| {
        let Some(block) = doc.get(key) else {
            problems.push(format!("{name}: missing '{key}'"));
            return;
        };
        let wrapped = Json::obj([("provenance", block.clone())]);
        if let Err(e) = Provenance::from_doc(&wrapped) {
            problems.push(format!("{name}/{key}: {e}"));
        }
    };
    let need_bool = |key: &str, problems: &mut Vec<String>| {
        if !matches!(doc.get(key), Some(Json::Bool(_))) {
            problems.push(format!("{name}: missing or mistyped '{key}'"));
        }
    };
    match doc.get("kind").and_then(Json::as_str) {
        None => problems.push(format!(
            "{name}: missing or mistyped 'kind' \
             (expected gate/sweep-diff/heatmap-diff/metrics-diff)"
        )),
        Some("gate") => {
            need_bool("pass", problems);
            if doc.get("tolerance").and_then(Json::as_f64).is_none() {
                problems.push(format!("{name}: missing or mistyped 'tolerance'"));
            }
            if !matches!(doc.get("explanation"), Some(Json::Arr(_))) {
                problems.push(format!("{name}: missing or mistyped 'explanation'"));
            }
            let Some(groups) = doc.get("groups").and_then(Json::as_arr) else {
                problems.push(format!("{name}: missing or mistyped 'groups'"));
                return;
            };
            if groups.is_empty() {
                problems.push(format!("{name}: 'groups' is empty"));
            }
            for (i, g) in groups.iter().enumerate() {
                if g.get("group").and_then(Json::as_str).is_none()
                    || !matches!(g.get("pass"), Some(Json::Bool(_)))
                {
                    problems.push(format!("{name}/group#{i}: missing 'group'/'pass'"));
                }
                // Medians and ratio are numbers or null (coverage drift).
                for key in ["baseline_median", "current_median", "ratio"] {
                    let ok = matches!(g.get(key), Some(Json::Null))
                        || g.get(key).and_then(Json::as_f64).is_some();
                    if !ok {
                        problems.push(format!("{name}/group#{i}: missing or mistyped '{key}'"));
                    }
                }
            }
        }
        Some(kind @ ("sweep-diff" | "heatmap-diff" | "metrics-diff")) => {
            need_bool("zero", problems);
            check_prov_block("base_provenance", problems);
            check_prov_block("current_provenance", problems);
            let body = match kind {
                "sweep-diff" => "configs",
                "heatmap-diff" => "planes",
                _ => "phases",
            };
            if !matches!(doc.get(body), Some(Json::Arr(_))) {
                problems.push(format!("{name}: missing or mistyped '{body}'"));
            }
        }
        Some(other) => problems.push(format!("{name}: unexpected diff kind '{other}'")),
    }
}

/// Per-group median simulated cycles of a sweep document, keyed by the
/// first two config segments (`<procs>p/<distribution>`).
fn sweep_group_medians(doc: &Json) -> BTreeMap<String, f64> {
    let mut groups: BTreeMap<String, Vec<u64>> = BTreeMap::new();
    if let Some(configs) = doc.get("cycle_breakdowns").and_then(Json::as_arr) {
        for entry in configs {
            let (Some(config), Some(total)) = (
                entry.get("config").and_then(Json::as_str),
                entry.get("total_cycles").and_then(Json::as_u64),
            ) else {
                continue;
            };
            let key: Vec<&str> = config.splitn(3, '/').collect();
            if key.len() >= 2 {
                groups
                    .entry(format!("{}/{}", key[0], key[1]))
                    .or_default()
                    .push(total);
            }
        }
    }
    groups
        .into_iter()
        .map(|(k, mut v)| {
            v.sort_unstable();
            let mid = v.len() / 2;
            let median = if v.len() % 2 == 1 {
                v[mid] as f64
            } else {
                (v[mid - 1] + v[mid]) as f64 / 2.0
            };
            (k, median)
        })
        .collect()
}

/// Gates current per-group cycle medians against a baseline. Any group
/// regressing by more than [`REGRESSION_TOLERANCE`] is a problem, and so is
/// a group present on only one side — a silently skipped group is exactly
/// how a dropped config axis would slip past the gate, so coverage drift in
/// either direction fails until the baseline is regenerated. A zero-cycle
/// baseline median cannot anchor a ratio: it passes only against a
/// zero-cycle current median and fails (explicitly, without dividing) once
/// the current group does real work.
fn compare_groups(
    current: &BTreeMap<String, f64>,
    baseline: &BTreeMap<String, f64>,
    tolerance: f64,
    problems: &mut Vec<String>,
) -> (Vec<String>, Vec<GroupVerdict>) {
    let mut lines = Vec::new();
    let mut verdicts = Vec::new();
    for (group, &base) in baseline {
        let Some(&now) = current.get(group) else {
            problems.push(format!(
                "regression gate: group '{group}' present in baseline but missing from current sweep"
            ));
            verdicts.push(GroupVerdict {
                group: group.clone(),
                baseline_median: Some(base),
                current_median: None,
                pass: false,
            });
            continue;
        };
        let verdict_pass;
        if base <= 0.0 {
            if now > 0.0 {
                lines.push(format!(
                    "  {group:24} {base:>14.0} -> {now:>14.0} cycles (no ratio)"
                ));
                problems.push(format!(
                    "regression gate: group '{group}' has a zero-cycle baseline median but \
                     {now:.0} current cycles — the baseline cannot anchor a ratio; regenerate it"
                ));
                verdict_pass = false;
            } else {
                lines.push(format!("  {group:24} {base:>14.0} -> {now:>14.0} cycles (+0.0%)"));
                verdict_pass = true;
            }
        } else {
            let ratio = now / base;
            lines.push(format!(
                "  {group:24} {base:>14.0} -> {now:>14.0} cycles ({:+.1}%)",
                (ratio - 1.0) * 100.0
            ));
            verdict_pass = ratio <= 1.0 + tolerance;
            if !verdict_pass {
                problems.push(format!(
                    "regression gate: group '{group}' median cycles regressed {:.1}% \
                     (baseline {base:.0}, current {now:.0}, tolerance {:.1}%)",
                    (ratio - 1.0) * 100.0,
                    tolerance * 100.0
                ));
            }
        }
        verdicts.push(GroupVerdict {
            group: group.clone(),
            baseline_median: Some(base),
            current_median: Some(now),
            pass: verdict_pass,
        });
    }
    for (group, &now) in current {
        if !baseline.contains_key(group) {
            lines.push(format!("  {group:24} (no baseline entry)"));
            problems.push(format!(
                "regression gate: group '{group}' present in current sweep but missing from \
                 the baseline — regenerate the baseline to cover it"
            ));
            verdicts.push(GroupVerdict {
                group: group.clone(),
                baseline_median: None,
                current_median: Some(now),
                pass: false,
            });
        }
    }
    (lines, verdicts)
}

/// One group's machine-readable gate verdict (`None` medians mark the
/// side missing the group — coverage drift, always a failure).
struct GroupVerdict {
    group: String,
    baseline_median: Option<f64>,
    current_median: Option<f64>,
    pass: bool,
}

impl GroupVerdict {
    /// `current / baseline`, when both sides have a positive median.
    fn ratio(&self) -> Option<f64> {
        match (self.baseline_median, self.current_median) {
            (Some(b), Some(c)) if b > 0.0 => Some(c / b),
            _ => None,
        }
    }
}

/// The gate verdict as a `DIFF_*.json` document (`kind: "gate"`): the
/// machine-readable shape a CI endpoint serves.
fn gate_verdict_json(
    baseline_name: &str,
    verdicts: &[GroupVerdict],
    tolerance: f64,
    pass: bool,
    explanation: &[String],
) -> Json {
    let opt_f64 = |v: Option<f64>| v.map_or(Json::Null, Json::F64);
    Json::obj([
        ("kind", Json::str("gate")),
        ("pass", Json::Bool(pass)),
        ("baseline", Json::str(baseline_name)),
        ("tolerance", Json::F64(tolerance)),
        (
            "groups",
            Json::arr(verdicts.iter().map(|v| {
                Json::obj([
                    ("group", Json::str(&v.group)),
                    ("baseline_median", opt_f64(v.baseline_median)),
                    ("current_median", opt_f64(v.current_median)),
                    ("ratio", opt_f64(v.ratio())),
                    ("pass", Json::Bool(v.pass)),
                ])
            })),
        ),
        ("explanation", Json::arr(explanation.iter().map(Json::str))),
    ])
}

/// Runs the `--against` gate: loads both sweep documents, validates the
/// baseline's own identities, refuses incomparable provenance, and
/// compares per-group cycle medians. With `explain`, prints a ranked
/// attribution of what moved; with `json_out`, writes the whole verdict
/// as a `kind: "gate"` DIFF document.
fn run_gate(
    dir: &Path,
    baseline_path: &Path,
    tolerance: f64,
    explain: bool,
    json_out: Option<&Path>,
    problems: &mut Vec<String>,
) {
    let problems_before = problems.len();
    let baseline_path = if baseline_path.exists() {
        baseline_path.to_path_buf()
    } else {
        // Bare names like `BENCH_baseline.json` resolve against the
        // workspace root, so the gate works from any cwd.
        workspace_root().join(baseline_path)
    };
    let baseline = match std::fs::read_to_string(&baseline_path)
        .map_err(|e| e.to_string())
        .and_then(|t| Json::parse(&t).map_err(|e| e.to_string()))
    {
        Ok(doc) => doc,
        Err(e) => {
            problems.push(format!(
                "regression gate: cannot load baseline {}: {e}",
                baseline_path.display()
            ));
            return;
        }
    };
    // Identity drift in the baseline itself is as fatal as in the run.
    check_doc(
        &format!("baseline({})", baseline_path.display()),
        &baseline,
        problems,
    );

    let current_path = dir.join("BENCH_sweep.json");
    let current = match std::fs::read_to_string(&current_path)
        .map_err(|e| e.to_string())
        .and_then(|t| Json::parse(&t).map_err(|e| e.to_string()))
    {
        Ok(doc) => doc,
        Err(e) => {
            problems.push(format!(
                "regression gate: cannot load current sweep {}: {e}",
                current_path.display()
            ));
            return;
        }
    };

    // The gate refuses incomparable runs outright: a median comparison
    // across different scenes or config grids would be meaningless.
    let comparable = match (Provenance::from_doc(&baseline), Provenance::from_doc(&current)) {
        (Ok(b), Ok(c)) => match b.comparable(&c) {
            Ok(()) => true,
            Err(e) => {
                problems.push(format!("regression gate: {e}"));
                false
            }
        },
        (base_prov, cur_prov) => {
            if let Err(e) = base_prov {
                problems.push(format!("regression gate: baseline: {e}"));
            }
            if let Err(e) = cur_prov {
                problems.push(format!("regression gate: current sweep: {e}"));
            }
            false
        }
    };
    if !comparable {
        return;
    }

    let base_groups = sweep_group_medians(&baseline);
    let cur_groups = sweep_group_medians(&current);
    if base_groups.is_empty() {
        problems.push(format!(
            "regression gate: baseline {} has no cycle_breakdowns groups",
            baseline_path.display()
        ));
        return;
    }
    let (lines, verdicts) = compare_groups(&cur_groups, &base_groups, tolerance, problems);
    println!(
        "regression gate vs {} ({} groups, tolerance {:.1}%):",
        baseline_path.display(),
        base_groups.len(),
        tolerance * 100.0
    );
    for line in lines {
        println!("{line}");
    }

    let mut explanation = Vec::new();
    if explain || json_out.is_some() {
        match SweepDiff::between(&baseline, &current) {
            Ok(diff) => explanation.extend(diff.explanation(10)),
            Err(e) => problems.push(format!("regression gate: cannot attribute deltas: {e}")),
        }
        // Host wall-time movement rides along when both sides have a
        // METRICS_sweep.json (informational: wall times are not gated).
        let base_metrics = baseline_path.with_file_name("METRICS_sweep.json");
        let cur_metrics = dir.join("METRICS_sweep.json");
        if base_metrics != cur_metrics && base_metrics.exists() && cur_metrics.exists() {
            let load = |p: &Path| {
                std::fs::read_to_string(p)
                    .map_err(|e| e.to_string())
                    .and_then(|t| Json::parse(&t).map_err(|e| e.to_string()))
            };
            match (load(&base_metrics), load(&cur_metrics)) {
                (Ok(b), Ok(c)) => match MetricsDiff::between(&b, &c) {
                    Ok(diff) => explanation.extend(diff.explanation(5)),
                    Err(e) => explanation.push(format!("(host phases not compared: {e})")),
                },
                _ => explanation
                    .push("(host phases not compared: unreadable METRICS_sweep.json)".to_string()),
            }
        }
    }
    if explain {
        println!("attribution (ranked by |cycle delta|):");
        for line in &explanation {
            println!("  {line}");
        }
    }
    if let Some(out) = json_out {
        let pass = problems.len() == problems_before;
        let doc = gate_verdict_json(
            &baseline_path.display().to_string(),
            &verdicts,
            tolerance,
            pass,
            &explanation,
        );
        if let Err(e) = std::fs::write(out, doc.render()) {
            problems.push(format!(
                "regression gate: cannot write verdict {}: {e}",
                out.display()
            ));
        } else {
            println!("wrote gate verdict {}", out.display());
        }
    }
}

fn run(dir: &Path) -> Result<usize, String> {
    let mut problems = Vec::new();
    let mut checked = 0usize;
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| {
                    (n.starts_with("BENCH_")
                        || n.starts_with("TRACE_")
                        || n.starts_with("HEATMAP_")
                        || n.starts_with("METRICS_")
                        || n.starts_with("DIFF_"))
                        && n.ends_with(".json")
                })
        })
        .collect();
    entries.sort();

    for path in &entries {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                problems.push(format!("{name}: unreadable: {e}"));
                continue;
            }
        };
        match Json::parse(&text) {
            Ok(doc) => {
                if name.starts_with("TRACE_") {
                    check_trace(&name, &doc, &mut problems);
                } else if name.starts_with("HEATMAP_") {
                    check_heatmap(&name, &doc, &mut problems);
                } else if name.starts_with("METRICS_") {
                    check_metrics(&name, &doc, &mut problems);
                } else if name.starts_with("DIFF_") {
                    check_diff(&name, &doc, &mut problems);
                } else {
                    check_doc(&name, &doc, &mut problems);
                }
                checked += 1;
            }
            Err(e) => problems.push(format!("{name}: {e}")),
        }
    }

    if problems.is_empty() {
        Ok(checked)
    } else {
        Err(problems.join("\n"))
    }
}

fn main() -> ExitCode {
    let mut dir: Option<PathBuf> = None;
    let mut against: Option<PathBuf> = None;
    let mut tolerance = REGRESSION_TOLERANCE;
    let mut explain = false;
    let mut json_out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--against" => match args.next() {
                Some(p) => against = Some(PathBuf::from(p)),
                None => {
                    eprintln!("bench_check: --against needs a baseline path");
                    return ExitCode::FAILURE;
                }
            },
            "--tolerance" => match args.next().as_deref().map(str::parse::<f64>) {
                Some(Ok(pct)) if pct >= 0.0 && pct.is_finite() => tolerance = pct / 100.0,
                _ => {
                    eprintln!("bench_check: --tolerance needs a non-negative percentage");
                    return ExitCode::FAILURE;
                }
            },
            "--explain" => explain = true,
            "--json" => match args.next() {
                Some(p) => json_out = Some(PathBuf::from(p)),
                None => {
                    eprintln!("bench_check: --json needs an output path");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: bench_check [dir] [--against <baseline BENCH json>] \
                     [--tolerance <pct>] [--explain] [--json <verdict out>]"
                );
                return ExitCode::SUCCESS;
            }
            other => dir = Some(PathBuf::from(other)),
        }
    }
    if (explain || json_out.is_some()) && against.is_none() {
        eprintln!("bench_check: --explain/--json need --against <baseline>");
        return ExitCode::FAILURE;
    }
    // Default to the workspace root (not the cwd) so the check validates
    // the committed artefacts from anywhere in the tree.
    let dir = dir.unwrap_or_else(|| workspace_root().to_path_buf());

    let mut gate_problems = Vec::new();
    if let Some(baseline) = &against {
        run_gate(
            &dir,
            baseline,
            tolerance,
            explain,
            json_out.as_deref(),
            &mut gate_problems,
        );
    }

    match run(&dir) {
        Ok(0) => {
            eprintln!(
                "bench_check: no BENCH_/TRACE_/HEATMAP_/METRICS_/DIFF_ *.json artefacts found in {}",
                dir.display()
            );
            ExitCode::FAILURE
        }
        Ok(n) if gate_problems.is_empty() => {
            println!("bench_check: {n} artefact(s) OK in {}", dir.display());
            ExitCode::SUCCESS
        }
        Ok(_) => {
            eprintln!("bench_check: regression gate failed:\n{}", gate_problems.join("\n"));
            ExitCode::FAILURE
        }
        Err(problems) => {
            gate_problems.push(problems);
            eprintln!("bench_check: invalid artefacts:\n{}", gate_problems.join("\n"));
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn groups(entries: &[(&str, f64)]) -> BTreeMap<String, f64> {
        entries.iter().map(|&(k, v)| (k.to_string(), v)).collect()
    }

    /// Stamps a fixture document with a valid provenance block.
    fn with_prov(mut doc: Json) -> Json {
        doc.set("provenance", Provenance::collect(7, 0xab).to_json());
        doc
    }

    #[test]
    fn identical_groups_pass_the_gate() {
        let base = groups(&[("16p/block-16", 1000.0), ("64p/sli-4", 2000.0)]);
        let mut problems = Vec::new();
        compare_groups(&base, &base, REGRESSION_TOLERANCE, &mut problems);
        assert!(problems.is_empty(), "{problems:?}");
    }

    #[test]
    fn regression_beyond_tolerance_fails() {
        let base = groups(&[("16p/block-16", 1000.0)]);
        let cur = groups(&[("16p/block-16", 1200.0)]); // +20% > 15%
        let mut problems = Vec::new();
        compare_groups(&cur, &base, REGRESSION_TOLERANCE, &mut problems);
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("16p/block-16"), "{problems:?}");
    }

    #[test]
    fn regression_within_tolerance_and_improvement_pass() {
        let base = groups(&[("16p/block-16", 1000.0), ("64p/sli-4", 2000.0)]);
        let cur = groups(&[("16p/block-16", 1100.0), ("64p/sli-4", 1500.0)]);
        let mut problems = Vec::new();
        let (lines, verdicts) = compare_groups(&cur, &base, REGRESSION_TOLERANCE, &mut problems);
        assert!(problems.is_empty(), "{problems:?}");
        assert_eq!(lines.len(), 2);
        assert!(verdicts.iter().all(|v| v.pass), "all groups pass");
    }

    #[test]
    fn trace_replay_extra_is_enforced_on_sweep_docs() {
        let mut problems = Vec::new();
        check_sweep_extras("sweep", &Json::obj::<&str>([]), &mut problems);
        assert!(
            problems.iter().any(|p| p.contains("trace_replay")),
            "{problems:?}"
        );

        // A shrunken dense lane or non-finite marginal must fail too.
        let doc = Json::obj([
            (
                "trace_replay",
                Json::obj([
                    ("configs", Json::U64(12)),
                    ("base_configs", Json::U64(4)),
                    ("median_ns", Json::U64(100)),
                    ("base_median_ns", Json::U64(50)),
                    ("marginal_ns_per_config", Json::F64(f64::INFINITY)),
                ]),
            ),
            ("cycle_breakdowns", Json::arr([])),
        ]);
        let mut problems = Vec::new();
        check_sweep_extras("sweep", &doc, &mut problems);
        assert!(
            problems.iter().any(|p| p.contains("< 100")),
            "{problems:?}"
        );
        assert!(
            problems.iter().any(|p| p.contains("non-finite")),
            "{problems:?}"
        );
    }

    #[test]
    fn missing_groups_fail_in_both_directions() {
        // Coverage drift is a failure whichever side dropped the group: a
        // baseline group absent from the run AND a run group absent from
        // the baseline.
        let base = groups(&[("16p/block-16", 1000.0)]);
        let cur = groups(&[("64p/sli-4", 500.0)]);
        let mut problems = Vec::new();
        compare_groups(&cur, &base, REGRESSION_TOLERANCE, &mut problems);
        assert_eq!(problems.len(), 2, "{problems:?}");
        assert!(problems[0].contains("missing from current"), "{problems:?}");
        assert!(problems[1].contains("missing from"), "{problems:?}");
        assert!(problems[1].contains("64p/sli-4"), "{problems:?}");
    }

    #[test]
    fn zero_baseline_with_work_in_current_fails_without_dividing() {
        let base = groups(&[("16p/block-16", 0.0)]);
        let cur = groups(&[("16p/block-16", 500.0)]);
        let mut problems = Vec::new();
        let (lines, _) = compare_groups(&cur, &base, REGRESSION_TOLERANCE, &mut problems);
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("zero-cycle baseline"), "{problems:?}");
        // The report line must not carry a NaN/inf percentage.
        assert!(lines.iter().all(|l| !l.contains("NaN") && !l.contains("inf")), "{lines:?}");
    }

    #[test]
    fn zero_baseline_and_zero_current_pass() {
        let base = groups(&[("16p/block-16", 0.0)]);
        let cur = groups(&[("16p/block-16", 0.0)]);
        let mut problems = Vec::new();
        compare_groups(&cur, &base, REGRESSION_TOLERANCE, &mut problems);
        assert!(problems.is_empty(), "{problems:?}");
    }

    #[test]
    fn tolerance_is_respected_by_the_gate() {
        // +20% fails the default 15% gate but passes a 25% one.
        let base = groups(&[("16p/block-16", 1000.0)]);
        let cur = groups(&[("16p/block-16", 1200.0)]);
        let mut problems = Vec::new();
        compare_groups(&cur, &base, 0.25, &mut problems);
        assert!(problems.is_empty(), "{problems:?}");
        let mut problems = Vec::new();
        compare_groups(&cur, &base, 0.15, &mut problems);
        assert_eq!(problems.len(), 1);
        // The breach message names the lane with baseline vs current values.
        assert!(problems[0].contains("16p/block-16"), "{problems:?}");
        assert!(problems[0].contains("baseline 1000"), "{problems:?}");
        assert!(problems[0].contains("current 1200"), "{problems:?}");
    }

    fn metrics_doc(worker_idle: u64, child_end: u64) -> Json {
        Json::parse(&format!(
            r#"{{"profile": "unit", "peak_rss_bytes": 1024,
                "spans": [
                    {{"name": "run-sweep", "thread": 0, "depth": 0,
                      "parent": null, "start_ns": 0, "dur_ns": 100}},
                    {{"name": "plan-build", "thread": 0, "depth": 1,
                      "parent": 0, "start_ns": 10, "dur_ns": {}}}
                ],
                "workers": [{{"lane": "run-configs", "worker": 0,
                             "wall_ns": 100, "busy_ns": 60,
                             "idle_ns": {worker_idle}, "items": 4}}],
                "phases": [
                    {{"name": "run-sweep", "count": 1, "total_ns": 100, "self_ns": 80}},
                    {{"name": "plan-build", "count": 1, "total_ns": 20, "self_ns": 20}}
                ],
                "utilization_imbalance": {{"run-configs": 0.25}},
                "metrics": {{"counters": {{}}, "gauges": {{}}, "histograms": {{}}}}}}"#,
            child_end - 10,
        ))
        .map(with_prov)
        .unwrap()
    }

    #[test]
    fn metrics_check_accepts_a_consistent_profile() {
        let mut problems = Vec::new();
        check_metrics("METRICS_unit.json", &metrics_doc(40, 30), &mut problems);
        assert!(problems.is_empty(), "{problems:?}");
    }

    #[test]
    fn metrics_check_catches_a_broken_worker_identity() {
        let mut problems = Vec::new();
        check_metrics("METRICS_unit.json", &metrics_doc(41, 30), &mut problems);
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("utilization identity"), "{problems:?}");
    }

    #[test]
    fn metrics_check_catches_a_span_escaping_its_parent() {
        let mut problems = Vec::new();
        check_metrics("METRICS_unit.json", &metrics_doc(40, 200), &mut problems);
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("escapes parent"), "{problems:?}");
    }

    #[test]
    fn metrics_check_catches_overlapping_siblings() {
        let doc = Json::parse(
            r#"{"profile": "unit", "peak_rss_bytes": 0,
                "spans": [
                    {"name": "a", "thread": 0, "depth": 0,
                     "parent": null, "start_ns": 0, "dur_ns": 100},
                    {"name": "b", "thread": 0, "depth": 0,
                     "parent": null, "start_ns": 50, "dur_ns": 100}
                ],
                "workers": [{"lane": "run-configs", "worker": 0,
                             "wall_ns": 1, "busy_ns": 1, "idle_ns": 0,
                             "items": 1}],
                "phases": [{"name": "a", "count": 1, "total_ns": 100, "self_ns": 100},
                           {"name": "b", "count": 1, "total_ns": 100, "self_ns": 100}],
                "utilization_imbalance": {"run-configs": 0.0},
                "metrics": {"counters": {}, "gauges": {}, "histograms": {}}}"#,
        )
        .map(with_prov)
        .unwrap();
        let mut problems = Vec::new();
        check_metrics("METRICS_unit.json", &doc, &mut problems);
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("overlap"), "{problems:?}");
    }

    #[test]
    fn metrics_check_requires_every_sweep_phase() {
        // A doc claiming to be the sweep profile but covering only two
        // phases must list every missing pipeline stage.
        let Json::Obj(mut fields) = metrics_doc(40, 30) else {
            unreachable!()
        };
        for (k, v) in &mut fields {
            if k == "profile" {
                *v = Json::str("sweep");
            }
        }
        let mut problems = Vec::new();
        check_metrics("METRICS_sweep.json", &Json::Obj(fields), &mut problems);
        let missing: Vec<_> = problems
            .iter()
            .filter(|p| p.contains("missing required pipeline phase"))
            .collect();
        assert_eq!(missing.len(), REQUIRED_SWEEP_PHASES.len() - 2, "{problems:?}");
    }

    #[test]
    fn metrics_check_requires_scheduler_instrumentation_on_sweep() {
        // A sweep doc with empty counters/gauges and no static baseline
        // must flag every piece of missing scheduler instrumentation.
        let Json::Obj(mut fields) = metrics_doc(40, 30) else {
            unreachable!()
        };
        for (k, v) in &mut fields {
            if k == "profile" {
                *v = Json::str("sweep");
            }
        }
        let mut problems = Vec::new();
        check_metrics("METRICS_sweep.json", &Json::Obj(fields), &mut problems);
        for needle in [
            "missing scheduler counter 'sweep.claims'",
            "missing scheduler counter 'sweep.steals'",
            "missing scheduler counter 'sweep.tasks'",
            "no 'sweep.queue_depth.*' gauges",
            "static_baseline: missing or mistyped 'utilization_imbalance'",
        ] {
            assert!(
                problems.iter().any(|p| p.contains(needle)),
                "expected a problem containing {needle:?}: {problems:?}"
            );
        }
    }

    #[test]
    fn metrics_check_rejects_an_out_of_range_imbalance() {
        let doc = metrics_doc(40, 30);
        let Json::Obj(mut fields) = doc else { unreachable!() };
        for (k, v) in &mut fields {
            if k == "utilization_imbalance" {
                *v = Json::parse(r#"{"run-configs": 1.5}"#).unwrap();
            }
        }
        let mut problems = Vec::new();
        check_metrics("METRICS_unit.json", &Json::Obj(fields), &mut problems);
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("must be a number in [0, 1]"), "{problems:?}");
    }

    #[test]
    fn metrics_check_accepts_a_fully_instrumented_sweep_doc() {
        let Json::Obj(mut fields) = metrics_doc(40, 30) else {
            unreachable!()
        };
        for (k, v) in &mut fields {
            match k.as_str() {
                "profile" => *v = Json::str("sweep"),
                "metrics" => {
                    *v = Json::parse(
                        r#"{"counters": {"sweep.claims": 10, "sweep.steals": 2,
                                         "sweep.tasks": 12},
                            "gauges": {"sweep.queue_depth.w00": 4,
                                       "sweep.queue_depth.w01": 3},
                            "histograms": {}}"#,
                    )
                    .unwrap();
                }
                _ => {}
            }
        }
        fields.push((
            "static_baseline".to_string(),
            Json::parse(r#"{"utilization_imbalance": {"run-configs": 0.62}}"#).unwrap(),
        ));
        // Cover every required phase with a span and a phase total so only
        // the scheduler checks are exercised.
        let spans: Vec<String> = REQUIRED_SWEEP_PHASES
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let (parent, depth) = if i == 0 {
                    ("null".to_string(), 0)
                } else {
                    ("0".to_string(), 1)
                };
                let width = 100 / REQUIRED_SWEEP_PHASES.len() as u64;
                let start = if i == 0 { 0 } else { (i as u64 - 1) * width };
                let dur = if i == 0 { 100 } else { width };
                format!(
                    r#"{{"name": "{p}", "thread": 0, "depth": {depth},
                        "parent": {parent}, "start_ns": {start}, "dur_ns": {dur}}}"#
                )
            })
            .collect();
        let phases: Vec<String> = REQUIRED_SWEEP_PHASES
            .iter()
            .map(|p| format!(r#"{{"name": "{p}", "count": 1, "total_ns": 10, "self_ns": 10}}"#))
            .collect();
        for (k, v) in &mut fields {
            match k.as_str() {
                "spans" => *v = Json::parse(&format!("[{}]", spans.join(","))).unwrap(),
                "phases" => *v = Json::parse(&format!("[{}]", phases.join(","))).unwrap(),
                _ => {}
            }
        }
        let mut problems = Vec::new();
        check_metrics("METRICS_sweep.json", &Json::Obj(fields), &mut problems);
        assert!(problems.is_empty(), "{problems:?}");
    }

    #[test]
    fn sweep_medians_group_by_procs_and_distribution() {
        let doc = Json::parse(
            r#"{"cycle_breakdowns": [
                {"config": "16p/block-16/16KB/buf100", "total_cycles": 100},
                {"config": "16p/block-16/perfect/buf100", "total_cycles": 300},
                {"config": "64p/sli-4/16KB/buf100", "total_cycles": 50}
            ]}"#,
        )
        .unwrap();
        let medians = sweep_group_medians(&doc);
        assert_eq!(medians.len(), 2);
        assert_eq!(medians["16p/block-16"], 200.0);
        assert_eq!(medians["64p/sli-4"], 50.0);
    }

    #[test]
    fn heatmap_check_accepts_a_consistent_document() {
        let doc = Json::parse(
            r#"{"preset": "demo", "config": "1p/block-16",
                "screen": {"width": 16, "height": 16},
                "tile": 16, "cols": 1, "rows": 1,
                "fragments": 3, "fragment_gini": 0.0,
                "tiles": {"fragments": [[3]], "setup_cycles": [[0]],
                          "lines_fetched": [[2]], "miss_compulsory": [[1]],
                          "miss_capacity": [[1]], "miss_conflict": [[0]],
                          "owner": [[0]]},
                "nodes": [{"node": 0, "fragments": 3, "setup_cycles": 0,
                           "misses": 2, "compulsory": 1, "capacity": 1,
                           "conflict": 0}]}"#,
        )
        .map(with_prov)
        .unwrap();
        let mut problems = Vec::new();
        check_heatmap("HEATMAP_demo.json", &doc, &mut problems);
        assert!(problems.is_empty(), "{problems:?}");
    }

    #[test]
    fn heatmap_check_catches_broken_identities() {
        // Tile sum (4) != fragments (3); node identity 1+1+1 != 2.
        let doc = Json::parse(
            r#"{"preset": "demo", "config": "1p/block-16",
                "screen": {"width": 16, "height": 16},
                "tile": 16, "cols": 1, "rows": 1,
                "fragments": 3, "fragment_gini": 0.0,
                "tiles": {"fragments": [[4]], "setup_cycles": [[0]],
                          "lines_fetched": [[2]], "miss_compulsory": [[1]],
                          "miss_capacity": [[1]], "miss_conflict": [[0]],
                          "owner": [[0]]},
                "nodes": [{"node": 0, "fragments": 3, "setup_cycles": 0,
                           "misses": 2, "compulsory": 1, "capacity": 1,
                           "conflict": 1}]}"#,
        )
        .map(with_prov)
        .unwrap();
        let mut problems = Vec::new();
        check_heatmap("HEATMAP_demo.json", &doc, &mut problems);
        assert_eq!(problems.len(), 2, "{problems:?}");
        assert!(problems.iter().any(|p| p.contains("tile fragments sum")));
        assert!(problems.iter().any(|p| p.contains("three-C identity")));
    }

    #[test]
    fn artefacts_without_provenance_are_rejected() {
        // Every stamped artefact family: sweep extras, trace, heatmap,
        // metrics. A document missing the block names the fix.
        let mut problems = Vec::new();
        check_provenance("X.json", &Json::obj::<&str>([]), &mut problems);
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("missing provenance"), "{problems:?}");

        // A stale schema version is as fatal as a missing block.
        let mut old = Provenance::collect(7, 0xab);
        old.schema = SCHEMA_VERSION + 1;
        let doc = Json::obj([("provenance", old.to_json())]);
        let mut problems = Vec::new();
        check_provenance("X.json", &doc, &mut problems);
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("regenerate"), "{problems:?}");

        let mut problems = Vec::new();
        check_sweep_extras("sweep", &Json::obj::<&str>([]), &mut problems);
        assert!(
            problems.iter().any(|p| p.contains("missing provenance")),
            "{problems:?}"
        );
    }

    #[test]
    fn gate_verdict_json_round_trips_through_check_diff() {
        let verdicts = vec![
            GroupVerdict {
                group: "16p/block-16".to_string(),
                baseline_median: Some(1000.0),
                current_median: Some(1200.0),
                pass: false,
            },
            GroupVerdict {
                group: "64p/sli-4".to_string(),
                baseline_median: Some(500.0),
                current_median: None,
                pass: false,
            },
        ];
        let doc = gate_verdict_json(
            "BENCH_baseline.json",
            &verdicts,
            0.15,
            false,
            &["16p/block-16: regressed +20.0%".to_string()],
        );
        assert_eq!(doc.get("kind").and_then(Json::as_str), Some("gate"));
        assert_eq!(doc.get("pass"), Some(&Json::Bool(false)));
        let g = &doc.get("groups").and_then(Json::as_arr).unwrap()[0];
        assert_eq!(g.get("ratio").and_then(Json::as_f64), Some(1.2));
        // Coverage drift renders null medians, not fake zeros.
        let g1 = &doc.get("groups").and_then(Json::as_arr).unwrap()[1];
        assert_eq!(g1.get("current_median"), Some(&Json::Null));
        // The emitted verdict satisfies the DIFF_ schema check, and the
        // parse/render round trip preserves it.
        let reparsed = Json::parse(&doc.render()).unwrap();
        let mut problems = Vec::new();
        check_diff("DIFF_gate.json", &reparsed, &mut problems);
        assert!(problems.is_empty(), "{problems:?}");
    }

    #[test]
    fn check_diff_rejects_malformed_documents() {
        let mut problems = Vec::new();
        check_diff("DIFF_x.json", &Json::obj::<&str>([]), &mut problems);
        assert!(problems[0].contains("kind"), "{problems:?}");

        let mut problems = Vec::new();
        check_diff(
            "DIFF_x.json",
            &Json::obj([("kind", Json::str("mystery"))]),
            &mut problems,
        );
        assert!(problems[0].contains("unexpected diff kind"), "{problems:?}");

        // A pairwise diff needs both provenance blocks and its body array.
        let mut problems = Vec::new();
        check_diff(
            "DIFF_x.json",
            &Json::obj([("kind", Json::str("sweep-diff")), ("zero", Json::Bool(true))]),
            &mut problems,
        );
        assert!(
            problems.iter().any(|p| p.contains("base_provenance"))
                && problems.iter().any(|p| p.contains("configs")),
            "{problems:?}"
        );
    }
}
