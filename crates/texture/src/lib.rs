//! Mipmapped, block-addressed texture model for the `sortmid` simulator.
//!
//! The paper's cache follows Hakura & Gupta's design: textures are stored in
//! memory as **4×4-texel blocks** of 4-byte texels, so one block is exactly
//! one 64-byte cache line. Trilinear filtering reads **8 texels per
//! fragment** (a 2×2 bilinear footprint on each of two adjacent mip levels).
//!
//! This crate provides:
//!
//! * [`desc::TextureDesc`] and [`desc::MipChain`] — texture shapes and their
//!   mip pyramids.
//! * [`layout::TextureRegistry`] — a global, blocked texel address space
//!   shared by every texture and mip level, so a texel address is a single
//!   `u32` and a cache-line address is `texel / 16`.
//! * [`footprint::TrilinearSampler`] — turns an interpolated texture
//!   coordinate plus a mip level into the 8 texel addresses the engine
//!   fetches.
//! * [`texel_set::TexelSet`] — a dense bitset over the global texel space
//!   used to measure the paper's *unique texel to fragment ratio*.
//!
//! # Examples
//!
//! ```
//! use sortmid_texture::desc::TextureDesc;
//! use sortmid_texture::layout::TextureRegistry;
//!
//! let mut reg = TextureRegistry::new();
//! let tex = reg.register(TextureDesc::new(64, 64)?)?;
//! let addr = reg.texel_addr(tex, 0, 5, 9);
//! assert_eq!(reg.line_of(addr), addr.index() / 16);
//! # Ok::<(), sortmid_texture::TextureError>(())
//! ```

pub mod contents;
pub mod desc;
pub mod footprint;
pub mod layout;
pub mod texel_set;

pub use contents::ProceduralTexels;
pub use desc::{MipChain, TextureDesc};
pub use footprint::{footprint_lines, TrilinearSampler};
pub use layout::{BlockOrder, TexelAddr, TextureId, TextureRegistry};
pub use texel_set::TexelSet;

/// Bytes per texel (32-bit RGBA, as in the paper).
pub const TEXEL_BYTES: u32 = 4;
/// Texture blocking dimension: blocks are 4×4 texels.
pub const BLOCK_DIM: u32 = 4;
/// Texels per cache line (one 4×4 block).
pub const TEXELS_PER_LINE: u32 = BLOCK_DIM * BLOCK_DIM;
/// Cache-line size in bytes (matches the paper's 64-byte lines).
pub const LINE_BYTES: u32 = TEXELS_PER_LINE * TEXEL_BYTES;
/// Texel reads per fragment under trilinear filtering.
pub const TEXELS_PER_FRAGMENT: usize = 8;

/// Errors from texture construction and registration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TextureError {
    /// A texture dimension was zero or not a power of two.
    BadDimension {
        /// The offending dimension value.
        value: u32,
    },
    /// The global texel address space (2³² texels = 16 GiB of texture)
    /// overflowed.
    AddressSpaceExhausted,
}

impl std::fmt::Display for TextureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TextureError::BadDimension { value } => {
                write!(f, "texture dimension {value} is not a positive power of two")
            }
            TextureError::AddressSpaceExhausted => {
                write!(f, "global texel address space exhausted")
            }
        }
    }
}

impl std::error::Error for TextureError {}
