//! The trace-event vocabulary of the machine.
//!
//! Events are emitted *in simulation order* (triangle by triangle), not in
//! global time order: the machine computes each triangle's whole lifetime
//! eagerly, so a pop at cycle 900 can be recorded before a push at cycle
//! 400 of a later triangle. Per node, push times and pop times are each
//! monotone; consumers that need a timeline ([`crate::series`],
//! [`crate::perfetto`]) sort by time first.

use crate::Cycle;

/// One machine event, tagged with the node it happened on.
///
/// All times are engine cycles. `tri` is the triangle's index in the
/// fragment stream (culled triangles never appear).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A routed triangle's engine scan began (it left the FIFO).
    TriStart {
        /// Node that owns the scan.
        node: u32,
        /// Stream index of the triangle.
        tri: u32,
        /// Cycle the engine dequeued it.
        at: Cycle,
        /// Fragments this node owns of it.
        frags: u32,
    },
    /// A routed triangle released the engine (scan + setup floor done).
    TriRetire {
        /// Node that owned the scan.
        node: u32,
        /// Stream index of the triangle.
        tri: u32,
        /// Cycle the engine became free.
        at: Cycle,
    },
    /// A broadcast triangle whose bounding box missed this node's region
    /// was discarded by the clipper (it still occupied a FIFO slot).
    TriDiscard {
        /// Node that discarded it.
        node: u32,
        /// Stream index of the triangle.
        tri: u32,
        /// Cycle the clipper reached it.
        at: Cycle,
    },
    /// The geometry stage pushed a triangle into this node's FIFO.
    FifoPush {
        /// Node whose FIFO took the slot.
        node: u32,
        /// Send cycle.
        at: Cycle,
    },
    /// A triangle left this node's FIFO (scan started or clipper discard).
    FifoPop {
        /// Node whose FIFO freed the slot.
        node: u32,
        /// Dequeue cycle.
        at: Cycle,
    },
    /// One cache-miss line fill occupied the node's texture bus — the bus
    /// transaction *and* the miss event (misses and fills are 1:1).
    BusFill {
        /// Node whose private bus carried the fill.
        node: u32,
        /// Cache-line address fetched.
        line: u32,
        /// Cycle the transfer started.
        at: Cycle,
        /// Bus occupancy in cycles.
        cost: Cycle,
    },
}

impl TraceEvent {
    /// The node the event belongs to.
    pub fn node(&self) -> u32 {
        match *self {
            TraceEvent::TriStart { node, .. }
            | TraceEvent::TriRetire { node, .. }
            | TraceEvent::TriDiscard { node, .. }
            | TraceEvent::FifoPush { node, .. }
            | TraceEvent::FifoPop { node, .. }
            | TraceEvent::BusFill { node, .. } => node,
        }
    }

    /// The cycle the event happened at (transfer start for bus fills).
    pub fn at(&self) -> Cycle {
        match *self {
            TraceEvent::TriStart { at, .. }
            | TraceEvent::TriRetire { at, .. }
            | TraceEvent::TriDiscard { at, .. }
            | TraceEvent::FifoPush { at, .. }
            | TraceEvent::FifoPop { at, .. }
            | TraceEvent::BusFill { at, .. } => at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_cover_every_variant() {
        let events = [
            TraceEvent::TriStart { node: 1, tri: 2, at: 3, frags: 4 },
            TraceEvent::TriRetire { node: 1, tri: 2, at: 5 },
            TraceEvent::TriDiscard { node: 1, tri: 2, at: 6 },
            TraceEvent::FifoPush { node: 1, at: 7 },
            TraceEvent::FifoPop { node: 1, at: 8 },
            TraceEvent::BusFill { node: 1, line: 9, at: 10, cost: 16 },
        ];
        for e in events {
            assert_eq!(e.node(), 1);
            assert!(e.at() >= 3);
        }
    }
}
