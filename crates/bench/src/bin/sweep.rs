//! Sweep bench: end-to-end wall time of a Figure-5-shaped config grid.
//!
//! Every figure in the paper is a sweep of dozens of machine configurations
//! over one fragment stream. This bench times the whole grid — routing,
//! partitioning and simulation for every config — so the perf trajectory
//! captures sweep throughput, not just single-machine speed.
//!
//! Two series are emitted into `BENCH_sweep.json`:
//!
//! * `grid/shared-plan` — [`run_sweep_with_threads`]: configs grouped by
//!   `(distribution, processors)`, one shared [`RoutingPlan`] per group;
//! * `grid/per-config` — the pre-optimization baseline: every config
//!   re-derives per-fragment ownership and re-partitions the stream from
//!   scratch (what `run_sweep` did before routing plans existed).
//!
//! The ratio of the two medians is the plan-reuse speedup on this grid.
//!
//! The artefact also carries two observability extras:
//!
//! * `cycle_breakdowns` — for every config, each node's cycles attributed
//!   to `[setup, busy, bus_stall, starved, idle]` (summing exactly to that
//!   node's finish cycle — `bench_check` enforces the identity);
//! * `reference` — the `grid/shared-plan` median against the pre-tracing
//!   recorded median, guarding that the `NullSink` event plumbing stays
//!   monomorphized away.

use sortmid::{
    run_sweep_with_threads, CacheKind, Distribution, Machine, MachineConfig, RunReport, SweepGrid,
};
use sortmid_bench::stream;
use sortmid_devharness::{Json, Suite};
use sortmid_raster::FragmentStream;
use sortmid_scene::Benchmark;
use std::hint::black_box;

/// `grid/shared-plan` median recorded before the tracing subsystem landed
/// (same grid, same scene scale). The `reference.ratio` field in the
/// artefact is measured/recorded; a drift well past noise means the traced
/// hot path stopped compiling down to the untraced one.
const PRE_TRACING_MEDIAN_NS: u64 = 41_855_505;

/// The reference grid: the shape of the Figure 5/7 sweeps (processor counts
/// × distributions) with the cache and buffer axes the ablations add.
fn reference_grid() -> Vec<MachineConfig> {
    SweepGrid::new()
        .processors([4, 16, 64])
        .distributions([
            Distribution::block(8),
            Distribution::block(16),
            Distribution::block(32),
            Distribution::sli(1),
            Distribution::sli(4),
        ])
        .caches([CacheKind::Perfect, CacheKind::PaperL1])
        .buffers([100, 10_000])
        .build()
}

/// The pre-plan sweep: every config runs [`Machine::run`] independently,
/// re-deriving ownership per fragment, on the same host-thread schedule.
fn run_grid_per_config(
    stream: &FragmentStream,
    configs: &[MachineConfig],
    threads: usize,
) -> Vec<Option<sortmid::RunReport>> {
    let mut out: Vec<Option<sortmid::RunReport>> = vec![None; configs.len()];
    let chunk = configs.len().div_ceil(threads.max(1));
    std::thread::scope(|scope| {
        for (slots, cfgs) in out.chunks_mut(chunk).zip(configs.chunks(chunk)) {
            scope.spawn(move || {
                for (slot, config) in slots.iter_mut().zip(cfgs) {
                    *slot = Some(Machine::new(config.clone()).run(stream));
                }
            });
        }
    });
    out
}

fn main() {
    let s = stream(Benchmark::Quake);
    let configs = reference_grid();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    eprintln!(
        "sweep bench: {} configs, {} fragments, {} host threads",
        configs.len(),
        s.fragment_count(),
        threads
    );

    let mut suite = Suite::new("sweep");
    let grid_work = s.fragment_count() * configs.len() as u64;
    suite.bench_with_elements("grid/shared-plan", grid_work, || {
        black_box(run_sweep_with_threads(&s, &configs, threads))
    });
    suite.bench_with_elements("grid/per-config", grid_work, || {
        black_box(run_grid_per_config(&s, &configs, threads))
    });

    let results = suite.results();
    let mut plan_median_ns = 0;
    if let [plan, direct] = results {
        let speedup = direct.median_ns as f64 / plan.median_ns.max(1) as f64;
        plan_median_ns = plan.median_ns;
        println!(
            "\nsweep grid ({} configs): shared-plan {:.1} ms vs per-config {:.1} ms -> {speedup:.2}x",
            configs.len(),
            plan.median_ns as f64 / 1e6,
            direct.median_ns as f64 / 1e6,
        );
    }

    // One more (untimed) sweep to attach per-config cycle breakdowns.
    let reports = run_sweep_with_threads(&s, &configs, threads);
    suite.finish_with([
        (
            "cycle_breakdowns".to_string(),
            Json::arr(reports.iter().map(config_breakdown)),
        ),
        (
            "reference".to_string(),
            Json::obj([
                ("id", Json::str("grid/shared-plan")),
                ("pre_pr_median_ns", Json::U64(PRE_TRACING_MEDIAN_NS)),
                ("median_ns", Json::U64(plan_median_ns)),
                (
                    "ratio",
                    Json::F64(plan_median_ns as f64 / PRE_TRACING_MEDIAN_NS as f64),
                ),
            ]),
        ),
    ]);
}

/// One config's entry in `cycle_breakdowns`: the config summary, the
/// machine time, and per node the compact
/// `[setup, busy, bus_stall, starved, idle, finish]` array (the first five
/// sum to the sixth).
fn config_breakdown(report: &RunReport) -> Json {
    Json::obj([
        ("config", Json::str(report.summary())),
        ("total_cycles", Json::U64(report.total_cycles())),
        (
            "nodes",
            Json::arr(report.nodes().iter().map(|n| {
                let b = n.cycle_breakdown();
                b.verify(n.finish).expect("cycle identity must hold");
                let mut row: Vec<Json> = b.as_array().iter().map(|&c| Json::U64(c)).collect();
                row.push(Json::U64(n.finish));
                Json::Arr(row)
            })),
        ),
    ])
}
