//! ASCII line charts for the experiment harness.
//!
//! The paper's figures are line plots (speedup vs processors, ratio vs
//! processors); the harness renders the same series as terminal charts so
//! a reader can see the *shape* — crossings, optima, collapses — without
//! exporting CSV to a plotting tool.

use std::fmt::Write as _;

/// One named data series.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points, in ascending `x` order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }
}

/// A fixed-size character-grid line chart.
///
/// # Examples
///
/// ```
/// use sortmid_util::chart::{Chart, Series};
///
/// let chart = Chart::new(40, 10)
///     .series(Series::new("linear", (0..10).map(|i| (i as f64, i as f64)).collect()));
/// let text = chart.render();
/// assert!(text.contains("linear"));
/// ```
#[derive(Debug, Clone)]
pub struct Chart {
    width: usize,
    height: usize,
    series: Vec<Series>,
    y_zero: bool,
}

/// Glyphs assigned to series, in order.
const GLYPHS: [char; 8] = ['o', '+', 'x', '*', '#', '@', '%', '&'];

impl Chart {
    /// Creates an empty chart with a plotting area of `width × height`
    /// characters.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is below 2.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width >= 2 && height >= 2, "chart area too small");
        Chart {
            width,
            height,
            series: Vec::new(),
            y_zero: true,
        }
    }

    /// Adds a series (chainable).
    pub fn series(mut self, series: Series) -> Self {
        self.series.push(series);
        self
    }

    /// Lets the y axis start at the data minimum instead of zero.
    pub fn without_zero_baseline(mut self) -> Self {
        self.y_zero = false;
        self
    }

    /// Renders the chart with axes and a legend.
    pub fn render(&self) -> String {
        let mut xs: Vec<f64> = Vec::new();
        let mut ys: Vec<f64> = Vec::new();
        for s in &self.series {
            for &(x, y) in &s.points {
                if x.is_finite() && y.is_finite() {
                    xs.push(x);
                    ys.push(y);
                }
            }
        }
        if xs.is_empty() {
            return "(empty chart)\n".to_string();
        }
        let fmin = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
        let fmax = |v: &[f64]| v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let (x0, x1) = (fmin(&xs), fmax(&xs));
        let mut y0 = fmin(&ys);
        let y1 = fmax(&ys);
        if self.y_zero {
            y0 = y0.min(0.0);
        }
        let xspan = (x1 - x0).max(1e-12);
        let yspan = (y1 - y0).max(1e-12);

        let mut grid = vec![vec![' '; self.width]; self.height];
        for (si, s) in self.series.iter().enumerate() {
            let glyph = GLYPHS[si % GLYPHS.len()];
            for &(x, y) in &s.points {
                if !(x.is_finite() && y.is_finite()) {
                    continue;
                }
                let cx = (((x - x0) / xspan) * (self.width - 1) as f64).round() as usize;
                let cy = (((y - y0) / yspan) * (self.height - 1) as f64).round() as usize;
                let row = self.height - 1 - cy;
                grid[row][cx] = glyph;
            }
        }

        let mut out = String::new();
        let _ = writeln!(out, "{y1:>9.2} ┤{}", String::from_iter(&grid[0]));
        for row in &grid[1..self.height - 1] {
            let _ = writeln!(out, "{:>9} │{}", "", String::from_iter(row));
        }
        let _ = writeln!(
            out,
            "{y0:>9.2} ┤{}",
            String::from_iter(&grid[self.height - 1])
        );
        let _ = writeln!(
            out,
            "{:>10}└{}",
            "",
            "─".repeat(self.width)
        );
        let _ = writeln!(out, "{:>11}{x0:<.0}{:>pad$}{x1:<.0}", "", "", pad = self.width.saturating_sub(4));
        for (si, s) in self.series.iter().enumerate() {
            let _ = writeln!(out, "{:>11}{} {}", "", GLYPHS[si % GLYPHS.len()], s.label);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_points_and_legend() {
        let chart = Chart::new(20, 6).series(Series::new(
            "up",
            vec![(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)],
        ));
        let text = chart.render();
        assert!(text.contains('o'));
        assert!(text.contains("up"));
        // Top label is the max (2.00), bottom the baseline (0.00).
        assert!(text.contains("2.00"));
        assert!(text.contains("0.00"));
    }

    #[test]
    fn multiple_series_get_distinct_glyphs() {
        let chart = Chart::new(20, 6)
            .series(Series::new("a", vec![(0.0, 1.0), (2.0, 1.0)]))
            .series(Series::new("b", vec![(0.0, 2.0), (2.0, 2.0)]));
        let text = chart.render();
        assert!(text.contains('o'));
        assert!(text.contains('+'));
    }

    #[test]
    fn empty_chart_is_graceful() {
        let chart = Chart::new(10, 4);
        assert_eq!(chart.render(), "(empty chart)\n");
        let nan_only = Chart::new(10, 4).series(Series::new("nan", vec![(f64::NAN, f64::NAN)]));
        assert_eq!(nan_only.render(), "(empty chart)\n");
    }

    #[test]
    fn baseline_toggle_changes_range() {
        let points = vec![(0.0, 10.0), (1.0, 12.0)];
        let zero = Chart::new(10, 4).series(Series::new("s", points.clone())).render();
        let tight = Chart::new(10, 4)
            .series(Series::new("s", points))
            .without_zero_baseline()
            .render();
        assert!(zero.contains("0.00"));
        assert!(tight.contains("10.00"));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_chart_panics() {
        Chart::new(1, 1);
    }
}
