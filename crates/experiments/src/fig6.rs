//! Figure 6 — impact of the distribution scheme on texel locality.
//!
//! Texel-to-fragment ratio (texels fetched from external memory per
//! fragment) vs processor count, with 16 KB caches and **infinite-bandwidth
//! buses** (the paper: "we have simulated our architecture with 16KB caches
//! and infinite bandwidth buses; we have then measured the average bandwidth
//! required"). One column per block width / SLI group size.
//!
//! The paper plots `32massive11255` and `teapot.full` and notes the other
//! scenes behave like one of the two; we emit every scene.

use crate::common::{machine, PreparedScene, BLOCK_WIDTHS, PROC_CURVE, SLI_LINES};
use sortmid::{CacheKind, Distribution, Machine, MissClassCounts, SpatialCollector};
use sortmid_cache::CacheGeometry;
use sortmid_scene::Benchmark;
use sortmid_util::table::{fmt_f, Table};
use std::path::Path;

/// Texel-to-fragment ratio of one scene vs processor count; one column per
/// parameter value.
pub fn locality_table(scene: &PreparedScene, sli: bool) -> Table {
    let params: &[u32] = if sli { &SLI_LINES } else { &BLOCK_WIDTHS };
    let mut header = vec!["procs".to_string()];
    header.extend(params.iter().map(|p| p.to_string()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(&header_refs);
    for &procs in &PROC_CURVE {
        let mut row = vec![procs.to_string()];
        for &p in params {
            let dist = if sli {
                Distribution::sli(p)
            } else {
                Distribution::block(p)
            };
            let report =
                Machine::new(machine(procs, dist, CacheKind::PaperL1, None, 10_000)).run(&scene.stream);
            row.push(fmt_f(report.texel_to_fragment(), 3));
        }
        t.row_owned(row);
    }
    t
}

/// Runs Figure 6 for every benchmark at `scale`: returns
/// `(scene name, block table, SLI table)` triples.
pub fn run(scale: f64) -> Vec<(String, Table, Table)> {
    PreparedScene::all(scale)
        .iter()
        .map(|s| {
            (
                s.benchmark.name().to_string(),
                locality_table(s, false),
                locality_table(s, true),
            )
        })
        .collect()
}

/// Spatial companion to Figure 6: texel-locality maps of Quake on a
/// 64-processor machine with the classifying 16 KB cache, block-16 vs
/// SLI-4. Writes `fig6_<dist>_lines.ppm` (texture lines fetched per tile)
/// and `fig6_<dist>_missclass.ppm` (RGB = conflict/capacity/compulsory)
/// into `out`, and returns one `(label, texel/fragment, class totals)`
/// triple per distribution.
///
/// # Panics
///
/// Panics when a map cannot be written into `out`.
pub fn heatmaps(scale: f64, out: &Path) -> Vec<(String, f64, MissClassCounts)> {
    let scene = PreparedScene::new(Benchmark::Quake, scale);
    let screen = scene.stream.screen();
    let mut rows = Vec::new();
    for (label, dist) in [
        ("block16", Distribution::block(16)),
        ("sli4", Distribution::sli(4)),
    ] {
        let m = Machine::new(machine(
            64,
            dist,
            CacheKind::Classifying(CacheGeometry::paper_l1()),
            None,
            10_000,
        ));
        let mut col = SpatialCollector::new(
            screen.width().max(1),
            screen.height().max(1),
            8,
            64,
        );
        let report = m.run_traced(&scene.stream, &mut col);
        let grid = col.grid();
        grid.render(4, |t| t.lines_fetched as f64)
            .write_ppm(out.join(format!("fig6_{label}_lines.ppm")))
            .expect("write line-fetch map");
        let class_max = grid
            .cells()
            .iter()
            .map(|t| t.misses.compulsory.max(t.misses.capacity).max(t.misses.conflict))
            .max()
            .unwrap_or(0)
            .max(1) as f64;
        grid.render_rgb(4, |t| {
            let ch = |v: u64| ((v as f64 / class_max).sqrt() * 255.0).round() as u8;
            [ch(t.misses.conflict), ch(t.misses.capacity), ch(t.misses.compulsory)]
        })
        .write_ppm(out.join(format!("fig6_{label}_missclass.ppm")))
        .expect("write miss-class map");
        let mut totals = MissClassCounts::default();
        for m in col.node_misses() {
            totals.merge(m);
        }
        rows.push((label.to_string(), report.texel_to_fragment(), totals));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(table: &Table, row: usize, col: usize) -> f64 {
        table
            .to_csv()
            .lines()
            .nth(row + 1)
            .unwrap()
            .split(',')
            .nth(col)
            .unwrap()
            .parse()
            .unwrap()
    }

    #[test]
    fn ratio_grows_as_blocks_shrink() {
        let s = PreparedScene::new(Benchmark::Massive32_11255, 0.12);
        let t = locality_table(&s, false);
        // Row for 16 procs (PROC_CURVE index 4), block-4 vs block-128.
        let small = col(&t, 4, 1);
        let big = col(&t, 4, BLOCK_WIDTHS.len());
        assert!(
            small > big,
            "block-4 ratio {small} should exceed block-128 {big}"
        );
    }

    #[test]
    fn ratio_grows_with_processors_for_small_groups() {
        let s = PreparedScene::new(Benchmark::TeapotFull, 0.12);
        let t = locality_table(&s, true);
        // SLI-2 column (index 2): 1 proc vs 64 procs.
        let one = col(&t, 0, 2);
        let many = col(&t, PROC_CURVE.len() - 1, 2);
        assert!(
            many > one,
            "SLI-2 at 64p ({many}) should fetch more than at 1p ({one})"
        );
    }

    #[test]
    fn single_processor_ratio_is_parameter_independent() {
        let s = PreparedScene::new(Benchmark::Quake, 0.1);
        let t = locality_table(&s, false);
        let first = col(&t, 0, 1);
        for c in 2..=BLOCK_WIDTHS.len() {
            let v = col(&t, 0, c);
            assert!((v - first).abs() < 1e-6, "1-proc ratios must match: {v} vs {first}");
        }
    }
}
