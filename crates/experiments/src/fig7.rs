//! Figure 7 — speedups of the full machine.
//!
//! Six panels: processor counts {4, 16, 64} × {block, SLI}, every
//! benchmark, every block width / group size, with 16 KB caches, a bounded
//! bus (1 texel/pixel in Figure 7; 2 texels/pixel in the companion report
//! \[15\]) and the near-ideal 10 000-entry triangle buffer. Speedup is against
//! the single-processor machine with the same cache and bus.

use crate::common::{machine, short_name, PreparedScene, BLOCK_WIDTHS, PROC_PANELS, SLI_LINES};
use sortmid::{CacheKind, Distribution, Machine, RunReport};
use sortmid_util::table::{fmt_f, Table};

/// One panel: speedups of every benchmark (rows) × parameter (columns).
pub fn speedup_panel(scenes: &[PreparedScene], procs: u32, sli: bool, bus_ratio: f64) -> Table {
    let params: &[u32] = if sli { &SLI_LINES } else { &BLOCK_WIDTHS };
    let mut header = vec!["benchmark".to_string()];
    header.extend(params.iter().map(|p| p.to_string()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(&header_refs);
    for s in scenes {
        let baseline = baseline(s, bus_ratio);
        let mut row = vec![short_name(s.benchmark).to_string()];
        for &p in params {
            let dist = if sli {
                Distribution::sli(p)
            } else {
                Distribution::block(p)
            };
            let report = Machine::new(machine(
                procs,
                dist,
                CacheKind::PaperL1,
                Some(bus_ratio),
                10_000,
            ))
            .run(&s.stream);
            row.push(fmt_f(report.speedup_vs(&baseline), 2));
        }
        t.row_owned(row);
    }
    t
}

/// The single-processor reference run for a scene at a bus ratio.
pub fn baseline(scene: &PreparedScene, bus_ratio: f64) -> RunReport {
    Machine::new(machine(
        1,
        Distribution::block(16),
        CacheKind::PaperL1,
        Some(bus_ratio),
        10_000,
    ))
    .run(&scene.stream)
}

/// Runs all six panels at `scale` with the given bus ratio; returns
/// `(panel title, table)` pairs in the paper's layout order.
pub fn run(scale: f64, bus_ratio: f64) -> Vec<(String, Table)> {
    let scenes = PreparedScene::all(scale);
    let mut out = Vec::new();
    for sli in [false, true] {
        for &procs in &PROC_PANELS {
            let title = format!(
                "{procs} processors / {}  (bus {bus_ratio} texel/pixel)",
                if sli { "SLI" } else { "block" }
            );
            out.push((title, speedup_panel(&scenes, procs, sli, bus_ratio)));
        }
    }
    out
}

/// Finds, for each benchmark row, the parameter with the best speedup —
/// the paper's headline "best block size" analysis.
pub fn best_params(panel: &Table) -> Vec<(String, u32, f64)> {
    let csv = panel.to_csv();
    let mut lines = csv.lines();
    let header: Vec<u32> = lines
        .next()
        .expect("header")
        .split(',')
        .skip(1)
        .map(|c| c.parse().expect("numeric param"))
        .collect();
    let mut out = Vec::new();
    for line in lines {
        let mut cells = line.split(',');
        let name = cells.next().expect("benchmark").to_string();
        let speedups: Vec<f64> = cells.map(|c| c.parse().expect("numeric speedup")).collect();
        let (idx, best) = speedups
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("non-empty row");
        out.push((name, header[idx], *best));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sortmid_scene::Benchmark;

    #[test]
    fn panel_has_all_scenes_and_reasonable_speedups() {
        let scenes = vec![
            PreparedScene::new(Benchmark::Quake, 0.1),
            PreparedScene::new(Benchmark::Massive32_11255, 0.1),
        ];
        let t = speedup_panel(&scenes, 4, false, 1.0);
        assert_eq!(t.len(), 2);
        for (_, p, best) in best_params(&t) {
            assert!(best > 1.0 && best <= 4.2, "best {best} at {p}");
        }
    }

    #[test]
    fn best_params_picks_the_max() {
        let mut t = Table::new(&["benchmark", "4", "16", "64"]);
        t.row(&["x", "1.0", "3.5", "2.0"]);
        let best = best_params(&t);
        assert_eq!(best, vec![("x".to_string(), 16, 3.5)]);
    }

    #[test]
    fn mid_widths_beat_extremes_at_16_procs() {
        // The compromise effect: width 16 should beat width 128 (load
        // balance) on a clustered scene at 16 processors.
        let scenes = vec![PreparedScene::new(Benchmark::Massive32_11255, 0.12)];
        let t = speedup_panel(&scenes, 16, false, 1.0);
        let csv = t.to_csv();
        let row: Vec<f64> = csv
            .lines()
            .nth(1)
            .unwrap()
            .split(',')
            .skip(1)
            .map(|c| c.parse().unwrap())
            .collect();
        // BLOCK_WIDTHS = [4, 8, 16, 32, 64, 128]
        let w16 = row[2];
        let w128 = row[5];
        assert!(w16 > w128, "width 16 ({w16}) should beat width 128 ({w128})");
    }
}
