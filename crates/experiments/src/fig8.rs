//! Figure 8 — speedup vs block width and triangle-buffer size.
//!
//! `truc640`, 64 processors, block distribution. Two panels: a perfect
//! cache, and a 16 KB cache with a 2 texel/pixel bus. Rows are block
//! widths, columns are triangle-buffer sizes. The paper's findings: ~500
//! entries are needed to match the ideal buffer, small buffers shrink both
//! the peak speedup and the best width, and the buffer matters *more* with
//! a real cache.

use crate::common::{machine, PreparedScene, BLOCK_WIDTHS_FULL, BUFFER_SIZES};
use sortmid::{run_sweep, CacheKind, Distribution, Machine, SweepGrid};
use sortmid_scene::Benchmark;
use sortmid_util::table::{fmt_f, Table};

/// One panel: speedup for every block width (rows) × buffer size (columns).
///
/// Every row fixes `(procs, width)` and only varies the buffer, so the grid
/// is swept with [`run_sweep`]: each width's routing plan is built once and
/// shared across all buffer sizes.
pub fn buffer_panel(scene: &PreparedScene, procs: u32, cache: CacheKind, bus_ratio: f64) -> Table {
    let mut header = vec!["width".to_string()];
    header.extend(BUFFER_SIZES.iter().map(|b| b.to_string()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(&header_refs);

    let baseline = Machine::new(machine(
        1,
        Distribution::block(16),
        cache,
        Some(bus_ratio),
        10_000,
    ))
    .run(&scene.stream);

    let configs = SweepGrid::new()
        .processors([procs])
        .distributions(BLOCK_WIDTHS_FULL.iter().map(|&w| Distribution::block(w)))
        .caches([cache])
        .bus_ratios([Some(bus_ratio)])
        .buffers(BUFFER_SIZES)
        .build();
    let reports = run_sweep(&scene.stream, &configs);

    // Row-major grid order: distributions outermost, buffers innermost.
    for (width, row_reports) in BLOCK_WIDTHS_FULL.iter().zip(reports.chunks(BUFFER_SIZES.len())) {
        let mut row = vec![width.to_string()];
        for report in row_reports {
            row.push(fmt_f(report.speedup_vs(&baseline), 2));
        }
        t.row_owned(row);
    }
    t
}

/// Runs both Figure 8 panels at `scale`: `(perfect-cache, 16KB + 2x bus)`.
pub fn run(scale: f64) -> (Table, Table) {
    let scene = PreparedScene::new(Benchmark::Truc640, scale);
    let perfect = buffer_panel(&scene, 64, CacheKind::Perfect, 2.0);
    let cached = buffer_panel(&scene, 64, CacheKind::PaperL1, 2.0);
    (perfect, cached)
}

/// The cycle-accounting view behind Figure 8: for every block width (rows)
/// × buffer size (columns), the percentage of machine cycles the nodes
/// spent **FIFO-starved** (summed over nodes, relative to summed finish
/// times). This is the mechanism of the figure made visible: small buffers
/// block the in-order geometry stage on the fullest FIFO, so other nodes
/// starve — and the starved share shrinks as the buffer grows, vanishing
/// near the ~500-entry point where Figure 8's speedups saturate.
pub fn starvation_panel(
    scene: &PreparedScene,
    procs: u32,
    cache: CacheKind,
    bus_ratio: f64,
) -> Table {
    let mut header = vec!["width".to_string()];
    header.extend(BUFFER_SIZES.iter().map(|b| b.to_string()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(&header_refs);

    let configs = SweepGrid::new()
        .processors([procs])
        .distributions(BLOCK_WIDTHS_FULL.iter().map(|&w| Distribution::block(w)))
        .caches([cache])
        .bus_ratios([Some(bus_ratio)])
        .buffers(BUFFER_SIZES)
        .build();
    let reports = run_sweep(&scene.stream, &configs);

    for (width, row_reports) in BLOCK_WIDTHS_FULL.iter().zip(reports.chunks(BUFFER_SIZES.len())) {
        let mut row = vec![width.to_string()];
        for report in row_reports {
            let breakdown = report.aggregate_breakdown();
            let total = breakdown.total().max(1);
            row.push(fmt_f(breakdown.starved as f64 * 100.0 / total as f64, 1));
        }
        t.row_owned(row);
    }
    t
}

/// Runs the starvation view of both Figure 8 panels at `scale`.
pub fn run_trace(scale: f64) -> (Table, Table) {
    let scene = PreparedScene::new(Benchmark::Truc640, scale);
    let perfect = starvation_panel(&scene, 64, CacheKind::Perfect, 2.0);
    let cached = starvation_panel(&scene, 64, CacheKind::PaperL1, 2.0);
    (perfect, cached)
}

/// For each buffer size (column), the best speedup over widths and the
/// width achieving it — the "best width shrinks with the buffer" effect.
pub fn best_width_per_buffer(panel: &Table) -> Vec<(usize, u32, f64)> {
    let csv = panel.to_csv();
    let mut lines = csv.lines();
    let buffers: Vec<usize> = lines
        .next()
        .expect("header")
        .split(',')
        .skip(1)
        .map(|c| c.parse().expect("numeric buffer"))
        .collect();
    let rows: Vec<(u32, Vec<f64>)> = lines
        .map(|l| {
            let mut cells = l.split(',');
            let width: u32 = cells.next().unwrap().parse().unwrap();
            (width, cells.map(|c| c.parse().unwrap()).collect())
        })
        .collect();
    buffers
        .iter()
        .enumerate()
        .map(|(i, &buffer)| {
            let (width, best) = rows
                .iter()
                .map(|(w, speedups)| (*w, speedups[i]))
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
                .expect("non-empty");
            (buffer, width, best)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigger_buffers_never_hurt() {
        let scene = PreparedScene::new(Benchmark::Truc640, 0.1);
        let t = buffer_panel(&scene, 16, CacheKind::Perfect, 2.0);
        let csv = t.to_csv();
        for line in csv.lines().skip(1) {
            let cells: Vec<f64> = line.split(',').skip(1).map(|c| c.parse().unwrap()).collect();
            for w in cells.windows(2) {
                assert!(
                    w[1] >= w[0] - 0.02,
                    "speedup should not drop with a bigger buffer: {cells:?}"
                );
            }
        }
    }

    #[test]
    fn best_width_extraction() {
        let mut t = Table::new(&["width", "1", "500"]);
        t.row(&["2", "1.5", "2.0"]);
        t.row(&["16", "1.0", "5.0"]);
        let best = best_width_per_buffer(&t);
        assert_eq!(best, vec![(1, 2, 1.5), (500, 16, 5.0)]);
    }

    #[test]
    fn starvation_shrinks_with_buffer() {
        let scene = PreparedScene::new(Benchmark::Truc640, 0.1);
        let t = starvation_panel(&scene, 16, CacheKind::PaperL1, 2.0);
        let csv = t.to_csv();
        for line in csv.lines().skip(1) {
            let cells: Vec<f64> = line.split(',').skip(1).map(|c| c.parse().unwrap()).collect();
            let (first, last) = (cells[0], *cells.last().unwrap());
            assert!(
                last <= first,
                "starved% should not grow with the buffer: {cells:?}"
            );
        }
    }

    #[test]
    fn tiny_buffer_reduces_peak() {
        let scene = PreparedScene::new(Benchmark::Truc640, 0.1);
        let t = buffer_panel(&scene, 16, CacheKind::PaperL1, 2.0);
        let best = best_width_per_buffer(&t);
        let tiny = best.first().unwrap().2;
        let ideal = best.last().unwrap().2;
        assert!(
            tiny < ideal,
            "1-entry buffer peak {tiny} should trail ideal {ideal}"
        );
    }
}
