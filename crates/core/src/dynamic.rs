//! Dynamic tile adjustment — the paper's future-work extension.
//!
//! The paper concludes that "a scalable machine using SLI would have a good
//! performance only if it is able to change dynamically the size of the
//! block". This module builds that machine: given a measured per-scanline
//! work profile (from a previous frame, in a real system), it chooses
//! scanline-group boundaries that equalise pixel work instead of line
//! count, yielding a [`Distribution::DynamicSli`].

use crate::distribution::Distribution;
use sortmid_raster::FragmentStream;

/// Per-scanline fragment counts of a stream.
pub fn scanline_profile(stream: &FragmentStream) -> Vec<u64> {
    let height = stream.screen().height() as usize;
    let mut profile = vec![0u64; height];
    for frag in stream.fragments() {
        profile[frag.y as usize] += 1;
    }
    profile
}

/// Builds a dynamic SLI distribution with `groups` groups of (work-)equal
/// size from a scanline work profile.
///
/// Group boundaries are chosen greedily so that each group carries roughly
/// `total / groups` fragments. Boundaries always advance at least one line,
/// so at most `height` groups are possible.
///
/// # Panics
///
/// Panics if `groups` is zero or the profile is empty.
///
/// # Examples
///
/// ```
/// use sortmid::dynamic::{balanced_sli, scanline_profile};
/// use sortmid_scene::{Benchmark, SceneBuilder};
///
/// let stream = SceneBuilder::benchmark(Benchmark::Room3).scale(0.1).build().rasterize();
/// let profile = scanline_profile(&stream);
/// let dist = balanced_sli(&profile, 16);
/// assert_eq!(dist.label(), "dyn-sli");
/// ```
pub fn balanced_sli(profile: &[u64], groups: u32) -> Distribution {
    assert!(groups > 0, "need at least one group");
    assert!(!profile.is_empty(), "profile must cover the screen");
    let total: u64 = profile.iter().sum();
    let per_group = (total as f64 / groups as f64).max(1.0);
    let mut boundaries: Vec<u32> = Vec::with_capacity(groups as usize);
    let mut acc = 0.0;
    for (y, &w) in profile.iter().enumerate() {
        acc += w as f64;
        // Never consume the last line here: the closing boundary below must
        // stay strictly greater than every greedy one.
        if acc >= per_group && boundaries.len() + 1 < groups as usize && y + 1 < profile.len() {
            boundaries.push(y as u32 + 1);
            acc = 0.0;
        }
    }
    boundaries.push(profile.len() as u32);
    Distribution::dynamic_sli(boundaries)
}

/// Convenience: profile `stream` and build a balanced dynamic SLI with
/// `groups_per_proc * procs` groups (more groups = finer interleave).
pub fn balanced_sli_for(stream: &FragmentStream, procs: u32, groups_per_proc: u32) -> Distribution {
    let profile = scanline_profile(stream);
    balanced_sli(&profile, (procs * groups_per_proc).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::work::pixel_imbalance;
    use sortmid_scene::{Benchmark, SceneBuilder};

    fn stream() -> FragmentStream {
        SceneBuilder::benchmark(Benchmark::Room3)
            .scale(0.12)
            .build()
            .rasterize()
    }

    #[test]
    fn profile_sums_to_fragments() {
        let s = stream();
        let p = scanline_profile(&s);
        assert_eq!(p.len(), s.screen().height() as usize);
        assert_eq!(p.iter().sum::<u64>(), s.fragment_count());
    }

    #[test]
    fn balanced_boundaries_are_valid_and_cover() {
        let s = stream();
        let profile = scanline_profile(&s);
        let d = balanced_sli(&profile, 8);
        if let Distribution::DynamicSli { boundaries } = &d {
            assert!(boundaries.len() <= 8);
            assert_eq!(*boundaries.last().unwrap(), s.screen().height());
            assert!(boundaries.windows(2).all(|w| w[0] < w[1]));
        } else {
            panic!("expected dynamic SLI");
        }
    }

    #[test]
    fn dynamic_beats_static_sli_on_clustered_scenes() {
        // The whole point of the extension: with few, large groups, static
        // SLI suffers from clustering that work-balanced boundaries fix.
        let s = stream();
        let procs = 8;
        let height = s.screen().height();
        let static_lines = (height / procs).max(1); // one group per proc
        let static_imb = pixel_imbalance(&s, &Distribution::sli(static_lines), procs);
        let dynamic = balanced_sli_for(&s, procs, 1);
        let dynamic_imb = pixel_imbalance(&s, &dynamic, procs);
        assert!(
            dynamic_imb < static_imb,
            "dynamic {dynamic_imb:.1}% should beat static {static_imb:.1}%"
        );
    }

    #[test]
    fn boundaries_stay_strictly_increasing_under_skewed_profiles() {
        // A profile whose mass sits entirely on the last line used to make
        // the greedy pass emit the closing boundary twice.
        let mut profile = vec![0u64; 50];
        profile[49] = 1000;
        let d = balanced_sli(&profile, 8);
        if let Distribution::DynamicSli { boundaries } = &d {
            assert!(boundaries.windows(2).all(|w| w[0] < w[1]));
            assert_eq!(*boundaries.last().unwrap(), 50);
        } else {
            panic!("expected dynamic SLI");
        }
        // Mass on the first line: one greedy boundary right after it.
        let mut front = vec![0u64; 50];
        front[0] = 1000;
        let d = balanced_sli(&front, 4);
        if let Distribution::DynamicSli { boundaries } = &d {
            assert!(boundaries.windows(2).all(|w| w[0] < w[1]));
        } else {
            panic!("expected dynamic SLI");
        }
    }

    #[test]
    fn uniform_profile_gives_even_groups() {
        let profile = vec![10u64; 100];
        let d = balanced_sli(&profile, 4);
        if let Distribution::DynamicSli { boundaries } = &d {
            assert_eq!(boundaries.as_slice(), &[25, 50, 75, 100]);
        } else {
            panic!("expected dynamic SLI");
        }
    }

    #[test]
    #[should_panic(expected = "at least one group")]
    fn zero_groups_panics() {
        balanced_sli(&[1, 2, 3], 0);
    }
}
