//! Sweep bench: end-to-end wall time of a Figure-5-shaped config grid.
//!
//! Every figure in the paper is a sweep of dozens of machine configurations
//! over one fragment stream. This bench times the whole grid — routing,
//! partitioning and simulation for every config — so the perf trajectory
//! captures sweep throughput, not just single-machine speed.
//!
//! Two series are emitted into `BENCH_sweep.json`:
//!
//! * `grid/shared-plan` — [`run_sweep_with_threads`]: configs grouped by
//!   `(distribution, processors)`, one shared [`RoutingPlan`] per group;
//! * `grid/per-config` — the pre-optimization baseline: every config
//!   re-derives per-fragment ownership and re-partitions the stream from
//!   scratch (what `run_sweep` did before routing plans existed).
//!
//! The ratio of the two medians is the plan-reuse speedup on this grid.

use sortmid::{run_sweep_with_threads, CacheKind, Distribution, Machine, MachineConfig, SweepGrid};
use sortmid_bench::stream;
use sortmid_devharness::Suite;
use sortmid_raster::FragmentStream;
use sortmid_scene::Benchmark;
use std::hint::black_box;

/// The reference grid: the shape of the Figure 5/7 sweeps (processor counts
/// × distributions) with the cache and buffer axes the ablations add.
fn reference_grid() -> Vec<MachineConfig> {
    SweepGrid::new()
        .processors([4, 16, 64])
        .distributions([
            Distribution::block(8),
            Distribution::block(16),
            Distribution::block(32),
            Distribution::sli(1),
            Distribution::sli(4),
        ])
        .caches([CacheKind::Perfect, CacheKind::PaperL1])
        .buffers([100, 10_000])
        .build()
}

/// The pre-plan sweep: every config runs [`Machine::run`] independently,
/// re-deriving ownership per fragment, on the same host-thread schedule.
fn run_grid_per_config(
    stream: &FragmentStream,
    configs: &[MachineConfig],
    threads: usize,
) -> Vec<Option<sortmid::RunReport>> {
    let mut out: Vec<Option<sortmid::RunReport>> = vec![None; configs.len()];
    let chunk = configs.len().div_ceil(threads.max(1));
    std::thread::scope(|scope| {
        for (slots, cfgs) in out.chunks_mut(chunk).zip(configs.chunks(chunk)) {
            scope.spawn(move || {
                for (slot, config) in slots.iter_mut().zip(cfgs) {
                    *slot = Some(Machine::new(config.clone()).run(stream));
                }
            });
        }
    });
    out
}

fn main() {
    let s = stream(Benchmark::Quake);
    let configs = reference_grid();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    eprintln!(
        "sweep bench: {} configs, {} fragments, {} host threads",
        configs.len(),
        s.fragment_count(),
        threads
    );

    let mut suite = Suite::new("sweep");
    let grid_work = s.fragment_count() * configs.len() as u64;
    suite.bench_with_elements("grid/shared-plan", grid_work, || {
        black_box(run_sweep_with_threads(&s, &configs, threads))
    });
    suite.bench_with_elements("grid/per-config", grid_work, || {
        black_box(run_grid_per_config(&s, &configs, threads))
    });

    let results = suite.results();
    if let [plan, direct] = results {
        let speedup = direct.median_ns as f64 / plan.median_ns.max(1) as f64;
        println!(
            "\nsweep grid ({} configs): shared-plan {:.1} ms vs per-config {:.1} ms -> {speedup:.2}x",
            configs.len(),
            plan.median_ns as f64 / 1e6,
            direct.median_ns as f64 / 1e6,
        );
    }
    suite.finish();
}
