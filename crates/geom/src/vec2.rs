//! A minimal 2-D vector type.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A 2-D vector or point in screen space (units: pixels) or texture space
/// (units: texels).
///
/// # Examples
///
/// ```
/// use sortmid_geom::Vec2;
///
/// let a = Vec2::new(3.0, 4.0);
/// assert_eq!(a.length(), 5.0);
/// assert_eq!(a + Vec2::new(1.0, 1.0), Vec2::new(4.0, 5.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// Horizontal component.
    pub x: f32,
    /// Vertical component.
    pub y: f32,
}

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from components.
    pub const fn new(x: f32, y: f32) -> Self {
        Vec2 { x, y }
    }

    /// Dot product.
    pub fn dot(self, other: Vec2) -> f32 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (z-component of the 3-D cross product); twice the
    /// signed area of the triangle `(origin, self, other)`.
    pub fn cross(self, other: Vec2) -> f32 {
        self.x * other.y - self.y * other.x
    }

    /// Euclidean length.
    pub fn length(self) -> f32 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean length (no square root).
    pub fn length_squared(self) -> f32 {
        self.dot(self)
    }

    /// Componentwise minimum.
    pub fn min(self, other: Vec2) -> Vec2 {
        Vec2::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Componentwise maximum.
    pub fn max(self, other: Vec2) -> Vec2 {
        Vec2::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    pub fn lerp(self, other: Vec2, t: f32) -> Vec2 {
        self + (other - self) * t
    }

    /// Rotates the vector by `radians` counter-clockwise.
    pub fn rotate(self, radians: f32) -> Vec2 {
        let (s, c) = radians.sin_cos();
        Vec2::new(self.x * c - self.y * s, self.x * s + self.y * c)
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Vec2 {
    fn add_assign(&mut self, rhs: Vec2) {
        *self = *self + rhs;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Vec2 {
    fn sub_assign(&mut self, rhs: Vec2) {
        *self = *self - rhs;
    }
}

impl Mul<f32> for Vec2 {
    type Output = Vec2;
    fn mul(self, rhs: f32) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl Mul<Vec2> for f32 {
    type Output = Vec2;
    fn mul(self, rhs: Vec2) -> Vec2 {
        rhs * self
    }
}

impl Div<f32> for Vec2 {
    type Output = Vec2;
    fn div(self, rhs: f32) -> Vec2 {
        Vec2::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(f32, f32)> for Vec2 {
    fn from((x, y): (f32, f32)) -> Self {
        Vec2::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a + b, Vec2::new(4.0, 1.0));
        assert_eq!(a - b, Vec2::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(2.0 * a, Vec2::new(2.0, 4.0));
        assert_eq!(a / 2.0, Vec2::new(0.5, 1.0));
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
    }

    #[test]
    fn dot_and_cross() {
        let a = Vec2::new(1.0, 0.0);
        let b = Vec2::new(0.0, 1.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), 1.0);
        assert_eq!(b.cross(a), -1.0);
    }

    #[test]
    fn length_and_lerp() {
        assert_eq!(Vec2::new(3.0, 4.0).length(), 5.0);
        assert_eq!(Vec2::new(3.0, 4.0).length_squared(), 25.0);
        let m = Vec2::ZERO.lerp(Vec2::new(10.0, 20.0), 0.5);
        assert_eq!(m, Vec2::new(5.0, 10.0));
    }

    #[test]
    fn rotate_quarter_turn() {
        let r = Vec2::new(1.0, 0.0).rotate(std::f32::consts::FRAC_PI_2);
        assert!((r.x - 0.0).abs() < 1e-6);
        assert!((r.y - 1.0).abs() < 1e-6);
    }

    #[test]
    fn min_max_display_from() {
        let a = Vec2::new(1.0, 5.0);
        let b = Vec2::new(2.0, 3.0);
        assert_eq!(a.min(b), Vec2::new(1.0, 3.0));
        assert_eq!(a.max(b), Vec2::new(2.0, 5.0));
        assert_eq!(Vec2::from((1.0, 2.0)), Vec2::new(1.0, 2.0));
        assert_eq!(format!("{}", Vec2::new(1.0, 2.0)), "(1, 2)");
    }
}
