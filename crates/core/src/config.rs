//! Machine configuration and its builder.

use crate::distribution::Distribution;
use crate::MAX_PROCESSORS;
use sortmid_cache::{
    AnyCache, CacheGeometry, ClassifyingCache, LineCache, PerfectCache, SetAssocCache,
    TwoLevelCache, VictimCache,
};
use sortmid_memsys::{BusConfig, DramConfig, SETUP_CYCLES};
use std::fmt;

/// Which cache model each node carries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CacheKind {
    /// The paper's "perfect cache": always hits (not even compulsory
    /// misses). Isolates load balancing (Figure 5).
    Perfect,
    /// The paper's L1: 16 KB, 4-way, 64-byte lines, LRU.
    PaperL1,
    /// A set-associative cache with explicit geometry.
    SetAssoc(CacheGeometry),
    /// Set-associative with compulsory/capacity/conflict classification
    /// (slower; for analysis runs).
    Classifying(CacheGeometry),
    /// Two-level hierarchy (L1, L2) — the paper's future-work question.
    TwoLevel(CacheGeometry, CacheGeometry),
    /// Set-associative L1 plus a small fully-associative victim buffer of
    /// the given number of lines (the era's cheap associativity).
    Victim(CacheGeometry, u32),
}

impl CacheKind {
    /// Instantiates one node's cache behind a vtable.
    ///
    /// The machine's hot path uses [`CacheKind::build_model`] instead;
    /// this form remains for callers that need type erasure (custom cache
    /// experiments, trait-object plumbing in tests).
    pub fn build(&self) -> Box<dyn LineCache + Send> {
        match self {
            CacheKind::Perfect => Box::new(PerfectCache::new()),
            CacheKind::PaperL1 => Box::new(SetAssocCache::new(CacheGeometry::paper_l1())),
            CacheKind::SetAssoc(g) => Box::new(SetAssocCache::new(*g)),
            CacheKind::Classifying(g) => Box::new(ClassifyingCache::new(*g)),
            CacheKind::TwoLevel(l1, l2) => Box::new(TwoLevelCache::new(*l1, *l2)),
            CacheKind::Victim(g, slots) => Box::new(VictimCache::new(*g, *slots as usize)),
        }
    }

    /// Instantiates one node's cache with concrete enum dispatch, letting
    /// the 8-texel probe loop inline `access_line` instead of paying a
    /// virtual call per texel.
    pub fn build_model(&self) -> AnyCache {
        match self {
            CacheKind::Perfect => AnyCache::from(PerfectCache::new()),
            CacheKind::PaperL1 => AnyCache::from(SetAssocCache::new(CacheGeometry::paper_l1())),
            CacheKind::SetAssoc(g) => AnyCache::from(SetAssocCache::new(*g)),
            CacheKind::Classifying(g) => AnyCache::from(ClassifyingCache::new(*g)),
            CacheKind::TwoLevel(l1, l2) => AnyCache::from(TwoLevelCache::new(*l1, *l2)),
            CacheKind::Victim(g, slots) => AnyCache::from(VictimCache::new(*g, *slots as usize)),
        }
    }
}

impl fmt::Display for CacheKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheKind::Perfect => write!(f, "perfect"),
            CacheKind::PaperL1 => write!(f, "16KB/4-way/64B"),
            CacheKind::SetAssoc(g) => write!(f, "{g}"),
            CacheKind::Classifying(g) => write!(f, "{g}+classify"),
            CacheKind::TwoLevel(l1, l2) => write!(f, "{l1}+{l2}"),
            CacheKind::Victim(g, slots) => write!(f, "{g}+{slots}v"),
        }
    }
}

/// Errors from [`MachineConfigBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// Processor count outside `1..=MAX_PROCESSORS`.
    BadProcessorCount {
        /// The requested count.
        requested: u32,
    },
    /// Triangle buffer of zero entries.
    EmptyTriangleBuffer,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::BadProcessorCount { requested } => write!(
                f,
                "processor count {requested} outside 1..={MAX_PROCESSORS}"
            ),
            ConfigError::EmptyTriangleBuffer => write!(f, "triangle buffer must hold at least one entry"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Full configuration of a machine run.
///
/// Defaults mirror the paper's Section 3 machine: 16 KB 4-way caches,
/// a 1 texel/pixel bus, a 10 000-entry triangle FIFO ("big enough"), a
/// 32-fragment prefetch window and a 25-cycle setup floor.
///
/// # Examples
///
/// ```
/// use sortmid::{Distribution, MachineConfig};
///
/// let c = MachineConfig::builder()
///     .processors(16)
///     .distribution(Distribution::sli(4))
///     .bus_ratio(2.0)
///     .triangle_buffer(500)
///     .build()?;
/// assert_eq!(c.processors, 16);
/// # Ok::<(), sortmid::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Number of texture-mapping nodes.
    pub processors: u32,
    /// Screen distribution scheme.
    pub distribution: Distribution,
    /// Per-node cache model.
    pub cache: CacheKind,
    /// Per-node texture bus bandwidth.
    pub bus: BusConfig,
    /// Triangle FIFO capacity per node.
    pub triangle_buffer: usize,
    /// Fragments the engine may run ahead of outstanding fills
    /// (`None` = unbounded).
    pub prefetch_window: Option<usize>,
    /// Minimum engine occupancy per routed triangle.
    pub setup_cycles: u64,
    /// Minimum cycles between consecutive triangles on the geometry bus
    /// (0 = the paper's ideal geometry stage). Models the Section 2.3
    /// communication cost the paper sets aside.
    pub geometry_cycles_per_triangle: u64,
    /// Optional SDRAM page-mode model for the texture memory (`None` = the
    /// paper's flat bandwidth bus).
    pub dram: Option<DramConfig>,
}

impl MachineConfig {
    /// Starts building a configuration.
    pub fn builder() -> MachineConfigBuilder {
        MachineConfigBuilder::default()
    }

    /// The single-processor reference machine used as the speedup baseline
    /// (same cache and bus as the default parallel machine).
    pub fn uniprocessor() -> MachineConfig {
        MachineConfig::builder()
            .processors(1)
            .build()
            .expect("defaults are valid")
    }

    /// A one-line summary for table headers.
    pub fn summary(&self) -> String {
        format!(
            "{}p/{}/{}/buf{}",
            self.processors,
            self.distribution.label(),
            self.cache,
            self.triangle_buffer
        )
    }
}

impl fmt::Display for MachineConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.summary())
    }
}

/// Builder for [`MachineConfig`].
#[derive(Debug, Clone)]
pub struct MachineConfigBuilder {
    processors: u32,
    distribution: Distribution,
    cache: CacheKind,
    bus: BusConfig,
    triangle_buffer: usize,
    prefetch_window: Option<usize>,
    setup_cycles: u64,
    geometry_cycles_per_triangle: u64,
    dram: Option<DramConfig>,
}

impl Default for MachineConfigBuilder {
    fn default() -> Self {
        MachineConfigBuilder {
            processors: 1,
            distribution: Distribution::block(16),
            cache: CacheKind::PaperL1,
            bus: BusConfig::ratio(1.0),
            triangle_buffer: 10_000,
            prefetch_window: Some(32),
            setup_cycles: SETUP_CYCLES,
            geometry_cycles_per_triangle: 0,
            dram: None,
        }
    }
}

impl MachineConfigBuilder {
    /// Sets the node count.
    pub fn processors(&mut self, processors: u32) -> &mut Self {
        self.processors = processors;
        self
    }

    /// Sets the distribution scheme.
    pub fn distribution(&mut self, distribution: Distribution) -> &mut Self {
        self.distribution = distribution;
        self
    }

    /// Sets the cache model.
    pub fn cache(&mut self, cache: CacheKind) -> &mut Self {
        self.cache = cache;
        self
    }

    /// Sets the bus to a finite texel-per-cycle ratio.
    ///
    /// # Panics
    ///
    /// Panics if the ratio is not positive and finite.
    pub fn bus_ratio(&mut self, texels_per_cycle: f64) -> &mut Self {
        self.bus = BusConfig::ratio(texels_per_cycle);
        self
    }

    /// Sets an infinite-bandwidth bus (locality studies).
    pub fn infinite_bus(&mut self) -> &mut Self {
        self.bus = BusConfig::infinite();
        self
    }

    /// Sets the triangle FIFO capacity.
    pub fn triangle_buffer(&mut self, entries: usize) -> &mut Self {
        self.triangle_buffer = entries;
        self
    }

    /// Sets the prefetch window (`None` = unbounded run-ahead).
    pub fn prefetch_window(&mut self, window: Option<usize>) -> &mut Self {
        self.prefetch_window = window;
        self
    }

    /// Sets the per-triangle setup floor in cycles.
    pub fn setup_cycles(&mut self, cycles: u64) -> &mut Self {
        self.setup_cycles = cycles;
        self
    }

    /// Sets the minimum spacing of triangles on the geometry bus
    /// (0 = ideal geometry stage, the paper's assumption).
    pub fn geometry_cycles_per_triangle(&mut self, cycles: u64) -> &mut Self {
        self.geometry_cycles_per_triangle = cycles;
        self
    }

    /// Enables the SDRAM page-mode memory model.
    pub fn dram(&mut self, dram: Option<DramConfig>) -> &mut Self {
        self.dram = dram;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the processor count is outside
    /// `1..=MAX_PROCESSORS` or the triangle buffer is empty.
    pub fn build(&self) -> Result<MachineConfig, ConfigError> {
        if self.processors == 0 || self.processors > MAX_PROCESSORS {
            return Err(ConfigError::BadProcessorCount {
                requested: self.processors,
            });
        }
        if self.triangle_buffer == 0 {
            return Err(ConfigError::EmptyTriangleBuffer);
        }
        Ok(MachineConfig {
            processors: self.processors,
            distribution: self.distribution.clone(),
            cache: self.cache,
            bus: self.bus,
            triangle_buffer: self.triangle_buffer,
            prefetch_window: self.prefetch_window,
            setup_cycles: self.setup_cycles,
            geometry_cycles_per_triangle: self.geometry_cycles_per_triangle,
            dram: self.dram,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = MachineConfig::uniprocessor();
        assert_eq!(c.processors, 1);
        assert_eq!(c.triangle_buffer, 10_000);
        assert_eq!(c.setup_cycles, 25);
        assert!(matches!(c.cache, CacheKind::PaperL1));
        assert_eq!(c.bus.line_cost(), 16);
        assert_eq!(c.prefetch_window, Some(32));
    }

    #[test]
    fn builder_rejects_bad_counts() {
        assert!(matches!(
            MachineConfig::builder().processors(0).build(),
            Err(ConfigError::BadProcessorCount { requested: 0 })
        ));
        assert!(matches!(
            MachineConfig::builder().processors(500).build(),
            Err(ConfigError::BadProcessorCount { requested: 500 })
        ));
        assert!(matches!(
            MachineConfig::builder().triangle_buffer(0).build(),
            Err(ConfigError::EmptyTriangleBuffer)
        ));
    }

    #[test]
    fn cache_kinds_build() {
        for kind in [
            CacheKind::Perfect,
            CacheKind::PaperL1,
            CacheKind::SetAssoc(CacheGeometry::paper_l1()),
            CacheKind::Classifying(CacheGeometry::paper_l1()),
            CacheKind::TwoLevel(CacheGeometry::paper_l1(), CacheGeometry::paper_l2()),
            CacheKind::Victim(CacheGeometry::paper_l1(), 8),
        ] {
            let mut cache = kind.build();
            cache.access_line(1);
            assert_eq!(cache.stats().accesses(), 1, "{kind}");
        }
    }

    #[test]
    fn dyn_and_enum_builds_agree() {
        // The trait-object path must stay a working equivalent of the
        // devirtualized one for every kind (custom caches in tests and
        // experiments still go through `build()`).
        for kind in [
            CacheKind::Perfect,
            CacheKind::PaperL1,
            CacheKind::SetAssoc(CacheGeometry::new(512, 2, 64).unwrap()),
            CacheKind::Classifying(CacheGeometry::paper_l1()),
            CacheKind::TwoLevel(CacheGeometry::paper_l1(), CacheGeometry::paper_l2()),
            CacheKind::Victim(CacheGeometry::new(512, 1, 64).unwrap(), 4),
        ] {
            let mut boxed = kind.build();
            let mut model = kind.build_model();
            let mut x = 9u32;
            for _ in 0..5_000 {
                x = x.wrapping_mul(1103515245).wrapping_add(12345);
                let line = (x >> 16) % 80;
                assert_eq!(boxed.access_line(line), model.access_line(line), "{kind}");
            }
            assert_eq!(boxed.stats().misses(), model.stats().misses(), "{kind}");
            assert_eq!(boxed.external_fetches(), model.external_fetches(), "{kind}");
        }
    }

    #[test]
    fn custom_dyn_caches_still_plug_in() {
        // A cache model the enum does not know rides the Dyn variant.
        struct CountingCache(sortmid_cache::CacheStats);
        impl LineCache for CountingCache {
            fn access_line(&mut self, _line: u32) -> bool {
                self.0.record(false);
                false
            }
            fn stats(&self) -> &sortmid_cache::CacheStats {
                &self.0
            }
            fn reset(&mut self) {
                self.0.reset();
            }
        }
        let boxed: Box<dyn LineCache + Send> =
            Box::new(CountingCache(sortmid_cache::CacheStats::new()));
        let mut any = AnyCache::from(boxed);
        any.access_line(1);
        any.access_line(2);
        assert_eq!(any.stats().misses(), 2);
    }

    #[test]
    fn summary_is_informative() {
        let c = MachineConfig::builder()
            .processors(64)
            .distribution(Distribution::sli(2))
            .triangle_buffer(500)
            .build()
            .unwrap();
        let s = c.summary();
        assert!(s.contains("64p"));
        assert!(s.contains("sli-2"));
        assert!(s.contains("buf500"));
    }

    #[test]
    fn error_display() {
        let e = ConfigError::BadProcessorCount { requested: 0 };
        assert!(e.to_string().contains("processor count 0"));
        assert!(ConfigError::EmptyTriangleBuffer.to_string().contains("at least one"));
    }
}
