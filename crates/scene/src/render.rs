//! Scene rendering for Figure 9's benchmark images.
//!
//! The simulator does not need pixel colors, but the paper shows its
//! benchmark scenes (Figure 9) and a visual check that the generator
//! produces plausible game-like frames is worth having. Textures are
//! procedural (hash-colored checkerboards per texture id), fragments are
//! drawn in stream order (painter's algorithm — the pipeline has no Z-test
//! before texturing), and a depth-complexity heat map can be rendered for
//! the load-balancing intuition of Figure 1.

use crate::generate::Scene;
use sortmid_raster::{FragmentStream, TriangleSetup};
use sortmid_texture::{ProceduralTexels, TextureId};
use sortmid_util::ppm::{heat_color, Image};

/// Renders the scene's color image with true trilinear filtering of the
/// procedural texture contents (painter's order — the pipeline has no
/// Z-test before texturing).
///
/// # Examples
///
/// ```
/// use sortmid_scene::{render, Benchmark, SceneBuilder};
///
/// let scene = SceneBuilder::benchmark(Benchmark::TeapotFull).scale(0.1).build();
/// let img = render::render_color(&scene);
/// assert_eq!(img.width(), scene.screen().width());
/// ```
pub fn render_color(scene: &Scene) -> Image {
    let mut img = Image::new(scene.screen().width(), scene.screen().height());
    let texels = ProceduralTexels::new(scene.registry());
    for tri in scene.triangles() {
        let Some(setup) = TriangleSetup::new(tri, scene.screen()) else {
            continue;
        };
        let id = TextureId(tri.texture());
        let lod = setup.lod();
        setup.scan(|x, y, u, v| {
            img.put(x as u32, y as u32, texels.sample_trilinear(id, u, v, lod));
        });
    }
    img
}

/// Fast preview render from an existing fragment stream: no filtering,
/// each fragment tinted by its texture with a cheap address-derived
/// checker. Useful when the stream is already in hand and fidelity does
/// not matter.
pub fn render_color_stream(scene: &Scene, stream: &FragmentStream) -> Image {
    let mut img = Image::new(scene.screen().width(), scene.screen().height());
    for rec in stream.triangles() {
        let base = texture_tint(rec.texture.0);
        for frag in stream.fragments_of(rec) {
            // Cheap procedural texture: checker from the first texel address
            // (stable under distribution, scale and replay).
            let t = frag.texels[0].index();
            let checker = ((t >> 4) ^ (t >> 9)) & 1;
            let shade = if checker == 1 { 1.0 } else { 0.72 };
            let rgb = [
                (base[0] as f32 * shade) as u8,
                (base[1] as f32 * shade) as u8,
                (base[2] as f32 * shade) as u8,
            ];
            img.put(frag.x as u32, frag.y as u32, rgb);
        }
    }
    img
}

/// Renders the per-pixel depth complexity as a heat map (white = deepest).
pub fn render_depth_map(scene: &Scene) -> Image {
    let stream = scene.rasterize();
    let w = scene.screen().width();
    let h = scene.screen().height();
    let mut depth = vec![0u32; (w * h) as usize];
    for frag in stream.fragments() {
        depth[(frag.y as u32 * w + frag.x as u32) as usize] += 1;
    }
    let max = depth.iter().copied().max().unwrap_or(1).max(1) as f64;
    let mut img = Image::new(w, h);
    for y in 0..h {
        for x in 0..w {
            let d = depth[(y * w + x) as usize] as f64;
            img.put(x, y, heat_color(d / max));
        }
    }
    img
}

/// A stable, saturated tint per texture id.
fn texture_tint(id: u32) -> [u8; 3] {
    // splitmix-style scramble for decorrelated hues.
    let mut z = (id as u64).wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z ^= z >> 27;
    let hue = (z % 360) as f64;
    hsv_to_rgb(hue, 0.45 + ((z >> 9) % 40) as f64 / 100.0, 0.9)
}

/// Minimal HSV → RGB (h in degrees, s/v in [0, 1]).
fn hsv_to_rgb(h: f64, s: f64, v: f64) -> [u8; 3] {
    let c = v * s;
    let hp = (h / 60.0) % 6.0;
    let x = c * (1.0 - ((hp % 2.0) - 1.0).abs());
    let (r, g, b) = match hp as u32 {
        0 => (c, x, 0.0),
        1 => (x, c, 0.0),
        2 => (0.0, c, x),
        3 => (0.0, x, c),
        4 => (x, 0.0, c),
        _ => (c, 0.0, x),
    };
    let m = v - c;
    [
        ((r + m) * 255.0).round() as u8,
        ((g + m) * 255.0).round() as u8,
        ((b + m) * 255.0).round() as u8,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SceneBuilder;
    use crate::presets::Benchmark;

    #[test]
    fn color_image_has_screen_dims_and_content() {
        let scene = SceneBuilder::benchmark(Benchmark::Quake).scale(0.08).build();
        let img = render_color(&scene);
        assert_eq!(img.width(), scene.screen().width());
        assert_eq!(img.height(), scene.screen().height());
        // Background covers the screen: the image should not be black.
        let mut non_black = 0;
        for y in (0..img.height()).step_by(7) {
            for x in (0..img.width()).step_by(7) {
                if img.get(x, y) != [0, 0, 0] {
                    non_black += 1;
                }
            }
        }
        assert!(non_black > 50, "expected textured coverage, got {non_black}");
    }

    #[test]
    fn depth_map_shows_variation() {
        let scene = SceneBuilder::benchmark(Benchmark::Room3).scale(0.08).build();
        let img = render_depth_map(&scene);
        let mut colors = std::collections::HashSet::new();
        for y in (0..img.height()).step_by(5) {
            for x in (0..img.width()).step_by(5) {
                colors.insert(img.get(x, y));
            }
        }
        assert!(colors.len() > 3, "heat map should show clustering");
    }

    #[test]
    fn tints_are_stable_and_distinct() {
        assert_eq!(texture_tint(5), texture_tint(5));
        let distinct: std::collections::HashSet<[u8; 3]> =
            (0..50).map(texture_tint).collect();
        assert!(distinct.len() > 40);
    }

    #[test]
    fn hsv_primaries() {
        assert_eq!(hsv_to_rgb(0.0, 1.0, 1.0), [255, 0, 0]);
        assert_eq!(hsv_to_rgb(120.0, 1.0, 1.0), [0, 255, 0]);
        assert_eq!(hsv_to_rgb(240.0, 1.0, 1.0), [0, 0, 255]);
        assert_eq!(hsv_to_rgb(0.0, 0.0, 1.0), [255, 255, 255]);
    }
}
