//! Compulsory / capacity / conflict miss classification.
//!
//! Classification follows the standard "three C" methodology:
//!
//! * **compulsory** — the line was never referenced before (misses in any
//!   cache);
//! * **capacity** — a fully-associative LRU cache with the same total number
//!   of lines would also miss;
//! * **conflict** — only the set-associative cache misses (associativity
//!   artefact).
//!
//! The multiprocessor locality loss the paper studies shows up as extra
//! *capacity + conflict* misses per node: each node touches the same number
//! of compulsory lines but reuses them less.

use crate::geometry::CacheGeometry;
use crate::set_assoc::{SetAssocCache, EMPTY};
use crate::stats::{CacheStats, MissBreakdown};
use crate::LineCache;
use sortmid_observe::{MissClass, MissClassCounts};
use std::collections::{HashMap, HashSet, VecDeque};

/// A fully-associative LRU cache used as the capacity-miss oracle.
///
/// Implemented as a hash map plus a lazily-compacted recency queue so each
/// access is O(1) amortised.
#[derive(Debug, Clone)]
struct FullyAssocLru {
    capacity_lines: usize,
    /// line -> latest sequence number.
    resident: HashMap<u32, u64>,
    /// (sequence, line) in access order; stale entries are skipped on evict.
    queue: VecDeque<(u64, u32)>,
    next_seq: u64,
}

impl FullyAssocLru {
    fn new(capacity_lines: usize) -> Self {
        FullyAssocLru {
            capacity_lines,
            resident: HashMap::new(),
            queue: VecDeque::new(),
            next_seq: 0,
        }
    }

    /// Returns `true` on a hit.
    fn access(&mut self, line: u32) -> bool {
        let seq = self.next_seq;
        self.next_seq += 1;
        let hit = self.resident.insert(line, seq).is_some();
        self.queue.push_back((seq, line));
        if self.resident.len() > self.capacity_lines {
            // Evict the true LRU: pop queue entries until one is current.
            while let Some((s, l)) = self.queue.pop_front() {
                if self.resident.get(&l) == Some(&s) {
                    self.resident.remove(&l);
                    break;
                }
            }
        }
        // Opportunistic compaction keeps the queue linear in capacity.
        if self.queue.len() > 8 * self.capacity_lines.max(16) {
            let resident = &self.resident;
            self.queue.retain(|(s, l)| resident.get(l) == Some(s));
        }
        hit
    }

    fn reset(&mut self) {
        self.resident.clear();
        self.queue.clear();
        self.next_seq = 0;
    }
}

/// A set-associative cache that additionally classifies every miss.
///
/// # Examples
///
/// ```
/// use sortmid_cache::{CacheGeometry, ClassifyingCache, LineCache};
///
/// let mut c = ClassifyingCache::new(CacheGeometry::paper_l1());
/// c.access_line(1);
/// c.access_line(1);
/// let b = c.breakdown();
/// assert_eq!(b.compulsory, 1);
/// assert_eq!(b.total(), c.stats().misses());
/// ```
#[derive(Debug, Clone)]
pub struct ClassifyingCache {
    inner: SetAssocCache,
    oracle: FullyAssocLru,
    seen: HashSet<u32>,
    breakdown: MissBreakdown,
}

impl ClassifyingCache {
    /// Creates a classifying cache with the given geometry.
    pub fn new(geometry: CacheGeometry) -> Self {
        ClassifyingCache {
            inner: SetAssocCache::new(geometry),
            oracle: FullyAssocLru::new(geometry.total_lines() as usize),
            seen: HashSet::new(),
            breakdown: MissBreakdown::default(),
        }
    }

    /// The per-kind miss breakdown so far.
    pub fn breakdown(&self) -> MissBreakdown {
        self.breakdown
    }

    /// The underlying geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.inner.geometry()
    }
}

impl LineCache for ClassifyingCache {
    fn access_line(&mut self, line: u32) -> bool {
        self.access_line_classified(line).0
    }

    fn access_line_classified(&mut self, line: u32) -> (bool, Option<MissClass>) {
        let hit = self.inner.access_line(line);
        let oracle_hit = self.oracle.access(line);
        let first = self.seen.insert(line);
        if hit {
            return (true, None);
        }
        let class = if first {
            MissClass::Compulsory
        } else if !oracle_hit {
            MissClass::Capacity
        } else {
            MissClass::Conflict
        };
        match class {
            MissClass::Compulsory => self.breakdown.compulsory += 1,
            MissClass::Capacity => self.breakdown.capacity += 1,
            MissClass::Conflict => self.breakdown.conflict += 1,
        }
        (false, Some(class))
    }

    /// Batched classified probe. Consecutive duplicate lines are skipped:
    /// the repeat is a guaranteed MRU hit in the set-associative inner
    /// cache *and* in the fully-associative oracle, `seen` is already
    /// populated, and a hit carries no class — so skipping changes only
    /// the oracle's private sequence counter, never a future
    /// classification. The inner statistics are bumped in bulk for the
    /// skipped hits, keeping reports byte-identical to the scalar loop.
    #[inline]
    fn access_lane(
        &mut self,
        lane: &[u32],
        miss_out: &mut [u32],
        classes: &mut MissClassCounts,
    ) -> usize {
        let mut misses = 0;
        let mut skipped = 0u64;
        let mut prev = EMPTY;
        for &line in lane {
            if line == prev {
                skipped += 1;
                continue;
            }
            prev = line;
            let (hit, class) = self.access_line_classified(line);
            if !hit {
                miss_out[misses] = line;
                misses += 1;
                if let Some(class) = class {
                    classes.add(class);
                }
            }
        }
        self.inner.record_lane_hits(skipped);
        misses
    }

    fn stats(&self) -> &CacheStats {
        self.inner.stats()
    }

    fn breakdown(&self) -> Option<MissBreakdown> {
        Some(self.breakdown)
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.oracle.reset();
        self.seen.clear();
        self.breakdown = MissBreakdown::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ClassifyingCache {
        // 4 sets x 2 ways = 8 lines.
        ClassifyingCache::new(CacheGeometry::new(512, 2, 64).unwrap())
    }

    #[test]
    fn first_touch_is_compulsory() {
        let mut c = tiny();
        for line in 0..5 {
            c.access_line(line);
        }
        let b = c.breakdown();
        assert_eq!(b.compulsory, 5);
        assert_eq!(b.capacity, 0);
        assert_eq!(b.conflict, 0);
    }

    #[test]
    fn conflict_misses_when_set_thrashes_within_capacity() {
        let mut c = tiny();
        // Lines 0, 4, 8 all map to set 0 (2 ways) but total footprint (3)
        // fits the 8-line capacity: re-misses are conflict misses.
        for _ in 0..4 {
            for line in [0, 4, 8] {
                c.access_line(line);
            }
        }
        let b = c.breakdown();
        assert_eq!(b.compulsory, 3);
        assert_eq!(b.capacity, 0);
        assert!(b.conflict > 0, "expected conflict misses: {b}");
        assert_eq!(b.total(), c.stats().misses());
    }

    #[test]
    fn capacity_misses_when_working_set_exceeds_cache() {
        let mut c = tiny();
        // 16 lines cycled > 8-line capacity: fully-assoc LRU also misses.
        for _ in 0..3 {
            for line in 0..16 {
                c.access_line(line);
            }
        }
        let b = c.breakdown();
        assert_eq!(b.compulsory, 16);
        assert!(b.capacity > 0, "expected capacity misses: {b}");
        assert_eq!(b.total(), c.stats().misses());
    }

    #[test]
    fn breakdown_always_partitions_misses() {
        let mut c = tiny();
        // Pseudo-random-ish walk.
        let mut x = 1u32;
        for _ in 0..500 {
            x = x.wrapping_mul(1103515245).wrapping_add(12345);
            c.access_line((x >> 16) % 24);
        }
        assert_eq!(c.breakdown().total(), c.stats().misses());
    }

    #[test]
    fn classified_access_matches_breakdown_counters() {
        let mut c = tiny();
        let mut counted = MissBreakdown::default();
        let mut x = 1u32;
        for _ in 0..500 {
            x = x.wrapping_mul(1103515245).wrapping_add(12345);
            let (hit, class) = c.access_line_classified((x >> 16) % 24);
            assert_eq!(hit, class.is_none(), "hits carry no class");
            match class {
                Some(MissClass::Compulsory) => counted.compulsory += 1,
                Some(MissClass::Capacity) => counted.capacity += 1,
                Some(MissClass::Conflict) => counted.conflict += 1,
                None => {}
            }
        }
        assert_eq!(counted, c.breakdown());
        assert!(c.breakdown().verify(c.stats().misses()).is_ok());
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = tiny();
        c.access_line(1);
        c.reset();
        assert_eq!(c.stats().accesses(), 0);
        assert_eq!(c.breakdown().total(), 0);
        // After reset the same line is compulsory again.
        c.access_line(1);
        assert_eq!(c.breakdown().compulsory, 1);
    }
}
