//! CI validator for `BENCH_*.json` and `TRACE_*.json` artefacts.
//!
//! Parses every `BENCH_*.json` in a directory (argument, or the current
//! directory) with the devharness JSON reader and checks the schema that
//! [`sortmid_devharness::bench::Suite`] emits: top-level `suite`,
//! `warmup_iters`, `samples`, and a `benchmarks` array whose entries carry
//! `id`, `median_ns`, `p10_ns`, `p90_ns` and a non-empty `samples_ns`
//! array. The sweep artefact must additionally carry the observability
//! extras: `cycle_breakdowns` (per config, per node
//! `[setup, busy, bus_stall, starved, idle, finish]` — the first five must
//! sum *exactly* to the sixth, and the machine total must be the max node
//! finish) and a `reference` comparison against the pre-tracing median.
//!
//! `TRACE_*.json` files are checked for Chrome-trace-event structure (what
//! ui.perfetto.dev loads): a non-empty `traceEvents` array whose entries
//! all carry a `ph` phase and a `pid`, duration (`X`) events with
//! `ts`/`dur`/`name`, counter (`C`) events with an `args` object, and at
//! least one metadata (`M`) event naming a track.
//!
//! Exits non-zero (listing every problem) if any artefact is malformed, so
//! a bench or trace binary that silently emits garbage fails tier-1.

use std::path::Path;
use std::process::ExitCode;

use sortmid_devharness::json::Json;

/// Checks one parsed artefact, appending human-readable problems.
fn check_doc(name: &str, doc: &Json, problems: &mut Vec<String>) {
    let mut need = |key: &str, ok: bool| {
        if !ok {
            problems.push(format!("{name}: missing or mistyped key '{key}'"));
        }
    };
    need("suite", doc.get("suite").and_then(Json::as_str).is_some());
    need(
        "warmup_iters",
        doc.get("warmup_iters").and_then(Json::as_u64).is_some(),
    );
    need("samples", doc.get("samples").and_then(Json::as_u64).is_some());

    let Some(benches) = doc.get("benchmarks").and_then(Json::as_arr) else {
        problems.push(format!("{name}: missing or mistyped key 'benchmarks'"));
        return;
    };
    if benches.is_empty() {
        problems.push(format!("{name}: 'benchmarks' is empty"));
    }
    for (i, b) in benches.iter().enumerate() {
        let id = b.get("id").and_then(Json::as_str);
        let label = id.map_or_else(|| format!("{name}#{i}"), |id| format!("{name}/{id}"));
        if id.is_none() {
            problems.push(format!("{label}: missing or mistyped key 'id'"));
        }
        for key in ["median_ns", "p10_ns", "p90_ns"] {
            if b.get(key).and_then(Json::as_u64).is_none() {
                problems.push(format!("{label}: missing or mistyped key '{key}'"));
            }
        }
        match b.get("samples_ns").and_then(Json::as_arr) {
            None => problems.push(format!("{label}: missing or mistyped key 'samples_ns'")),
            Some([]) => problems.push(format!("{label}: 'samples_ns' is empty")),
            Some(s) => {
                if s.iter().any(|v| v.as_u64().is_none()) {
                    problems.push(format!("{label}: non-integer entry in 'samples_ns'"));
                }
            }
        }
    }

    // The sweep artefact carries the tracing extras; enforce them there.
    if doc.get("suite").and_then(Json::as_str) == Some("sweep") {
        check_sweep_extras(name, doc, problems);
    }
}

/// Validates the sweep artefact's `cycle_breakdowns` and `reference`
/// fields, including the exact per-node accounting identity.
fn check_sweep_extras(name: &str, doc: &Json, problems: &mut Vec<String>) {
    match doc.get("reference") {
        None => problems.push(format!("{name}: missing 'reference' comparison")),
        Some(r) => {
            for key in ["pre_pr_median_ns", "median_ns"] {
                if r.get(key).and_then(Json::as_u64).is_none() {
                    problems.push(format!("{name}/reference: missing or mistyped '{key}'"));
                }
            }
            if r.get("ratio").and_then(Json::as_f64).is_none() {
                problems.push(format!("{name}/reference: missing or mistyped 'ratio'"));
            }
        }
    }

    let Some(configs) = doc.get("cycle_breakdowns").and_then(Json::as_arr) else {
        problems.push(format!("{name}: missing or mistyped 'cycle_breakdowns'"));
        return;
    };
    if configs.is_empty() {
        problems.push(format!("{name}: 'cycle_breakdowns' is empty"));
    }
    for (i, entry) in configs.iter().enumerate() {
        let label = entry
            .get("config")
            .and_then(Json::as_str)
            .map_or_else(|| format!("{name}/breakdown#{i}"), |c| format!("{name}/{c}"));
        let Some(total) = entry.get("total_cycles").and_then(Json::as_u64) else {
            problems.push(format!("{label}: missing or mistyped 'total_cycles'"));
            continue;
        };
        let Some(nodes) = entry.get("nodes").and_then(Json::as_arr) else {
            problems.push(format!("{label}: missing or mistyped 'nodes'"));
            continue;
        };
        let mut max_finish = 0;
        for (n, row) in nodes.iter().enumerate() {
            let cells: Option<Vec<u64>> = row
                .as_arr()
                .map(|r| r.iter().filter_map(Json::as_u64).collect());
            match cells.as_deref() {
                Some([setup, busy, bus_stall, starved, idle, finish]) => {
                    let sum = setup + busy + bus_stall + starved + idle;
                    if sum != *finish {
                        problems.push(format!(
                            "{label}/node{n}: breakdown sums to {sum}, finish is {finish}"
                        ));
                    }
                    max_finish = max_finish.max(*finish);
                }
                _ => problems.push(format!(
                    "{label}/node{n}: expected 6 integers [setup, busy, bus_stall, starved, idle, finish]"
                )),
            }
        }
        if !nodes.is_empty() && max_finish != total {
            problems.push(format!(
                "{label}: total_cycles {total} != max node finish {max_finish}"
            ));
        }
    }
}

/// Validates one `TRACE_*.json` Chrome-trace-event document.
fn check_trace(name: &str, doc: &Json, problems: &mut Vec<String>) {
    let Some(events) = doc.get("traceEvents").and_then(Json::as_arr) else {
        problems.push(format!("{name}: missing or mistyped 'traceEvents'"));
        return;
    };
    if events.is_empty() {
        problems.push(format!("{name}: 'traceEvents' is empty"));
        return;
    }
    let mut metadata = 0usize;
    for (i, e) in events.iter().enumerate() {
        let Some(ph) = e.get("ph").and_then(Json::as_str) else {
            problems.push(format!("{name}#{i}: event without 'ph' phase"));
            continue;
        };
        if e.get("pid").and_then(Json::as_u64).is_none() {
            problems.push(format!("{name}#{i}: event without integer 'pid'"));
        }
        match ph {
            "M" => metadata += 1,
            "X" => {
                for key in ["ts", "dur"] {
                    if e.get(key).and_then(Json::as_u64).is_none() {
                        problems.push(format!("{name}#{i}: X event without integer '{key}'"));
                    }
                }
                if e.get("name").and_then(Json::as_str).is_none() {
                    problems.push(format!("{name}#{i}: X event without 'name'"));
                }
            }
            "C" => {
                if !matches!(e.get("args"), Some(Json::Obj(_))) {
                    problems.push(format!("{name}#{i}: C event without 'args' object"));
                }
            }
            "i" => {
                if e.get("ts").and_then(Json::as_u64).is_none() {
                    problems.push(format!("{name}#{i}: i event without integer 'ts'"));
                }
            }
            other => problems.push(format!("{name}#{i}: unexpected phase '{other}'")),
        }
    }
    if metadata == 0 {
        problems.push(format!("{name}: no metadata (M) events naming tracks"));
    }
}

fn run(dir: &Path) -> Result<usize, String> {
    let mut problems = Vec::new();
    let mut checked = 0usize;
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| {
                    (n.starts_with("BENCH_") || n.starts_with("TRACE_")) && n.ends_with(".json")
                })
        })
        .collect();
    entries.sort();

    for path in &entries {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                problems.push(format!("{name}: unreadable: {e}"));
                continue;
            }
        };
        match Json::parse(&text) {
            Ok(doc) => {
                if name.starts_with("TRACE_") {
                    check_trace(&name, &doc, &mut problems);
                } else {
                    check_doc(&name, &doc, &mut problems);
                }
                checked += 1;
            }
            Err(e) => problems.push(format!("{name}: {e}")),
        }
    }

    if problems.is_empty() {
        Ok(checked)
    } else {
        Err(problems.join("\n"))
    }
}

fn main() -> ExitCode {
    let dir = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    match run(Path::new(&dir)) {
        Ok(0) => {
            eprintln!("bench_check: no BENCH_*.json or TRACE_*.json artefacts found in {dir}");
            ExitCode::FAILURE
        }
        Ok(n) => {
            println!("bench_check: {n} artefact(s) OK in {dir}");
            ExitCode::SUCCESS
        }
        Err(problems) => {
            eprintln!("bench_check: invalid artefacts:\n{problems}");
            ExitCode::FAILURE
        }
    }
}
