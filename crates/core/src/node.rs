//! One texture-mapping node: engine timing + cache + triangle FIFO.

use crate::batch::TriangleLanes;
use crate::config::MachineConfig;
use crate::report::NodeReport;
use sortmid_cache::{AnyCache, CacheStats, LineCache};
use sortmid_memsys::{Cycle, EngineTiming, TriangleFifo};
use sortmid_observe::{MissClassCounts, NullSink, TraceEvent, TraceSink};
use sortmid_raster::Fragment;
use sortmid_texture::TEXELS_PER_FRAGMENT;

/// The simulation state of one node.
///
/// The cache is stored as a concrete [`AnyCache`] enum rather than a
/// `Box<dyn LineCache>`: the texel probe loop runs 8 times per fragment, so
/// devirtualizing `access_line` lets the common set-associative and
/// perfect-cache probes inline into [`Node::process_triangle`].
pub(crate) struct Node {
    engine: EngineTiming,
    cache: AnyCache,
    fifo: TriangleFifo,
    setup_cycles: Cycle,
    pixel_work: u64,
    triangles_routed: u64,
    triangles_discarded: u64,
}

impl Node {
    /// Builds a node from the machine configuration.
    pub(crate) fn new(config: &MachineConfig) -> Self {
        let engine = match config.dram {
            Some(dram) => EngineTiming::with_dram(config.bus, config.prefetch_window, dram),
            None => EngineTiming::new(config.bus, config.prefetch_window),
        };
        Node {
            engine,
            cache: config.cache.build_model(),
            fifo: TriangleFifo::new(config.triangle_buffer),
            setup_cycles: config.setup_cycles,
            pixel_work: 0,
            triangles_routed: 0,
            triangles_discarded: 0,
        }
    }

    /// The earliest cycle the geometry stage may send this node another
    /// triangle (FIFO backpressure).
    pub(crate) fn earliest_send(&self) -> Cycle {
        self.fifo.earliest_send()
    }

    /// Processes one routed triangle: `arrival` is its send time, `frags`
    /// yields the fragments this node owns, in stream order (possibly none
    /// — the setup floor still applies). Returns the cycle the engine
    /// dequeued it.
    ///
    /// Generic over the fragment source so both the legacy partition-per-
    /// triangle path and the [`RoutingPlan`](crate::plan::RoutingPlan)
    /// index-range path feed the same (inlined) texel loop.
    pub(crate) fn process_triangle<'a, I>(&mut self, arrival: Cycle, frags: I) -> Cycle
    where
        I: ExactSizeIterator<Item = &'a Fragment>,
    {
        self.process_triangle_traced(arrival, frags, 0, 0, (0, 0), &mut NullSink)
    }

    /// [`process_triangle`](Self::process_triangle) with a [`TraceSink`]:
    /// reports the FIFO dequeue, the triangle's start (with fragment
    /// count), every bus line fill, the retire, and the spatial hooks —
    /// one sample per fragment (with classified line misses) plus the
    /// triangle's setup-floor padding anchored at `anchor` (the bounding
    /// box origin, so overlaps that own no fragments still attribute their
    /// setup somewhere meaningful). With [`NullSink`] all event code
    /// monomorphizes away, leaving the untraced hot loop.
    pub(crate) fn process_triangle_traced<'a, I, S>(
        &mut self,
        arrival: Cycle,
        frags: I,
        node_id: u32,
        tri_id: u32,
        anchor: (u16, u16),
        sink: &mut S,
    ) -> Cycle
    where
        I: ExactSizeIterator<Item = &'a Fragment>,
        S: TraceSink,
    {
        let start = self.engine.start_triangle(arrival);
        self.fifo.record_start(start);
        self.triangles_routed += 1;
        self.pixel_work += frags.len() as u64;
        if S::ENABLED {
            sink.record(TraceEvent::FifoPop { node: node_id, at: start });
            sink.record(TraceEvent::TriStart {
                node: node_id,
                tri: tri_id,
                at: start,
                frags: frags.len() as u32,
            });
        }
        // Dispatch on the cache variant once per *triangle*, not once per
        // texel: each arm monomorphizes `scan_fragments`, so the 8-probe
        // loop inlines the concrete `access_line`.
        match &mut self.cache {
            AnyCache::Perfect(c) => scan_fragments(c, &mut self.engine, frags, node_id, sink),
            AnyCache::SetAssoc(c) => scan_fragments(c, &mut self.engine, frags, node_id, sink),
            AnyCache::Classifying(c) => scan_fragments(c, &mut self.engine, frags, node_id, sink),
            AnyCache::TwoLevel(c) => scan_fragments(c, &mut self.engine, frags, node_id, sink),
            AnyCache::Victim(c) => scan_fragments(c, &mut self.engine, frags, node_id, sink),
            AnyCache::Dyn(c) => scan_fragments(c.as_mut(), &mut self.engine, frags, node_id, sink),
        }
        let free = self.engine.finish_triangle(self.setup_cycles);
        if S::ENABLED {
            sink.record_setup(node_id, anchor.0, anchor.1, self.engine.last_setup_padding());
            sink.record(TraceEvent::TriRetire { node: node_id, tri: tri_id, at: free });
        }
        start
    }

    /// The batched counterpart of
    /// [`process_triangle_traced`](Self::process_triangle_traced): the
    /// triangle's fragments arrive as struct-of-arrays lanes (contiguous
    /// line ids and pixel coordinates from a
    /// [`PlanLanes`](crate::batch::PlanLanes)) instead of an `&Fragment`
    /// iterator. FIFO, counter and event framing are identical; only the
    /// scan body differs — it resolves each fragment's footprint through
    /// the cache's batched [`access_lane`](LineCache::access_lane), which
    /// is contractually byte-identical to the scalar probe loop.
    pub(crate) fn process_triangle_lanes<S: TraceSink>(
        &mut self,
        arrival: Cycle,
        lanes: TriangleLanes<'_>,
        node_id: u32,
        tri_id: u32,
        anchor: (u16, u16),
        sink: &mut S,
    ) -> Cycle {
        let start = self.engine.start_triangle(arrival);
        self.fifo.record_start(start);
        self.triangles_routed += 1;
        self.pixel_work += lanes.len() as u64;
        if S::ENABLED {
            sink.record(TraceEvent::FifoPop { node: node_id, at: start });
            sink.record(TraceEvent::TriStart {
                node: node_id,
                tri: tri_id,
                at: start,
                frags: lanes.len() as u32,
            });
        }
        // As in the scalar path: dispatch on the cache variant once per
        // triangle so the concrete batched probe inlines into the loop.
        match &mut self.cache {
            AnyCache::Perfect(c) => scan_lanes(c, &mut self.engine, lanes, node_id, sink),
            AnyCache::SetAssoc(c) => scan_lanes(c, &mut self.engine, lanes, node_id, sink),
            AnyCache::Classifying(c) => scan_lanes(c, &mut self.engine, lanes, node_id, sink),
            AnyCache::TwoLevel(c) => scan_lanes(c, &mut self.engine, lanes, node_id, sink),
            AnyCache::Victim(c) => scan_lanes(c, &mut self.engine, lanes, node_id, sink),
            AnyCache::Dyn(c) => scan_lanes(c.as_mut(), &mut self.engine, lanes, node_id, sink),
        }
        let free = self.engine.finish_triangle(self.setup_cycles);
        if S::ENABLED {
            sink.record_setup(node_id, anchor.0, anchor.1, self.engine.last_setup_padding());
            sink.record(TraceEvent::TriRetire { node: node_id, tri: tri_id, at: free });
        }
        start
    }

    /// Accepts a broadcast triangle whose bounding box misses this node's
    /// region: the clipping hardware discards it for free, but it occupied
    /// a FIFO slot until the engine reached it — that occupancy is the
    /// whole point of Section 8's buffering study.
    pub(crate) fn discard_triangle_traced<S: TraceSink>(
        &mut self,
        arrival: Cycle,
        node_id: u32,
        tri_id: u32,
        sink: &mut S,
    ) {
        let start = self.engine.engine_free().max(arrival);
        self.fifo.record_start(start);
        self.triangles_discarded += 1;
        if S::ENABLED {
            sink.record(TraceEvent::FifoPop { node: node_id, at: start });
            sink.record(TraceEvent::TriDiscard { node: node_id, tri: tri_id, at: start });
        }
    }

    /// Short label of this node's cache model (for trace track names).
    pub(crate) fn cache_label(&self) -> &'static str {
        self.cache.label()
    }

    /// The cycle this node's last pixel fully completes.
    pub(crate) fn finish_time(&self) -> Cycle {
        self.engine.finish_time()
    }

    /// Prepares the node for the next frame of a sequence: timing, FIFO
    /// and counters restart, but the **cache keeps its contents** — that
    /// retention is exactly what the inter-frame locality study measures.
    pub(crate) fn start_new_frame(&mut self) {
        self.engine.reset();
        self.fifo.reset();
        self.pixel_work = 0;
        self.triangles_routed = 0;
        self.triangles_discarded = 0;
    }

    /// Snapshot of the cumulative cache counters, for per-frame deltas in
    /// sequence runs.
    pub(crate) fn cache_snapshot(&self) -> (CacheStats, u64) {
        (*self.cache.stats(), self.cache.external_fetches())
    }

    /// Like [`report`](Self::report) but with cache statistics expressed
    /// relative to an earlier [`cache_snapshot`](Self::cache_snapshot)
    /// (the per-frame view in a warm-cache sequence).
    pub(crate) fn report_since(&self, snapshot: &(CacheStats, u64)) -> NodeReport {
        let mut report = self.report();
        report.cache = self.cache.stats().delta_since(&snapshot.0);
        report.external_fetches = self.cache.external_fetches() - snapshot.1;
        report
    }

    /// Snapshot of this node's counters for the report.
    pub(crate) fn report(&self) -> NodeReport {
        NodeReport {
            pixels: self.pixel_work,
            triangles: self.triangles_routed,
            discarded: self.triangles_discarded,
            finish: self.engine.finish_time(),
            busy_cycles: self.engine.busy_cycles(),
            stall_cycles: self.engine.stall_cycles(),
            setup_floor_cycles: self.engine.setup_floor_cycles(),
            starved_cycles: self.engine.starved_cycles(),
            idle_cycles: self.engine.fill_tail_cycles(),
            bus_busy_cycles: self.engine.bus_busy_cycles(),
            miss_breakdown: self.cache.breakdown(),
            cache: cache_stats_copy(self.cache.stats()),
            external_fetches: self.cache.external_fetches(),
        }
    }
}

fn cache_stats_copy(stats: &CacheStats) -> CacheStats {
    *stats
}

/// The scalar texel hot loop, generic over the concrete cache model so the
/// probe fully inlines (`?Sized` keeps the `Box<dyn LineCache>` escape
/// hatch usable through the same code path).
///
/// One body serves traced and untraced runs: probes always go through
/// `access_line_classified` (identical hit/miss behaviour and statistics
/// to `access_line` — classification only observes, and a class only
/// exists on a miss), and the single `S::ENABLED` branch around the
/// spatial sample const-folds away under [`NullSink`]. This path is the
/// **reference semantics** the batched [`scan_lanes`] is pinned against —
/// it deliberately probes texel by texel rather than through
/// [`LineCache::access_lane`], so the equivalence properties compare two
/// genuinely different implementations.
#[inline]
fn scan_fragments<'a, C, I, S>(
    cache: &mut C,
    engine: &mut EngineTiming,
    frags: I,
    node_id: u32,
    sink: &mut S,
) where
    C: LineCache + ?Sized,
    I: Iterator<Item = &'a Fragment>,
    S: TraceSink,
{
    for frag in frags {
        let mut miss_lines = [0u32; TEXELS_PER_FRAGMENT];
        let mut misses = 0usize;
        let mut classes = MissClassCounts::default();
        for texel in &frag.texels {
            let line = texel.line();
            let (hit, class) = cache.access_line_classified(line);
            if !hit {
                miss_lines[misses] = line;
                misses += 1;
                if let Some(class) = class {
                    classes.add(class);
                }
            }
        }
        debug_assert!(
            misses <= frag.texels.len(),
            "fragment at ({}, {}) reported {misses} misses for an {}-texel footprint",
            frag.x,
            frag.y,
            frag.texels.len(),
        );
        engine.fragment_lines_sink(&miss_lines[..misses], node_id, sink);
        if S::ENABLED {
            sink.record_fragment(node_id, frag.x, frag.y, misses as u32, classes);
        }
    }
}

/// The batched hot loop: one [`LineCache::access_lane`] call resolves a
/// fragment's whole footprint (branch-free compares, duplicate-run
/// collapse — whatever the concrete model overrides), and the miss lines
/// feed the engine exactly as in [`scan_fragments`].
#[inline]
fn scan_lanes<C, S>(
    cache: &mut C,
    engine: &mut EngineTiming,
    lanes: TriangleLanes<'_>,
    node_id: u32,
    sink: &mut S,
) where
    C: LineCache + ?Sized,
    S: TraceSink,
{
    // Untraced runs coalesce consecutive all-hit fragments into one bulk
    // engine advance ([`EngineTiming::fragments_clean`]); traced runs keep
    // the per-fragment engine calls because every fragment owes the sink a
    // spatial sample.
    let mut clean_run: u64 = 0;
    for (i, lane) in lanes.lines.chunks_exact(TEXELS_PER_FRAGMENT).enumerate() {
        let mut miss_lines = [0u32; TEXELS_PER_FRAGMENT];
        let mut classes = MissClassCounts::default();
        let misses = cache.access_lane(lane, &mut miss_lines, &mut classes);
        debug_assert!(
            misses <= lane.len(),
            "fragment at ({}, {}) reported {misses} misses for an {}-texel footprint",
            lanes.xs[i],
            lanes.ys[i],
            lane.len(),
        );
        if !S::ENABLED && misses == 0 {
            clean_run += 1;
            continue;
        }
        if clean_run > 0 {
            engine.fragments_clean(clean_run);
            clean_run = 0;
        }
        engine.fragment_lines_sink(&miss_lines[..misses], node_id, sink);
        if S::ENABLED {
            sink.record_fragment(node_id, lanes.xs[i], lanes.ys[i], misses as u32, classes);
        }
    }
    if clean_run > 0 {
        engine.fragments_clean(clean_run);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheKind;
    use crate::distribution::Distribution;
    use sortmid_texture::{TextureDesc, TextureRegistry};

    fn config(cache: CacheKind) -> MachineConfig {
        MachineConfig::builder()
            .processors(1)
            .distribution(Distribution::block(16))
            .cache(cache)
            .build()
            .unwrap()
    }

    fn fragment(reg: &TextureRegistry, u: i32, v: i32) -> Fragment {
        let id = reg.ids().next().unwrap();
        let a = reg.texel_addr(id, 0, u, v);
        Fragment {
            x: 0,
            y: 0,
            texels: [a; 8],
        }
    }

    #[test]
    fn node_counts_work_and_setup_floor() {
        let mut reg = TextureRegistry::new();
        reg.register(TextureDesc::new(64, 64).unwrap()).unwrap();
        let mut node = Node::new(&config(CacheKind::Perfect));
        let f = fragment(&reg, 0, 0);
        let frags: Vec<&Fragment> = vec![&f; 5];
        node.process_triangle(0, frags.iter().copied());
        // 5 pixels < 25-cycle floor.
        assert_eq!(node.finish_time(), 25);
        assert_eq!(node.report().pixels, 5);
        assert_eq!(node.report().triangles, 1);
    }

    #[test]
    fn cache_misses_feed_the_bus() {
        let mut reg = TextureRegistry::new();
        reg.register(TextureDesc::new(256, 256).unwrap()).unwrap();
        let id = reg.ids().next().unwrap();
        let mut node = Node::new(&config(CacheKind::PaperL1));
        // 64 fragments in distinct 4x4 blocks: one compulsory miss each.
        let frags: Vec<Fragment> = (0..64)
            .map(|i| {
                let a = reg.texel_addr(id, 0, (i % 16) * 4, (i / 16) * 4);
                Fragment { x: 0, y: 0, texels: [a; 8] }
            })
            .collect();
        node.process_triangle(0, frags.iter());
        let rep = node.report();
        assert_eq!(rep.cache.misses(), 64);
        assert_eq!(rep.external_fetches, 64);
        // 64 fills at 16 cycles on a ratio-1 bus dominate the 64 scans.
        assert!(rep.finish > 64 * 16);
    }

    #[test]
    fn empty_triangle_still_costs_setup() {
        let mut node = Node::new(&config(CacheKind::Perfect));
        node.process_triangle(0, [].iter());
        node.process_triangle(0, [].iter());
        assert_eq!(node.finish_time(), 50);
        assert_eq!(node.report().pixels, 0);
        assert_eq!(node.report().triangles, 2);
    }
}
