//! Property-test runner over a recorded choice tape.
//!
//! A property is a pair of closures: a **generator** that builds a value by
//! drawing from a [`Gen`], and a **predicate** returning `Ok(())` or
//! `Err(reason)`. The runner records every raw `u64` the generator draws (the
//! *choice tape*); when a case fails it minimises the tape — each entry
//! shrinks towards zero, and generator helpers map a zero draw to the lowest
//! value of their range — then replays the generator on the minimal tape to
//! print a small counterexample. This is the internal-shrinking design of
//! Hypothesis: shrinking never needs type-specific shrinkers because every
//! generated structure shrinks through the integers that produced it.
//!
//! Failures report the base seed; setting `DEVHARNESS_SEED` replays the run.

use crate::rng::{mix64, Xoshiro256};
use std::fmt::Debug;

/// Default base seed when `DEVHARNESS_SEED` is unset.
const DEFAULT_SEED: u64 = 0x5EED_5EED_5EED_5EED;

/// Runner configuration: case count, base seed, shrink effort.
///
/// # Examples
///
/// ```
/// use sortmid_devharness::prop::Config;
///
/// let c = Config::with_cases(32);
/// assert_eq!(c.cases, 32);
/// ```
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases to run.
    pub cases: u32,
    /// Base seed; case `i` derives its tape from `mix64(seed ^ i)`.
    pub seed: u64,
    /// Cap on candidate tapes tried while minimising a counterexample.
    pub max_shrink_attempts: u32,
}

impl Config {
    /// A config running `cases` cases with the environment seed.
    ///
    /// The seed comes from `DEVHARNESS_SEED` (decimal, or hex with a `0x`
    /// prefix) when set, else a fixed default — test runs are deterministic
    /// either way.
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            seed: seed_from_env(),
            max_shrink_attempts: 2_000,
        }
    }
}

impl Default for Config {
    /// 64 cases with the environment seed.
    fn default() -> Self {
        Config::with_cases(64)
    }
}

fn seed_from_env() -> u64 {
    match std::env::var("DEVHARNESS_SEED") {
        Ok(s) => {
            let s = s.trim();
            let parsed = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => s.parse(),
            };
            parsed.unwrap_or_else(|_| panic!("DEVHARNESS_SEED '{s}' is not a u64"))
        }
        Err(_) => DEFAULT_SEED,
    }
}

/// The raw-draw source handed to generators: recorded draws first, then the
/// RNG; frozen tapes (shrink replays) return 0 past the end.
#[derive(Debug)]
struct Tape {
    draws: Vec<u64>,
    pos: usize,
    rng: Option<Xoshiro256>,
}

impl Tape {
    fn fresh(seed: u64) -> Self {
        Tape {
            draws: Vec::new(),
            pos: 0,
            rng: Some(Xoshiro256::seed_from_u64(seed)),
        }
    }

    fn replay(draws: &[u64]) -> Self {
        Tape {
            draws: draws.to_vec(),
            pos: 0,
            rng: None,
        }
    }

    fn next(&mut self) -> u64 {
        let v = if self.pos < self.draws.len() {
            self.draws[self.pos]
        } else {
            match &mut self.rng {
                Some(rng) => {
                    let v = rng.next_u64();
                    self.draws.push(v);
                    v
                }
                // Frozen replay ran past the recorded tape: the maximally
                // shrunk draw keeps the structure deterministic.
                None => 0,
            }
        };
        self.pos += 1;
        v
    }
}

/// The value source generators draw from.
///
/// Every helper maps the raw draw monotonically enough that a zero draw
/// yields the low end of the requested range — that is what makes tape
/// shrinking produce small counterexamples.
///
/// # Examples
///
/// ```
/// use sortmid_devharness::prop::{check, Config};
///
/// check("sum is commutative", &Config::with_cases(50),
///     |g| (g.u32_in(0..1000), g.u32_in(0..1000)),
///     |&(a, b)| {
///         if a + b == b + a { Ok(()) } else { Err("!".into()) }
///     });
/// ```
#[derive(Debug)]
pub struct Gen {
    tape: Tape,
}

impl Gen {
    /// The next raw 64-bit draw.
    pub fn bits(&mut self) -> u64 {
        self.tape.next()
    }

    /// A uniform `u64` in `[0, bound)`; a zero draw maps to 0.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn u64_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "u64_below bound must be positive");
        // Multiply-shift keeps draw 0 at value 0 (no rejection loop: the
        // tape length must not depend on the draw values).
        (((self.bits() as u128) * (bound as u128)) >> 64) as u64
    }

    /// A uniform `u32` in `range`; empty ranges panic.
    pub fn u32_in(&mut self, range: std::ops::Range<u32>) -> u32 {
        assert!(range.start < range.end, "empty range");
        range.start + self.u64_below((range.end - range.start) as u64) as u32
    }

    /// A uniform `i32` in `range`; empty ranges panic.
    pub fn i32_in(&mut self, range: std::ops::Range<i32>) -> i32 {
        assert!(range.start < range.end, "empty range");
        let span = (range.end as i64 - range.start as i64) as u64;
        range.start + self.u64_below(span) as i32
    }

    /// A uniform `usize` in `range`; empty ranges panic.
    pub fn usize_in(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        range.start + self.u64_below((range.end - range.start) as u64) as usize
    }

    /// A uniform `f64` in `[lo, hi)`; a zero draw maps to `lo`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi);
        let unit = (self.bits() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + (hi - lo) * unit
    }

    /// A uniform `f32` in `[lo, hi)`; a zero draw maps to `lo`.
    pub fn f32_in(&mut self, lo: f32, hi: f32) -> f32 {
        self.f64_in(lo as f64, hi as f64) as f32
    }

    /// A fair boolean; a zero draw maps to `false`.
    pub fn bool(&mut self) -> bool {
        self.bits() & (1 << 63) != 0
    }

    /// A uniform index into a choice set of `n` alternatives; a zero draw
    /// picks alternative 0, so list the simplest alternative first.
    pub fn choice(&mut self, n: usize) -> usize {
        self.usize_in(0..n)
    }

    /// One item cloned from a non-empty slice.
    pub fn pick<T: Clone>(&mut self, items: &[T]) -> T {
        items[self.choice(items.len())].clone()
    }

    /// A vector whose length is drawn from `len` and whose items come from
    /// `item`; shrinking drives both the length and the items down.
    pub fn vec<T>(
        &mut self,
        len: std::ops::Range<usize>,
        mut item: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let n = self.usize_in(len);
        (0..n).map(|_| item(self)).collect()
    }
}

/// Runs `prop` against `cases` values built by `gen`, shrinking and
/// reporting the seed on failure.
///
/// # Panics
///
/// Panics (failing the enclosing `#[test]`) when the property is falsified,
/// with the minimal counterexample, the failure reason, the base seed and
/// the replay instructions in the message.
pub fn check<T: Debug>(
    name: &str,
    config: &Config,
    mut gen: impl FnMut(&mut Gen) -> T,
    mut prop: impl FnMut(&T) -> Result<(), String>,
) {
    for case in 0..config.cases {
        let case_seed = mix64(config.seed ^ case as u64);
        let mut g = Gen {
            tape: Tape::fresh(case_seed),
        };
        let value = gen(&mut g);
        if let Err(reason) = prop(&value) {
            let tape = std::mem::take(&mut g.tape.draws);
            let minimal = shrink(tape, config.max_shrink_attempts, &mut gen, &mut prop);
            let mut rg = Gen {
                tape: Tape::replay(&minimal),
            };
            let small = gen(&mut rg);
            let small_reason = prop(&small).err().unwrap_or(reason);
            panic!(
                "property '{name}' falsified at case {case}/{} (base seed {:#018x})\n  \
                 counterexample: {small:?}\n  \
                 error: {small_reason}\n  \
                 replay: DEVHARNESS_SEED={:#x} cargo test -q",
                config.cases, config.seed, config.seed,
            );
        }
    }
}

/// Greedy tape minimisation: truncate the tail, then shrink each entry
/// towards zero (0, halving, decrement), keeping any tape that still fails.
fn shrink<T: Debug>(
    mut best: Vec<u64>,
    max_attempts: u32,
    gen: &mut impl FnMut(&mut Gen) -> T,
    prop: &mut impl FnMut(&T) -> Result<(), String>,
) -> Vec<u64> {
    let mut attempts = 0u32;
    let mut still_fails = |draws: &[u64], attempts: &mut u32| -> bool {
        *attempts += 1;
        let mut g = Gen {
            tape: Tape::replay(draws),
        };
        let value = gen(&mut g);
        prop(&value).is_err()
    };

    let mut improved = true;
    while improved && attempts < max_attempts {
        improved = false;

        // Pass 1: drop suffixes (halving the cut each time) — shorter tapes
        // mean structurally smaller values (shorter vectors, fewer items).
        let mut cut = best.len();
        while cut > 0 && attempts < max_attempts {
            cut = cut.min(best.len());
            if cut == 0 {
                break;
            }
            let candidate = best[..best.len() - cut].to_vec();
            if still_fails(&candidate, &mut attempts) {
                best = candidate;
                improved = true;
            } else {
                cut /= 2;
            }
        }

        // Pass 2: shrink each draw towards zero — zero outright if the
        // failure survives, else binary-search the smallest failing value.
        for i in 0..best.len() {
            if attempts >= max_attempts {
                break;
            }
            let original = best[i];
            if original == 0 {
                continue;
            }
            let mut candidate = best.clone();
            candidate[i] = 0;
            if still_fails(&candidate, &mut attempts) {
                best = candidate;
                improved = true;
                continue;
            }
            let mut lo = 0u64;
            let mut hi = original;
            while hi - lo > 1 && attempts < max_attempts {
                let mid = lo + (hi - lo) / 2;
                let mut candidate = best.clone();
                candidate[i] = mid;
                if still_fails(&candidate, &mut attempts) {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            if hi != original {
                best[i] = hi;
                improved = true;
            }
        }
    }
    best
}

/// Asserts a condition inside a property predicate, returning `Err` with the
/// stringified condition (and optional formatted context) instead of
/// panicking — the runner needs the `Err` to drive shrinking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({})",
                stringify!($cond),
                format!($($fmt)+)
            ));
        }
    };
}

/// Asserts equality inside a property predicate; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err(format!(
                "assertion failed: {} == {} ({:?} vs {:?}; {})",
                stringify!($left),
                stringify!($right),
                l,
                r,
                format!($($fmt)+)
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0u32;
        check(
            "u32_in stays in range",
            &Config::with_cases(200),
            |g| g.u32_in(5..100),
            |&v| {
                count += 1;
                if (5..100).contains(&v) {
                    Ok(())
                } else {
                    Err(format!("{v} out of range"))
                }
            },
        );
        assert_eq!(count, 200);
    }

    #[test]
    fn failing_property_panics_with_seed_and_counterexample() {
        let result = std::panic::catch_unwind(|| {
            check(
                "all values are below 10",
                &Config::with_cases(100),
                |g| g.u32_in(0..1000),
                |&v| if v < 10 { Ok(()) } else { Err(format!("{v} >= 10")) },
            );
        });
        let msg = *result.expect_err("must fail").downcast::<String>().unwrap();
        assert!(msg.contains("falsified"), "{msg}");
        assert!(msg.contains("base seed"), "{msg}");
        assert!(msg.contains("DEVHARNESS_SEED"), "{msg}");
        // Shrinking drives the counterexample to the boundary.
        assert!(msg.contains("counterexample: 10"), "{msg}");
    }

    #[test]
    fn shrinking_minimises_vectors() {
        let result = std::panic::catch_unwind(|| {
            check(
                "no vector sums past 100",
                &Config::with_cases(100),
                |g| g.vec(0..40, |g| g.u32_in(0..50)),
                |v| {
                    if v.iter().sum::<u32>() <= 100 {
                        Ok(())
                    } else {
                        Err("sum too big".into())
                    }
                },
            );
        });
        let msg = *result.expect_err("must fail").downcast::<String>().unwrap();
        // The minimal failing vector has a handful of elements, not 40.
        let counter = msg
            .lines()
            .find(|l| l.contains("counterexample"))
            .expect("counterexample line");
        let elements = counter.matches(',').count() + 1;
        assert!(elements <= 8, "poorly shrunk: {counter}");
    }

    #[test]
    fn zero_draw_maps_to_range_start() {
        let mut g = Gen {
            tape: Tape::replay(&[]),
        };
        assert_eq!(g.u32_in(7..30), 7);
        assert_eq!(g.i32_in(-5..5), -5);
        assert_eq!(g.usize_in(3..9), 3);
        assert_eq!(g.f64_in(2.5, 9.0), 2.5);
        assert!(!g.bool());
        assert!(g.vec(0..10, |g| g.bits()).is_empty());
    }

    #[test]
    fn tape_replay_reproduces_values() {
        let mut a = Gen {
            tape: Tape::fresh(77),
        };
        let va: Vec<u32> = (0..20).map(|_| a.u32_in(0..1_000_000)).collect();
        let draws = a.tape.draws.clone();
        let mut b = Gen {
            tape: Tape::replay(&draws),
        };
        let vb: Vec<u32> = (0..20).map(|_| b.u32_in(0..1_000_000)).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn macros_return_err_not_panic() {
        fn inner(x: u32) -> Result<(), String> {
            prop_assert!(x < 5, "x was {x}");
            prop_assert_eq!(x % 2, 0);
            Ok(())
        }
        assert!(inner(2).is_ok());
        assert!(inner(9).unwrap_err().contains("x was 9"));
        assert!(inner(3).unwrap_err().contains("x % 2"));
    }

    #[test]
    fn different_base_seeds_give_different_cases() {
        let draw = |seed: u64| {
            let mut g = Gen {
                tape: Tape::fresh(mix64(seed)),
            };
            (0..8).map(|_| g.bits()).collect::<Vec<_>>()
        };
        assert_ne!(draw(1), draw(2));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        let mut g = Gen {
            tape: Tape::fresh(0),
        };
        g.u64_below(0);
    }
}
