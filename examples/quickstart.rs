//! Quickstart: simulate one benchmark frame on a 16-processor sort-middle
//! machine and print the metrics the paper reports.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sortmid::{CacheKind, Distribution, Machine, MachineConfig};
use sortmid_scene::{Benchmark, SceneBuilder, SceneStats};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate a benchmark scene (a quarter-scale 32massive11255 frame:
    //    the SPEC APC Quake2 crowd scene with x32-magnified textures).
    let scene = SceneBuilder::benchmark(Benchmark::Massive32_11255)
        .scale(0.25)
        .build();
    let stats = SceneStats::measure(&scene);
    println!("scene  : {} ({stats})", scene.name());

    // 2. Rasterize once; the stream replays under any machine config.
    let stream = scene.rasterize();

    // 3. The paper's single-processor reference machine.
    let baseline = Machine::new(MachineConfig::uniprocessor()).run(&stream);
    println!(
        "1 proc : {} cycles, texel/fragment {:.3}",
        baseline.total_cycles(),
        baseline.texel_to_fragment()
    );

    // 4. A 16-processor machine with the paper's best distribution:
    //    16x16-pixel interleaved square blocks.
    let config = MachineConfig::builder()
        .processors(16)
        .distribution(Distribution::block(16))
        .cache(CacheKind::PaperL1)
        .bus_ratio(1.0)
        .triangle_buffer(10_000)
        .build()?;
    let report = Machine::new(config).run(&stream);

    println!(
        "16 proc: {} cycles -> speedup {:.2}x, texel/fragment {:.3}, \
         pixel imbalance {:.1}%, overlap factor {:.2}",
        report.total_cycles(),
        report.speedup_vs(&baseline),
        report.texel_to_fragment(),
        report.pixel_imbalance_percent(),
        report.overlap_factor()
    );

    // 5. Compare against SLI with the group size the paper found best at
    //    16 processors (8 lines).
    let sli = MachineConfig::builder()
        .processors(16)
        .distribution(Distribution::sli(8))
        .build()?;
    let sli_report = Machine::new(sli).run(&stream);
    println!(
        "16 proc SLI-8: speedup {:.2}x, texel/fragment {:.3}",
        sli_report.speedup_vs(&baseline),
        sli_report.texel_to_fragment()
    );
    Ok(())
}
