//! Multi-frame workloads: camera motion over a generated scene.
//!
//! The paper simulates single frames (its L1 has no inter-frame locality),
//! but its conclusion asks about *frame sequences* — an L2's worth of
//! locality depends on how far the viewpoint moves between frames. This
//! module animates a scene with the two motions that matter:
//!
//! * **pan** — screen-space translation ([`Scene::translated_view`]);
//! * **zoom** — scaling about the screen center, which also changes texel
//!   density (zooming in magnifies textures, pushing LOD toward 0).

use crate::generate::Scene;
use sortmid_geom::Vec2;

/// A per-frame camera step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CameraStep {
    /// Horizontal pan in pixels per frame.
    pub dx: f32,
    /// Vertical pan in pixels per frame.
    pub dy: f32,
    /// Zoom factor per frame (1.0 = none; > 1 zooms in).
    pub zoom: f32,
}

impl CameraStep {
    /// A pure pan.
    pub fn pan(dx: f32, dy: f32) -> Self {
        CameraStep { dx, dy, zoom: 1.0 }
    }

    /// A pure zoom.
    ///
    /// # Panics
    ///
    /// Panics unless `zoom` is positive and finite.
    pub fn zoom(zoom: f32) -> Self {
        assert!(zoom > 0.0 && zoom.is_finite(), "zoom must be positive");
        CameraStep { dx: 0.0, dy: 0.0, zoom }
    }
}

/// The scene as seen after zooming by `factor` about the screen center
/// (texture coordinates stay attached to the geometry, so texel density
/// drops by `factor`).
///
/// # Panics
///
/// Panics unless `factor` is positive and finite.
pub fn zoomed_view(scene: &Scene, factor: f32) -> Scene {
    assert!(factor > 0.0 && factor.is_finite(), "zoom must be positive");
    let center = Vec2::new(
        scene.screen().width() as f32 / 2.0,
        scene.screen().height() as f32 / 2.0,
    );
    let triangles = scene
        .triangles()
        .iter()
        .map(|t| {
            t.translated(-center)
                .scaled(factor)
                .translated(center)
        })
        .collect();
    Scene::from_parts(
        format!("{}+zoom({factor})", scene.name()),
        scene.screen(),
        triangles,
        scene.registry().clone(),
    )
}

/// Generates `frames` views of `scene` under a constant camera step; frame
/// 0 is the original view.
///
/// # Panics
///
/// Panics if `frames` is zero.
///
/// # Examples
///
/// ```
/// use sortmid_scene::animate::{camera_path, CameraStep};
/// use sortmid_scene::{Benchmark, SceneBuilder};
///
/// let scene = SceneBuilder::benchmark(Benchmark::Quake).scale(0.05).build();
/// let frames = camera_path(&scene, 3, CameraStep::pan(8.0, 0.0));
/// assert_eq!(frames.len(), 3);
/// assert_ne!(frames[0].triangles()[0], frames[2].triangles()[0]);
/// ```
pub fn camera_path(scene: &Scene, frames: u32, step: CameraStep) -> Vec<Scene> {
    assert!(frames > 0, "need at least one frame");
    let mut out = Vec::with_capacity(frames as usize);
    let mut current = scene.clone();
    for i in 0..frames {
        if i > 0 {
            let mut next = current.translated_view(step.dx, step.dy);
            if step.zoom != 1.0 {
                next = zoomed_view(&next, step.zoom);
            }
            current = next;
        }
        out.push(current.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SceneBuilder;
    use crate::presets::Benchmark;
    use crate::stats::SceneStats;

    fn scene() -> Scene {
        SceneBuilder::benchmark(Benchmark::Quake).scale(0.08).build()
    }

    #[test]
    fn pan_moves_geometry_not_uv() {
        let s = scene();
        let panned = s.translated_view(10.0, 0.0);
        let a = s.triangles()[0].vertices()[0];
        let b = panned.triangles()[0].vertices()[0];
        assert!((a.pos.x - b.pos.x - 10.0).abs() < 1e-4);
        assert_eq!(a.uv, b.uv);
    }

    #[test]
    fn zoom_changes_density() {
        // Needs a texture big enough not to be fully touched either way,
        // so the density change is observable: teapot's single large one.
        let s = SceneBuilder::benchmark(Benchmark::TeapotFull).scale(0.12).build();
        let zoomed = zoomed_view(&s, 2.0);
        let before = SceneStats::measure(&s);
        let after = SceneStats::measure(&zoomed);
        // Zooming in doubles on-screen triangle size: unique texels per
        // screen pixel drop (textures are magnified).
        assert!(
            after.unique_texel_per_screen_pixel < before.unique_texel_per_screen_pixel,
            "zoom-in should magnify: {} vs {}",
            after.unique_texel_per_screen_pixel,
            before.unique_texel_per_screen_pixel
        );
    }

    #[test]
    fn zoom_preserves_screen_center() {
        let s = scene();
        let cx = s.screen().width() as f32 / 2.0;
        let cy = s.screen().height() as f32 / 2.0;
        let zoomed = zoomed_view(&s, 3.0);
        for (a, b) in s.triangles().iter().zip(zoomed.triangles()) {
            let pa = a.vertices()[0].pos;
            let pb = b.vertices()[0].pos;
            // Distances from center scale by exactly 3.
            let da = ((pa.x - cx).powi(2) + (pa.y - cy).powi(2)).sqrt();
            let db = ((pb.x - cx).powi(2) + (pb.y - cy).powi(2)).sqrt();
            assert!((db - 3.0 * da).abs() < 0.3 + da * 0.01, "{da} vs {db}");
        }
    }

    #[test]
    fn camera_path_accumulates() {
        let s = scene();
        let frames = camera_path(&s, 4, CameraStep::pan(5.0, 0.0));
        let x0 = frames[0].triangles()[0].vertices()[0].pos.x;
        let x3 = frames[3].triangles()[0].vertices()[0].pos.x;
        assert!((x0 - x3 - 15.0).abs() < 1e-3, "3 steps of 5 px: {x0} -> {x3}");
    }

    #[test]
    #[should_panic(expected = "zoom must be positive")]
    fn bad_zoom_panics() {
        zoomed_view(&scene(), 0.0);
    }
}
