//! `sortmid-diff`: attributed comparison of two run artefacts.
//!
//! Where the regression gate answers *did it get slower*, this tool
//! answers *what changed and why*: given two artefacts of the same kind
//! it computes exact signed deltas at every level the instrumentation
//! records and prints a ranked explanation. The three artefact families
//! are autodetected from their structure:
//!
//! * `BENCH_sweep.json` — per-config cycle deltas split by the five-way
//!   breakdown identity (setup / busy / bus-stall / starved / idle);
//! * `HEATMAP_<preset>.json` — tile-level delta grids per metric plane,
//!   owner flips, and per-node three-C miss-class movement; with
//!   `--ppm-dir` each changed plane renders as a diverging-palette PPM
//!   (blue improved, white unchanged, red regressed);
//! * `METRICS_<name>.json` — host phase wall-time movement, counter
//!   drift and log2-histogram distribution shifts.
//!
//! Both documents must carry comparable `provenance` blocks (same
//! schema, scene seed and config grid) — the tool refuses to attribute
//! deltas across incomparable runs. `--json <out>` writes the diff as a
//! `DIFF_*.json` document (`bench_check` validates the schema);
//! `--expect-zero` exits non-zero unless the diff is exactly zero at
//! every level, which is how tier-1 pins the self-diff identity on real
//! artefacts.
//!
//! Usage: `sortmid-diff <baseline.json> <current.json> [--json <out>]
//! [--ppm-dir <dir>] [--expect-zero] [--top N]`

use sortmid_devharness::json::Json;
use sortmid_observe::{diff::detect_kind, HeatmapDiff, MetricsDiff, SweepDiff};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Pixels drawn per tile in the delta PPMs (matches the heatmap bin).
const PX_PER_TILE: u32 = 8;

const USAGE: &str = "usage: sortmid-diff <baseline.json> <current.json> \
                     [--json <out>] [--ppm-dir <dir>] [--expect-zero] [--top N]";

fn load(path: &Path) -> Result<Json, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Diffs the pair, printing the explanation; returns `(diff document,
/// is_zero)`.
fn run_diff(
    base: &Json,
    cur: &Json,
    top: usize,
    ppm_dir: Option<&Path>,
) -> Result<(Json, bool), String> {
    let base_kind = detect_kind(base).ok_or("baseline: not a sweep/heatmap/metrics artefact")?;
    let cur_kind = detect_kind(cur).ok_or("current: not a sweep/heatmap/metrics artefact")?;
    if base_kind != cur_kind {
        return Err(format!(
            "artefact kinds differ: {base_kind} baseline vs {cur_kind} current"
        ));
    }
    match base_kind {
        "sweep" => {
            let d = SweepDiff::between(base, cur)?;
            println!(
                "sweep diff: {} shared configs, {} changed",
                d.configs.len(),
                d.ranked().len()
            );
            for line in d.explanation(top) {
                println!("  {line}");
            }
            Ok((d.to_json(), d.is_zero()))
        }
        "heatmap" => {
            let d = HeatmapDiff::between(base, cur)?;
            println!("heatmap diff: preset '{}', config {}", d.preset, d.config);
            for line in d.explanation() {
                println!("  {line}");
            }
            if let Some(dir) = ppm_dir {
                std::fs::create_dir_all(dir)
                    .map_err(|e| format!("create {}: {e}", dir.display()))?;
                for plane in &d.planes {
                    let path = dir.join(format!("DIFF_{}_{}.ppm", d.preset, plane.metric));
                    plane
                        .render(PX_PER_TILE)
                        .write_ppm(&path)
                        .map_err(|e| format!("write {}: {e}", path.display()))?;
                    println!("wrote {}", path.display());
                }
            }
            Ok((d.to_json(), d.is_zero()))
        }
        "metrics" => {
            let d = MetricsDiff::between(base, cur)?;
            println!(
                "metrics diff: {} shared phases, {} histograms",
                d.phases.len(),
                d.histograms.len()
            );
            for line in d.explanation(top) {
                println!("  {line}");
            }
            Ok((d.to_json(), d.is_zero()))
        }
        other => Err(format!("no differ for artefact kind '{other}'")),
    }
}

fn main() -> ExitCode {
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut json_out: Option<PathBuf> = None;
    let mut ppm_dir: Option<PathBuf> = None;
    let mut expect_zero = false;
    let mut top = 10usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => match args.next() {
                Some(p) => json_out = Some(PathBuf::from(p)),
                None => {
                    eprintln!("sortmid-diff: --json needs an output path\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--ppm-dir" => match args.next() {
                Some(p) => ppm_dir = Some(PathBuf::from(p)),
                None => {
                    eprintln!("sortmid-diff: --ppm-dir needs a directory\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--expect-zero" => expect_zero = true,
            "--top" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => top = n,
                _ => {
                    eprintln!("sortmid-diff: --top needs a positive integer\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => paths.push(PathBuf::from(other)),
        }
    }
    let [base_path, cur_path] = paths.as_slice() else {
        eprintln!("sortmid-diff: need exactly two artefact paths\n{USAGE}");
        return ExitCode::FAILURE;
    };

    let result = load(base_path)
        .and_then(|base| load(cur_path).map(|cur| (base, cur)))
        .and_then(|(base, cur)| run_diff(&base, &cur, top, ppm_dir.as_deref()));
    let (doc, zero) = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sortmid-diff: {e}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(out) = &json_out {
        if let Err(e) = std::fs::write(out, doc.render()) {
            eprintln!("sortmid-diff: write {}: {e}", out.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {}", out.display());
    }
    if expect_zero && !zero {
        eprintln!(
            "sortmid-diff: --expect-zero, but the artefacts differ \
             (see the attribution above)"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
