//! Figure 7 bench: full-machine speedups with a bounded bus.

use sortmid::{CacheKind, Distribution};
use sortmid_bench::{run_machine, stream};
use sortmid_devharness::Suite;
use sortmid_scene::Benchmark;
use std::hint::black_box;

fn main() {
    let s = stream(Benchmark::Truc640);
    let mut suite = Suite::new("fig7");

    for (label, procs, dist) in [
        ("block-16/16p", 16u32, Distribution::block(16)),
        ("sli-8/16p", 16, Distribution::sli(8)),
        ("block-16/64p", 64, Distribution::block(16)),
    ] {
        suite.bench_with_elements(label, s.fragment_count(), || {
            black_box(run_machine(
                &s,
                procs,
                dist.clone(),
                CacheKind::PaperL1,
                Some(1.0),
                10_000,
            ))
        });
    }

    // The artefact: the headline comparison at bench scale.
    let base = run_machine(&s, 1, Distribution::block(16), CacheKind::PaperL1, Some(1.0), 10_000);
    println!("\nFigure 7 speedups (truc640, 1 texel/pixel bus, bench scale):");
    for procs in [4u32, 16, 64] {
        let block =
            run_machine(&s, procs, Distribution::block(16), CacheKind::PaperL1, Some(1.0), 10_000);
        let sli_param = match procs {
            4 => 16,
            16 => 8,
            _ => 4,
        };
        let sli = run_machine(
            &s,
            procs,
            Distribution::sli(sli_param),
            CacheKind::PaperL1,
            Some(1.0),
            10_000,
        );
        println!(
            "  {procs:>2}p: block-16 {:.2}x vs sli-{sli_param} {:.2}x",
            block.speedup_vs(&base),
            sli.speedup_vs(&base)
        );
    }

    suite.finish();
}
