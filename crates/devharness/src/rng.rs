//! Deterministic generators for the dev harness.
//!
//! The harness keeps its own generators instead of reusing
//! `sortmid_util::rng::Pcg32` so that the dependency arrow points the right
//! way: every workspace crate (including `sortmid-util`) dev-depends on the
//! harness, so the harness itself must depend on nothing.

/// The splitmix64 generator (Steele, Lea, Flood; *Fast Splittable
/// Pseudorandom Number Generators*).
///
/// Used to expand a single `u64` seed into the larger state of
/// [`Xoshiro256`] and to derive per-case seeds in the property runner.
///
/// # Examples
///
/// ```
/// use sortmid_devharness::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64 bits of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// One-shot splitmix64 mix: hashes `x` to a decorrelated 64-bit value.
pub fn mix64(x: u64) -> u64 {
    SplitMix64::new(x).next_u64()
}

/// The xoshiro256** generator (Blackman & Vigna, *Scrambled Linear
/// Pseudorandom Number Generators*): the draw source behind property-test
/// choice tapes.
///
/// # Examples
///
/// ```
/// use sortmid_devharness::rng::Xoshiro256;
///
/// let mut rng = Xoshiro256::seed_from_u64(7);
/// let x = rng.next_f64();
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator by expanding `seed` through splitmix64 (the
    /// seeding procedure the xoshiro authors recommend).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256 {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Returns the next 64 bits of the stream.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns the next 32 bits of the stream.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // First outputs for seed 0, cross-checked against the published
        // reference implementation.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220A8397B1DCDAF);
        assert_eq!(sm.next_u64(), 0x6E789E6AA1B965F4);
        assert_eq!(sm.next_u64(), 0x06C45D188009454F);
    }

    #[test]
    fn xoshiro_is_deterministic() {
        let mut a = Xoshiro256::seed_from_u64(99);
        let mut b = Xoshiro256::seed_from_u64(99);
        for _ in 0..256 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = Xoshiro256::seed_from_u64(1);
        let mut b = Xoshiro256::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_centered() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        let n = 20_000;
        let mean = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn mix64_differs_from_identity() {
        assert_ne!(mix64(0), 0);
        assert_ne!(mix64(1), mix64(2));
    }
}
