//! Microbenchmarks of the simulator's hot kernels: cache probes, fragment
//! timing, rasterization, footprint resolution and owner computation.

use sortmid::Distribution;
use sortmid_bench::stream;
use sortmid_cache::{CacheGeometry, LineCache, SetAssocCache};
use sortmid_devharness::Suite;
use sortmid_memsys::{BusConfig, EngineTiming};
use sortmid_scene::{Benchmark, SceneBuilder};
use sortmid_texture::{TextureDesc, TextureRegistry, TrilinearSampler};
use std::hint::black_box;

fn bench_cache(suite: &mut Suite) {
    let accesses: Vec<u32> = {
        // Pseudo-random walk over 1024 lines with locality runs.
        let mut v = Vec::with_capacity(100_000);
        let mut x = 12345u32;
        let mut line = 0u32;
        for _ in 0..100_000 {
            x = x.wrapping_mul(1103515245).wrapping_add(12345);
            if x.is_multiple_of(8) {
                line = (x >> 8) % 1024;
            }
            v.push(line);
        }
        v
    };
    suite.bench_with_elements("cache/set_assoc_16k_4way", accesses.len() as u64, || {
        let mut cache = SetAssocCache::new(CacheGeometry::paper_l1());
        for &l in &accesses {
            black_box(cache.access_line(l));
        }
        cache.stats().misses()
    });
}

fn bench_engine(suite: &mut Suite) {
    suite.bench_with_elements("engine/fragment_timing", 100_000, || {
        let mut e = EngineTiming::new(BusConfig::ratio(1.0), Some(32));
        e.start_triangle(0);
        for i in 0..100_000u32 {
            e.fragment(if i % 7 == 0 { 1 } else { 0 });
        }
        e.finish_time()
    });
}

fn bench_raster(suite: &mut Suite) {
    let scene = SceneBuilder::benchmark(Benchmark::Quake).scale(0.12).build();
    suite.bench("raster/rasterize_quake", || {
        black_box(scene.rasterize()).fragment_count()
    });
}

fn bench_footprint(suite: &mut Suite) {
    let mut reg = TextureRegistry::new();
    let id = reg.register(TextureDesc::new(256, 256).unwrap()).unwrap();
    let sampler = TrilinearSampler::new(&reg);
    suite.bench_with_elements("footprint/trilinear_10k", 10_000, || {
        let mut acc = 0u64;
        for i in 0..10_000u32 {
            let u = (i % 251) as f32;
            let v = (i % 241) as f32;
            let fp = sampler.footprint(id, u, v, 1.3);
            acc = acc.wrapping_add(fp[0].index() as u64);
        }
        acc
    });
}

fn bench_owner(suite: &mut Suite) {
    let s = stream(Benchmark::Massive32_11255);
    for dist in [Distribution::block(16), Distribution::sli(4)] {
        let id = format!("distribution/owner/{}", dist.label());
        let d = dist.clone();
        suite.bench_with_elements(&id, s.fragment_count(), || {
            let mut acc = 0u64;
            for f in s.fragments() {
                acc += d.owner(f.x as i32, f.y as i32, 64) as u64;
            }
            acc
        });
    }
    let d = Distribution::block(16);
    suite.bench_with_elements(
        "distribution/overlap_mask/block-16",
        s.triangles().len() as u64,
        || {
            let mut acc = 0u32;
            for t in s.triangles() {
                acc = acc.wrapping_add(d.overlap_mask(&t.bbox, 64).count_ones());
            }
            acc
        },
    );
}

fn bench_trace_io(suite: &mut Suite) {
    let s = stream(Benchmark::Quake);
    suite.bench_with_elements("trace-io/write_stream", s.fragment_count(), || {
        let mut buf = Vec::with_capacity(42 * s.fragment_count() as usize);
        sortmid_raster::write_stream(&mut buf, &s).expect("in-memory write");
        buf.len()
    });
    let mut encoded = Vec::new();
    sortmid_raster::write_stream(&mut encoded, &s).expect("in-memory write");
    suite.bench_with_elements("trace-io/read_stream", s.fragment_count(), || {
        sortmid_raster::read_stream(encoded.as_slice())
            .expect("round trip")
            .fragment_count()
    });
}

fn main() {
    let mut suite = Suite::new("primitives");
    bench_cache(&mut suite);
    bench_engine(&mut suite);
    bench_raster(&mut suite);
    bench_footprint(&mut suite);
    bench_owner(&mut suite);
    bench_trace_io(&mut suite);
    suite.finish();
}
