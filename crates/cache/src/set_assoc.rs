//! The set-associative LRU cache simulator.

use crate::geometry::CacheGeometry;
use crate::stats::CacheStats;
use crate::LineCache;
use sortmid_observe::MissClassCounts;

/// Sentinel tag meaning "way is empty".
pub(crate) const EMPTY: u32 = u32::MAX;

/// SWAR zero-lane detector over two 32-bit lanes packed in a `u64`.
///
/// For `v = word ^ pattern`, returns a mask whose bit 31 is set when the
/// low lane of `v` is zero. Bit 63 is set when the high lane is zero *or*
/// when the low lane is zero and the high lane equals 1 (the subtraction's
/// borrow crosses the lane boundary only in that case) — a false positive
/// [`find_way4`] is proven to tolerate.
#[inline(always)]
fn lane_match_mask(v: u64) -> u64 {
    v.wrapping_sub(0x0000_0001_0000_0001) & !v & 0x8000_0000_8000_0000
}

/// Branch-free 4-way tag compare: index of the lowest way holding `line`.
///
/// Packs the four tags into two `u64`s and finds zero lanes of `tags ^
/// line` with [`lane_match_mask`]. The detector's only false positive is a
/// *high* lane reporting a match when its *low* lane truly matches and the
/// high tag is `line ^ 1`; because a set never holds duplicate tags, any
/// such phantom sits at a strictly higher way index than a real match, so
/// taking the lowest set bit always lands on the true way. `EMPTY`
/// (`u32::MAX`) never matches a valid line address.
#[inline(always)]
fn find_way4(set: &[u32; 4], line: u32) -> Option<usize> {
    let a = (set[0] as u64) | ((set[1] as u64) << 32);
    let b = (set[2] as u64) | ((set[3] as u64) << 32);
    let pat = (line as u64) | ((line as u64) << 32);
    let ma = lane_match_mask(a ^ pat);
    let mb = lane_match_mask(b ^ pat);
    // way i match -> bit i: lane indicators live at bits 31/63 of ma/mb.
    let bits = ((ma >> 31) & 1) | ((ma >> 62) & 2) | ((mb >> 29) & 4) | ((mb >> 60) & 8);
    if bits == 0 {
        None
    } else {
        Some(bits.trailing_zeros() as usize)
    }
}

/// A set-associative cache with true-LRU replacement, simulated at line
/// granularity.
///
/// Ways of a set are stored in recency order (index 0 = most recent), so a
/// hit is a short scan plus a rotate — fast for the small associativities
/// texture caches use.
///
/// # Examples
///
/// ```
/// use sortmid_cache::{CacheGeometry, LineCache, SetAssocCache};
///
/// let mut c = SetAssocCache::new(CacheGeometry::paper_l1());
/// c.access_line(7);
/// assert!(c.access_line(7));
/// assert_eq!(c.stats().hits(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    geometry: CacheGeometry,
    /// `sets() - 1`, precomputed: the per-access set lookup must not pay
    /// the division hiding inside [`CacheGeometry::sets`].
    set_mask: u32,
    /// `geometry.ways()`, precomputed for the same reason.
    ways: usize,
    /// `sets * ways` tags, each set's ways contiguous in recency order.
    tags: Vec<u32>,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Creates an empty cache with the given geometry.
    pub fn new(geometry: CacheGeometry) -> Self {
        SetAssocCache {
            geometry,
            set_mask: geometry.sets() - 1,
            ways: geometry.ways() as usize,
            tags: vec![EMPTY; (geometry.sets() * geometry.ways()) as usize],
            stats: CacheStats::new(),
        }
    }

    /// The cache's geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// True when `line` is currently resident (does not update LRU or
    /// statistics).
    pub fn probe(&self, line: u32) -> bool {
        debug_assert_ne!(line, EMPTY, "line address clashes with the empty sentinel");
        let ways = self.geometry.ways() as usize;
        let base = self.geometry.set_of(line) as usize * ways;
        self.tags[base..base + ways].contains(&line)
    }

    /// Number of resident lines (for tests; O(capacity)).
    pub fn resident_lines(&self) -> usize {
        self.tags.iter().filter(|&&t| t != EMPTY).count()
    }

    /// Probe-and-update core shared by the batched path: looks `line` up
    /// (branch-free compare for the ubiquitous 4-way geometry), applies the
    /// LRU update, and returns `true` on a hit — **without** touching
    /// statistics, which the caller records in bulk.
    ///
    /// The unified update `k = if hit { pos } else { ways - 1 };
    /// copy_within(0..k, 1); set[0] = line` is exactly the scalar path's
    /// hit-rotate / miss-evict pair, so eviction order stays identical.
    #[inline(always)]
    pub(crate) fn probe_insert(&mut self, line: u32) -> bool {
        debug_assert_ne!(line, EMPTY, "line address clashes with the empty sentinel");
        let ways = self.ways;
        let base = (line & self.set_mask) as usize * ways;
        if ways == 4 {
            // Fixed-width set: the compare, rotate and write-back all see a
            // compile-time length, so every bounds check folds away.
            let set: &mut [u32; 4] = (&mut self.tags[base..base + 4])
                .try_into()
                .expect("slice is 4 wide");
            let (hit, k) = match find_way4(set, line) {
                Some(0) => return true, // MRU hit: no reordering needed.
                Some(pos) => (true, pos),
                None => (false, 3),
            };
            set.copy_within(0..k, 1);
            set[0] = line;
            return hit;
        }
        let set = &mut self.tags[base..base + ways];
        let (hit, k) = match set.iter().position(|&t| t == line) {
            Some(0) => return true, // MRU hit: no reordering needed.
            Some(pos) => (true, pos),
            None => (false, ways - 1),
        };
        set.copy_within(0..k, 1);
        set[0] = line;
        hit
    }

    /// Bulk-records hits whose probes were provably skippable (consecutive
    /// duplicate lines are always MRU hits with no state change). Exposed
    /// to [`ClassifyingCache`](crate::ClassifyingCache), whose batched path
    /// skips the same runs but owns this cache privately.
    #[inline]
    pub(crate) fn record_lane_hits(&mut self, n: u64) {
        self.stats.record_hits(n);
    }
}

impl LineCache for SetAssocCache {
    #[inline]
    fn access_line(&mut self, line: u32) -> bool {
        debug_assert_ne!(line, EMPTY, "line address clashes with the empty sentinel");
        let ways = self.ways;
        let base = (line & self.set_mask) as usize * ways;
        let set = &mut self.tags[base..base + ways];
        let hit = match set.iter().position(|&t| t == line) {
            Some(pos) => {
                // Move to front (most recently used); hits on the MRU way
                // — the common case under texture locality — skip the
                // rotate entirely.
                if pos != 0 {
                    set[..=pos].rotate_right(1);
                }
                true
            }
            None => {
                // Evict LRU (the last slot) by shifting everything down.
                set.rotate_right(1);
                set[0] = line;
                false
            }
        };
        self.stats.record(hit);
        hit
    }

    /// Batched footprint probe: collapses consecutive duplicate lines
    /// (guaranteed MRU hits — common inside a 4×4-block trilinear
    /// footprint) and resolves the rest through the branch-free
    /// [`probe_insert`](Self::probe_insert) core. Statistics are recorded
    /// in bulk; the result is byte-identical to the scalar loop.
    #[inline]
    fn access_lane(
        &mut self,
        lane: &[u32],
        miss_out: &mut [u32],
        _classes: &mut MissClassCounts,
    ) -> usize {
        let mut misses = 0;
        let mut hits = 0u64;
        let mut prev = EMPTY;
        for &line in lane {
            if line == prev {
                hits += 1;
                continue;
            }
            prev = line;
            if self.probe_insert(line) {
                hits += 1;
            } else {
                miss_out[misses] = line;
                misses += 1;
            }
        }
        self.stats.record_hits(hits);
        self.stats.record_misses(misses as u64);
        misses
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn reset(&mut self) {
        self.tags.fill(EMPTY);
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::CacheGeometry;
    use sortmid_devharness::prop::{check, Config};
    use sortmid_devharness::prop_assert;

    fn tiny() -> SetAssocCache {
        // 4 sets x 2 ways x 64B lines = 512B.
        SetAssocCache::new(CacheGeometry::new(512, 2, 64).unwrap())
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access_line(0));
        assert!(c.access_line(0));
        assert_eq!(c.stats().accesses(), 2);
        assert_eq!(c.stats().misses(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny(); // set 0 holds lines {0, 4, 8, ...} with 2 ways
        c.access_line(0);
        c.access_line(4); // set 0 now [4, 0]
        c.access_line(0); // touch 0 -> [0, 4]
        c.access_line(8); // evicts 4 -> [8, 0]
        assert!(c.probe(0));
        assert!(c.probe(8));
        assert!(!c.probe(4));
        assert!(c.access_line(0), "0 must have survived");
    }

    #[test]
    fn sets_are_independent() {
        let mut c = tiny();
        // Fill set 0 far beyond capacity; set 1 must be untouched.
        for i in 0..16 {
            c.access_line(i * 4);
        }
        c.access_line(1);
        assert!(c.probe(1));
        assert!(c.access_line(1));
    }

    #[test]
    fn reset_clears_contents_and_stats() {
        let mut c = tiny();
        c.access_line(3);
        c.reset();
        assert_eq!(c.stats().accesses(), 0);
        assert!(!c.probe(3));
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn working_set_within_capacity_never_remisses() {
        // 256-line paper cache: a 64-line working set maps 1 line per set.
        let mut c = SetAssocCache::new(CacheGeometry::paper_l1());
        for round in 0..4 {
            for line in 0..64 {
                let hit = c.access_line(line);
                assert_eq!(hit, round > 0, "round {round} line {line}");
            }
        }
    }

    #[test]
    fn thrashing_set_always_misses() {
        let mut c = tiny(); // 2 ways
        // Three lines in one set, round-robin: classic LRU thrash.
        for _ in 0..10 {
            for line in [0, 4, 8] {
                c.access_line(line);
            }
        }
        // After warmup every access misses.
        let before = c.stats().misses();
        for line in [0, 4, 8] {
            assert!(!c.access_line(line));
        }
        assert_eq!(c.stats().misses(), before + 3);
    }

    /// Residency never exceeds capacity and a just-accessed line is
    /// always resident.
    #[test]
    fn prop_capacity_and_mru() {
        check(
            "capacity_and_mru",
            &Config::default(),
            |g| g.vec(1..200, |g| g.u32_in(0..64)),
            |lines| {
                let mut c = tiny();
                for &l in lines {
                    c.access_line(l);
                    prop_assert!(c.probe(l));
                    prop_assert!(c.resident_lines() <= 8);
                }
                Ok(())
            },
        );
    }

    #[test]
    fn find_way4_matches_linear_scan_on_adversarial_tags() {
        // The SWAR detector's only false positive needs tag == line ^ 1 in
        // the lane above a true match; duplicate-free sets make the lowest
        // set bit exact. Exercise exactly those shapes.
        let cases: [( [u32; 4], u32 ); 8] = [
            ([7, 7 ^ 1, EMPTY, EMPTY], 7),        // phantom right above the match
            ([7 ^ 1, 7, EMPTY, EMPTY], 7),        // xor-1 neighbour *below*: no borrow
            ([1, 2, 3, 4], 9),                    // pure miss
            ([9, 8, 3, 4], 9),                    // MRU hit, 8 == 9 ^ 1
            ([3, 4, 9, 8], 9),                    // hit in the second word
            ([3, 4, 8, 9], 9),                    // hit in the top lane
            ([EMPTY, EMPTY, EMPTY, EMPTY], 0),    // cold set
            ([0, 1, 2, 3], 0),                    // line 0 vs EMPTY sentinel
        ];
        for (set, line) in cases {
            assert_eq!(
                find_way4(&set, line),
                set.iter().position(|&t| t == line),
                "set {set:?} line {line}"
            );
        }
    }

    /// `find_way4` agrees with the linear scan on random duplicate-free
    /// sets, including planted `line ^ 1` phantoms.
    #[test]
    fn prop_find_way4_equals_position() {
        check(
            "find_way4_equals_position",
            &Config::default(),
            |g| {
                let line = g.u32_in(0..1 << 20);
                let tags = [
                    g.u32_in(0..1 << 20),
                    g.u32_in(0..1 << 20),
                    line ^ 1, // adversarial neighbour somewhere in the set
                    g.u32_in(0..1 << 20),
                ];
                (line, tags)
            },
            |&(line, mut tags)| {
                // Deduplicate: real sets never hold the same tag twice.
                for i in 1..4 {
                    while tags[..i].contains(&tags[i]) {
                        tags[i] = tags[i].wrapping_add(1) & 0x000F_FFFF;
                    }
                }
                prop_assert!(
                    find_way4(&tags, line) == tags.iter().position(|&t| t == line),
                    "set {tags:?} line {line}"
                );
                Ok(())
            },
        );
    }

    /// The batched lane probe leaves the cache in exactly the state the
    /// scalar loop would: same stats, same miss lines, same residency and
    /// eviction order.
    #[test]
    fn prop_access_lane_equals_scalar_loop() {
        check(
            "access_lane_equals_scalar_loop",
            &Config::default(),
            |g| {
                g.vec(1..40, |g| {
                    let len = g.usize_in(1..9);
                    // Small line space with explicit runs of duplicates.
                    let mut lane = Vec::with_capacity(len);
                    let mut cur = g.u32_in(0..48);
                    for _ in 0..len {
                        if g.bool() {
                            cur = g.u32_in(0..48);
                        }
                        lane.push(cur);
                    }
                    lane
                })
            },
            |lanes| {
                for geometry in [
                    CacheGeometry::new(512, 2, 64).unwrap(),
                    CacheGeometry::paper_l1(), // 4-way: SWAR path
                ] {
                    let mut batched = SetAssocCache::new(geometry);
                    let mut scalar = SetAssocCache::new(geometry);
                    for lane in lanes {
                        let mut miss_out = [0u32; 16];
                        let mut classes = MissClassCounts::default();
                        let n = batched.access_lane(lane, &mut miss_out, &mut classes);
                        let mut expect = Vec::new();
                        for &line in lane {
                            if !scalar.access_line(line) {
                                expect.push(line);
                            }
                        }
                        prop_assert!(
                            miss_out[..n] == expect[..],
                            "miss lines diverge: {:?} vs {expect:?}",
                            &miss_out[..n]
                        );
                        prop_assert!(classes == MissClassCounts::default());
                    }
                    prop_assert!(batched.stats() == scalar.stats());
                    prop_assert!(batched.tags == scalar.tags, "residency/eviction diverged");
                }
                Ok(())
            },
        );
    }

    /// The W most recent distinct lines of one set are all resident
    /// (true-LRU inclusion property).
    #[test]
    fn prop_lru_inclusion() {
        check(
            "lru_inclusion",
            &Config::default(),
            |g| g.vec(1..100, |g| g.u32_in(0..6)),
            |seq| {
                let mut c = tiny(); // 2 ways
                // Map everything into set 0 so recency is the only factor.
                let seq: Vec<u32> = seq.iter().map(|&x| x * 4).collect();
                for (i, &l) in seq.iter().enumerate() {
                    c.access_line(l);
                    // Find the last 2 distinct lines ending at i.
                    let mut distinct = Vec::new();
                    for &p in seq[..=i].iter().rev() {
                        if !distinct.contains(&p) {
                            distinct.push(p);
                        }
                        if distinct.len() == 2 {
                            break;
                        }
                    }
                    for &d in &distinct {
                        prop_assert!(c.probe(d), "line {d} should be resident after step {i}");
                    }
                }
                Ok(())
            },
        );
    }
}
