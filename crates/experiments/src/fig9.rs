//! Figure 9 — benchmark images.
//!
//! Renders the three scenes the paper shows (`teapot.full`, `room3`,
//! `quake`) as PPM images, plus a depth-complexity heat map of each (the
//! clustering that drives Figure 5's load imbalance).

use sortmid_scene::{render, Benchmark, SceneBuilder};
use std::io;
use std::path::{Path, PathBuf};

/// The scenes Figure 9 shows.
pub const FIG9_SCENES: [Benchmark; 3] = [Benchmark::TeapotFull, Benchmark::Room3, Benchmark::Quake];

/// Renders each Figure 9 scene (color + depth map) into `out_dir` at
/// `scale`; returns the written paths.
///
/// # Errors
///
/// Returns any I/O error from creating the directory or writing files.
pub fn run(out_dir: &Path, scale: f64) -> io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(out_dir)?;
    let mut written = Vec::new();
    for b in FIG9_SCENES {
        let scene = SceneBuilder::benchmark(b).scale(scale).build();
        let name = b.name().replace('.', "_");

        let color = render::render_color(&scene);
        let color_path = out_dir.join(format!("{name}.ppm"));
        color.write_ppm(&color_path)?;
        written.push(color_path);

        let depth = render::render_depth_map(&scene);
        let depth_path = out_dir.join(format!("{name}_depth.ppm"));
        depth.write_ppm(&depth_path)?;
        written.push(depth_path);
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_six_images() {
        let dir = std::env::temp_dir().join("sortmid_fig9_test");
        let paths = run(&dir, 0.08).unwrap();
        assert_eq!(paths.len(), 6);
        for p in &paths {
            let meta = std::fs::metadata(p).unwrap();
            assert!(meta.len() > 100, "{p:?} too small");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
