//! Per-tile and per-node attribution of fragments, setup cycles and
//! classified cache misses.
//!
//! [`SpatialCollector`] is a [`TraceSink`](crate::TraceSink) that listens
//! to the machine's *spatial* hooks (per-fragment samples and per-triangle
//! setup padding) instead of the temporal event stream. During a traced
//! run it bins every sample into a [`ScreenGrid`] of [`TileStats`] and
//! keeps per-node totals, answering the paper's *where* questions: which
//! tiles carry the depth-complexity hotspots, where the setup floor burns
//! cycles, and where the three-C classifier places the locality loss that
//! makes SLI's best group size shrink.
//!
//! The miss classes mirror `sortmid-cache`'s classifier; [`MissClass`]
//! lives here (the substrate crate) so the cache crate can report classes
//! through the sink without a dependency cycle.

use crate::heatmap::ScreenGrid;
use crate::sink::TraceSink;
use crate::{Cycle, TraceEvent};
use sortmid_devharness::json::Json;
use std::fmt;

/// The classification of one cache miss, per the standard three-C model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MissClass {
    /// First-ever access to the line (misses in any cache).
    Compulsory,
    /// A fully-associative LRU cache of equal capacity would also miss.
    Capacity,
    /// Only the set-associative cache misses (associativity artefact).
    Conflict,
}

/// Counters of classified misses, one per [`MissClass`].
///
/// # Examples
///
/// ```
/// use sortmid_observe::{MissClass, MissClassCounts};
///
/// let mut c = MissClassCounts::default();
/// c.add(MissClass::Compulsory);
/// c.add(MissClass::Conflict);
/// assert_eq!(c.total(), 2);
/// assert_eq!(c.compulsory, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MissClassCounts {
    /// Classified-compulsory misses.
    pub compulsory: u64,
    /// Classified-capacity misses.
    pub capacity: u64,
    /// Classified-conflict misses.
    pub conflict: u64,
}

impl MissClassCounts {
    /// Counts one classified miss.
    #[inline]
    pub fn add(&mut self, class: MissClass) {
        match class {
            MissClass::Compulsory => self.compulsory += 1,
            MissClass::Capacity => self.capacity += 1,
            MissClass::Conflict => self.conflict += 1,
        }
    }

    /// Sum over the three classes.
    pub fn total(&self) -> u64 {
        self.compulsory + self.capacity + self.conflict
    }

    /// Accumulates another counter set into this one.
    pub fn merge(&mut self, other: &MissClassCounts) {
        self.compulsory += other.compulsory;
        self.capacity += other.capacity;
        self.conflict += other.conflict;
    }
}

impl fmt::Display for MissClassCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "compulsory={} capacity={} conflict={}",
            self.compulsory, self.capacity, self.conflict
        )
    }
}

/// Per-tile accumulators of one traced run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TileStats {
    /// Fragments drawn in the tile. Divided by the tile's pixel area this
    /// is the tile's depth complexity.
    pub fragments: u64,
    /// Setup-floor padding cycles attributed to the tile (anchored at each
    /// triangle's bounding-box origin).
    pub setup_cycles: u64,
    /// Texture lines fetched for the tile's fragments (×16 texels per line
    /// and ÷ [`fragments`](Self::fragments) gives the tile's
    /// texel-to-fragment ratio).
    pub lines_fetched: u64,
    /// Three-C split of the tile's misses (zero for unclassified caches).
    pub misses: MissClassCounts,
    /// Node that drew the tile's most recent fragment. With the static
    /// distributions a tile no coarser than the distribution granularity
    /// has exactly one owner, so "last" is "the" owner there.
    pub owner: u32,
}

/// A [`TraceSink`] that accumulates spatial attribution: a
/// [`ScreenGrid`] of [`TileStats`] plus per-node fragment/miss/setup
/// totals. It ignores the temporal event stream, so it composes cheaply
/// with big runs.
///
/// # Examples
///
/// ```
/// use sortmid_observe::{MissClassCounts, SpatialCollector, TraceSink};
///
/// let mut col = SpatialCollector::new(64, 64, 16, 4);
/// col.record_fragment(1, 20, 8, 2, MissClassCounts::default());
/// assert_eq!(col.grid().cell(1, 0).fragments, 1);
/// assert_eq!(col.node_fragments()[1], 1);
/// assert_eq!(col.fragment_total(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct SpatialCollector {
    grid: ScreenGrid<TileStats>,
    node_fragments: Vec<u64>,
    node_lines: Vec<u64>,
    node_setup: Vec<u64>,
    node_misses: Vec<MissClassCounts>,
}

impl SpatialCollector {
    /// A collector for a `width`×`height` screen binned at `tile` pixels,
    /// with `procs` per-node accumulators.
    ///
    /// # Panics
    ///
    /// Panics if the screen is empty, `tile` is zero, or `procs` is zero.
    pub fn new(width: u32, height: u32, tile: u32, procs: u32) -> Self {
        assert!(procs > 0, "collector needs at least one node");
        SpatialCollector {
            grid: ScreenGrid::new(width, height, tile),
            node_fragments: vec![0; procs as usize],
            node_lines: vec![0; procs as usize],
            node_setup: vec![0; procs as usize],
            node_misses: vec![MissClassCounts::default(); procs as usize],
        }
    }

    /// The filled per-tile grid.
    pub fn grid(&self) -> &ScreenGrid<TileStats> {
        &self.grid
    }

    /// Fragments drawn per node.
    pub fn node_fragments(&self) -> &[u64] {
        &self.node_fragments
    }

    /// Lines fetched per node.
    pub fn node_lines(&self) -> &[u64] {
        &self.node_lines
    }

    /// Setup-floor padding cycles per node.
    pub fn node_setup(&self) -> &[u64] {
        &self.node_setup
    }

    /// Classified misses per node.
    pub fn node_misses(&self) -> &[MissClassCounts] {
        &self.node_misses
    }

    /// Total fragments seen (equals the run report's fragment count).
    pub fn fragment_total(&self) -> u64 {
        self.node_fragments.iter().sum()
    }

    /// Gini coefficient of the per-node fragment load (0 = perfectly even,
    /// → 1 = one node drew everything).
    pub fn fragment_gini(&self) -> f64 {
        let loads: Vec<f64> = self.node_fragments.iter().map(|&f| f as f64).collect();
        sortmid_util::stats::gini(&loads)
    }

    /// The `HEATMAP_<preset>.json` document: grid geometry, per-tile rows
    /// for each metric, and per-node totals with the three-C identity
    /// `compulsory + capacity + conflict == misses` that `bench_check`
    /// enforces.
    pub fn to_json(&self, preset: &str, config: &str) -> Json {
        let g = &self.grid;
        Json::obj([
            ("preset", Json::str(preset)),
            ("config", Json::str(config)),
            (
                "screen",
                Json::obj([
                    ("width", Json::U64(g.width() as u64)),
                    ("height", Json::U64(g.height() as u64)),
                ]),
            ),
            ("tile", Json::U64(g.tile() as u64)),
            ("cols", Json::U64(g.cols() as u64)),
            ("rows", Json::U64(g.rows() as u64)),
            ("fragments", Json::U64(self.fragment_total())),
            ("fragment_gini", Json::F64(self.fragment_gini())),
            (
                "tiles",
                Json::obj([
                    ("fragments", g.rows_json(|t| Json::U64(t.fragments))),
                    ("setup_cycles", g.rows_json(|t| Json::U64(t.setup_cycles))),
                    ("lines_fetched", g.rows_json(|t| Json::U64(t.lines_fetched))),
                    ("miss_compulsory", g.rows_json(|t| Json::U64(t.misses.compulsory))),
                    ("miss_capacity", g.rows_json(|t| Json::U64(t.misses.capacity))),
                    ("miss_conflict", g.rows_json(|t| Json::U64(t.misses.conflict))),
                    ("owner", g.rows_json(|t| Json::U64(t.owner as u64))),
                ]),
            ),
            (
                "nodes",
                Json::arr((0..self.node_fragments.len()).map(|i| {
                    let m = &self.node_misses[i];
                    Json::obj([
                        ("node", Json::U64(i as u64)),
                        ("fragments", Json::U64(self.node_fragments[i])),
                        ("setup_cycles", Json::U64(self.node_setup[i])),
                        ("misses", Json::U64(m.total())),
                        ("compulsory", Json::U64(m.compulsory)),
                        ("capacity", Json::U64(m.capacity)),
                        ("conflict", Json::U64(m.conflict)),
                    ])
                })),
            ),
        ])
    }
}

impl TraceSink for SpatialCollector {
    /// The temporal stream is ignored — this sink is purely spatial.
    #[inline(always)]
    fn record(&mut self, _event: TraceEvent) {}

    #[inline]
    fn record_fragment(&mut self, node: u32, x: u16, y: u16, lines: u32, classes: MissClassCounts) {
        let tile = self.grid.at(x as u32, y as u32);
        tile.fragments += 1;
        tile.lines_fetched += lines as u64;
        tile.misses.merge(&classes);
        tile.owner = node;
        let n = node as usize;
        self.node_fragments[n] += 1;
        self.node_lines[n] += lines as u64;
        self.node_misses[n].merge(&classes);
    }

    #[inline]
    fn record_setup(&mut self, node: u32, x: u16, y: u16, padding: Cycle) {
        if padding > 0 {
            self.grid.at(x as u32, y as u32).setup_cycles += padding;
            self.node_setup[node as usize] += padding;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classes(c: u64, k: u64, f: u64) -> MissClassCounts {
        MissClassCounts {
            compulsory: c,
            capacity: k,
            conflict: f,
        }
    }

    #[test]
    fn fragments_and_misses_bin_by_tile_and_node() {
        let mut col = SpatialCollector::new(32, 32, 16, 2);
        col.record_fragment(0, 0, 0, 3, classes(2, 1, 0));
        col.record_fragment(1, 20, 20, 1, classes(1, 0, 0));
        col.record_fragment(1, 21, 20, 0, classes(0, 0, 0));
        assert_eq!(col.grid().cell(0, 0).fragments, 1);
        assert_eq!(col.grid().cell(1, 1).fragments, 2);
        assert_eq!(col.grid().cell(1, 1).owner, 1);
        assert_eq!(col.node_fragments(), &[1, 2]);
        assert_eq!(col.node_lines(), &[3, 1]);
        assert_eq!(col.node_misses()[0].total(), 3);
        assert_eq!(col.fragment_total(), 3);
    }

    #[test]
    fn setup_padding_accumulates_at_the_anchor() {
        let mut col = SpatialCollector::new(64, 64, 16, 1);
        col.record_setup(0, 17, 2, 20);
        col.record_setup(0, 17, 2, 5);
        col.record_setup(0, 0, 0, 0); // zero padding leaves no trace
        assert_eq!(col.grid().cell(1, 0).setup_cycles, 25);
        assert_eq!(col.grid().cell(0, 0).setup_cycles, 0);
        assert_eq!(col.node_setup(), &[25]);
    }

    #[test]
    fn json_carries_grid_geometry_and_node_identity() {
        let mut col = SpatialCollector::new(32, 16, 16, 2);
        col.record_fragment(1, 16, 0, 2, classes(1, 1, 0));
        let doc = col.to_json("demo", "2p/block-16");
        assert_eq!(doc.get("preset").and_then(Json::as_str), Some("demo"));
        assert_eq!(doc.get("cols").and_then(Json::as_u64), Some(2));
        assert_eq!(doc.get("rows").and_then(Json::as_u64), Some(1));
        assert_eq!(doc.get("fragments").and_then(Json::as_u64), Some(1));
        let nodes = doc.get("nodes").and_then(Json::as_arr).unwrap();
        assert_eq!(nodes.len(), 2);
        let n1 = &nodes[1];
        assert_eq!(n1.get("misses").and_then(Json::as_u64), Some(2));
        assert_eq!(
            n1.get("compulsory").and_then(Json::as_u64).unwrap()
                + n1.get("capacity").and_then(Json::as_u64).unwrap()
                + n1.get("conflict").and_then(Json::as_u64).unwrap(),
            2
        );
    }

    #[test]
    fn gini_is_zero_for_even_load() {
        let mut col = SpatialCollector::new(16, 16, 8, 2);
        col.record_fragment(0, 0, 0, 0, MissClassCounts::default());
        col.record_fragment(1, 8, 8, 0, MissClassCounts::default());
        assert!(col.fragment_gini().abs() < 1e-12);
    }
}
