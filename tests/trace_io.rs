//! Capture/replay round trips through the on-disk trace formats.

use sortmid::{CacheKind, Distribution, Machine, MachineConfig};
use sortmid_raster::{read_stream, write_stream};
use sortmid_scene::{read_scene, write_scene, Benchmark, SceneBuilder};

#[test]
fn scene_file_round_trip_replays_identically() {
    let scene = SceneBuilder::benchmark(Benchmark::Massive11255).scale(0.08).build();
    let dir = std::env::temp_dir().join("sortmid_trace_io_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("scene.smsc");

    let file = std::fs::File::create(&path).unwrap();
    write_scene(std::io::BufWriter::new(file), &scene).unwrap();
    let back = read_scene(std::io::BufReader::new(std::fs::File::open(&path).unwrap())).unwrap();

    let config = MachineConfig::builder()
        .processors(8)
        .distribution(Distribution::block(16))
        .cache(CacheKind::PaperL1)
        .build()
        .unwrap();
    let a = Machine::new(config.clone()).run(&scene.rasterize());
    let b = Machine::new(config).run(&back.rasterize());
    assert_eq!(a.total_cycles(), b.total_cycles());
    assert_eq!(a.cache_totals().misses(), b.cache_totals().misses());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stream_file_round_trip_replays_identically() {
    let stream = SceneBuilder::benchmark(Benchmark::Quake)
        .scale(0.08)
        .build()
        .rasterize();
    let mut buf = Vec::new();
    write_stream(&mut buf, &stream).unwrap();
    let back = read_stream(buf.as_slice()).unwrap();

    let config = MachineConfig::builder()
        .processors(16)
        .distribution(Distribution::sli(4))
        .cache(CacheKind::PaperL1)
        .triangle_buffer(50)
        .build()
        .unwrap();
    let a = Machine::new(config.clone()).run(&stream);
    let b = Machine::new(config).run(&back);
    assert_eq!(a.total_cycles(), b.total_cycles());
    assert_eq!(a.texel_to_fragment(), b.texel_to_fragment());
}

#[test]
fn stream_files_are_compact() {
    // 40-byte fragments plus small fixed overhead: the format should not
    // balloon beyond ~44 bytes per fragment.
    let stream = SceneBuilder::benchmark(Benchmark::Blowout775)
        .scale(0.08)
        .build()
        .rasterize();
    let mut buf = Vec::new();
    write_stream(&mut buf, &stream).unwrap();
    let per_fragment = buf.len() as f64 / stream.fragment_count() as f64;
    assert!(per_fragment < 44.0, "{per_fragment:.1} bytes/fragment");
}
