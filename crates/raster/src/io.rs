//! Binary serialization of fragment streams.
//!
//! Rasterizing a full-scale scene takes far longer than simulating one
//! machine configuration over it, so the harness supports capturing the
//! stream once and replaying it many times — the same role the paper's
//! Mesa-captured triangle traces played. The format is a compact
//! little-endian binary with a magic/version header; it is host-independent
//! because the whole pipeline is deterministic.

use crate::fragment::{Fragment, TriangleRecord};
use crate::stream::FragmentStream;
use sortmid_geom::Rect;
use sortmid_texture::{TexelAddr, TextureId, TEXELS_PER_FRAGMENT};
use std::fmt;
use std::io::{self, Read, Write};

/// Magic bytes of the stream format ("SortMid Fragment Stream").
pub const MAGIC: [u8; 4] = *b"SMFS";
/// Current format version.
pub const VERSION: u32 = 1;

/// Errors from reading a serialized stream.
#[derive(Debug)]
pub enum StreamIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The input does not start with the `SMFS` magic.
    BadMagic([u8; 4]),
    /// Unsupported format version.
    BadVersion(u32),
    /// Structurally invalid payload (counts/ranges inconsistent).
    Corrupt(&'static str),
}

impl fmt::Display for StreamIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamIoError::Io(e) => write!(f, "i/o error: {e}"),
            StreamIoError::BadMagic(m) => write!(f, "bad magic {m:?}, not a fragment stream"),
            StreamIoError::BadVersion(v) => write!(f, "unsupported stream version {v}"),
            StreamIoError::Corrupt(what) => write!(f, "corrupt stream: {what}"),
        }
    }
}

impl std::error::Error for StreamIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StreamIoError {
    fn from(e: io::Error) -> Self {
        StreamIoError::Io(e)
    }
}

fn put_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn put_i32(w: &mut impl Write, v: i32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn get_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn get_i32(r: &mut impl Read) -> io::Result<i32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(i32::from_le_bytes(b))
}

fn get_u16(r: &mut impl Read) -> io::Result<u16> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}

/// Writes `stream` to `w`.
///
/// # Errors
///
/// Propagates I/O errors from the writer. A `&mut` reference can be passed
/// as the writer.
///
/// # Examples
///
/// ```
/// use sortmid_raster::io::{read_stream, write_stream};
/// # use sortmid_geom::{Rect, Triangle, Vertex};
/// # use sortmid_texture::{TextureDesc, TextureRegistry};
/// # use sortmid_raster::rasterize;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let mut reg = TextureRegistry::new();
/// # let tex = reg.register(TextureDesc::new(32, 32)?)?;
/// # let tri = Triangle::new(tex.0, [Vertex::new(0.0, 0.0, 0.0, 0.0),
/// #     Vertex::new(8.0, 0.0, 8.0, 0.0), Vertex::new(0.0, 8.0, 0.0, 8.0)]);
/// # let stream = rasterize(&[tri], &reg, Rect::of_size(32, 32));
/// let mut buf = Vec::new();
/// write_stream(&mut buf, &stream)?;
/// let back = read_stream(&mut buf.as_slice())?;
/// assert_eq!(back.fragment_count(), stream.fragment_count());
/// # Ok(())
/// # }
/// ```
pub fn write_stream<W: Write>(mut w: W, stream: &FragmentStream) -> io::Result<()> {
    w.write_all(&MAGIC)?;
    put_u32(&mut w, VERSION)?;
    let screen = stream.screen();
    for v in [screen.x0, screen.y0, screen.x1, screen.y1] {
        put_i32(&mut w, v)?;
    }
    put_u32(&mut w, stream.triangles().len() as u32)?;
    put_u32(&mut w, stream.fragments().len() as u32)?;
    for t in stream.triangles() {
        put_u32(&mut w, t.texture.0)?;
        for v in [t.bbox.x0, t.bbox.y0, t.bbox.x1, t.bbox.y1] {
            put_i32(&mut w, v)?;
        }
        put_u32(&mut w, t.frag_start)?;
        put_u32(&mut w, t.frag_end)?;
    }
    for f in stream.fragments() {
        w.write_all(&f.x.to_le_bytes())?;
        w.write_all(&f.y.to_le_bytes())?;
        for t in &f.texels {
            put_u32(&mut w, t.index())?;
        }
    }
    w.flush()
}

/// Reads a stream previously written by [`write_stream`].
///
/// # Errors
///
/// Returns [`StreamIoError`] on I/O failure, bad magic/version, or a
/// structurally inconsistent payload. A `&mut` reference can be passed as
/// the reader.
pub fn read_stream<R: Read>(mut r: R) -> Result<FragmentStream, StreamIoError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(StreamIoError::BadMagic(magic));
    }
    let version = get_u32(&mut r)?;
    if version != VERSION {
        return Err(StreamIoError::BadVersion(version));
    }
    let screen = Rect::new(get_i32(&mut r)?, get_i32(&mut r)?, get_i32(&mut r)?, get_i32(&mut r)?);
    let tri_count = get_u32(&mut r)? as usize;
    let frag_count = get_u32(&mut r)? as usize;
    // Arbitrary sanity bound: 1 GiB of fragments.
    if frag_count > (1 << 30) / 40 || tri_count > 1 << 28 {
        return Err(StreamIoError::Corrupt("implausible counts"));
    }
    let mut triangles = Vec::with_capacity(tri_count);
    for _ in 0..tri_count {
        let texture = TextureId(get_u32(&mut r)?);
        let bbox = Rect::new(get_i32(&mut r)?, get_i32(&mut r)?, get_i32(&mut r)?, get_i32(&mut r)?);
        let frag_start = get_u32(&mut r)?;
        let frag_end = get_u32(&mut r)?;
        if frag_start > frag_end || frag_end as usize > frag_count {
            return Err(StreamIoError::Corrupt("fragment range out of bounds"));
        }
        triangles.push(TriangleRecord {
            texture,
            bbox,
            frag_start,
            frag_end,
        });
    }
    let mut fragments = Vec::with_capacity(frag_count);
    for _ in 0..frag_count {
        let x = get_u16(&mut r)?;
        let y = get_u16(&mut r)?;
        let mut texels = [TexelAddr::from_index(0); TEXELS_PER_FRAGMENT];
        for t in &mut texels {
            *t = TexelAddr::from_index(get_u32(&mut r)?);
        }
        fragments.push(Fragment { x, y, texels });
    }
    FragmentStream::from_parts(screen, triangles, fragments)
        .map_err(|_| StreamIoError::Corrupt("records do not tile the fragment array"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rasterize;
    use sortmid_geom::{Triangle, Vertex};
    use sortmid_texture::{TextureDesc, TextureRegistry};

    fn sample_stream() -> FragmentStream {
        let mut reg = TextureRegistry::new();
        let a = reg.register(TextureDesc::new(64, 64).unwrap()).unwrap();
        let b = reg.register(TextureDesc::new(32, 32).unwrap()).unwrap();
        let tris = vec![
            Triangle::new(
                a.0,
                [
                    Vertex::new(0.0, 0.0, 0.0, 0.0),
                    Vertex::new(20.0, 0.0, 40.0, 0.0),
                    Vertex::new(0.0, 20.0, 0.0, 40.0),
                ],
            ),
            Triangle::new(
                b.0,
                [
                    Vertex::new(100.0, 100.0, 0.0, 0.0), // off screen
                    Vertex::new(120.0, 100.0, 8.0, 0.0),
                    Vertex::new(100.0, 120.0, 0.0, 8.0),
                ],
            ),
            Triangle::new(
                b.0,
                [
                    Vertex::new(10.0, 10.0, 0.0, 0.0),
                    Vertex::new(30.0, 12.0, 16.0, 0.0),
                    Vertex::new(12.0, 30.0, 0.0, 16.0),
                ],
            ),
        ];
        rasterize(&tris, &reg, Rect::of_size(64, 64))
    }

    #[test]
    fn round_trip_preserves_everything() {
        let stream = sample_stream();
        let mut buf = Vec::new();
        write_stream(&mut buf, &stream).unwrap();
        let back = read_stream(buf.as_slice()).unwrap();
        assert_eq!(back.screen(), stream.screen());
        assert_eq!(back.triangles(), stream.triangles());
        assert_eq!(back.fragments(), stream.fragments());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = read_stream(&b"NOPE...."[..]).unwrap_err();
        assert!(matches!(err, StreamIoError::BadMagic(_)));
        assert!(err.to_string().contains("bad magic"));
    }

    #[test]
    fn bad_version_is_rejected() {
        let mut buf = Vec::new();
        write_stream(&mut buf, &sample_stream()).unwrap();
        buf[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            read_stream(buf.as_slice()).unwrap_err(),
            StreamIoError::BadVersion(99)
        ));
    }

    #[test]
    fn truncated_input_is_an_io_error() {
        let mut buf = Vec::new();
        write_stream(&mut buf, &sample_stream()).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(matches!(
            read_stream(buf.as_slice()).unwrap_err(),
            StreamIoError::Io(_)
        ));
    }

    #[test]
    fn corrupt_ranges_are_rejected() {
        let stream = sample_stream();
        let mut buf = Vec::new();
        write_stream(&mut buf, &stream).unwrap();
        // Overwrite the first triangle's frag_end (offset: 4 magic + 4
        // version + 16 screen + 8 counts + 4 texture + 16 bbox + 4 start).
        let off = 4 + 4 + 16 + 8 + 4 + 16 + 4;
        buf[off..off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = read_stream(buf.as_slice()).unwrap_err();
        assert!(matches!(err, StreamIoError::Corrupt(_)), "{err}");
    }

    #[test]
    fn replay_after_round_trip_is_identical() {
        // The serialized stream must drive the machine identically; checked
        // here via fragment-level equality of per-triangle slices.
        let stream = sample_stream();
        let mut buf = Vec::new();
        write_stream(&mut buf, &stream).unwrap();
        let back = read_stream(buf.as_slice()).unwrap();
        for (a, b) in stream.triangles().iter().zip(back.triangles()) {
            assert_eq!(stream.fragments_of(a), back.fragments_of(b));
        }
    }
}
