//! Binary serialization of generated scenes.
//!
//! A full-scale scene takes seconds to generate and calibrate; capturing it
//! to disk lets the harness treat scenes exactly like the paper treated its
//! Mesa-captured traces: generate (capture) once, replay everywhere. The
//! format stores the screen, the texture registry's shapes and the triangle
//! stream; everything else (mip chains, blocked addresses) is recomputed on
//! load, which keeps the format small and version-stable.

use crate::generate::Scene;
use sortmid_geom::{Rect, Triangle, Vertex};
use sortmid_texture::{TextureDesc, TextureRegistry};
use std::fmt;
use std::io::{self, Read, Write};

/// Magic bytes of the scene format ("SortMid SCene").
pub const MAGIC: [u8; 4] = *b"SMSC";
/// Current format version.
pub const VERSION: u32 = 1;

/// Errors from reading a serialized scene.
#[derive(Debug)]
pub enum SceneIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The input does not start with the `SMSC` magic.
    BadMagic([u8; 4]),
    /// Unsupported format version.
    BadVersion(u32),
    /// Structurally invalid payload.
    Corrupt(&'static str),
}

impl fmt::Display for SceneIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SceneIoError::Io(e) => write!(f, "i/o error: {e}"),
            SceneIoError::BadMagic(m) => write!(f, "bad magic {m:?}, not a scene file"),
            SceneIoError::BadVersion(v) => write!(f, "unsupported scene version {v}"),
            SceneIoError::Corrupt(what) => write!(f, "corrupt scene: {what}"),
        }
    }
}

impl std::error::Error for SceneIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SceneIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SceneIoError {
    fn from(e: io::Error) -> Self {
        SceneIoError::Io(e)
    }
}

fn put_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn put_f32(w: &mut impl Write, v: f32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn get_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn get_f32(r: &mut impl Read) -> io::Result<f32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(f32::from_le_bytes(b))
}

/// Writes `scene` to `w` (a `&mut` reference works as the writer).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Examples
///
/// ```
/// use sortmid_scene::io::{read_scene, write_scene};
/// use sortmid_scene::{Benchmark, SceneBuilder};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let scene = SceneBuilder::benchmark(Benchmark::Quake).scale(0.05).build();
/// let mut buf = Vec::new();
/// write_scene(&mut buf, &scene)?;
/// let back = read_scene(buf.as_slice())?;
/// assert_eq!(back.triangles(), scene.triangles());
/// # Ok(())
/// # }
/// ```
pub fn write_scene<W: Write>(mut w: W, scene: &Scene) -> io::Result<()> {
    w.write_all(&MAGIC)?;
    put_u32(&mut w, VERSION)?;
    let name = scene.name().as_bytes();
    put_u32(&mut w, name.len() as u32)?;
    w.write_all(name)?;
    put_u32(&mut w, scene.screen().width())?;
    put_u32(&mut w, scene.screen().height())?;
    put_u32(&mut w, scene.registry().len() as u32)?;
    for id in scene.registry().ids() {
        let desc = scene.registry().desc(id);
        put_u32(&mut w, desc.width())?;
        put_u32(&mut w, desc.height())?;
    }
    put_u32(&mut w, scene.triangles().len() as u32)?;
    for tri in scene.triangles() {
        put_u32(&mut w, tri.texture())?;
        for v in tri.vertices() {
            put_f32(&mut w, v.pos.x)?;
            put_f32(&mut w, v.pos.y)?;
            put_f32(&mut w, v.uv.x)?;
            put_f32(&mut w, v.uv.y)?;
        }
    }
    w.flush()
}

/// Reads a scene previously written by [`write_scene`] (a `&mut` reference
/// works as the reader).
///
/// # Errors
///
/// Returns [`SceneIoError`] on I/O failure, bad magic/version or an
/// inconsistent payload.
pub fn read_scene<R: Read>(mut r: R) -> Result<Scene, SceneIoError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(SceneIoError::BadMagic(magic));
    }
    let version = get_u32(&mut r)?;
    if version != VERSION {
        return Err(SceneIoError::BadVersion(version));
    }
    let name_len = get_u32(&mut r)? as usize;
    if name_len > 4096 {
        return Err(SceneIoError::Corrupt("implausible name length"));
    }
    let mut name_bytes = vec![0u8; name_len];
    r.read_exact(&mut name_bytes)?;
    let name = String::from_utf8(name_bytes).map_err(|_| SceneIoError::Corrupt("name not UTF-8"))?;
    let width = get_u32(&mut r)?;
    let height = get_u32(&mut r)?;
    if width == 0 || height == 0 || width > 1 << 16 || height > 1 << 16 {
        return Err(SceneIoError::Corrupt("implausible screen size"));
    }
    let tex_count = get_u32(&mut r)? as usize;
    if tex_count > 1 << 20 {
        return Err(SceneIoError::Corrupt("implausible texture count"));
    }
    let mut registry = TextureRegistry::new();
    for _ in 0..tex_count {
        let w = get_u32(&mut r)?;
        let h = get_u32(&mut r)?;
        let desc = TextureDesc::new(w, h).map_err(|_| SceneIoError::Corrupt("bad texture dims"))?;
        registry
            .register(desc)
            .map_err(|_| SceneIoError::Corrupt("texture space exhausted"))?;
    }
    let tri_count = get_u32(&mut r)? as usize;
    if tri_count > 1 << 26 {
        return Err(SceneIoError::Corrupt("implausible triangle count"));
    }
    let mut triangles = Vec::with_capacity(tri_count);
    for _ in 0..tri_count {
        let texture = get_u32(&mut r)?;
        if texture as usize >= tex_count {
            return Err(SceneIoError::Corrupt("triangle references unknown texture"));
        }
        let mut vs = [Vertex::default(); 3];
        for v in &mut vs {
            let x = get_f32(&mut r)?;
            let y = get_f32(&mut r)?;
            let u = get_f32(&mut r)?;
            let vv = get_f32(&mut r)?;
            if !(x.is_finite() && y.is_finite() && u.is_finite() && vv.is_finite()) {
                return Err(SceneIoError::Corrupt("non-finite vertex"));
            }
            *v = Vertex::new(x, y, u, vv);
        }
        triangles.push(Triangle::new(texture, vs));
    }
    Ok(Scene::from_parts(
        name,
        Rect::of_size(width, height),
        triangles,
        registry,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SceneBuilder;
    use crate::presets::Benchmark;

    fn sample() -> Scene {
        SceneBuilder::benchmark(Benchmark::Blowout775).scale(0.06).build()
    }

    #[test]
    fn round_trip_preserves_scene() {
        let scene = sample();
        let mut buf = Vec::new();
        write_scene(&mut buf, &scene).unwrap();
        let back = read_scene(buf.as_slice()).unwrap();
        assert_eq!(back.name(), scene.name());
        assert_eq!(back.screen(), scene.screen());
        assert_eq!(back.triangles(), scene.triangles());
        assert_eq!(back.registry().len(), scene.registry().len());
        assert_eq!(back.registry().total_bytes(), scene.registry().total_bytes());
    }

    #[test]
    fn round_trip_rasterizes_identically() {
        let scene = sample();
        let mut buf = Vec::new();
        write_scene(&mut buf, &scene).unwrap();
        let back = read_scene(buf.as_slice()).unwrap();
        let a = scene.rasterize();
        let b = back.rasterize();
        assert_eq!(a.fragments(), b.fragments());
    }

    #[test]
    fn bad_inputs_are_rejected() {
        assert!(matches!(
            read_scene(&b"XXXX0000"[..]).unwrap_err(),
            SceneIoError::BadMagic(_)
        ));
        let mut buf = Vec::new();
        write_scene(&mut buf, &sample()).unwrap();
        let mut wrong_version = buf.clone();
        wrong_version[4..8].copy_from_slice(&7u32.to_le_bytes());
        assert!(matches!(
            read_scene(wrong_version.as_slice()).unwrap_err(),
            SceneIoError::BadVersion(7)
        ));
        let mut truncated = buf.clone();
        truncated.truncate(buf.len() - 10);
        assert!(matches!(
            read_scene(truncated.as_slice()).unwrap_err(),
            SceneIoError::Io(_)
        ));
    }

    #[test]
    fn non_pow2_texture_dims_are_corrupt() {
        let mut buf = Vec::new();
        write_scene(&mut buf, &sample()).unwrap();
        // First texture dims sit right after magic+version+name+screen.
        let name_len = sample().name().len();
        let off = 4 + 4 + 4 + name_len + 4 + 4 + 4;
        buf[off..off + 4].copy_from_slice(&48u32.to_le_bytes());
        let err = read_scene(buf.as_slice()).unwrap_err();
        assert!(matches!(err, SceneIoError::Corrupt("bad texture dims")), "{err}");
    }
}
