//! The procedural scene generator.
//!
//! A scene is built from two populations, mirroring how the paper's game
//! traces are structured:
//!
//! * **background layers** — full-screen meshes of large quads (walls,
//!   floors, skies) that guarantee full coverage and carry roughly one unit
//!   of depth complexity each;
//! * **foreground objects** — rotated quad-grid patches (characters, props)
//!   whose positions concentrate around *hotspots*, producing the spatially
//!   clustered depth complexity the paper's load-balancing study depends on.
//!
//! Object sizes are solved analytically from the depth-complexity target and
//! then corrected once against the exact screen-clipped area, so a preset
//! reliably hits its Table 1 statistics at any scale.

use crate::config::SceneConfig;
use sortmid_geom::{Rect, Triangle, Vec2, Vertex};
use sortmid_raster::{rasterize, FragmentStream};
use sortmid_texture::{TextureDesc, TextureRegistry};
use sortmid_util::rng::{zipf_cdf, Pcg32};

/// A generated scene: a triangle stream plus the texture registry it
/// samples.
///
/// # Examples
///
/// ```
/// use sortmid_scene::{Benchmark, SceneBuilder};
///
/// let scene = SceneBuilder::benchmark(Benchmark::Blowout775).scale(0.1).build();
/// assert!(!scene.triangles().is_empty());
/// assert!(scene.registry().len() >= 1);
/// ```
#[derive(Debug, Clone)]
pub struct Scene {
    name: String,
    screen: Rect,
    triangles: Vec<Triangle>,
    registry: TextureRegistry,
}

impl Scene {
    /// Reassembles a scene from its parts (used by scene deserialization;
    /// generated scenes come from [`SceneBuilder`](crate::SceneBuilder)).
    pub fn from_parts(
        name: String,
        screen: Rect,
        triangles: Vec<Triangle>,
        registry: TextureRegistry,
    ) -> Scene {
        Scene {
            name,
            screen,
            triangles,
            registry,
        }
    }

    /// The scene's benchmark name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The screen rectangle.
    pub fn screen(&self) -> Rect {
        self.screen
    }

    /// The triangle stream, in geometry-stage order.
    pub fn triangles(&self) -> &[Triangle] {
        &self.triangles
    }

    /// The texture registry.
    pub fn registry(&self) -> &TextureRegistry {
        &self.registry
    }

    /// Rasterizes the scene into a replayable fragment stream.
    pub fn rasterize(&self) -> FragmentStream {
        rasterize(&self.triangles, &self.registry, self.screen)
    }

    /// The scene as seen after the viewpoint pans by `(dx, dy)` pixels:
    /// every triangle shifts by `(-dx, -dy)` while its texture coordinates
    /// stay attached to the geometry. The returned scene shares this one's
    /// texture registry layout, so a machine's warm caches see the *same
    /// texel addresses* moved to different screen positions — the paper's
    /// closing inter-frame-locality question.
    pub fn translated_view(&self, dx: f32, dy: f32) -> Scene {
        let triangles = self
            .triangles
            .iter()
            .map(|t| t.translated(sortmid_geom::Vec2::new(-dx, -dy)))
            .collect();
        Scene {
            name: format!("{}+pan({dx},{dy})", self.name),
            screen: self.screen,
            triangles,
            registry: self.registry.clone(),
        }
    }
}

/// One planned foreground object (before its size is finalised).
#[derive(Debug, Clone)]
struct ObjectPlan {
    center: Vec2,
    /// Quads per side of the patch.
    grid: u32,
    /// Log-normal size jitter.
    size_jitter: f32,
    rotation: f32,
    texture: u32,
    density_jitter: f32,
    uv_origin: Vec2,
    rng_tag: u64,
}

/// Generates a scene from a configuration (deterministic).
pub(crate) fn generate(config: &SceneConfig) -> Scene {
    let root = Pcg32::seed_from_u64(config.seed);
    let screen = Rect::of_size(config.width, config.height);

    // --- Textures ------------------------------------------------------
    let mut registry = TextureRegistry::new();
    let mut tex_rng = root.fork(1);
    let (lo, hi) = config.tex_size_log2;
    for _ in 0..config.texture_count {
        let wlog = lo + tex_rng.next_below(hi - lo + 1);
        let hlog = lo + tex_rng.next_below(hi - lo + 1);
        registry
            .register(TextureDesc::new(1 << wlog, 1 << hlog).expect("pow2 by construction"))
            .expect("texture space");
    }
    let tex_cdf = zipf_cdf(config.texture_count as usize, 0.8);

    // --- Hotspots --------------------------------------------------------
    let mut hot_rng = root.fork(2);
    let hotspots: Vec<Vec2> = (0..config.hotspots.max(1))
        .map(|_| {
            Vec2::new(
                hot_rng.range_f64(0.1, 0.9) as f32 * config.width as f32,
                hot_rng.range_f64(0.1, 0.9) as f32 * config.height as f32,
            )
        })
        .collect();
    let hot_cdf = zipf_cdf(hotspots.len(), 0.7);
    let sigma = config.cluster_sigma
        * ((config.width as f64).powi(2) + (config.height as f64).powi(2)).sqrt();

    // --- Background ------------------------------------------------------
    let mut triangles = Vec::with_capacity(config.target_triangles as usize + 64);
    let bg_share = (config.background_layers as f64 / config.target_depth.max(1.0)).min(0.5);
    let bg_budget = (config.target_triangles as f64 * bg_share) as u32;
    let mut bg_rng = root.fork(3);
    for layer in 0..config.background_layers {
        let layer_tris = (bg_budget / config.background_layers.max(1)).max(8);
        emit_background_layer(
            &mut triangles,
            &mut bg_rng,
            config,
            layer_tris,
            layer,
            &tex_cdf,
            &registry,
        );
    }
    let bg_count = triangles.len();

    // --- Foreground plan --------------------------------------------------
    let fg_budget = config.target_triangles.saturating_sub(triangles.len() as u32);
    let mut plan_rng = root.fork(4);
    let mut plans: Vec<ObjectPlan> = Vec::new();
    let mut spent = 0u32;
    let mut tag = 0u64;
    while spent < fg_budget {
        let (gmin, gmax) = config.patch_quads;
        let grid = gmin + plan_rng.next_below(gmax - gmin + 1);
        let tris = 2 * grid * grid;
        if spent + tris > fg_budget && spent > fg_budget / 2 {
            break;
        }
        let clustered = plan_rng.next_f64() < config.cluster_fraction;
        let center = if clustered {
            let h = hotspots[plan_rng.next_zipf(&hot_cdf)];
            Vec2::new(
                h.x + (plan_rng.next_normal() * sigma) as f32,
                h.y + (plan_rng.next_normal() * sigma) as f32,
            )
        } else {
            Vec2::new(
                plan_rng.next_f32() * config.width as f32,
                plan_rng.next_f32() * config.height as f32,
            )
        };
        let texture = plan_rng.next_zipf(&tex_cdf) as u32;
        let tex_dims = registry.desc(sortmid_texture::TextureId(texture));
        plans.push(ObjectPlan {
            center,
            grid,
            size_jitter: (0.6 * plan_rng.next_normal()).exp() as f32,
            rotation: plan_rng.next_f32() * std::f32::consts::TAU,
            texture,
            density_jitter: 0.75 + 0.5 * plan_rng.next_f32(),
            uv_origin: Vec2::new(
                plan_rng.next_f32() * tex_dims.width() as f32,
                plan_rng.next_f32() * tex_dims.height() as f32,
            ),
            rng_tag: tag,
        });
        spent += tris;
        tag += 1;
    }

    // --- Solve object scale against the depth target ----------------------
    let screen_area = (config.width as f64) * (config.height as f64);
    let bg_area: f64 = triangles.iter().map(|t| clipped_area(t, screen)).sum();
    let fg_target = (config.target_depth * screen_area - bg_area).max(0.02 * screen_area);
    let denom: f64 = plans
        .iter()
        .map(|p| ((p.grid as f64) * (p.size_jitter as f64)).powi(2))
        .sum::<f64>()
        .max(1.0);
    let mut base_q = (fg_target / denom).sqrt() as f32;

    // One corrective iteration against exact clipped coverage.
    for _ in 0..2 {
        let mut area = 0.0;
        for p in &plans {
            for t in emit_object(p, base_q, config.texel_density as f32, &root) {
                area += clipped_area(&t, screen);
            }
        }
        if area <= 1.0 {
            break;
        }
        let correction = (fg_target / area).sqrt().clamp(0.25, 4.0);
        if (correction - 1.0).abs() < 0.02 {
            break;
        }
        base_q *= correction as f32;
    }

    for p in &plans {
        triangles.extend(emit_object(p, base_q, config.texel_density as f32, &root));
    }
    debug_assert!(triangles.len() >= bg_count);

    Scene {
        name: config.name.clone(),
        screen,
        triangles,
        registry,
    }
}

/// Emits one full-screen background layer as a jittered shared-vertex grid.
#[allow(clippy::too_many_arguments)]
fn emit_background_layer(
    out: &mut Vec<Triangle>,
    rng: &mut Pcg32,
    config: &SceneConfig,
    layer_tris: u32,
    layer: u32,
    tex_cdf: &[f64],
    registry: &TextureRegistry,
) {
    let w = config.width as f32;
    let h = config.height as f32;
    let aspect = w / h;
    let cells = (layer_tris / 2).max(1) as f32;
    let gx = (cells * aspect).sqrt().round().max(1.0) as usize;
    let gy = ((cells / aspect).sqrt().round().max(1.0)) as usize;
    let cw = w / gx as f32;
    let ch = h / gy as f32;

    // Shared, jittered vertex grid (no cracks between cells).
    let mut verts = vec![Vec2::ZERO; (gx + 1) * (gy + 1)];
    for gy_i in 0..=gy {
        for gx_i in 0..=gx {
            let interior_x = gx_i > 0 && gx_i < gx;
            let interior_y = gy_i > 0 && gy_i < gy;
            let jx = if interior_x { (rng.next_f32() - 0.5) * 0.5 * cw } else { 0.0 };
            let jy = if interior_y { (rng.next_f32() - 0.5) * 0.5 * ch } else { 0.0 };
            verts[gy_i * (gx + 1) + gx_i] = Vec2::new(gx_i as f32 * cw + jx, gy_i as f32 * ch + jy);
        }
    }

    let density = config.texel_density as f32 * (0.8 + 0.4 * rng.next_f32());
    let uv_off = Vec2::new(rng.next_f32() * 512.0, rng.next_f32() * 512.0)
        + Vec2::new(layer as f32 * 1024.0, 0.0);
    let mut texture = rng.next_zipf(tex_cdf) as u32;
    for cy in 0..gy {
        for cx in 0..gx {
            // Texture runs: keep the previous texture 3 times out of 4.
            if rng.next_f64() < 0.25 {
                texture = rng.next_zipf(tex_cdf) as u32;
            }
            let _ = registry; // texture dims unneeded: uv wraps
            let v = |ix: usize, iy: usize| verts[iy * (gx + 1) + ix];
            let corners = [
                v(cx, cy),
                v(cx + 1, cy),
                v(cx + 1, cy + 1),
                v(cx, cy + 1),
            ];
            let uv = |p: Vec2| (p * density) + uv_off;
            let vert = |p: Vec2| Vertex {
                pos: p,
                uv: uv(p),
            };
            // Alternate the split diagonal for variety.
            if (cx + cy) % 2 == 0 {
                out.push(Triangle::new(texture, [vert(corners[0]), vert(corners[1]), vert(corners[2])]));
                out.push(Triangle::new(texture, [vert(corners[0]), vert(corners[2]), vert(corners[3])]));
            } else {
                out.push(Triangle::new(texture, [vert(corners[1]), vert(corners[2]), vert(corners[3])]));
                out.push(Triangle::new(texture, [vert(corners[1]), vert(corners[3]), vert(corners[0])]));
            }
        }
    }
}

/// Emits the triangles of one foreground object.
fn emit_object(plan: &ObjectPlan, base_q: f32, density: f32, root: &Pcg32) -> Vec<Triangle> {
    let mut rng = root.fork(0x0B1EC7 ^ plan.rng_tag);
    let g = plan.grid as usize;
    let q = (base_q * plan.size_jitter).max(0.25);
    let side = g as f32 * q;
    let d = density * plan.density_jitter;
    let (sin, cos) = plan.rotation.sin_cos();
    let origin = plan.center - Vec2::new(side / 2.0, side / 2.0);

    // Shared vertex grid with mild jitter, rotated about the center.
    let mut verts = vec![(Vec2::ZERO, Vec2::ZERO); (g + 1) * (g + 1)];
    for iy in 0..=g {
        for ix in 0..=g {
            let interior = ix > 0 && ix < g && iy > 0 && iy < g;
            let j = if interior {
                Vec2::new((rng.next_f32() - 0.5) * 0.4 * q, (rng.next_f32() - 0.5) * 0.4 * q)
            } else {
                Vec2::ZERO
            };
            let local = Vec2::new(ix as f32 * q, iy as f32 * q) + j;
            let rel = origin + local - plan.center;
            let pos = plan.center
                + Vec2::new(rel.x * cos - rel.y * sin, rel.x * sin + rel.y * cos);
            let uv = plan.uv_origin + local * d;
            verts[iy * (g + 1) + ix] = (pos, uv);
        }
    }

    let mut out = Vec::with_capacity(2 * g * g);
    let vert = |ix: usize, iy: usize| {
        let (pos, uv) = verts[iy * (g + 1) + ix];
        Vertex { pos, uv }
    };
    for cy in 0..g {
        for cx in 0..g {
            let (a, b, c, dd) = (
                vert(cx, cy),
                vert(cx + 1, cy),
                vert(cx + 1, cy + 1),
                vert(cx, cy + 1),
            );
            if (cx + cy) % 2 == 0 {
                out.push(Triangle::new(plan.texture, [a, b, c]));
                out.push(Triangle::new(plan.texture, [a, c, dd]));
            } else {
                out.push(Triangle::new(plan.texture, [b, c, dd]));
                out.push(Triangle::new(plan.texture, [b, dd, a]));
            }
        }
    }
    out
}

/// Exact area of a triangle clipped to the screen (Sutherland–Hodgman).
pub(crate) fn clipped_area(tri: &Triangle, screen: Rect) -> f64 {
    let mut poly: Vec<(f64, f64)> = tri
        .vertices()
        .iter()
        .map(|v| (v.pos.x as f64, v.pos.y as f64))
        .collect();
    // Clip against each screen half-plane in turn.
    let planes: [(f64, f64, f64); 4] = [
        (1.0, 0.0, -(screen.x0 as f64)),  // x >= x0
        (-1.0, 0.0, screen.x1 as f64),    // x <= x1
        (0.0, 1.0, -(screen.y0 as f64)),  // y >= y0
        (0.0, -1.0, screen.y1 as f64),    // y <= y1
    ];
    for (a, b, c) in planes {
        if poly.is_empty() {
            return 0.0;
        }
        let mut next = Vec::with_capacity(poly.len() + 2);
        for i in 0..poly.len() {
            let p = poly[i];
            let q = poly[(i + 1) % poly.len()];
            let dp = a * p.0 + b * p.1 + c;
            let dq = a * q.0 + b * q.1 + c;
            if dp >= 0.0 {
                next.push(p);
            }
            if (dp >= 0.0) != (dq >= 0.0) {
                let t = dp / (dp - dq);
                next.push((p.0 + t * (q.0 - p.0), p.1 + t * (q.1 - p.1)));
            }
        }
        poly = next;
    }
    // Shoelace.
    let mut area2 = 0.0;
    for i in 0..poly.len() {
        let p = poly[i];
        let q = poly[(i + 1) % poly.len()];
        area2 += p.0 * q.1 - q.0 * p.1;
    }
    (area2 / 2.0).abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::Benchmark;
    use sortmid_geom::Vertex;

    fn tri(coords: [(f32, f32); 3]) -> Triangle {
        Triangle::new(
            0,
            [
                Vertex::new(coords[0].0, coords[0].1, 0.0, 0.0),
                Vertex::new(coords[1].0, coords[1].1, 1.0, 0.0),
                Vertex::new(coords[2].0, coords[2].1, 0.0, 1.0),
            ],
        )
    }

    #[test]
    fn clipped_area_inside_is_exact() {
        let t = tri([(0.0, 0.0), (8.0, 0.0), (0.0, 8.0)]);
        let a = clipped_area(&t, Rect::of_size(64, 64));
        assert!((a - 32.0).abs() < 1e-9);
    }

    #[test]
    fn clipped_area_halves_when_straddling_edge() {
        // Rectangle-ish: a triangle symmetric about x = 0 keeps half.
        let t = tri([(-8.0, 0.0), (8.0, 0.0), (-8.0, 16.0)]);
        let full = clipped_area(&t, Rect::new(-64, 0, 64, 64));
        let clipped = clipped_area(&t, Rect::of_size(64, 64));
        assert!(clipped < full);
        assert!(clipped > 0.0);
    }

    #[test]
    fn clipped_area_outside_is_zero() {
        let t = tri([(100.0, 100.0), (120.0, 100.0), (100.0, 120.0)]);
        assert_eq!(clipped_area(&t, Rect::of_size(64, 64)), 0.0);
    }

    #[test]
    fn generated_scene_hits_triangle_budget() {
        let config = Benchmark::Quake.config().scaled(0.25);
        let scene = generate(&config);
        let got = scene.triangles().len() as f64;
        let want = config.target_triangles as f64;
        assert!(
            (got - want).abs() / want < 0.25,
            "triangles {got} vs target {want}"
        );
    }

    #[test]
    fn generated_scene_hits_depth_target() {
        let config = Benchmark::Massive11255.config().scaled(0.25);
        let scene = generate(&config);
        let stream = scene.rasterize();
        let depth = stream.depth_complexity();
        assert!(
            (depth - config.target_depth).abs() / config.target_depth < 0.3,
            "depth {depth} vs target {}",
            config.target_depth
        );
    }

    #[test]
    fn scene_is_deterministic() {
        let config = Benchmark::Truc640.config().scaled(0.15);
        let a = generate(&config);
        let b = generate(&config);
        assert_eq!(a.triangles().len(), b.triangles().len());
        for (x, y) in a.triangles().iter().zip(b.triangles()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut c1 = Benchmark::Quake.config().scaled(0.15);
        let mut c2 = c1.clone();
        c1.seed = 1;
        c2.seed = 2;
        let a = generate(&c1);
        let b = generate(&c2);
        let same = a
            .triangles()
            .iter()
            .zip(b.triangles())
            .filter(|(x, y)| x == y)
            .count();
        assert!(same < a.triangles().len() / 2);
    }

    #[test]
    fn depth_complexity_is_clustered() {
        // The busiest screen quadrant should carry measurably more depth
        // than the emptiest: that is what makes big tiles imbalanced.
        let config = Benchmark::Room3.config().scaled(0.2);
        let scene = generate(&config);
        let stream = scene.rasterize();
        let (w, h) = (scene.screen().width() as i32, scene.screen().height() as i32);
        let mut quadrant = [0u64; 4];
        for f in stream.fragments() {
            let qx = (f.x as i32 >= w / 2) as usize;
            let qy = (f.y as i32 >= h / 2) as usize;
            quadrant[2 * qy + qx] += 1;
        }
        let max = *quadrant.iter().max().unwrap() as f64;
        let min = *quadrant.iter().min().unwrap() as f64;
        assert!(max / min.max(1.0) > 1.1, "quadrants {quadrant:?}");
    }

    #[test]
    fn all_textures_are_registered() {
        let config = Benchmark::Blowout775.config().scaled(0.15);
        let scene = generate(&config);
        let n = scene.registry().len() as u32;
        for t in scene.triangles() {
            assert!(t.texture() < n);
        }
    }
}
