//! Microbenchmarks of the simulator's hot kernels: cache probes, fragment
//! timing, rasterization, footprint resolution and owner computation.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sortmid::Distribution;
use sortmid_bench::stream;
use sortmid_cache::{CacheGeometry, LineCache, SetAssocCache};
use sortmid_memsys::{BusConfig, EngineTiming};
use sortmid_scene::{Benchmark, SceneBuilder};
use sortmid_texture::{TextureDesc, TextureRegistry, TrilinearSampler};
use std::hint::black_box;

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("primitives/cache");
    let accesses: Vec<u32> = {
        // Pseudo-random walk over 1024 lines with locality runs.
        let mut v = Vec::with_capacity(100_000);
        let mut x = 12345u32;
        let mut line = 0u32;
        for _ in 0..100_000 {
            x = x.wrapping_mul(1103515245).wrapping_add(12345);
            if x.is_multiple_of(8) {
                line = (x >> 8) % 1024;
            }
            v.push(line);
        }
        v
    };
    group.throughput(Throughput::Elements(accesses.len() as u64));
    group.bench_function("set_assoc_16k_4way", |b| {
        b.iter(|| {
            let mut cache = SetAssocCache::new(CacheGeometry::paper_l1());
            for &l in &accesses {
                black_box(cache.access_line(l));
            }
            cache.stats().misses()
        });
    });
    group.finish();
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("primitives/engine");
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("fragment_timing", |b| {
        b.iter(|| {
            let mut e = EngineTiming::new(BusConfig::ratio(1.0), Some(32));
            e.start_triangle(0);
            for i in 0..100_000u32 {
                e.fragment(if i % 7 == 0 { 1 } else { 0 });
            }
            e.finish_time()
        });
    });
    group.finish();
}

fn bench_raster(c: &mut Criterion) {
    let mut group = c.benchmark_group("primitives/raster");
    group.sample_size(10);
    let scene = SceneBuilder::benchmark(Benchmark::Quake).scale(0.12).build();
    group.bench_function("rasterize_quake", |b| {
        b.iter(|| black_box(scene.rasterize()).fragment_count());
    });
    group.finish();
}

fn bench_footprint(c: &mut Criterion) {
    let mut reg = TextureRegistry::new();
    let id = reg.register(TextureDesc::new(256, 256).unwrap()).unwrap();
    let sampler = TrilinearSampler::new(&reg);
    let mut group = c.benchmark_group("primitives/footprint");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("trilinear_10k", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..10_000u32 {
                let u = (i % 251) as f32;
                let v = (i % 241) as f32;
                let fp = sampler.footprint(id, u, v, 1.3);
                acc = acc.wrapping_add(fp[0].index() as u64);
            }
            acc
        });
    });
    group.finish();
}

fn bench_owner(c: &mut Criterion) {
    let s = stream(Benchmark::Massive32_11255);
    let mut group = c.benchmark_group("primitives/distribution");
    group.throughput(Throughput::Elements(s.fragment_count()));
    for dist in [Distribution::block(16), Distribution::sli(4)] {
        group.bench_function(format!("owner/{}", dist.label()), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for f in s.fragments() {
                    acc += dist.owner(f.x as i32, f.y as i32, 64) as u64;
                }
                acc
            });
        });
    }
    group.bench_function("overlap_mask/block-16", |b| {
        let d = Distribution::block(16);
        b.iter(|| {
            let mut acc = 0u32;
            for t in s.triangles() {
                acc = acc.wrapping_add(d.overlap_mask(&t.bbox, 64).count_ones());
            }
            acc
        });
    });
    group.finish();
}

fn bench_trace_io(c: &mut Criterion) {
    let s = stream(Benchmark::Quake);
    let mut group = c.benchmark_group("primitives/trace-io");
    group.throughput(Throughput::Elements(s.fragment_count()));
    group.bench_function("write_stream", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(42 * s.fragment_count() as usize);
            sortmid_raster::write_stream(&mut buf, &s).expect("in-memory write");
            buf.len()
        });
    });
    let mut encoded = Vec::new();
    sortmid_raster::write_stream(&mut encoded, &s).expect("in-memory write");
    group.bench_function("read_stream", |b| {
        b.iter(|| {
            sortmid_raster::read_stream(encoded.as_slice())
                .expect("round trip")
                .fragment_count()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cache,
    bench_engine,
    bench_raster,
    bench_footprint,
    bench_owner,
    bench_trace_io
);
criterion_main!(benches);
