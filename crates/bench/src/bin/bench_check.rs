//! CI validator for `BENCH_*.json` artefacts.
//!
//! Parses every `BENCH_*.json` in a directory (argument, or the current
//! directory) with the devharness JSON reader and checks the schema that
//! [`sortmid_devharness::bench::Suite`] emits: top-level `suite`,
//! `warmup_iters`, `samples`, and a `benchmarks` array whose entries carry
//! `id`, `median_ns`, `p10_ns`, `p90_ns` and a non-empty `samples_ns`
//! array. Exits non-zero (listing every problem) if any artefact is
//! malformed, so a bench binary that silently emits garbage fails tier-1.

use std::path::Path;
use std::process::ExitCode;

use sortmid_devharness::json::Json;

/// Checks one parsed artefact, appending human-readable problems.
fn check_doc(name: &str, doc: &Json, problems: &mut Vec<String>) {
    let mut need = |key: &str, ok: bool| {
        if !ok {
            problems.push(format!("{name}: missing or mistyped key '{key}'"));
        }
    };
    need("suite", doc.get("suite").and_then(Json::as_str).is_some());
    need(
        "warmup_iters",
        doc.get("warmup_iters").and_then(Json::as_u64).is_some(),
    );
    need("samples", doc.get("samples").and_then(Json::as_u64).is_some());

    let Some(benches) = doc.get("benchmarks").and_then(Json::as_arr) else {
        problems.push(format!("{name}: missing or mistyped key 'benchmarks'"));
        return;
    };
    if benches.is_empty() {
        problems.push(format!("{name}: 'benchmarks' is empty"));
    }
    for (i, b) in benches.iter().enumerate() {
        let id = b.get("id").and_then(Json::as_str);
        let label = id.map_or_else(|| format!("{name}#{i}"), |id| format!("{name}/{id}"));
        if id.is_none() {
            problems.push(format!("{label}: missing or mistyped key 'id'"));
        }
        for key in ["median_ns", "p10_ns", "p90_ns"] {
            if b.get(key).and_then(Json::as_u64).is_none() {
                problems.push(format!("{label}: missing or mistyped key '{key}'"));
            }
        }
        match b.get("samples_ns").and_then(Json::as_arr) {
            None => problems.push(format!("{label}: missing or mistyped key 'samples_ns'")),
            Some([]) => problems.push(format!("{label}: 'samples_ns' is empty")),
            Some(s) => {
                if s.iter().any(|v| v.as_u64().is_none()) {
                    problems.push(format!("{label}: non-integer entry in 'samples_ns'"));
                }
            }
        }
    }
}

fn run(dir: &Path) -> Result<usize, String> {
    let mut problems = Vec::new();
    let mut checked = 0usize;
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    entries.sort();

    for path in &entries {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                problems.push(format!("{name}: unreadable: {e}"));
                continue;
            }
        };
        match Json::parse(&text) {
            Ok(doc) => {
                check_doc(&name, &doc, &mut problems);
                checked += 1;
            }
            Err(e) => problems.push(format!("{name}: {e}")),
        }
    }

    if problems.is_empty() {
        Ok(checked)
    } else {
        Err(problems.join("\n"))
    }
}

fn main() -> ExitCode {
    let dir = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    match run(Path::new(&dir)) {
        Ok(0) => {
            eprintln!("bench_check: no BENCH_*.json artefacts found in {dir}");
            ExitCode::FAILURE
        }
        Ok(n) => {
            println!("bench_check: {n} artefact(s) OK in {dir}");
            ExitCode::SUCCESS
        }
        Err(problems) => {
            eprintln!("bench_check: invalid artefacts:\n{problems}");
            ExitCode::FAILURE
        }
    }
}
