//! Figure 5 — impact of the distribution scheme on load balancing.
//!
//! Two parts, as in the paper:
//!
//! * **imbalance**: percent difference between the busiest and the average
//!   processor's pixel work, per benchmark, on a 64-processor machine, for
//!   every block width / SLI group size;
//! * **speedup curves**: perfect-cache speedup vs processor count for
//!   `32massive11255`, one series per parameter.

use crate::common::{machine, short_name, PreparedScene, BLOCK_WIDTHS_FULL, PROC_CURVE, SLI_LINES};
use sortmid::{work, CacheKind, Distribution, Machine, SpatialCollector};
use sortmid_observe::owner_color;
use sortmid_scene::Benchmark;
use sortmid_util::table::{fmt_f, Table};
use std::path::Path;

/// Imbalance (%) of every benchmark × parameter on a `procs`-node machine.
pub fn imbalance_table(scenes: &[PreparedScene], procs: u32, sli: bool) -> Table {
    let params: &[u32] = if sli { &SLI_LINES } else { &BLOCK_WIDTHS_FULL };
    let mut header = vec!["benchmark".to_string()];
    header.extend(params.iter().map(|p| p.to_string()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(&header_refs);
    for s in scenes {
        let mut row = vec![short_name(s.benchmark).to_string()];
        for &p in params {
            let dist = if sli {
                Distribution::sli(p)
            } else {
                Distribution::block(p)
            };
            row.push(fmt_f(work::pixel_imbalance(&s.stream, &dist, procs), 1));
        }
        t.row_owned(row);
    }
    t
}

/// Perfect-cache speedup of `scene` vs processor count, one column per
/// parameter (the bottom graphs of Figure 5).
pub fn speedup_curves(scene: &PreparedScene, sli: bool) -> Table {
    let params: &[u32] = if sli { &SLI_LINES } else { &BLOCK_WIDTHS_FULL };
    let mut header = vec!["procs".to_string()];
    header.extend(params.iter().map(|p| p.to_string()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(&header_refs);

    let baseline = Machine::new(machine(
        1,
        Distribution::block(16),
        CacheKind::Perfect,
        Some(1.0),
        10_000,
    ))
    .run(&scene.stream);

    for &procs in &PROC_CURVE {
        let mut row = vec![procs.to_string()];
        for &p in params {
            let dist = if sli {
                Distribution::sli(p)
            } else {
                Distribution::block(p)
            };
            let report = Machine::new(machine(procs, dist, CacheKind::Perfect, Some(1.0), 10_000))
                .run(&scene.stream);
            row.push(fmt_f(report.speedup_vs(&baseline), 2));
        }
        t.row_owned(row);
    }
    t
}

/// Runs the full Figure 5 experiment at `scale`; returns
/// `(block imbalance, SLI imbalance, block speedups, SLI speedups)`.
pub fn run(scale: f64) -> (Table, Table, Table, Table) {
    let scenes = PreparedScene::all(scale);
    let imb_block = imbalance_table(&scenes, 64, false);
    let imb_sli = imbalance_table(&scenes, 64, true);
    let massive = scenes
        .iter()
        .find(|s| s.benchmark == Benchmark::Massive32_11255)
        .expect("32massive present");
    let sp_block = speedup_curves(massive, false);
    let sp_sli = speedup_curves(massive, true);
    (imb_block, imb_sli, sp_block, sp_sli)
}

/// Spatial companion to Figure 5: screen-space load-balance maps of Quake
/// on a 64-processor machine, block-16 vs SLI-4. Writes
/// `fig5_<dist>_fragments.ppm` (per-tile fragment heat) and
/// `fig5_<dist>_owner.ppm` (tile ownership, one color per node) into
/// `out`, and returns one `(label, fragment Gini)` pair per distribution
/// so the caller can print how unevenly each scheme loads the nodes.
///
/// # Panics
///
/// Panics when a map cannot be written into `out`.
pub fn heatmaps(scale: f64, out: &Path) -> Vec<(String, f64)> {
    let scene = PreparedScene::new(Benchmark::Quake, scale);
    let screen = scene.stream.screen();
    let mut ginis = Vec::new();
    for (label, dist) in [
        ("block16", Distribution::block(16)),
        ("sli4", Distribution::sli(4)),
    ] {
        let m = Machine::new(machine(64, dist, CacheKind::Perfect, Some(1.0), 10_000));
        let mut col = SpatialCollector::new(
            screen.width().max(1),
            screen.height().max(1),
            8,
            64,
        );
        m.run_traced(&scene.stream, &mut col);
        let grid = col.grid();
        let frag = grid.render(4, |t| t.fragments as f64);
        frag.write_ppm(out.join(format!("fig5_{label}_fragments.ppm")))
            .expect("write fragment map");
        let owner = grid.render_rgb(4, |t| {
            if t.fragments == 0 {
                [0, 0, 0]
            } else {
                owner_color(t.owner)
            }
        });
        owner
            .write_ppm(out.join(format!("fig5_{label}_owner.ppm")))
            .expect("write owner map");
        ginis.push((label.to_string(), col.fragment_gini()));
    }
    ginis
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenes() -> Vec<PreparedScene> {
        vec![
            PreparedScene::new(Benchmark::Massive32_11255, 0.12),
            PreparedScene::new(Benchmark::Quake, 0.12),
        ]
    }

    #[test]
    fn imbalance_grows_with_parameter() {
        let s = scenes();
        let t = imbalance_table(&s, 64, false);
        assert_eq!(t.len(), 2);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        // First data row: benchmark, then imbalances for 1..128.
        let cells: Vec<f64> = lines[1]
            .split(',')
            .skip(1)
            .map(|c| c.parse().unwrap())
            .collect();
        assert!(
            cells.last().unwrap() > cells.first().unwrap(),
            "width-128 should balance worse than width-1: {cells:?}"
        );
    }

    #[test]
    fn speedup_curves_rise_with_processors() {
        let s = PreparedScene::new(Benchmark::Massive32_11255, 0.12);
        let t = speedup_curves(&s, false);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        // Column for width 16 (index 5 of BLOCK_WIDTHS_FULL -> csv col 5+1).
        let col = 5;
        let first: f64 = lines[1].split(',').nth(col).unwrap().parse().unwrap();
        let last: f64 = lines.last().unwrap().split(',').nth(col).unwrap().parse().unwrap();
        assert!((first - 1.0).abs() < 0.05, "1 proc ≈ speedup 1: {first}");
        assert!(last > 4.0, "64 procs should speed up well: {last}");
    }
}
