//! Triangle setup and scanline rasterization for the `sortmid` simulator.
//!
//! The texture-mapping engine of the paper draws a triangle by computing its
//! edge slopes (the *setup*, which costs 25 cycles) and then scanning it
//! pixel by pixel, producing one fragment per covered pixel. Each fragment
//! reads 8 texels (trilinear filtering). This crate performs that scan once
//! per scene and materialises the result as a [`stream::FragmentStream`]:
//! an ordered list of triangles, each with its covered fragments and their 8
//! precomputed texel addresses.
//!
//! The machine simulator replays the stream under any screen distribution —
//! the fragments a triangle covers do not depend on which processor owns
//! which pixel, only their *assignment* does, which is what makes sweeping
//! dozens of machine configurations over one scene cheap.
//!
//! * [`setup::TriangleSetup`] — edge functions, the top-left fill rule and
//!   incremental scanline stepping.
//! * [`fragment::Fragment`] / [`fragment::TriangleRecord`] — the compact
//!   stream representation.
//! * [`stream::rasterize`] — scene → [`stream::FragmentStream`].
//!
//! # Examples
//!
//! ```
//! use sortmid_geom::{Rect, Triangle, Vertex};
//! use sortmid_texture::{TextureDesc, TextureRegistry};
//! use sortmid_raster::rasterize;
//!
//! let mut reg = TextureRegistry::new();
//! let tex = reg.register(TextureDesc::new(64, 64)?)?;
//! let tri = Triangle::new(
//!     tex.0,
//!     [
//!         Vertex::new(0.0, 0.0, 0.0, 0.0),
//!         Vertex::new(16.0, 0.0, 16.0, 0.0),
//!         Vertex::new(0.0, 16.0, 0.0, 16.0),
//!     ],
//! );
//! let stream = rasterize(&[tri], &reg, Rect::of_size(64, 64));
//! assert!(stream.fragment_count() > 0);
//! # Ok::<(), sortmid_texture::TextureError>(())
//! ```

pub mod batch;
pub mod fragment;
pub mod io;
pub mod setup;
pub mod stream;

pub use batch::FragBatch;
pub use fragment::{Fragment, TriangleRecord};
pub use io::{read_stream, write_stream, StreamIoError};
pub use setup::TriangleSetup;
pub use stream::{rasterize, FragmentStream, StreamPartsError};
