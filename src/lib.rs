//! `sortmid-repro` — facade over the `sortmid` workspace.
//!
//! This crate re-exports the full public API of the reproduction of
//! *“The Best Distribution for a Parallel OpenGL 3D Engine with Texture
//! Caches”* (HPCA 2000) so that the runnable examples under `examples/` and
//! the integration tests under `tests/` can reach every subsystem through a
//! single dependency.
//!
//! See the individual crates for the real documentation:
//!
//! * [`sortmid`] — the parallel machine simulator (the paper's contribution).
//! * [`sortmid_scene`] — benchmark scenes calibrated to the paper's Table 1.
//! * [`sortmid_raster`] — the triangle setup + scanline rasterizer.
//! * [`sortmid_cache`] — the texture-cache simulator.
//! * [`sortmid_memsys`] — the cycle-level memory-system substrate.
//! * [`sortmid_observe`] — cycle-attributed tracing, Perfetto export.
//! * [`sortmid_texture`] — the blocked, mipmapped texture model.
//! * [`sortmid_geom`] / [`sortmid_util`] — geometry and utility foundations.

pub use sortmid;
pub use sortmid_cache;
pub use sortmid_geom;
pub use sortmid_memsys;
pub use sortmid_observe;
pub use sortmid_raster;
pub use sortmid_scene;
pub use sortmid_texture;
pub use sortmid_util;
