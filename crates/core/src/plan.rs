//! Precomputed routing: owner lookup tables and per-triangle fragment
//! buckets shared across machine configurations.
//!
//! Where a triangle goes — which nodes its bounding box overlaps, which
//! node owns each of its fragments — depends only on the stream, the
//! [`Distribution`] and the processor count. Cache geometry, bus ratio and
//! FIFO depth do not move a single fragment. A figure sweep evaluates
//! dozens of configs that differ only in those latter axes, so deriving
//! per-fragment ownership (two euclidean div/rems per fragment) and
//! re-partitioning the stream for *every* config is pure redundancy.
//!
//! A [`RoutingPlan`] hoists that work out of the run: one pass over the
//! stream counting-sorts every triangle's fragments by owning node into a
//! flat index array, guided by an [`OwnerLut`] that replaces the div/rem
//! chain with two table lookups and an add. [`Machine::run_planned`]
//! replays the plan; [`crate::sweep::run_sweep`] groups its config grid by
//! `(distribution, processors)` so each plan is built once and shared
//! read-only across host threads. Plan-driven runs are **report-identical**
//! to direct runs — the routing is precomputed, not approximated.
//!
//! [`Machine::run_planned`]: crate::machine::Machine::run_planned

use crate::distribution::Distribution;
use sortmid_geom::Rect;
use sortmid_raster::{FragBatch, FragmentStream};

/// Per-pixel owner lookup replacing [`Distribution::owner`]'s div/rem
/// chain with two table reads and one conditional subtract.
///
/// Every distribution the simulator models is *additively separable*:
/// `owner(x, y) = (fx(x) + fy(y)) mod P`. Block and rectangular tiles are
/// `(tx + s·ty) mod P`, raster-order blocks are `(tx + tiles_x·ty) mod P`,
/// and the SLI schemes do not depend on `x` at all. The LUT stores
/// `fx mod P` per pixel column and `fy mod P` per pixel row; both residues
/// are `< P`, so their sum needs at most one subtraction of `P`.
///
/// A future distribution that breaks separability must extend this type —
/// [`OwnerLut::build`] verifies the decomposition exhaustively in debug
/// builds, and the unit tests check every variant on a full screen.
///
/// # Examples
///
/// ```
/// use sortmid::plan::OwnerLut;
/// use sortmid::Distribution;
/// use sortmid_geom::Rect;
///
/// let dist = Distribution::block(16);
/// let lut = OwnerLut::build(&dist, Rect::of_size(640, 480), 13);
/// assert_eq!(lut.owner(123, 456), dist.owner(123, 456, 13));
/// ```
#[derive(Debug, Clone)]
pub struct OwnerLut {
    procs: u32,
    /// `fx(x) mod procs` for every pixel column of the screen.
    x_add: Vec<u32>,
    /// `fy(y) mod procs` for every pixel row of the screen.
    y_add: Vec<u32>,
}

impl OwnerLut {
    /// Builds the lookup tables for `dist` over `screen` (pixels
    /// `0..screen.x1` × `0..screen.y1`, the coordinate range fragments are
    /// rasterized into).
    ///
    /// # Panics
    ///
    /// Panics if `procs` is zero.
    pub fn build(dist: &Distribution, screen: Rect, procs: u32) -> OwnerLut {
        assert!(procs >= 1, "need at least one processor");
        let width = screen.x1.max(1) as usize;
        let height = screen.y1.max(1) as usize;
        let base = dist.owner(0, 0, procs);
        let x_add: Vec<u32> = (0..width as i32)
            .map(|x| (dist.owner(x, 0, procs) + procs - base) % procs)
            .collect();
        let y_add: Vec<u32> = (0..height as i32).map(|y| dist.owner(0, y, procs)).collect();
        let lut = OwnerLut { procs, x_add, y_add };
        #[cfg(debug_assertions)]
        for y in 0..height as i32 {
            for x in 0..width as i32 {
                debug_assert_eq!(
                    lut.owner(x as u16, y as u16),
                    dist.owner(x, y, procs),
                    "owner not additively separable at ({x},{y}) under {dist}",
                );
            }
        }
        lut
    }

    /// The processor count the tables were built for.
    pub fn procs(&self) -> u32 {
        self.procs
    }

    /// The owner of pixel `(x, y)`; coordinates must lie on the screen the
    /// LUT was built for.
    #[inline]
    pub fn owner(&self, x: u16, y: u16) -> u32 {
        let sum = self.x_add[x as usize] + self.y_add[y as usize];
        if sum >= self.procs {
            sum - self.procs
        } else {
            sum
        }
    }
}

/// One non-culled triangle's routing decisions.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PlanTriangle {
    /// Index into [`FragmentStream::triangles`].
    pub(crate) tri: u32,
    /// Nodes the bounding box overlaps (who pays the setup floor).
    pub(crate) mask: u128,
    /// Range in [`RoutingPlan::segments`] holding this triangle's
    /// per-owner fragment buckets.
    pub(crate) seg_start: u32,
    pub(crate) seg_end: u32,
}

/// One owner's contiguous bucket within a triangle's fragment range.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Segment {
    /// The owning node.
    pub(crate) owner: u32,
    /// Exclusive end of the bucket in [`RoutingPlan::frag_order`]; the
    /// bucket starts where the previous segment of the same triangle ends
    /// (or at the triangle's `frag_start`).
    pub(crate) end: u32,
}

/// The precomputed routing of one `(stream, distribution, procs)` triple.
///
/// Holds, for every non-culled triangle in stream order, its overlap mask
/// and its fragments bucketed by owning node as contiguous ranges of a
/// single flat index array (a stable counting sort — no per-triangle
/// allocation, no pointer chasing). Building is one pass over the stream;
/// replaying it with [`Machine::run_planned`] skips all per-fragment
/// ownership math.
///
/// [`Machine::run_planned`]: crate::machine::Machine::run_planned
///
/// # Examples
///
/// ```
/// use sortmid::plan::RoutingPlan;
/// use sortmid::{Distribution, Machine, MachineConfig};
/// use sortmid_scene::{Benchmark, SceneBuilder};
///
/// let stream = SceneBuilder::benchmark(Benchmark::Quake).scale(0.1).build().rasterize();
/// let dist = Distribution::block(16);
/// let plan = RoutingPlan::build(&stream, &dist, 8);
/// let config = MachineConfig::builder()
///     .processors(8)
///     .distribution(dist)
///     .build()
///     .unwrap();
/// let planned = Machine::new(config.clone()).run_planned(&stream, &plan);
/// let direct = Machine::new(config).run(&stream);
/// assert_eq!(planned, direct);
/// ```
#[derive(Debug, Clone)]
pub struct RoutingPlan {
    distribution: Distribution,
    procs: u32,
    /// Non-culled triangles in stream order.
    pub(crate) triangles: Vec<PlanTriangle>,
    /// Fragment indices into [`FragmentStream::fragments`]: each
    /// triangle's `frag_start..frag_end` range, reordered so that one
    /// owner's fragments are contiguous (stream order within an owner).
    pub(crate) frag_order: Vec<u32>,
    /// Per-owner bucket boundaries, CSR-indexed by [`PlanTriangle`].
    pub(crate) segments: Vec<Segment>,
    /// Total routed triangle deliveries (sum of mask popcounts).
    routed: u64,
}

impl RoutingPlan {
    /// Precomputes the routing of `stream` under `dist` with `procs`
    /// nodes, in one pass over the fragments.
    ///
    /// # Panics
    ///
    /// Panics if `procs` is outside `1..=`[`crate::MAX_PROCESSORS`].
    pub fn build(stream: &FragmentStream, dist: &Distribution, procs: u32) -> RoutingPlan {
        Self::build_inner(stream, None, dist, procs)
    }

    /// Like [`build`](Self::build) with the stream's [`FragBatch`] already
    /// pivoted: per-fragment ownership reads the batch's dense coordinate
    /// lanes instead of gathering 40-byte fragments. The plan is identical
    /// either way — the batch mirrors the stream coordinate for coordinate.
    pub fn build_from_batch(
        stream: &FragmentStream,
        batch: &FragBatch,
        dist: &Distribution,
        procs: u32,
    ) -> RoutingPlan {
        assert_eq!(
            batch.len() as u64,
            stream.fragment_count(),
            "batch does not mirror the stream"
        );
        Self::build_inner(stream, Some(batch), dist, procs)
    }

    fn build_inner(
        stream: &FragmentStream,
        batch: Option<&FragBatch>,
        dist: &Distribution,
        procs: u32,
    ) -> RoutingPlan {
        assert!(
            (1..=crate::MAX_PROCESSORS).contains(&procs),
            "processor count {procs} outside 1..={}",
            crate::MAX_PROCESSORS
        );
        let lut = OwnerLut::build(dist, stream.screen(), procs);
        let fragments = stream.fragments();
        let mut frag_order = vec![0u32; fragments.len()];
        let mut triangles = Vec::new();
        let mut segments = Vec::new();
        let mut routed = 0u64;
        // Reused per-triangle scratch: owner of each fragment, per-owner
        // counts, and per-owner write cursors for the stable scatter.
        let mut owners: Vec<u32> = Vec::new();
        let mut counts = vec![0u32; procs as usize];
        let mut cursors = vec![0u32; procs as usize];

        for (tri_index, tri) in stream.triangles().iter().enumerate() {
            if tri.is_culled() {
                continue;
            }
            let mask = dist.overlap_mask(&tri.bbox, procs);
            debug_assert_ne!(mask, 0, "non-culled triangle must route somewhere");
            routed += mask.count_ones() as u64;

            let range = tri.frag_start as usize..tri.frag_end as usize;
            owners.clear();
            match batch {
                Some(batch) => {
                    for fi in range.clone() {
                        let owner = lut.owner(batch.x(fi), batch.y(fi));
                        debug_assert!(mask & (1u128 << owner) != 0, "owner outside overlap mask");
                        owners.push(owner);
                        counts[owner as usize] += 1;
                    }
                }
                None => {
                    for frag in &fragments[range.clone()] {
                        let owner = lut.owner(frag.x, frag.y);
                        debug_assert!(mask & (1u128 << owner) != 0, "owner outside overlap mask");
                        owners.push(owner);
                        counts[owner as usize] += 1;
                    }
                }
            }

            // Bucket boundaries (ascending owner), then the stable scatter.
            let seg_start = segments.len() as u32;
            let mut cursor = tri.frag_start;
            for owner in 0..procs {
                let count = counts[owner as usize];
                if count > 0 {
                    cursors[owner as usize] = cursor;
                    cursor += count;
                    segments.push(Segment { owner, end: cursor });
                }
            }
            for (offset, &owner) in owners.iter().enumerate() {
                let slot = &mut cursors[owner as usize];
                frag_order[*slot as usize] = tri.frag_start + offset as u32;
                *slot += 1;
            }
            for &owner in &owners {
                counts[owner as usize] = 0;
            }

            triangles.push(PlanTriangle {
                tri: tri_index as u32,
                mask,
                seg_start,
                seg_end: segments.len() as u32,
            });
        }

        RoutingPlan {
            distribution: dist.clone(),
            procs,
            triangles,
            frag_order,
            segments,
            routed,
        }
    }

    /// The distribution the plan was built for.
    pub fn distribution(&self) -> &Distribution {
        &self.distribution
    }

    /// The processor count the plan was built for.
    pub fn procs(&self) -> u32 {
        self.procs
    }

    /// Total triangle deliveries (each triangle counted once per
    /// overlapped node) — the sweep's routed count.
    pub fn routed(&self) -> u64 {
        self.routed
    }

    /// Non-culled triangles in the plan.
    pub fn triangle_count(&self) -> usize {
        self.triangles.len()
    }

    /// True when the plan can replay runs of `config`-shaped machines:
    /// same distribution and processor count.
    pub fn matches(&self, distribution: &Distribution, procs: u32) -> bool {
        self.procs == procs && self.distribution == *distribution
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheKind;
    use crate::machine::Machine;
    use crate::MachineConfig;
    use sortmid_devharness::prop::{check, Config};
    use sortmid_devharness::prop_assert_eq;
    use sortmid_scene::{Benchmark, SceneBuilder};

    fn stream() -> FragmentStream {
        SceneBuilder::benchmark(Benchmark::Quake)
            .scale(0.1)
            .build()
            .rasterize()
    }

    fn all_distributions() -> Vec<Distribution> {
        vec![
            Distribution::block(16),
            Distribution::block(3),
            Distribution::tile(32, 8),
            Distribution::sli(4),
            Distribution::dynamic_sli(vec![10, 30, 100, 4000]),
            Distribution::block_raster(16, 1024),
        ]
    }

    #[test]
    fn owner_lut_agrees_with_distribution_on_every_pixel() {
        let screen = Rect::of_size(96, 64);
        for dist in all_distributions() {
            for procs in [1u32, 3, 4, 7, 16, 64] {
                let lut = OwnerLut::build(&dist, screen, procs);
                for y in 0..screen.y1 {
                    for x in 0..screen.x1 {
                        assert_eq!(
                            lut.owner(x as u16, y as u16),
                            dist.owner(x, y, procs),
                            "{dist} procs={procs} pixel=({x},{y})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn plan_buckets_partition_every_triangle_range() {
        let s = stream();
        let plan = RoutingPlan::build(&s, &Distribution::block(16), 7);
        let mut live = 0;
        for pt in &plan.triangles {
            let tri = &s.triangles()[pt.tri as usize];
            assert!(!tri.is_culled());
            live += 1;
            // Segments tile the triangle's fragment range in ascending
            // owner order, and every indexed fragment belongs to its owner.
            let mut start = tri.frag_start;
            let mut prev_owner = None;
            for seg in &plan.segments[pt.seg_start as usize..pt.seg_end as usize] {
                assert!(prev_owner < Some(seg.owner), "owners ascend");
                assert!(seg.end > start && seg.end <= tri.frag_end);
                for &fi in &plan.frag_order[start as usize..seg.end as usize] {
                    assert!((tri.frag_start..tri.frag_end).contains(&fi));
                    let f = &s.fragments()[fi as usize];
                    assert_eq!(
                        Distribution::block(16).owner(f.x as i32, f.y as i32, 7),
                        seg.owner
                    );
                }
                prev_owner = Some(seg.owner);
                start = seg.end;
            }
            assert_eq!(start, tri.frag_end, "buckets cover the whole range");
        }
        assert_eq!(
            live,
            s.triangles().iter().filter(|t| !t.is_culled()).count()
        );
    }

    #[test]
    fn plan_routed_matches_direct_run() {
        let s = stream();
        for dist in [Distribution::block(16), Distribution::sli(2)] {
            let plan = RoutingPlan::build(&s, &dist, 16);
            let config = MachineConfig::builder()
                .processors(16)
                .distribution(dist)
                .cache(CacheKind::Perfect)
                .build()
                .unwrap();
            let direct = Machine::new(config).run(&s);
            assert_eq!(plan.routed(), direct.triangles_routed());
        }
    }

    #[test]
    fn matches_checks_both_axes() {
        let s = stream();
        let plan = RoutingPlan::build(&s, &Distribution::block(16), 8);
        assert!(plan.matches(&Distribution::block(16), 8));
        assert!(!plan.matches(&Distribution::block(16), 4));
        assert!(!plan.matches(&Distribution::block(8), 8));
    }

    /// Plan-driven and direct runs produce identical `RunReport`s over a
    /// randomized grid of distributions (block / SLI / rectangular tiles)
    /// and processor counts, including non-powers-of-two.
    #[test]
    fn prop_planned_run_equals_direct_run() {
        let s = stream();
        check(
            "planned_run_equals_direct_run",
            &Config::with_cases(24),
            |g| {
                (
                    g.u32_in(0..3),
                    g.u32_in(1..40),
                    g.u32_in(1..30),
                    g.u32_in(1..66),
                    g.u32_in(0..2),
                )
            },
            |&(shape, a, b, procs, cache)| {
                let dist = match shape {
                    0 => Distribution::block(a),
                    1 => Distribution::sli(a),
                    _ => Distribution::tile(a, b),
                };
                let kind = if cache == 0 {
                    CacheKind::PaperL1
                } else {
                    CacheKind::Perfect
                };
                let config = MachineConfig::builder()
                    .processors(procs)
                    .distribution(dist.clone())
                    .cache(kind)
                    .triangle_buffer(64)
                    .build()
                    .expect("valid config");
                let machine = Machine::new(config);
                let plan = RoutingPlan::build(&s, &dist, procs);
                let planned = machine.run_planned(&s, &plan);
                let direct = machine.run(&s);
                prop_assert_eq!(&planned, &direct);
                prop_assert_eq!(format!("{planned:?}"), format!("{direct:?}"));
                Ok(())
            },
        );
    }
}
