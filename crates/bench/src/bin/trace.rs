//! Trace capture: run one machine configuration with the event sink
//! attached and export the full cycle-level timeline.
//!
//! For each named preset this bin:
//!
//! 1. runs the machine via [`Machine::run_traced`] with a
//!    [`TraceRecorder`], double-checking the report is identical to the
//!    untraced [`Machine::run`];
//! 2. writes `TRACE_<preset>.json` — a Chrome-trace-event document that
//!    loads directly in <https://ui.perfetto.dev> (one process per node,
//!    engine + texture-bus threads, FIFO-depth counter tracks, one cycle
//!    rendered as one microsecond) — plus a synthetic `host` process
//!    carrying the run's wall-time phase spans (rasterize, traced run,
//!    verify rerun), so host cost and simulated cycles sit side by side;
//! 3. prints the per-node cycle breakdown table and compact FIFO-occupancy
//!    / bus-utilization summaries to the terminal.
//!
//! Usage: `trace [--scale F] [preset ...]` with presets from
//! [`PRESETS`]; no preset runs `grid16`. Output goes to
//! `SORTMID_BENCH_DIR` (default the current directory), like the bench
//! suites.

use sortmid::{CacheKind, Distribution, Machine, MachineConfig, TraceRecorder};
use sortmid_bench::run_provenance;
use sortmid_observe::{breakdown_table, chrome_trace_with_host, HostProfiler, HostSink, TimeSeries};
use sortmid_scene::{Benchmark, SceneBuilder};
use std::path::PathBuf;
use std::process::ExitCode;

/// The named trace presets: `(name, what it shows)`.
pub const PRESETS: [(&str, &str); 4] = [
    ("grid16", "16 processors, 16x16 blocks, paper L1 (the reference point)"),
    ("sli4", "16 processors, 4-line SLI (locality loss on thin stripes)"),
    ("starved", "8 processors, 1-slot FIFOs (Figure 8's head-of-line blocking)"),
    ("tiny", "4 processors, small frame (smoke preset for CI)"),
];

fn preset_config(name: &str) -> Option<MachineConfig> {
    let mut b = MachineConfig::builder();
    match name {
        "grid16" => b.processors(16).distribution(Distribution::block(16)),
        "sli4" => b.processors(16).distribution(Distribution::sli(4)),
        "starved" => b
            .processors(8)
            .distribution(Distribution::block(16))
            .triangle_buffer(1),
        "tiny" => b.processors(4).distribution(Distribution::block(16)),
        _ => return None,
    };
    Some(b.cache(CacheKind::PaperL1).build().expect("valid preset"))
}

fn usage() -> String {
    let mut s = String::from("usage: trace [--scale F] [preset ...]\npresets:\n");
    for (name, what) in PRESETS {
        s.push_str(&format!("  {name:8} {what}\n"));
    }
    s
}

fn run_preset(name: &str, scale: f64) -> Result<(), String> {
    let config = preset_config(name).ok_or_else(|| format!("unknown preset '{name}'"))?;
    // Host phases of this bin itself ride along in the trace document: a
    // root span per preset with the scene build, the traced run and the
    // verification rerun underneath.
    let prof = HostProfiler::new();
    let root = prof.span("trace-preset");
    let stream = {
        let _s = prof.span("rasterize");
        SceneBuilder::benchmark(Benchmark::Quake)
            .scale(scale)
            .build()
            .rasterize()
    };
    let machine = Machine::new(config.clone());

    let mut rec = TraceRecorder::new();
    let report = {
        let _s = prof.span("run-traced");
        machine.run_traced(&stream, &mut rec)
    };
    {
        let _s = prof.span("verify-rerun");
        assert_eq!(
            report,
            machine.run(&stream),
            "tracing must not perturb the simulation"
        );
    }
    drop(root);
    let profile = prof.finish();
    profile
        .verify()
        .expect("host profile structural invariants must hold");

    // The Perfetto document: simulated tracks plus the host phase tracks,
    // stamped with the run's provenance (grid = this one preset config).
    let mut doc = chrome_trace_with_host(&rec, &machine.node_labels(), &profile);
    doc.set(
        "provenance",
        run_provenance(Benchmark::Quake, std::slice::from_ref(&config)).to_json(),
    );
    let dir = std::env::var_os("SORTMID_BENCH_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    std::fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let path = dir.join(format!("TRACE_{name}.json"));
    std::fs::write(&path, doc.render().as_bytes())
        .map_err(|e| format!("write {}: {e}", path.display()))?;

    // Terminal summary: the cycle breakdown per node...
    let (starts, retires, discards, pushes, pops, fills) = rec.counts();
    println!(
        "\n== {name}: {} ==\n{} events ({starts} starts, {retires} retires, {discards} discards, \
         {pushes} pushes, {pops} pops, {fills} fills), {} cache hits of {} accesses",
        report.summary(),
        rec.len(),
        report.cache_totals().hits(),
        report.cache_totals().accesses(),
    );
    let rows: Vec<_> = report
        .nodes()
        .iter()
        .enumerate()
        .map(|(i, n)| {
            let b = n.cycle_breakdown();
            b.verify(n.finish).expect("cycle identity must hold");
            (format!("node {i}"), b, n.finish)
        })
        .collect();
    println!("{}", breakdown_table(&rows).to_ascii());

    // ...plus sampled series for the most starvation-prone node.
    let horizon = rec.horizon().max(1);
    let cadence = (horizon / 60).max(1);
    let worst = report
        .nodes()
        .iter()
        .enumerate()
        .max_by_key(|(_, n)| n.starved_cycles)
        .map_or(0, |(i, _)| i as u32);
    let occupancy = TimeSeries::occupancy(&rec.fifo_steps(worst), cadence, horizon);
    let utilization = TimeSeries::utilization(&rec.bus_spans(worst), cadence, horizon);
    println!(
        "node {worst} (most starved): fifo depth mean {:.2} / max {:.0}, bus utilization mean {:.0}%",
        occupancy.mean(),
        occupancy.max(),
        utilization.mean() * 100.0,
    );
    println!("{}", occupancy.chart(&format!("fifo depth, node {worst}"), 64, 10));
    println!("bus utilization histogram (node {worst}):");
    println!("{}", utilization.histogram(5).to_ascii());
    println!("wrote {} (open in ui.perfetto.dev)", path.display());
    Ok(())
}

fn main() -> ExitCode {
    let mut scale = 0.12;
    let mut presets: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0.0 => scale = v,
                _ => {
                    eprintln!("--scale needs a positive number\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                print!("{}", usage());
                return ExitCode::SUCCESS;
            }
            name => presets.push(name.to_string()),
        }
    }
    if presets.is_empty() {
        presets.push("grid16".to_string());
    }
    for name in &presets {
        if let Err(e) = run_preset(name, scale) {
            eprintln!("trace: {e}\n{}", usage());
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
