//! Triangle setup: edge functions, fill rule and scanline stepping.

use sortmid_geom::{Rect, Triangle, Vec2};

/// One edge function `e(x, y) = a·x + b·y + c`, positive on the interior
/// side for a CCW triangle.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Edge {
    a: f32,
    b: f32,
    c: f32,
    /// Top-left edges accept `e == 0`; the others do not, so that two
    /// triangles sharing an edge never both draw the boundary pixels.
    top_left: bool,
}

impl Edge {
    fn new(v0: Vec2, v1: Vec2) -> Self {
        // e(p) = cross(v1 - v0, p - v0)
        let a = v0.y - v1.y;
        let b = v1.x - v0.x;
        let c = -(a * v0.x + b * v0.y);
        // Screen is y-down and the triangle is CCW (positive area): an edge
        // is "top" when horizontal and pointing right, "left" when pointing
        // down.
        let top = v0.y == v1.y && v1.x > v0.x;
        let left = v1.y > v0.y;
        Edge {
            a,
            b,
            c,
            top_left: top || left,
        }
    }

    fn eval(&self, x: f32, y: f32) -> f32 {
        self.a * x + self.b * y + self.c
    }

    fn accepts(&self, value: f32) -> bool {
        if self.top_left {
            value >= 0.0
        } else {
            value > 0.0
        }
    }
}

/// The per-triangle setup the engine computes before scanning: edge
/// functions, the screen-clipped pixel bounding box and the constant
/// texture-coordinate interpolants.
///
/// # Examples
///
/// ```
/// use sortmid_geom::{Rect, Triangle, Vertex};
/// use sortmid_raster::TriangleSetup;
///
/// let tri = Triangle::new(
///     0,
///     [
///         Vertex::new(0.0, 0.0, 0.0, 0.0),
///         Vertex::new(4.0, 0.0, 4.0, 0.0),
///         Vertex::new(0.0, 4.0, 0.0, 4.0),
///     ],
/// );
/// let setup = TriangleSetup::new(&tri, Rect::of_size(64, 64)).unwrap();
/// assert!(setup.covers(1, 1));
/// assert!(!setup.covers(3, 3)); // outside the hypotenuse
/// ```
#[derive(Debug, Clone)]
pub struct TriangleSetup {
    edges: [Edge; 3],
    bbox: Rect,
    /// Texture coordinate at pixel (0, 0)'s center, extrapolated.
    uv_origin: Vec2,
    du: Vec2,
    dv: Vec2,
    lod: f32,
}

impl TriangleSetup {
    /// Builds the setup for `tri` clipped to `screen`.
    ///
    /// Returns `None` when the triangle is degenerate or its pixel bounding
    /// box misses the screen entirely (the geometry stage culls it).
    pub fn new(tri: &Triangle, screen: Rect) -> Option<Self> {
        let grads = tri.uv_gradients()?;
        let bbox = tri.pixel_bbox().intersect(&screen);
        if bbox.is_empty() {
            return None;
        }
        let [v0, v1, v2] = *tri.vertices();
        let edges = [
            Edge::new(v0.pos, v1.pos),
            Edge::new(v1.pos, v2.pos),
            Edge::new(v2.pos, v0.pos),
        ];
        let uv_origin = tri.uv_at(Vec2::new(0.5, 0.5))?;
        Some(TriangleSetup {
            edges,
            bbox,
            uv_origin,
            du: Vec2::new(grads.du_dx, grads.du_dy),
            dv: Vec2::new(grads.dv_dx, grads.dv_dy),
            lod: grads.lod(),
        })
    }

    /// The screen-clipped pixel bounding box.
    pub fn bbox(&self) -> Rect {
        self.bbox
    }

    /// The triangle's constant mip LOD (λ = log₂ ρ, clamped at 0).
    pub fn lod(&self) -> f32 {
        self.lod
    }

    /// True when the center of pixel `(x, y)` is covered under the top-left
    /// fill rule.
    pub fn covers(&self, x: i32, y: i32) -> bool {
        let px = x as f32 + 0.5;
        let py = y as f32 + 0.5;
        self.edges.iter().all(|e| e.accepts(e.eval(px, py)))
    }

    /// Texture coordinate at the center of pixel `(x, y)` in base-level
    /// texels.
    pub fn uv_at_pixel(&self, x: i32, y: i32) -> Vec2 {
        Vec2::new(
            self.uv_origin.x + self.du.x * x as f32 + self.du.y * y as f32,
            self.uv_origin.y + self.dv.x * x as f32 + self.dv.y * y as f32,
        )
    }

    /// Visits every covered pixel in scanline (row-major) order — the scan
    /// order of the engine. The callback receives `(x, y, u, v)`.
    pub fn scan<F: FnMut(i32, i32, f32, f32)>(&self, visit: F) {
        self.scan_region(self.bbox, visit);
    }

    /// Like [`scan`](Self::scan) but restricted to `clip` — what one node
    /// of the machine does in hardware: "the processors \[are\] able to do
    /// clipping while drawing and they only draw pixels that belong to
    /// their image tile or image line". Scanning the same triangle over a
    /// partition of the screen visits exactly the pixels of a full scan.
    pub fn scan_rect<F: FnMut(i32, i32, f32, f32)>(&self, clip: Rect, visit: F) {
        self.scan_region(self.bbox.intersect(&clip), visit);
    }

    fn scan_region<F: FnMut(i32, i32, f32, f32)>(&self, bb: Rect, mut visit: F) {
        // Incremental edge evaluation: values at the row's first pixel
        // center, stepped by `a` per +1 x and `b` per +1 y.
        let x0c = bb.x0 as f32 + 0.5;
        let mut row_e = [0.0f32; 3];
        for (i, e) in self.edges.iter().enumerate() {
            row_e[i] = e.eval(x0c, bb.y0 as f32 + 0.5);
        }
        let mut row_u = self.uv_origin.x + self.du.x * bb.x0 as f32 + self.du.y * bb.y0 as f32;
        let mut row_v = self.uv_origin.y + self.dv.x * bb.x0 as f32 + self.dv.y * bb.y0 as f32;
        for y in bb.y0..bb.y1 {
            let mut e = row_e;
            let mut u = row_u;
            let mut v = row_v;
            for x in bb.x0..bb.x1 {
                if self.edges[0].accepts(e[0])
                    && self.edges[1].accepts(e[1])
                    && self.edges[2].accepts(e[2])
                {
                    visit(x, y, u, v);
                }
                for (value, edge) in e.iter_mut().zip(&self.edges) {
                    *value += edge.a;
                }
                u += self.du.x;
                v += self.dv.x;
            }
            for (value, edge) in row_e.iter_mut().zip(&self.edges) {
                *value += edge.b;
            }
            row_u += self.du.y;
            row_v += self.dv.y;
            let _ = (u, v, e);
        }
    }

    /// Counts covered pixels (the triangle's fragment count on this screen).
    pub fn coverage(&self) -> u64 {
        let mut n = 0;
        self.scan(|_, _, _, _| n += 1);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sortmid_geom::Vertex;

    fn tri(coords: [(f32, f32); 3]) -> Triangle {
        Triangle::new(
            0,
            [
                Vertex::new(coords[0].0, coords[0].1, coords[0].0, coords[0].1),
                Vertex::new(coords[1].0, coords[1].1, coords[1].0, coords[1].1),
                Vertex::new(coords[2].0, coords[2].1, coords[2].0, coords[2].1),
            ],
        )
    }

    fn screen() -> Rect {
        Rect::of_size(64, 64)
    }

    #[test]
    fn axis_aligned_square_coverage_is_exact() {
        // Two triangles forming the square [0,8)x[0,8): 64 pixels total,
        // each drawn exactly once thanks to the top-left rule.
        let t1 = tri([(0.0, 0.0), (8.0, 0.0), (0.0, 8.0)]);
        let t2 = tri([(8.0, 0.0), (8.0, 8.0), (0.0, 8.0)]);
        let s1 = TriangleSetup::new(&t1, screen()).unwrap();
        let s2 = TriangleSetup::new(&t2, screen()).unwrap();
        let mut hits = std::collections::HashMap::new();
        s1.scan(|x, y, _, _| *hits.entry((x, y)).or_insert(0) += 1);
        s2.scan(|x, y, _, _| *hits.entry((x, y)).or_insert(0) += 1);
        assert_eq!(hits.len(), 64, "full square covered");
        assert!(hits.values().all(|&c| c == 1), "no pixel drawn twice");
    }

    #[test]
    fn right_triangle_coverage_count() {
        let t = tri([(0.0, 0.0), (8.0, 0.0), (0.0, 8.0)]);
        let s = TriangleSetup::new(&t, screen()).unwrap();
        // Half of the 8x8 square: 36 pixels lie strictly below the diagonal
        // x + y < 8 at pixel centers (x+0.5 + y+0.5 < 8 <=> x + y < 7).
        assert_eq!(s.coverage(), 36);
    }

    #[test]
    fn degenerate_and_offscreen_are_rejected() {
        let degenerate = tri([(0.0, 0.0), (4.0, 4.0), (8.0, 8.0)]);
        assert!(TriangleSetup::new(&degenerate, screen()).is_none());
        let offscreen = tri([(100.0, 100.0), (120.0, 100.0), (100.0, 120.0)]);
        assert!(TriangleSetup::new(&offscreen, screen()).is_none());
    }

    #[test]
    fn bbox_is_clipped_to_screen() {
        let t = tri([(-10.0, -10.0), (30.0, -10.0), (-10.0, 30.0)]);
        let s = TriangleSetup::new(&t, screen()).unwrap();
        assert!(Rect::of_size(64, 64).contains_rect(&s.bbox()));
        assert_eq!(s.bbox().x0, 0);
        assert_eq!(s.bbox().y0, 0);
    }

    #[test]
    fn scan_matches_covers() {
        let t = tri([(3.2, 1.7), (20.9, 8.3), (7.1, 25.6)]);
        let s = TriangleSetup::new(&t, screen()).unwrap();
        let mut from_scan = Vec::new();
        s.scan(|x, y, _, _| from_scan.push((x, y)));
        let mut from_covers = Vec::new();
        for (x, y) in s.bbox().pixels() {
            if s.covers(x, y) {
                from_covers.push((x, y));
            }
        }
        assert_eq!(from_scan, from_covers);
        assert!(!from_scan.is_empty());
    }

    #[test]
    fn uv_interpolation_along_scan() {
        // uv == pos by construction, so u at pixel center == x + 0.5.
        let t = tri([(0.0, 0.0), (16.0, 0.0), (0.0, 16.0)]);
        let s = TriangleSetup::new(&t, screen()).unwrap();
        s.scan(|x, y, u, v| {
            assert!((u - (x as f32 + 0.5)).abs() < 1e-3, "u at {x},{y}: {u}");
            assert!((v - (y as f32 + 0.5)).abs() < 1e-3, "v at {x},{y}: {v}");
        });
        assert_eq!(s.lod(), 0.0);
    }

    #[test]
    fn uv_at_pixel_matches_scan() {
        let t = tri([(2.0, 3.0), (30.0, 5.0), (6.0, 28.0)]);
        let s = TriangleSetup::new(&t, screen()).unwrap();
        s.scan(|x, y, u, v| {
            let uv = s.uv_at_pixel(x, y);
            assert!((uv.x - u).abs() < 1e-2);
            assert!((uv.y - v).abs() < 1e-2);
        });
    }

    #[test]
    fn minified_triangle_has_positive_lod() {
        // Texture coords 4x the screen extent -> rho = 4 -> lod = 2.
        let t = Triangle::new(
            0,
            [
                Vertex::new(0.0, 0.0, 0.0, 0.0),
                Vertex::new(8.0, 0.0, 32.0, 0.0),
                Vertex::new(0.0, 8.0, 0.0, 32.0),
            ],
        );
        let s = TriangleSetup::new(&t, screen()).unwrap();
        assert!((s.lod() - 2.0).abs() < 1e-5);
    }

    #[test]
    fn clipped_scans_tile_to_the_full_scan() {
        // Hardware clipping: scanning over a screen partition must visit
        // exactly the full scan's pixels, once each.
        let t = tri([(3.7, 2.1), (41.3, 9.9), (11.0, 38.6)]);
        let s = TriangleSetup::new(&t, screen()).unwrap();
        let mut full = Vec::new();
        s.scan(|x, y, _, _| full.push((x, y)));
        let mut tiled = Vec::new();
        for ty in 0..4 {
            for tx in 0..4 {
                let clip = Rect::new(tx * 16, ty * 16, (tx + 1) * 16, (ty + 1) * 16);
                s.scan_rect(clip, |x, y, _, _| tiled.push((x, y)));
            }
        }
        tiled.sort_unstable();
        let mut full_sorted = full.clone();
        full_sorted.sort_unstable();
        assert_eq!(tiled, full_sorted);
        assert!(!full.is_empty());
    }

    #[test]
    fn scan_rect_outside_bbox_is_empty() {
        let t = tri([(0.0, 0.0), (8.0, 0.0), (0.0, 8.0)]);
        let s = TriangleSetup::new(&t, screen()).unwrap();
        let mut n = 0;
        s.scan_rect(Rect::new(32, 32, 64, 64), |_, _, _, _| n += 1);
        assert_eq!(n, 0);
    }

    #[test]
    fn scan_rect_preserves_uv_interpolation() {
        let t = tri([(0.0, 0.0), (16.0, 0.0), (0.0, 16.0)]);
        let s = TriangleSetup::new(&t, screen()).unwrap();
        s.scan_rect(Rect::new(4, 4, 12, 12), |x, y, u, v| {
            assert!((u - (x as f32 + 0.5)).abs() < 1e-3);
            assert!((v - (y as f32 + 0.5)).abs() < 1e-3);
        });
    }

    #[test]
    fn adjacent_mesh_partition_no_double_draw() {
        // A 4x4 grid of quads, each split into two triangles: every pixel
        // of [0,32)^2 must be covered exactly once.
        let mut hits = vec![0u32; 32 * 32];
        for gy in 0..4 {
            for gx in 0..4 {
                let x0 = gx as f32 * 8.0;
                let y0 = gy as f32 * 8.0;
                let quads = [
                    tri([(x0, y0), (x0 + 8.0, y0), (x0, y0 + 8.0)]),
                    tri([(x0 + 8.0, y0), (x0 + 8.0, y0 + 8.0), (x0, y0 + 8.0)]),
                ];
                for t in &quads {
                    let s = TriangleSetup::new(t, screen()).unwrap();
                    s.scan(|x, y, _, _| {
                        if (0..32).contains(&x) && (0..32).contains(&y) {
                            hits[(y * 32 + x) as usize] += 1;
                        }
                    });
                }
            }
        }
        assert!(hits.iter().all(|&c| c == 1), "mesh must partition the grid");
    }
}
