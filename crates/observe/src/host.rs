//! Host-side profiling: hierarchical phase spans, per-worker utilization
//! and a merged [`HostProfile`] artefact.
//!
//! PRs 3–4 made the *simulated* machine observable; this module does the
//! same for the *host* pipeline that runs the sweeps (plan build, batch
//! pivot, lane construction, trace capture, stack-distance evaluation,
//! per-config timing synthesis). It mirrors the established patterns:
//!
//! * the **NullSink pattern** — instrumented code is generic over
//!   [`HostSink`]; [`NullHostSink`] has `ENABLED == false`, every call
//!   site guards on the constant, and the unprofiled pipeline
//!   monomorphizes to exactly the pre-instrumentation code (the sweep
//!   bench's regression gate keeps this honest);
//! * the **accounting identity** — each worker thread reports
//!   `busy + idle == wall` *exactly* (idle is derived, the invariant is
//!   enforced by construction and re-checked by `bench_check`), mirroring
//!   PR 3's five-way cycle identity;
//! * the **artefact contract** — [`HostProfile::to_json`] is the schema
//!   behind `METRICS_sweep.json`, and
//!   [`chrome_trace_with_host`](crate::perfetto::chrome_trace_with_host)
//!   renders the same spans as wall-time tracks next to the simulated
//!   cycle tracks in one Perfetto document.
//!
//! Spans are coarse (pipeline phases, not per-fragment events): a profiled
//! sweep records tens of spans, so the mutex-guarded span table is nowhere
//! near any hot path.
//!
//! # Examples
//!
//! ```
//! use sortmid_observe::{HostProfiler, HostSink};
//!
//! let prof = HostProfiler::new();
//! {
//!     let _outer = prof.span("plan-build");
//!     let _inner = prof.span("owner-lut");
//! } // guards close in reverse order
//! prof.worker("run-configs", 0, 1_000, 600, 4);
//! let profile = prof.finish();
//! profile.verify().unwrap();
//! assert_eq!(profile.spans.len(), 2);
//! assert_eq!(profile.workers[0].idle_ns(), 400);
//! ```

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::thread::ThreadId;
use std::time::Instant;

use crate::metrics::MetricsRegistry;
use sortmid_devharness::json::Json;

/// A consumer of host-profiling events. Instrumented pipelines are generic
/// over this; [`NullHostSink`] folds every call away.
pub trait HostSink: Sync {
    /// Whether this sink observes anything. Call sites guard timing and
    /// event construction on this constant, so it folds at
    /// monomorphization time.
    const ENABLED: bool = true;

    /// Opens a span named `name` on the calling thread; returns a token
    /// for [`span_end`](Self::span_end).
    fn span_begin(&self, name: &'static str) -> usize;

    /// Closes the span `token` (must be the innermost open span of the
    /// calling thread).
    fn span_end(&self, token: usize);

    /// Adds `delta` to the counter metric `name`.
    fn count(&self, name: &'static str, delta: u64);

    /// Records `value` into the histogram metric `name`.
    fn observe(&self, name: &'static str, value: u64);

    /// Raises the gauge metric `name` to at least `value` (a high-water
    /// mark — the sweep scheduler reports per-worker queue depths this
    /// way).
    fn gauge_max(&self, name: &'static str, value: u64);

    /// Reports one worker thread's utilization for pipeline stage `lane`:
    /// `busy_ns` of item work inside a `wall_ns` window over `items`
    /// items. Implementations must preserve `busy <= wall` so the
    /// `busy + idle == wall` identity holds exactly.
    fn worker(&self, lane: &'static str, worker: u32, wall_ns: u64, busy_ns: u64, items: u64);

    /// RAII span guard: opens now, closes on drop. With a disabled sink
    /// this constructs nothing and compiles to nothing.
    fn span(&self, name: &'static str) -> HostSpan<'_, Self>
    where
        Self: Sized,
    {
        HostSpan::enter(self, name)
    }
}

/// The no-op host sink: unprofiled pipelines monomorphize through this.
///
/// # Examples
///
/// ```
/// use sortmid_observe::{HostSink, NullHostSink};
///
/// assert!(!NullHostSink::ENABLED);
/// let _span = NullHostSink.span("anything"); // compiles to nothing
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct NullHostSink;

impl HostSink for NullHostSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn span_begin(&self, _name: &'static str) -> usize {
        0
    }

    #[inline(always)]
    fn span_end(&self, _token: usize) {}

    #[inline(always)]
    fn count(&self, _name: &'static str, _delta: u64) {}

    #[inline(always)]
    fn observe(&self, _name: &'static str, _value: u64) {}

    #[inline(always)]
    fn gauge_max(&self, _name: &'static str, _value: u64) {}

    #[inline(always)]
    fn worker(&self, _lane: &'static str, _worker: u32, _wall_ns: u64, _busy_ns: u64, _items: u64) {
    }
}

/// RAII guard of one open phase span (see [`HostSink::span`]).
#[must_use = "dropping the guard immediately closes the span"]
pub struct HostSpan<'a, S: HostSink> {
    sink: &'a S,
    token: usize,
}

impl<'a, S: HostSink> HostSpan<'a, S> {
    /// Opens a span on `sink` (no-op when `S::ENABLED` is false).
    pub fn enter(sink: &'a S, name: &'static str) -> Self {
        let token = if S::ENABLED { sink.span_begin(name) } else { 0 };
        HostSpan { sink, token }
    }
}

impl<S: HostSink> Drop for HostSpan<'_, S> {
    fn drop(&mut self) {
        if S::ENABLED {
            self.sink.span_end(self.token);
        }
    }
}

/// One closed phase span: where, when, and how deep in its thread's stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Phase name (static: spans name pipeline stages, not data).
    pub name: &'static str,
    /// Dense host-thread lane (0 = first thread the profiler saw).
    pub thread: u32,
    /// Nesting depth on that thread (0 = thread root).
    pub depth: u32,
    /// Index of the enclosing span in the profile, when nested.
    pub parent: Option<u32>,
    /// Start, nanoseconds since the profiler was created.
    pub start_ns: u64,
    /// End, nanoseconds since the profiler was created.
    pub end_ns: u64,
}

impl SpanRecord {
    /// Span duration in nanoseconds.
    pub fn dur_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// One worker thread's utilization in a parallel pipeline stage, with the
/// exact identity `busy + idle == wall` (idle is derived, never measured).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerStats {
    /// The pipeline stage the worker served (e.g. `"run-configs"`).
    pub lane: &'static str,
    /// Worker index within the stage.
    pub worker: u32,
    /// Wall time of the worker's whole window, nanoseconds.
    pub wall_ns: u64,
    /// Time inside item work, nanoseconds (`<= wall_ns`).
    pub busy_ns: u64,
    /// Items the worker processed.
    pub items: u64,
}

impl WorkerStats {
    /// Wall time outside item work: `wall - busy`, so
    /// `busy + idle == wall` holds exactly by construction.
    pub fn idle_ns(&self) -> u64 {
        self.wall_ns - self.busy_ns
    }

    /// Busy fraction of the wall window (1.0 for an empty window).
    pub fn utilization(&self) -> f64 {
        if self.wall_ns == 0 {
            1.0
        } else {
            self.busy_ns as f64 / self.wall_ns as f64
        }
    }
}

/// Per-thread open-span bookkeeping.
#[derive(Debug, Default)]
struct ProfState {
    spans: Vec<SpanRecord>,
    threads: Vec<ThreadId>,
    stacks: Vec<Vec<usize>>,
    workers: Vec<WorkerStats>,
}

impl ProfState {
    fn lane(&mut self, id: ThreadId) -> usize {
        match self.threads.iter().position(|&t| t == id) {
            Some(lane) => lane,
            None => {
                self.threads.push(id);
                self.stacks.push(Vec::new());
                self.threads.len() - 1
            }
        }
    }
}

/// The recording [`HostSink`]: hierarchical spans with per-thread stacks,
/// worker utilization, and a [`MetricsRegistry`] for counters/histograms.
///
/// Threads need no registration — the first span or metric from a thread
/// assigns it a dense lane id. [`finish`](Self::finish) seals the profile.
#[derive(Debug)]
pub struct HostProfiler {
    origin: Instant,
    state: Mutex<ProfState>,
    metrics: MetricsRegistry,
}

impl Default for HostProfiler {
    fn default() -> Self {
        Self::new()
    }
}

impl HostProfiler {
    /// An empty profiler; the clock starts now.
    pub fn new() -> Self {
        HostProfiler {
            origin: Instant::now(),
            state: Mutex::new(ProfState::default()),
            metrics: MetricsRegistry::new(),
        }
    }

    /// The profiler's metrics registry (counters, gauges, histograms).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// Seals the profile: snapshots metrics, captures the peak resident
    /// set, and returns the merged [`HostProfile`].
    ///
    /// # Panics
    ///
    /// Panics if any span is still open — a leaked guard is an
    /// instrumentation bug, and an open span would break the nesting
    /// invariants `bench_check` enforces.
    pub fn finish(self) -> HostProfile {
        let state = self.state.into_inner().expect("host profiler poisoned");
        for (lane, stack) in state.stacks.iter().enumerate() {
            assert!(
                stack.is_empty(),
                "host profiler finished with {} open span(s) on thread lane {lane} \
                 (innermost: '{}')",
                stack.len(),
                state.spans[*stack.last().unwrap()].name,
            );
        }
        HostProfile {
            spans: state.spans,
            workers: state.workers,
            metrics: self.metrics.to_json(),
            peak_rss_bytes: peak_rss_bytes().unwrap_or(0),
        }
    }
}

impl HostSink for HostProfiler {
    fn span_begin(&self, name: &'static str) -> usize {
        let mut state = self.state.lock().expect("host profiler poisoned");
        // Timestamp under the lock so a sibling can never observe this
        // span starting before the previous one ended.
        let now = self.now_ns();
        let lane = state.lane(std::thread::current().id());
        let parent = state.stacks[lane].last().map(|&i| i as u32);
        let depth = state.stacks[lane].len() as u32;
        let token = state.spans.len();
        state.spans.push(SpanRecord {
            name,
            thread: lane as u32,
            depth,
            parent,
            start_ns: now,
            end_ns: u64::MAX,
        });
        state.stacks[lane].push(token);
        token
    }

    fn span_end(&self, token: usize) {
        let mut state = self.state.lock().expect("host profiler poisoned");
        let now = self.now_ns();
        let lane = state.spans[token].thread as usize;
        let top = state.stacks[lane].pop();
        assert_eq!(
            top,
            Some(token),
            "span '{}' closed out of nesting order",
            state.spans[token].name,
        );
        state.spans[token].end_ns = now.max(state.spans[token].start_ns);
    }

    fn count(&self, name: &'static str, delta: u64) {
        self.metrics.add(name, delta);
    }

    fn observe(&self, name: &'static str, value: u64) {
        self.metrics.observe(name, value);
    }

    fn gauge_max(&self, name: &'static str, value: u64) {
        self.metrics.gauge_set_max(name, value);
    }

    fn worker(&self, lane: &'static str, worker: u32, wall_ns: u64, busy_ns: u64, items: u64) {
        let mut state = self.state.lock().expect("host profiler poisoned");
        state.workers.push(WorkerStats {
            lane,
            worker,
            // Clamp so the derived idle can never underflow: busy is a sum
            // of disjoint sub-intervals of the wall window, but we defend
            // against caller timing mistakes rather than corrupt the
            // identity.
            wall_ns: wall_ns.max(busy_ns),
            busy_ns,
            items,
        });
    }
}

/// Aggregate of one phase name across a profile.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTotal {
    /// Spans carrying the name.
    pub count: u64,
    /// Total inclusive duration.
    pub total_ns: u64,
    /// Total duration minus direct children (self time).
    pub self_ns: u64,
}

/// A sealed host profile: spans, worker utilization, metrics snapshot and
/// peak resident memory — what `METRICS_sweep.json` serializes.
#[derive(Debug, Clone)]
pub struct HostProfile {
    /// Every closed span, in open order.
    pub spans: Vec<SpanRecord>,
    /// Worker utilization records, in report order.
    pub workers: Vec<WorkerStats>,
    /// Metrics snapshot ([`MetricsRegistry::to_json`] shape).
    pub metrics: Json,
    /// Peak resident set size in bytes (0 when the platform offers none).
    pub peak_rss_bytes: u64,
}

impl HostProfile {
    /// Inclusive/self durations aggregated by phase name, name-sorted.
    pub fn phase_totals(&self) -> BTreeMap<&'static str, PhaseTotal> {
        let mut totals: BTreeMap<&'static str, PhaseTotal> = BTreeMap::new();
        let mut child_ns: Vec<u64> = vec![0; self.spans.len()];
        for span in &self.spans {
            if let Some(parent) = span.parent {
                child_ns[parent as usize] += span.dur_ns();
            }
        }
        for (i, span) in self.spans.iter().enumerate() {
            let t = totals.entry(span.name).or_default();
            t.count += 1;
            t.total_ns += span.dur_ns();
            t.self_ns += span.dur_ns().saturating_sub(child_ns[i]);
        }
        totals
    }

    /// The distinct phase names, name-sorted.
    pub fn phase_names(&self) -> Vec<&'static str> {
        self.phase_totals().into_keys().collect()
    }

    /// Per-lane worker-utilization imbalance: `(max − min busy) / max
    /// wall` across the lane's workers (records of one worker summed
    /// first), in `[0, 1]` by the `busy <= wall` identity.
    ///
    /// `0` means every worker carried the same load; a static chunked
    /// schedule over heterogeneous work shows up as a large value (the
    /// fast chunks idle while the slow chunk sets the wall), which is
    /// exactly what the sweep's work-stealing scheduler is measured
    /// against in `METRICS_sweep.json`.
    pub fn utilization_imbalance(&self) -> BTreeMap<&'static str, f64> {
        let mut lanes: BTreeMap<&'static str, BTreeMap<u32, (u64, u64)>> = BTreeMap::new();
        for w in &self.workers {
            let (busy, wall) = lanes.entry(w.lane).or_default().entry(w.worker).or_default();
            *busy += w.busy_ns;
            *wall += w.wall_ns;
        }
        lanes
            .into_iter()
            .map(|(lane, workers)| {
                let max_wall = workers.values().map(|&(_, wall)| wall).max().unwrap_or(0);
                let max_busy = workers.values().map(|&(busy, _)| busy).max().unwrap_or(0);
                let min_busy = workers.values().map(|&(busy, _)| busy).min().unwrap_or(0);
                let imbalance = if max_wall == 0 {
                    0.0
                } else {
                    (max_busy - min_busy) as f64 / max_wall as f64
                };
                (lane, imbalance)
            })
            .collect()
    }

    /// Checks every structural invariant the artefact schema promises:
    ///
    /// * every span closed, with `end >= start`;
    /// * children open and close inside their parent, on its thread;
    /// * siblings (same thread, same parent) never overlap;
    /// * every worker satisfies `busy <= wall` (so `busy + idle == wall`).
    pub fn verify(&self) -> Result<(), String> {
        for (i, span) in self.spans.iter().enumerate() {
            if span.end_ns == u64::MAX {
                return Err(format!("span #{i} '{}' was never closed", span.name));
            }
            if span.end_ns < span.start_ns {
                return Err(format!("span #{i} '{}' ends before it starts", span.name));
            }
            if let Some(p) = span.parent {
                let Some(parent) = self.spans.get(p as usize) else {
                    return Err(format!("span #{i} '{}' has a dangling parent", span.name));
                };
                if parent.thread != span.thread {
                    return Err(format!(
                        "span #{i} '{}' crosses threads (parent '{}')",
                        span.name, parent.name
                    ));
                }
                if span.start_ns < parent.start_ns || span.end_ns > parent.end_ns {
                    return Err(format!(
                        "span #{i} '{}' [{}, {}] escapes parent '{}' [{}, {}]",
                        span.name,
                        span.start_ns,
                        span.end_ns,
                        parent.name,
                        parent.start_ns,
                        parent.end_ns
                    ));
                }
            }
        }
        // Sibling overlap: group by (thread, parent), check sorted spans.
        type Siblings = Vec<(u64, u64, &'static str)>;
        let mut groups: BTreeMap<(u32, Option<u32>), Siblings> = BTreeMap::new();
        for span in &self.spans {
            groups
                .entry((span.thread, span.parent))
                .or_default()
                .push((span.start_ns, span.end_ns, span.name));
        }
        for ((thread, _), mut siblings) in groups {
            siblings.sort_unstable();
            for pair in siblings.windows(2) {
                if pair[1].0 < pair[0].1 {
                    return Err(format!(
                        "spans '{}' and '{}' overlap on thread {thread}",
                        pair[0].2, pair[1].2
                    ));
                }
            }
        }
        for (i, w) in self.workers.iter().enumerate() {
            if w.busy_ns > w.wall_ns {
                return Err(format!(
                    "worker record #{i} ({}/{}) busy {} exceeds wall {}",
                    w.lane, w.worker, w.busy_ns, w.wall_ns
                ));
            }
        }
        Ok(())
    }

    /// Serializes the profile under a document `name` (the schema behind
    /// `METRICS_<name>.json`):
    ///
    /// ```json
    /// { "profile": "sweep", "peak_rss_bytes": N,
    ///   "spans": [{"name", "thread", "depth", "parent", "start_ns", "dur_ns"}],
    ///   "workers": [{"lane", "worker", "wall_ns", "busy_ns", "idle_ns", "items"}],
    ///   "utilization_imbalance": {"<lane>": F},
    ///   "phases": [{"name", "count", "total_ns", "self_ns"}],
    ///   "metrics": {"counters": {}, "gauges": {}, "histograms": {}} }
    /// ```
    pub fn to_json(&self, name: &str) -> Json {
        Json::obj([
            ("profile", Json::str(name)),
            ("peak_rss_bytes", Json::U64(self.peak_rss_bytes)),
            (
                "spans",
                Json::arr(self.spans.iter().map(|s| {
                    Json::obj([
                        ("name", Json::str(s.name)),
                        ("thread", Json::U64(s.thread as u64)),
                        ("depth", Json::U64(s.depth as u64)),
                        (
                            "parent",
                            s.parent.map_or(Json::Null, |p| Json::U64(p as u64)),
                        ),
                        ("start_ns", Json::U64(s.start_ns)),
                        ("dur_ns", Json::U64(s.dur_ns())),
                    ])
                })),
            ),
            (
                "workers",
                Json::arr(self.workers.iter().map(|w| {
                    Json::obj([
                        ("lane", Json::str(w.lane)),
                        ("worker", Json::U64(w.worker as u64)),
                        ("wall_ns", Json::U64(w.wall_ns)),
                        ("busy_ns", Json::U64(w.busy_ns)),
                        ("idle_ns", Json::U64(w.idle_ns())),
                        ("items", Json::U64(w.items)),
                    ])
                })),
            ),
            (
                "utilization_imbalance",
                Json::obj(
                    self.utilization_imbalance()
                        .into_iter()
                        .map(|(lane, v)| (lane, Json::F64(v))),
                ),
            ),
            (
                "phases",
                Json::arr(self.phase_totals().into_iter().map(|(name, t)| {
                    Json::obj([
                        ("name", Json::str(name)),
                        ("count", Json::U64(t.count)),
                        ("total_ns", Json::U64(t.total_ns)),
                        ("self_ns", Json::U64(t.self_ns)),
                    ])
                })),
            ),
            ("metrics", self.metrics.clone()),
        ])
    }

    /// A compact terminal summary: top phases by self time, worker
    /// utilization, peak RSS.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let mut phases: Vec<_> = self.phase_totals().into_iter().collect();
        phases.sort_by_key(|(_, t)| std::cmp::Reverse(t.self_ns));
        out.push_str("host phases (by self time):\n");
        for (name, t) in phases.iter().take(12) {
            out.push_str(&format!(
                "  {name:16} x{:<4} total {:>10.3} ms, self {:>10.3} ms\n",
                t.count,
                t.total_ns as f64 / 1e6,
                t.self_ns as f64 / 1e6,
            ));
        }
        if !self.workers.is_empty() {
            let busy: u64 = self.workers.iter().map(|w| w.busy_ns).sum();
            let wall: u64 = self.workers.iter().map(|w| w.wall_ns).sum();
            out.push_str(&format!(
                "workers: {} records, {:.0}% mean utilization ({:.3} ms busy / {:.3} ms wall)\n",
                self.workers.len(),
                if wall == 0 { 100.0 } else { busy as f64 * 100.0 / wall as f64 },
                busy as f64 / 1e6,
                wall as f64 / 1e6,
            ));
        }
        if self.peak_rss_bytes > 0 {
            out.push_str(&format!(
                "peak rss: {:.1} MiB\n",
                self.peak_rss_bytes as f64 / (1024.0 * 1024.0)
            ));
        }
        out
    }
}

/// The process's peak resident set size in bytes, from Linux's
/// `/proc/self/status` `VmHWM` line; `None` where that interface does not
/// exist (non-Linux hosts) — zero-dependency by design, mirroring the
/// offline constraint everywhere else in the workspace.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kib: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kib * 1024);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled() {
        const { assert!(!NullHostSink::ENABLED) };
        const { assert!(HostProfiler::ENABLED) };
    }

    #[test]
    fn spans_nest_on_one_thread() {
        let prof = HostProfiler::new();
        {
            let _a = prof.span("outer");
            {
                let _b = prof.span("inner");
            }
            let _c = prof.span("inner");
        }
        let profile = prof.finish();
        profile.verify().unwrap();
        assert_eq!(profile.spans.len(), 3);
        let outer = &profile.spans[0];
        assert_eq!((outer.name, outer.depth, outer.parent), ("outer", 0, None));
        for inner in &profile.spans[1..] {
            assert_eq!((inner.name, inner.depth, inner.parent), ("inner", 1, Some(0)));
            assert!(inner.start_ns >= outer.start_ns);
            assert!(inner.end_ns <= outer.end_ns);
        }
        // The two "inner" siblings must not overlap.
        assert!(profile.spans[2].start_ns >= profile.spans[1].end_ns);
        let totals = profile.phase_totals();
        assert_eq!(totals["inner"].count, 2);
        assert_eq!(totals["outer"].count, 1);
        assert!(totals["outer"].self_ns <= totals["outer"].total_ns);
    }

    #[test]
    fn spans_on_spawned_threads_get_their_own_lanes() {
        let prof = HostProfiler::new();
        {
            let _root = prof.span("main");
            std::thread::scope(|scope| {
                for _ in 0..2 {
                    scope.spawn(|| {
                        let _w = prof.span("worker");
                    });
                }
            });
        }
        let profile = prof.finish();
        profile.verify().unwrap();
        let workers: Vec<_> = profile.spans.iter().filter(|s| s.name == "worker").collect();
        assert_eq!(workers.len(), 2);
        for w in &workers {
            assert_eq!(w.depth, 0, "spawned threads root their own stacks");
            assert_eq!(w.parent, None);
            assert_ne!(w.thread, 0, "main thread owns lane 0");
        }
        assert_ne!(workers[0].thread, workers[1].thread);
    }

    #[test]
    fn worker_identity_holds_by_construction() {
        let prof = HostProfiler::new();
        prof.worker("run-configs", 0, 100, 60, 3);
        prof.worker("run-configs", 1, 50, 70, 2); // busy > wall: clamped
        let profile = prof.finish();
        profile.verify().unwrap();
        let w0 = &profile.workers[0];
        assert_eq!(w0.busy_ns + w0.idle_ns(), w0.wall_ns);
        assert_eq!(w0.idle_ns(), 40);
        let w1 = &profile.workers[1];
        assert_eq!(w1.wall_ns, 70, "wall clamped up to busy");
        assert_eq!(w1.idle_ns(), 0);
        assert!((w0.utilization() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn utilization_imbalance_is_the_per_lane_busy_spread() {
        let prof = HostProfiler::new();
        // A perfectly balanced lane and a lopsided one: imbalance is the
        // busy spread over the longest wall, per lane.
        prof.worker("balanced", 0, 100, 80, 4);
        prof.worker("balanced", 1, 100, 80, 4);
        prof.worker("lopsided", 0, 200, 200, 8);
        prof.worker("lopsided", 1, 200, 40, 1);
        // Repeated records of one worker aggregate before comparing:
        // worker 1 sums to busy 50 over wall 210 (this record's wall is
        // clamped up to its busy), so the spread is (200-50)/210.
        prof.worker("lopsided", 1, 0, 10, 1);
        let profile = prof.finish();
        let imbalance = profile.utilization_imbalance();
        assert_eq!(imbalance["balanced"], 0.0);
        assert!((imbalance["lopsided"] - 150.0 / 210.0).abs() < 1e-12, "{imbalance:?}");
        for v in imbalance.values() {
            assert!((0.0..=1.0).contains(v));
        }
    }

    #[test]
    fn gauge_max_keeps_the_high_water_mark() {
        let prof = HostProfiler::new();
        prof.gauge_max("sweep.queue_depth.w00", 3);
        prof.gauge_max("sweep.queue_depth.w00", 7);
        prof.gauge_max("sweep.queue_depth.w00", 5);
        let profile = prof.finish();
        let depth = profile
            .metrics
            .get("gauges")
            .and_then(|g| g.get("sweep.queue_depth.w00"))
            .and_then(Json::as_u64);
        assert_eq!(depth, Some(7));
    }

    #[test]
    #[should_panic(expected = "open span")]
    fn finishing_with_an_open_span_panics() {
        let prof = HostProfiler::new();
        let guard = prof.span("leaked");
        std::mem::forget(guard);
        let _ = prof.finish();
    }

    #[test]
    fn profile_json_round_trips_and_carries_the_schema() {
        let prof = HostProfiler::new();
        {
            let _a = prof.span("plan-build");
        }
        prof.count("sweep.configs", 60);
        prof.observe("host.run_ns.direct", 1234);
        prof.worker("run-configs", 0, 10, 5, 1);
        let profile = prof.finish();
        let doc = profile.to_json("unit");
        let text = doc.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.render(), text);
        assert_eq!(back.get("profile").and_then(Json::as_str), Some("unit"));
        assert!(back.get("peak_rss_bytes").and_then(Json::as_u64).is_some());
        let spans = back.get("spans").and_then(Json::as_arr).unwrap();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].get("parent"), Some(&Json::Null));
        let workers = back.get("workers").and_then(Json::as_arr).unwrap();
        let w = &workers[0];
        let (wall, busy, idle) = (
            w.get("wall_ns").and_then(Json::as_u64).unwrap(),
            w.get("busy_ns").and_then(Json::as_u64).unwrap(),
            w.get("idle_ns").and_then(Json::as_u64).unwrap(),
        );
        assert_eq!(busy + idle, wall);
        assert!(back.get("phases").and_then(Json::as_arr).is_some());
        assert!(back.get("metrics").and_then(|m| m.get("counters")).is_some());
        let imbalance = back
            .get("utilization_imbalance")
            .and_then(|i| i.get("run-configs"))
            .expect("per-lane imbalance is serialized");
        assert!(matches!(imbalance, Json::F64(v) if (0.0..=1.0).contains(v)));
    }

    #[test]
    fn peak_rss_reads_on_linux() {
        if cfg!(target_os = "linux") {
            let rss = peak_rss_bytes().expect("/proc/self/status has VmHWM on Linux");
            assert!(rss > 0);
        }
    }

    #[test]
    fn verify_rejects_overlapping_siblings() {
        let profile = HostProfile {
            spans: vec![
                SpanRecord {
                    name: "a",
                    thread: 0,
                    depth: 0,
                    parent: None,
                    start_ns: 0,
                    end_ns: 100,
                },
                SpanRecord {
                    name: "b",
                    thread: 0,
                    depth: 0,
                    parent: None,
                    start_ns: 50,
                    end_ns: 150,
                },
            ],
            workers: Vec::new(),
            metrics: Json::obj::<&str>([]),
            peak_rss_bytes: 0,
        };
        let err = profile.verify().unwrap_err();
        assert!(err.contains("overlap"), "{err}");
    }

    #[test]
    fn verify_rejects_a_child_escaping_its_parent() {
        let profile = HostProfile {
            spans: vec![
                SpanRecord {
                    name: "parent",
                    thread: 0,
                    depth: 0,
                    parent: None,
                    start_ns: 10,
                    end_ns: 20,
                },
                SpanRecord {
                    name: "child",
                    thread: 0,
                    depth: 1,
                    parent: Some(0),
                    start_ns: 15,
                    end_ns: 25,
                },
            ],
            workers: Vec::new(),
            metrics: Json::obj::<&str>([]),
            peak_rss_bytes: 0,
        };
        let err = profile.verify().unwrap_err();
        assert!(err.contains("escapes parent"), "{err}");
    }
}
