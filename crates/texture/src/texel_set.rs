//! A dense bitset over the global texel space.
//!
//! Used to compute the paper's *unique texel to fragment ratio*: the number
//! of distinct texels a scene touches divided by the number of fragments
//! drawn (the bandwidth floor of an ideal, compulsory-miss-only cache).

use crate::layout::TexelAddr;

/// A fixed-capacity bitset keyed by global texel index.
///
/// # Examples
///
/// ```
/// use sortmid_texture::TexelSet;
///
/// let mut set = TexelSet::with_capacity(1024);
/// assert_eq!(set.len(), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TexelSet {
    words: Vec<u64>,
    len: u64,
}

impl TexelSet {
    /// Creates a set able to hold texel indices `< capacity`.
    pub fn with_capacity(capacity: u64) -> Self {
        TexelSet {
            words: vec![0; capacity.div_ceil(64) as usize],
            len: 0,
        }
    }

    /// Inserts a texel address; returns `true` if it was new.
    ///
    /// # Panics
    ///
    /// Panics if the address exceeds the capacity.
    pub fn insert(&mut self, addr: TexelAddr) -> bool {
        let idx = addr.index() as usize;
        let word = &mut self.words[idx / 64];
        let bit = 1u64 << (idx % 64);
        if *word & bit == 0 {
            *word |= bit;
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// True when the address has been inserted.
    ///
    /// # Panics
    ///
    /// Panics if the address exceeds the capacity.
    pub fn contains(&self, addr: TexelAddr) -> bool {
        let idx = addr.index() as usize;
        self.words[idx / 64] & (1u64 << (idx % 64)) != 0
    }

    /// Number of distinct texels inserted.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of distinct *cache lines* (4×4 blocks) touched.
    pub fn line_count(&self) -> u64 {
        // 16 texels per line = 16 bits; count words 16 bits at a time.
        let mut lines = 0;
        for &w in &self.words {
            for shift in [0u32, 16, 32, 48] {
                if (w >> shift) & 0xFFFF != 0 {
                    lines += 1;
                }
            }
        }
        lines
    }

    /// Removes all entries, keeping capacity.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TextureDesc, TextureRegistry};

    fn setup() -> (TextureRegistry, TexelSet) {
        let mut reg = TextureRegistry::new();
        reg.register(TextureDesc::new(32, 32).unwrap()).unwrap();
        let cap = reg.total_texels();
        (reg, TexelSet::with_capacity(cap))
    }

    #[test]
    fn insert_dedupes() {
        let (reg, mut set) = setup();
        let id = reg.ids().next().unwrap();
        let a = reg.texel_addr(id, 0, 3, 5);
        assert!(set.insert(a));
        assert!(!set.insert(a));
        assert_eq!(set.len(), 1);
        assert!(set.contains(a));
        assert!(!set.contains(reg.texel_addr(id, 0, 4, 5)));
    }

    #[test]
    fn line_count_groups_blocks() {
        let (reg, mut set) = setup();
        let id = reg.ids().next().unwrap();
        // All texels of one 4x4 block -> one line.
        for v in 0..4 {
            for u in 0..4 {
                set.insert(reg.texel_addr(id, 0, u, v));
            }
        }
        assert_eq!(set.len(), 16);
        assert_eq!(set.line_count(), 1);
        // One texel of another block -> two lines.
        set.insert(reg.texel_addr(id, 0, 8, 8));
        assert_eq!(set.line_count(), 2);
    }

    #[test]
    fn clear_resets() {
        let (reg, mut set) = setup();
        let id = reg.ids().next().unwrap();
        set.insert(reg.texel_addr(id, 0, 0, 0));
        assert!(!set.is_empty());
        set.clear();
        assert!(set.is_empty());
        assert_eq!(set.line_count(), 0);
    }
}
