//! Distribution shoot-out: should a scalable multi-chip 3D accelerator
//! interleave square blocks or scanline groups?
//!
//! This is the paper's central design question, answered for a workload of
//! your choice: for each processor count it sweeps both distributions over
//! their parameter ranges and reports the winner — reproducing the
//! conclusion that block-16 is configuration-independent while the best SLI
//! group size shrinks as the machine grows.
//!
//! ```text
//! cargo run --release --example distribution_shootout [benchmark] [scale]
//! ```

use sortmid::{run_sweep, CacheKind, Distribution, Machine, MachineConfig};
use sortmid_scene::{Benchmark, SceneBuilder};
use sortmid_util::table::{fmt_f, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let benchmark: Benchmark = args
        .next()
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(Benchmark::Truc640);
    let scale: f64 = args.next().map(|s| s.parse()).transpose()?.unwrap_or(0.25);

    println!("workload: {benchmark} at scale {scale}\n");
    let stream = SceneBuilder::benchmark(benchmark).scale(scale).build().rasterize();
    let baseline = Machine::new(MachineConfig::uniprocessor()).run(&stream);

    let mut table = Table::new(&[
        "procs",
        "best block",
        "speedup",
        "best SLI",
        "speedup",
        "winner",
    ]);
    for procs in [4u32, 16, 64] {
        let block_widths = [4u32, 8, 16, 32, 64, 128];
        let sli_lines = [1u32, 2, 4, 8, 16, 32];

        let configs: Vec<MachineConfig> = block_widths
            .iter()
            .map(|&w| Distribution::block(w))
            .chain(sli_lines.iter().map(|&l| Distribution::sli(l)))
            .map(|dist| {
                MachineConfig::builder()
                    .processors(procs)
                    .distribution(dist)
                    .cache(CacheKind::PaperL1)
                    .bus_ratio(1.0)
                    .build()
                    .expect("valid")
            })
            .collect();
        let reports = run_sweep(&stream, &configs);

        let best = |range: std::ops::Range<usize>| {
            range
                .map(|i| (i, reports[i].speedup_vs(&baseline)))
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
                .expect("non-empty")
        };
        let (bi, bs) = best(0..block_widths.len());
        let (si, ss) = best(block_widths.len()..configs.len());
        table.row_owned(vec![
            procs.to_string(),
            format!("block-{}", block_widths[bi]),
            fmt_f(bs, 2),
            format!("sli-{}", sli_lines[si - block_widths.len()]),
            fmt_f(ss, 2),
            if bs >= ss { "block" } else { "SLI" }.to_string(),
        ]);
    }
    print!("{}", table.to_ascii());
    println!(
        "\nThe paper's conclusion: both tie up to 16 processors, square blocks\n\
         win at 64, and only block keeps one best parameter at every size."
    );
    Ok(())
}
