//! A victim buffer behind the L1 — the era's cheap alternative to more
//! associativity.
//!
//! Jouppi-style: a small fully-associative buffer holds the last lines the
//! L1 evicted. An L1 miss that hits the victim buffer swaps the line back
//! without touching external memory. For texture streams the interesting
//! question is whether a handful of victim entries can stand in for going
//! 4-way — relevant to the cache-geometry ablation around the
//! Hakura-Gupta point.

use crate::geometry::CacheGeometry;
use crate::stats::CacheStats;
use crate::LineCache;

/// Sentinel tag meaning "slot is empty".
const EMPTY: u32 = u32::MAX;

/// A set-associative L1 plus a small fully-associative victim buffer.
///
/// `stats()` counts L1 behaviour; [`VictimCache::victim_hits`] counts
/// misses the buffer absorbed; [`LineCache::external_fetches`] counts only
/// true external fills.
///
/// # Examples
///
/// ```
/// use sortmid_cache::{CacheGeometry, LineCache, VictimCache};
///
/// let mut c = VictimCache::new(CacheGeometry::new(512, 1, 64)?, 4);
/// c.access_line(0);
/// c.access_line(8); // direct-mapped conflict: evicts 0 into the buffer
/// c.access_line(0); // L1 miss, victim hit: no external fetch
/// assert_eq!(c.victim_hits(), 1);
/// assert_eq!(c.external_fetches(), 2);
/// # Ok::<(), sortmid_cache::CacheGeometryError>(())
/// ```
#[derive(Debug, Clone)]
pub struct VictimCache {
    geometry: CacheGeometry,
    /// `sets * ways` tags, each set's ways in recency order.
    tags: Vec<u32>,
    /// Victim slots in recency order (index 0 = most recent victim).
    victims: Vec<u32>,
    stats: CacheStats,
    victim_hits: u64,
    external: u64,
}

impl VictimCache {
    /// Creates the hierarchy: an L1 with `geometry` and a fully-associative
    /// buffer of `victim_slots` lines.
    ///
    /// # Panics
    ///
    /// Panics if `victim_slots` is zero.
    pub fn new(geometry: CacheGeometry, victim_slots: usize) -> Self {
        assert!(victim_slots > 0, "victim buffer needs at least one slot");
        VictimCache {
            geometry,
            tags: vec![EMPTY; (geometry.sets() * geometry.ways()) as usize],
            victims: vec![EMPTY; victim_slots],
            stats: CacheStats::new(),
            victim_hits: 0,
            external: 0,
        }
    }

    /// The L1 geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Misses the victim buffer absorbed.
    pub fn victim_hits(&self) -> u64 {
        self.victim_hits
    }

    /// Installs `line` as MRU of its set; returns the evicted line, if the
    /// way it displaced held one.
    fn install(&mut self, line: u32) -> Option<u32> {
        let ways = self.geometry.ways() as usize;
        let base = self.geometry.set_of(line) as usize * ways;
        let set = &mut self.tags[base..base + ways];
        let evicted = set[ways - 1];
        set.rotate_right(1);
        set[0] = line;
        (evicted != EMPTY).then_some(evicted)
    }

    /// Pushes an evicted line into the victim buffer (dropping its LRU).
    fn push_victim(&mut self, line: u32) {
        self.victims.rotate_right(1);
        self.victims[0] = line;
    }
}

impl LineCache for VictimCache {
    #[inline]
    fn access_line(&mut self, line: u32) -> bool {
        debug_assert_ne!(line, EMPTY);
        let ways = self.geometry.ways() as usize;
        let base = self.geometry.set_of(line) as usize * ways;
        let set = &mut self.tags[base..base + ways];
        if let Some(pos) = set.iter().position(|&t| t == line) {
            set[..=pos].rotate_right(1);
            self.stats.record(true);
            return true;
        }
        // L1 miss: probe the victim buffer.
        self.stats.record(false);
        if let Some(pos) = self.victims.iter().position(|&t| t == line) {
            self.victim_hits += 1;
            self.victims.remove(pos);
            self.victims.push(EMPTY);
            if let Some(evicted) = self.install(line) {
                self.push_victim(evicted);
            }
        } else {
            self.external += 1;
            if let Some(evicted) = self.install(line) {
                self.push_victim(evicted);
            }
        }
        false
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn external_fetches(&self) -> u64 {
        self.external
    }

    fn reset(&mut self) {
        self.tags.fill(EMPTY);
        self.victims.fill(EMPTY);
        self.stats.reset();
        self.victim_hits = 0;
        self.external = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Direct-mapped 8-line L1 (512 B) + 4 victim slots.
    fn tiny() -> VictimCache {
        VictimCache::new(CacheGeometry::new(512, 1, 64).unwrap(), 4)
    }

    #[test]
    fn victim_absorbs_conflict_misses() {
        let mut c = tiny();
        // Lines 0 and 8 conflict in a direct-mapped 8-set cache.
        for _ in 0..10 {
            c.access_line(0);
            c.access_line(8);
        }
        // After warmup every L1 access misses, but the buffer serves them.
        assert_eq!(c.external_fetches(), 2, "only the two cold fills go out");
        assert!(c.victim_hits() >= 17, "victim hits: {}", c.victim_hits());
    }

    #[test]
    fn capacity_misses_still_go_external() {
        let mut c = tiny();
        // 32-line working set >> 8 L1 lines + 4 victims.
        for round in 0..3 {
            for line in 0..32 {
                c.access_line(line);
            }
            if round == 0 {
                assert_eq!(c.external_fetches(), 32);
            }
        }
        assert!(c.external_fetches() > 64, "thrash must keep fetching");
    }

    #[test]
    fn hits_do_not_touch_the_buffer() {
        let mut c = tiny();
        c.access_line(1);
        let v = c.victim_hits();
        for _ in 0..5 {
            assert!(c.access_line(1));
        }
        assert_eq!(c.victim_hits(), v);
        assert_eq!(c.external_fetches(), 1);
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = tiny();
        c.access_line(0);
        c.access_line(8);
        c.access_line(0);
        c.reset();
        assert_eq!(c.stats().accesses(), 0);
        assert_eq!(c.victim_hits(), 0);
        assert_eq!(c.external_fetches(), 0);
        c.access_line(0);
        assert_eq!(c.external_fetches(), 1, "cold again after reset");
    }

    #[test]
    fn direct_mapped_plus_victims_approaches_two_way() {
        // The classic claim: DM + small victim buffer ~ 2-way, on a
        // conflict-heavy stream.
        use crate::set_assoc::SetAssocCache;
        let mut stream = Vec::new();
        let mut x = 7u32;
        for _ in 0..20_000 {
            x = x.wrapping_mul(1103515245).wrapping_add(12345);
            // two hot lines per set + occasional far line
            let line = match (x >> 8) % 10 {
                0..=4 => (x >> 16) % 2 * 8, // lines 0 / 8 (set 0)
                5..=8 => 1 + ((x >> 16) % 2) * 8, // lines 1 / 9 (set 1)
                _ => (x >> 16) % 64,
            };
            stream.push(line);
        }
        let mut dm_victim = tiny();
        let mut two_way = SetAssocCache::new(CacheGeometry::new(512, 2, 64).unwrap());
        for &l in &stream {
            dm_victim.access_line(l);
            two_way.access_line(l);
        }
        let dmv = dm_victim.external_fetches() as f64;
        let tw = two_way.stats().misses() as f64;
        assert!(
            dmv < tw * 1.5,
            "DM+victim external fetches {dmv} should approach 2-way misses {tw}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_victims_panics() {
        VictimCache::new(CacheGeometry::paper_l1(), 0);
    }
}
