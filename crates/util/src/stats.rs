//! Streaming summary statistics used throughout the measurement code.

/// Online accumulator for count / mean / min / max / variance (Welford).
///
/// # Examples
///
/// ```
/// use sortmid_util::stats::Summary;
///
/// let mut s = Summary::new();
/// for x in [1.0, 2.0, 3.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 3);
/// assert!((s.mean() - 2.0).abs() < 1e-12);
/// assert_eq!(s.max(), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Summary {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (0 when empty).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Smallest observation.
    ///
    /// Returns `+inf` when the accumulator is empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation.
    ///
    /// Returns `-inf` when the accumulator is empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Population variance (0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Relative imbalance of the maximum against the mean, in percent:
    /// `(max / mean - 1) * 100`.
    ///
    /// This is the paper's Figure 5 metric ("percent difference in the work
    /// performed by the busiest processor and the average processor").
    /// Returns 0 when the accumulator is empty or the mean is zero.
    pub fn imbalance_percent(&self) -> f64 {
        if self.count == 0 || self.mean == 0.0 {
            0.0
        } else {
            (self.max / self.mean - 1.0) * 100.0
        }
    }
}

impl Default for Summary {
    fn default() -> Self {
        Self::new()
    }
}

impl Extend<f64> for Summary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Summary::new();
        s.extend(iter);
        s
    }
}

/// Fixed-bin histogram over `[lo, hi)` with saturation at both ends.
///
/// # Examples
///
/// ```
/// use sortmid_util::stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 10);
/// h.push(3.5);
/// h.push(100.0); // clamps into the last bin
/// assert_eq!(h.bin_count(3), 1);
/// assert_eq!(h.bin_count(9), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins` is zero or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            total: 0,
        }
    }

    /// Adds one observation, clamping out-of-range values to the end bins.
    pub fn push(&mut self, x: f64) {
        let n = self.bins.len();
        let t = (x - self.lo) / (self.hi - self.lo);
        let idx = ((t * n as f64).floor() as i64).clamp(0, n as i64 - 1) as usize;
        self.bins[idx] += 1;
        self.total += 1;
    }

    /// Count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// Number of bins.
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// True when no observation has been added.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) estimated from bin midpoints.
    ///
    /// Returns `None` when the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        for (i, &c) in self.bins.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(self.lo + (i as f64 + 0.5) * width);
            }
        }
        Some(self.hi)
    }
}

/// Computes `(max / mean - 1) * 100` over a slice, the paper's load-imbalance
/// metric. Returns 0 for an empty or all-zero slice.
pub fn imbalance_percent(values: &[f64]) -> f64 {
    values.iter().copied().collect::<Summary>().imbalance_percent()
}

/// Gini coefficient of a non-negative load distribution: 0 for a perfectly
/// even load, approaching 1 as one element carries everything. Returns 0
/// for an empty or all-zero slice.
///
/// Complements [`imbalance_percent`]: the imbalance metric only sees the
/// single busiest element, while Gini summarises the whole per-node load
/// curve (two idle nodes out of 64 barely move `max/mean` but do move
/// Gini).
pub fn gini(values: &[f64]) -> f64 {
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let n = sorted.len();
    let total: f64 = sorted.iter().sum();
    if n == 0 || total <= 0.0 {
        return 0.0;
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
    // Mean-difference form over the sorted slice:
    // G = (2 * sum_i(i * x_i) / (n * total)) - (n + 1) / n, i 1-based.
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x)
        .sum();
    (2.0 * weighted) / (n as f64 * total) - (n as f64 + 1.0) / n as f64
}

/// Geometric mean of strictly positive values; returns `None` if the slice is
/// empty or any value is non-positive.
pub fn geometric_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic_moments() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].into_iter().collect();
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-9);
        assert!((s.std_dev() - 2.0).abs() < 1e-9);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn summary_empty_is_neutral() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.imbalance_percent(), 0.0);
    }

    #[test]
    fn imbalance_matches_definition() {
        // busiest = 300, average = 200 -> 50 %
        let v = [100.0, 200.0, 300.0, 200.0];
        assert!((imbalance_percent(&v) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn imbalance_of_uniform_work_is_zero() {
        assert_eq!(imbalance_percent(&[5.0; 16]), 0.0);
    }

    #[test]
    fn gini_of_even_load_is_zero() {
        assert!(gini(&[3.0; 8]).abs() < 1e-12);
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn gini_of_concentrated_load_approaches_one() {
        // One of 100 elements carries everything: G = (n-1)/n = 0.99.
        let mut v = vec![0.0; 100];
        v[7] = 42.0;
        assert!((gini(&v) - 0.99).abs() < 1e-9);
    }

    #[test]
    fn gini_is_order_invariant_and_scale_invariant() {
        let a = gini(&[1.0, 2.0, 3.0, 4.0]);
        let b = gini(&[4.0, 1.0, 3.0, 2.0]);
        let c = gini(&[10.0, 20.0, 30.0, 40.0]);
        assert!((a - b).abs() < 1e-12);
        assert!((a - c).abs() < 1e-12);
        // Known value: G([1,2,3,4]) = 0.25.
        assert!((a - 0.25).abs() < 1e-12);
    }

    #[test]
    fn histogram_bins_and_clamping() {
        let mut h = Histogram::new(0.0, 8.0, 8);
        for x in [-1.0, 0.0, 0.5, 3.9, 7.99, 8.0, 42.0] {
            h.push(x);
        }
        assert_eq!(h.bin_count(0), 3); // -1 clamped, 0, 0.5
        assert_eq!(h.bin_count(3), 1);
        assert_eq!(h.bin_count(7), 3); // 7.99, 8.0 and 42 clamped
        assert_eq!(h.total(), 7);
        assert!(!h.is_empty());
    }

    #[test]
    fn histogram_quantile() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.push(i as f64);
        }
        let median = h.quantile(0.5).unwrap();
        assert!((median - 50.0).abs() < 2.0, "median {median}");
        assert!(h.quantile(0.0).is_some());
        assert!(Histogram::new(0.0, 1.0, 2).quantile(0.5).is_none());
    }

    #[test]
    fn geometric_mean_basics() {
        assert!(geometric_mean(&[]).is_none());
        assert!(geometric_mean(&[1.0, -2.0]).is_none());
        let g = geometric_mean(&[2.0, 8.0]).unwrap();
        assert!((g - 4.0).abs() < 1e-12);
    }
}
