//! Trace sinks: where the machine's events go.
//!
//! The machine, its nodes and the memory-system engine are generic over
//! [`TraceSink`]. Call sites guard every emission with `if S::ENABLED`, so
//! with [`NullSink`] the event is never even constructed — the traced and
//! untraced hot paths compile to the same code (a bench guard in
//! `sortmid-bench` keeps this honest).

use crate::attribution::MissClassCounts;
use crate::event::TraceEvent;
use crate::Cycle;

/// A consumer of machine trace events.
pub trait TraceSink {
    /// Whether this sink observes anything. Call sites skip event
    /// construction entirely when this is `false`, so the check folds away
    /// at monomorphization time.
    const ENABLED: bool = true;

    /// Receives one event.
    fn record(&mut self, event: TraceEvent);

    /// Spatial hook: one drawn fragment at screen pixel `(x, y)` on
    /// `node`, with the texture lines it fetched and their three-C
    /// classification (all-zero counts for unclassified cache models).
    /// Default no-op so temporal sinks are unaffected; the
    /// [`SpatialCollector`](crate::SpatialCollector) overrides it.
    #[inline(always)]
    fn record_fragment(
        &mut self,
        _node: u32,
        _x: u16,
        _y: u16,
        _lines: u32,
        _classes: MissClassCounts,
    ) {
    }

    /// Spatial hook: `padding` setup-floor cycles of one triangle on
    /// `node`, anchored at the triangle's bounding-box origin `(x, y)`.
    /// Default no-op.
    #[inline(always)]
    fn record_setup(&mut self, _node: u32, _x: u16, _y: u16, _padding: Cycle) {}
}

/// The no-op sink: untraced runs monomorphize through this.
///
/// # Examples
///
/// ```
/// use sortmid_observe::{NullSink, TraceEvent, TraceSink};
///
/// assert!(!NullSink::ENABLED);
/// NullSink.record(TraceEvent::FifoPush { node: 0, at: 0 }); // goes nowhere
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _event: TraceEvent) {}
}

/// A sink that keeps every event in memory, with per-kind counters and
/// timeline extraction helpers for the exporters.
///
/// # Examples
///
/// ```
/// use sortmid_observe::{TraceEvent, TraceRecorder, TraceSink};
///
/// let mut rec = TraceRecorder::new();
/// rec.record(TraceEvent::BusFill { node: 2, line: 7, at: 100, cost: 16 });
/// assert_eq!(rec.node_count(), 3);
/// assert_eq!(rec.bus_spans(2), vec![(100, 116)]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    events: Vec<TraceEvent>,
}

impl TraceSink for TraceRecorder {
    #[inline]
    fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}

impl TraceRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Every recorded event, in simulation order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// One more than the highest node id seen (0 when empty).
    pub fn node_count(&self) -> u32 {
        self.events
            .iter()
            .map(|e| e.node() + 1)
            .max()
            .unwrap_or(0)
    }

    /// The latest cycle any event touches (fill ends count).
    pub fn horizon(&self) -> Cycle {
        self.events
            .iter()
            .map(|e| match *e {
                TraceEvent::BusFill { at, cost, .. } => at + cost,
                other => other.at(),
            })
            .max()
            .unwrap_or(0)
    }

    /// Per-kind event counts:
    /// `(starts, retires, discards, pushes, pops, fills)`.
    pub fn counts(&self) -> (u64, u64, u64, u64, u64, u64) {
        let mut c = (0, 0, 0, 0, 0, 0);
        for e in &self.events {
            match e {
                TraceEvent::TriStart { .. } => c.0 += 1,
                TraceEvent::TriRetire { .. } => c.1 += 1,
                TraceEvent::TriDiscard { .. } => c.2 += 1,
                TraceEvent::FifoPush { .. } => c.3 += 1,
                TraceEvent::FifoPop { .. } => c.4 += 1,
                TraceEvent::BusFill { .. } => c.5 += 1,
            }
        }
        c
    }

    /// FIFO occupancy steps of one node: `(cycle, +1 | -1)` sorted by
    /// cycle, pushes before pops at equal cycles (a slot is occupied for
    /// the send cycle even if dequeued the same cycle). Integrating the
    /// steps yields the FIFO depth over time.
    pub fn fifo_steps(&self, node: u32) -> Vec<(Cycle, i64)> {
        let mut steps: Vec<(Cycle, i64)> = self
            .events
            .iter()
            .filter_map(|e| match *e {
                TraceEvent::FifoPush { node: n, at } if n == node => Some((at, 1)),
                TraceEvent::FifoPop { node: n, at } if n == node => Some((at, -1)),
                _ => None,
            })
            .collect();
        // +1 sorts before -1 at equal times because we want pushes first.
        steps.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
        steps
    }

    /// Bus transfer spans `(start, end)` of one node, sorted by start.
    /// Spans never overlap: the bus serializes fills.
    pub fn bus_spans(&self, node: u32) -> Vec<(Cycle, Cycle)> {
        let mut spans: Vec<(Cycle, Cycle)> = self
            .events
            .iter()
            .filter_map(|e| match *e {
                TraceEvent::BusFill { node: n, at, cost, .. } if n == node => {
                    Some((at, at + cost))
                }
                _ => None,
            })
            .collect();
        spans.sort_unstable();
        spans
    }

    /// Engine occupancy spans `(start, end, tri)` of one node (scan +
    /// setup floor), sorted by start.
    pub fn triangle_spans(&self, node: u32) -> Vec<(Cycle, Cycle, u32)> {
        let mut open: Vec<(u32, Cycle)> = Vec::new();
        let mut spans = Vec::new();
        for e in &self.events {
            match *e {
                TraceEvent::TriStart { node: n, tri, at, .. } if n == node => {
                    open.push((tri, at));
                }
                TraceEvent::TriRetire { node: n, tri, at } if n == node => {
                    if let Some(pos) = open.iter().position(|&(t, _)| t == tri) {
                        let (_, start) = open.swap_remove(pos);
                        spans.push((start, at, tri));
                    }
                }
                _ => {}
            }
        }
        spans.sort_unstable();
        spans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled() {
        const { assert!(!NullSink::ENABLED) };
        const { assert!(TraceRecorder::ENABLED) };
    }

    #[test]
    fn recorder_counts_and_horizon() {
        let mut rec = TraceRecorder::new();
        rec.record(TraceEvent::FifoPush { node: 0, at: 5 });
        rec.record(TraceEvent::TriStart { node: 0, tri: 0, at: 10, frags: 3 });
        rec.record(TraceEvent::BusFill { node: 0, line: 1, at: 11, cost: 16 });
        rec.record(TraceEvent::TriRetire { node: 0, tri: 0, at: 35 });
        rec.record(TraceEvent::FifoPop { node: 0, at: 10 });
        let (starts, retires, discards, pushes, pops, fills) = rec.counts();
        assert_eq!((starts, retires, discards, pushes, pops, fills), (1, 1, 0, 1, 1, 1));
        assert_eq!(rec.horizon(), 35, "retire at 35 outlives the fill end 27");
        assert_eq!(rec.node_count(), 1);
    }

    #[test]
    fn fifo_steps_sort_pushes_before_pops() {
        let mut rec = TraceRecorder::new();
        // Pop recorded first in simulation order, same cycle as a push.
        rec.record(TraceEvent::FifoPop { node: 3, at: 20 });
        rec.record(TraceEvent::FifoPush { node: 3, at: 20 });
        rec.record(TraceEvent::FifoPush { node: 3, at: 10 });
        assert_eq!(rec.fifo_steps(3), vec![(10, 1), (20, 1), (20, -1)]);
        assert!(rec.fifo_steps(0).is_empty(), "other nodes unaffected");
    }

    #[test]
    fn triangle_spans_pair_start_and_retire() {
        let mut rec = TraceRecorder::new();
        rec.record(TraceEvent::TriStart { node: 0, tri: 7, at: 100, frags: 5 });
        rec.record(TraceEvent::TriRetire { node: 0, tri: 7, at: 125 });
        rec.record(TraceEvent::TriStart { node: 0, tri: 9, at: 125, frags: 1 });
        rec.record(TraceEvent::TriRetire { node: 0, tri: 9, at: 150 });
        assert_eq!(rec.triangle_spans(0), vec![(100, 125, 7), (125, 150, 9)]);
    }
}
