//! Capture/replay round trips through the on-disk trace formats, and the
//! Perfetto export combining simulated-cycle tracks with host wall-time
//! tracks.

use sortmid::{CacheKind, Distribution, Machine, MachineConfig};
use sortmid_devharness::Json;
use sortmid_observe::{chrome_trace_with_host, HostProfiler, HostSink, TraceRecorder, HOST_PID};
use sortmid_raster::{read_stream, write_stream};
use sortmid_scene::{read_scene, write_scene, Benchmark, SceneBuilder};

#[test]
fn scene_file_round_trip_replays_identically() {
    let scene = SceneBuilder::benchmark(Benchmark::Massive11255).scale(0.08).build();
    let dir = std::env::temp_dir().join("sortmid_trace_io_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("scene.smsc");

    let file = std::fs::File::create(&path).unwrap();
    write_scene(std::io::BufWriter::new(file), &scene).unwrap();
    let back = read_scene(std::io::BufReader::new(std::fs::File::open(&path).unwrap())).unwrap();

    let config = MachineConfig::builder()
        .processors(8)
        .distribution(Distribution::block(16))
        .cache(CacheKind::PaperL1)
        .build()
        .unwrap();
    let a = Machine::new(config.clone()).run(&scene.rasterize());
    let b = Machine::new(config).run(&back.rasterize());
    assert_eq!(a.total_cycles(), b.total_cycles());
    assert_eq!(a.cache_totals().misses(), b.cache_totals().misses());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stream_file_round_trip_replays_identically() {
    let stream = SceneBuilder::benchmark(Benchmark::Quake)
        .scale(0.08)
        .build()
        .rasterize();
    let mut buf = Vec::new();
    write_stream(&mut buf, &stream).unwrap();
    let back = read_stream(buf.as_slice()).unwrap();

    let config = MachineConfig::builder()
        .processors(16)
        .distribution(Distribution::sli(4))
        .cache(CacheKind::PaperL1)
        .triangle_buffer(50)
        .build()
        .unwrap();
    let a = Machine::new(config.clone()).run(&stream);
    let b = Machine::new(config).run(&back);
    assert_eq!(a.total_cycles(), b.total_cycles());
    assert_eq!(a.texel_to_fragment(), b.texel_to_fragment());
}

#[test]
fn stream_files_are_compact() {
    // 40-byte fragments plus small fixed overhead: the format should not
    // balloon beyond ~44 bytes per fragment.
    let stream = SceneBuilder::benchmark(Benchmark::Blowout775)
        .scale(0.08)
        .build()
        .rasterize();
    let mut buf = Vec::new();
    write_stream(&mut buf, &stream).unwrap();
    let per_fragment = buf.len() as f64 / stream.fragment_count() as f64;
    assert!(per_fragment < 44.0, "{per_fragment:.1} bytes/fragment");
}

#[test]
fn chrome_trace_host_tracks_round_trip_and_stay_well_formed() {
    // Build the document the `trace` bench writes: a traced simulated run
    // plus a host profile with nested spans across two host threads.
    let prof = HostProfiler::new();
    let (rec, labels) = {
        let _root = prof.span("trace-preset");
        let stream = {
            let _s = prof.span("rasterize");
            SceneBuilder::benchmark(Benchmark::Quake).scale(0.08).build().rasterize()
        };
        let config = MachineConfig::builder()
            .processors(4)
            .distribution(Distribution::block(16))
            .cache(CacheKind::PaperL1)
            .build()
            .unwrap();
        let machine = Machine::new(config);
        let mut rec = TraceRecorder::new();
        {
            let _s = prof.span("run-traced");
            machine.run_traced(&stream, &mut rec);
        }
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _w = prof.span("worker-run");
                let _inner = prof.span("pivot-plan");
            });
        });
        (rec, machine.node_labels())
    };
    let profile = prof.finish();
    profile.verify().unwrap();

    let text = chrome_trace_with_host(&rec, &labels, &profile).render();
    let doc = Json::parse(&text).expect("export is valid JSON");
    let events = doc.get("traceEvents").and_then(Json::as_arr).expect("traceEvents array");

    // Partition complete ("X") events into host and simulated tracks.
    let mut host: Vec<(u64, u64, u64)> = Vec::new(); // (tid, ts, dur)
    let mut simulated = 0usize;
    for ev in events {
        if ev.get("ph").and_then(Json::as_str) != Some("X") {
            continue;
        }
        let pid = ev.get("pid").and_then(Json::as_u64).unwrap();
        if pid == u64::from(HOST_PID) {
            assert_eq!(ev.get("cat").and_then(Json::as_str), Some("host"));
            host.push((
                ev.get("tid").and_then(Json::as_u64).unwrap(),
                ev.get("ts").and_then(Json::as_u64).unwrap(),
                ev.get("dur").and_then(Json::as_u64).unwrap(),
            ));
        } else {
            simulated += 1;
        }
    }
    // Both worlds coexist in one document.
    assert_eq!(host.len(), profile.spans.len());
    assert!(host.len() >= 5, "expected the five named spans, got {}", host.len());
    assert!(simulated > 0, "simulated-cycle tracks must survive the merge");

    // Host timestamps are nanosecond integers carried verbatim, so the
    // profile's invariants must survive the JSON round trip exactly:
    // within a thread any two spans either nest or are disjoint.
    assert!(host.iter().any(|&(tid, ..)| tid != host[0].0), "two host threads");
    for (i, &(tid_a, ts_a, dur_a)) in host.iter().enumerate() {
        for &(tid_b, ts_b, dur_b) in &host[i + 1..] {
            if tid_a != tid_b {
                continue;
            }
            let (ea, eb) = (ts_a + dur_a, ts_b + dur_b);
            let disjoint = ea <= ts_b || eb <= ts_a;
            let nested = (ts_a <= ts_b && eb <= ea) || (ts_b <= ts_a && ea <= eb);
            assert!(
                disjoint || nested,
                "host spans partially overlap on tid {tid_a}: \
                 [{ts_a}, {ea}) vs [{ts_b}, {eb})"
            );
        }
    }

    // The host process and its threads are named for the Perfetto UI.
    let metas: Vec<&Json> = events
        .iter()
        .filter(|ev| {
            ev.get("pid").and_then(Json::as_u64) == Some(u64::from(HOST_PID))
                && ev.get("ph").and_then(Json::as_str) == Some("M")
        })
        .collect();
    assert!(metas
        .iter()
        .any(|ev| ev.get("name").and_then(Json::as_str) == Some("process_name")));
    assert!(metas
        .iter()
        .filter(|ev| ev.get("name").and_then(Json::as_str) == Some("thread_name"))
        .count() >= 2);
}
