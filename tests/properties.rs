//! Cross-crate property tests on randomized machine configurations, running
//! on the in-repo `sortmid-devharness` runner (fully offline).

use sortmid::{CacheKind, Distribution, Machine, MachineConfig, SpatialCollector};
use sortmid_cache::CacheGeometry;
use sortmid_devharness::prop::{check, Config, Gen};
use sortmid_devharness::{prop_assert, prop_assert_eq};
use sortmid_geom::Rect;
use sortmid_raster::FragmentStream;
use sortmid_scene::{Benchmark, SceneBuilder};
use std::sync::OnceLock;

/// One small shared stream (building scenes per property case is too slow).
fn stream() -> &'static FragmentStream {
    static STREAM: OnceLock<FragmentStream> = OnceLock::new();
    STREAM.get_or_init(|| {
        SceneBuilder::benchmark(Benchmark::Quake)
            .scale(0.08)
            .build()
            .rasterize()
    })
}

/// Block with width 1..200 or SLI with 1..64 lines (block listed first so
/// shrinking lands on `block-1`).
fn arb_distribution(g: &mut Gen) -> Distribution {
    match g.choice(2) {
        0 => Distribution::block(g.u32_in(1..200)),
        _ => Distribution::sli(g.u32_in(1..64)),
    }
}

fn machine_cases() -> Config {
    Config::with_cases(24)
}

/// Every fragment is drawn exactly once whatever the configuration.
#[test]
fn fragments_conserved() {
    check(
        "fragments_conserved",
        &machine_cases(),
        |g| {
            (
                arb_distribution(g),
                g.u32_in(1..96),
                g.pick(&[1usize, 7, 100, 10_000]),
            )
        },
        |(dist, procs, buffer)| {
            let s = stream();
            let config = MachineConfig::builder()
                .processors(*procs)
                .distribution(dist.clone())
                .cache(CacheKind::PaperL1)
                .bus_ratio(1.0)
                .triangle_buffer(*buffer)
                .build()
                .expect("valid");
            let report = Machine::new(config).run(s);
            let drawn: u64 = report.nodes().iter().map(|n| n.pixels).sum();
            prop_assert_eq!(drawn, s.fragment_count());
            Ok(())
        },
    );
}

/// Machine time is monotone: a bigger triangle buffer never slows the
/// machine down.
#[test]
fn buffer_monotonicity() {
    check(
        "buffer_monotonicity",
        &machine_cases(),
        |g| (arb_distribution(g), g.u32_in(2..64)),
        |(dist, procs)| {
            let s = stream();
            let time = |buffer: usize| {
                let config = MachineConfig::builder()
                    .processors(*procs)
                    .distribution(dist.clone())
                    .cache(CacheKind::PaperL1)
                    .bus_ratio(1.0)
                    .triangle_buffer(buffer)
                    .build()
                    .expect("valid");
                Machine::new(config).run(s).total_cycles()
            };
            let small = time(2);
            let medium = time(50);
            let large = time(10_000);
            prop_assert!(medium <= small, "50-entry ({medium}) vs 2-entry ({small})");
            prop_assert!(large <= medium, "ideal ({large}) vs 50-entry ({medium})");
            Ok(())
        },
    );
}

/// A perfect cache is a strict lower bound on machine time, and the
/// texel traffic of a real cache is at least the unique-line floor.
#[test]
fn perfect_cache_is_a_lower_bound() {
    check(
        "perfect_cache_is_a_lower_bound",
        &machine_cases(),
        |g| (arb_distribution(g), g.u32_in(1..64)),
        |(dist, procs)| {
            let s = stream();
            let run = |cache: CacheKind| {
                let config = MachineConfig::builder()
                    .processors(*procs)
                    .distribution(dist.clone())
                    .cache(cache)
                    .bus_ratio(1.0)
                    .build()
                    .expect("valid");
                Machine::new(config).run(s)
            };
            let perfect = run(CacheKind::Perfect);
            let real = run(CacheKind::PaperL1);
            prop_assert!(perfect.total_cycles() <= real.total_cycles());
            prop_assert!(real.texel_to_fragment() >= 0.0);
            Ok(())
        },
    );
}

/// Total routed + discarded equals (procs x live triangles): broadcast
/// accounting never loses a primitive.
#[test]
fn broadcast_accounting() {
    check(
        "broadcast_accounting",
        &machine_cases(),
        |g| (arb_distribution(g), g.u32_in(1..32)),
        |(dist, procs)| {
            let s = stream();
            let live = s.triangles().iter().filter(|t| !t.is_culled()).count() as u64;
            let config = MachineConfig::builder()
                .processors(*procs)
                .distribution(dist.clone())
                .cache(CacheKind::Perfect)
                .build()
                .expect("valid");
            let report = Machine::new(config).run(s);
            let handled: u64 = report
                .nodes()
                .iter()
                .map(|n| n.triangles + n.discarded)
                .sum();
            prop_assert_eq!(handled, live * *procs as u64);
            prop_assert_eq!(
                report.triangles_routed(),
                report.nodes().iter().map(|n| n.triangles).sum::<u64>()
            );
            Ok(())
        },
    );
}

/// The cycle-accounting identity: on every node of every random
/// configuration, `setup + busy + bus_stall + starved + idle` equals the
/// node's finish cycle *exactly* — the engine attributes each cycle to one
/// category as it advances, so the books always balance.
#[test]
fn cycle_breakdown_identity() {
    check(
        "cycle_breakdown_identity",
        &machine_cases(),
        |g| {
            (
                arb_distribution(g),
                g.u32_in(1..64),
                g.pick(&[1usize, 7, 100, 10_000]),
                g.choice(2),
            )
        },
        |(dist, procs, buffer, cache_idx)| {
            let s = stream();
            let cache = match cache_idx {
                0 => CacheKind::Perfect,
                _ => CacheKind::PaperL1,
            };
            let config = MachineConfig::builder()
                .processors(*procs)
                .distribution(dist.clone())
                .cache(cache)
                .bus_ratio(1.0)
                .triangle_buffer(*buffer)
                .build()
                .expect("valid");
            let report = Machine::new(config).run(s);
            for (i, node) in report.nodes().iter().enumerate() {
                let b = node.cycle_breakdown();
                prop_assert!(
                    b.verify(node.finish).is_ok(),
                    "node {i}: {b} sums to {} but finish is {}",
                    b.total(),
                    node.finish
                );
                prop_assert_eq!(
                    node.busy_cycles,
                    b.setup + b.busy,
                    "busy_cycles must stay scan + setup floor"
                );
            }
            Ok(())
        },
    );
}

/// Spatial collection is a pure observer that conserves fragments: the
/// traced report is byte-identical to the untraced one, the per-tile
/// fragment counts sum to the report's fragment total, and the per-node
/// totals match each node's pixel count — for random distributions,
/// machine sizes, and tile granularities.
#[test]
fn spatial_collection_conserves_fragments() {
    check(
        "spatial_collection_conserves_fragments",
        &machine_cases(),
        |g| {
            (
                arb_distribution(g),
                g.u32_in(1..64),
                g.pick(&[4u32, 16, 33, 256]),
            )
        },
        |(dist, procs, tile)| {
            let s = stream();
            let screen = s.screen();
            let config = MachineConfig::builder()
                .processors(*procs)
                .distribution(dist.clone())
                .cache(CacheKind::PaperL1)
                .bus_ratio(1.0)
                .build()
                .expect("valid");
            let machine = Machine::new(config);
            let mut col = SpatialCollector::new(
                screen.width().max(1),
                screen.height().max(1),
                *tile,
                *procs,
            );
            let traced = machine.run_traced(s, &mut col);
            prop_assert_eq!(&traced, &machine.run(s), "collection must not perturb");
            let tile_sum: u64 = col.grid().cells().iter().map(|t| t.fragments).sum();
            prop_assert_eq!(tile_sum, traced.fragments(), "tile sums must conserve");
            prop_assert_eq!(col.fragment_total(), traced.fragments());
            for (i, node) in traced.nodes().iter().enumerate() {
                prop_assert_eq!(
                    col.node_fragments()[i],
                    node.pixels,
                    "node {i} fragment attribution must match its pixel count"
                );
            }
            Ok(())
        },
    );
}

/// The three-C identity under classification: on every node,
/// `compulsory + capacity + conflict` equals the cache's miss counter
/// exactly, and the spatially collected per-node class counts agree with
/// the cache's own breakdown.
#[test]
fn three_c_identity_per_node() {
    check(
        "three_c_identity_per_node",
        &machine_cases(),
        |g| (arb_distribution(g), g.u32_in(1..48)),
        |(dist, procs)| {
            let s = stream();
            let screen = s.screen();
            let config = MachineConfig::builder()
                .processors(*procs)
                .distribution(dist.clone())
                .cache(CacheKind::Classifying(CacheGeometry::paper_l1()))
                .bus_ratio(1.0)
                .build()
                .expect("valid");
            let machine = Machine::new(config);
            let mut col = SpatialCollector::new(
                screen.width().max(1),
                screen.height().max(1),
                16,
                *procs,
            );
            let report = machine.run_traced(s, &mut col);
            for (i, node) in report.nodes().iter().enumerate() {
                prop_assert!(
                    node.verify_misses().is_ok(),
                    "node {i}: {}",
                    node.verify_misses().unwrap_err()
                );
                let b = node.miss_breakdown.expect("classifying cache reports classes");
                let c = col.node_misses()[i];
                prop_assert_eq!(c.compulsory, b.compulsory, "node {i} compulsory");
                prop_assert_eq!(c.capacity, b.capacity, "node {i} capacity");
                prop_assert_eq!(c.conflict, b.conflict, "node {i} conflict");
                prop_assert_eq!(c.total(), node.cache.misses(), "node {i} total");
            }
            Ok(())
        },
    );
}

/// Tiling invariant: for block(w) and sli(g) at every paper machine size,
/// each screen pixel is owned by exactly one node — the owner is always a
/// valid node index, and the routing layer agrees (a one-pixel bounding box
/// overlaps exactly the owner's region and nobody else's).
#[test]
fn tiling_partitions_the_screen() {
    const PROC_COUNTS: [u32; 4] = [1, 4, 16, 64];
    check(
        "tiling_partitions_the_screen",
        &Config::with_cases(48),
        |g| {
            (
                arb_distribution(g),
                (g.i32_in(0..1536), g.i32_in(0..1152)),
            )
        },
        |(dist, (px, py))| {
            let (px, py) = (*px, *py);
            for procs in PROC_COUNTS {
                // A 12x12 patch around the sampled point: exhaustive over
                // the patch, sampled over the screen.
                for y in py..py + 12 {
                    for x in px..px + 12 {
                        let owner = dist.owner(x, y, procs);
                        prop_assert!(
                            owner < procs,
                            "{dist} assigned ({x},{y}) to node {owner} of {procs}"
                        );
                        let mask = dist.overlap_mask(&Rect::new(x, y, x + 1, y + 1), procs);
                        prop_assert_eq!(
                            mask,
                            1u128 << owner,
                            "one-pixel bbox at ({x},{y}) must route only to its owner"
                        );
                    }
                }
            }
            Ok(())
        },
    );
}
