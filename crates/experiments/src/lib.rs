//! Regeneration harness for every table and figure of the paper.
//!
//! Each module reproduces one artefact of the evaluation and returns
//! [`sortmid_util::table::Table`]s that print the same rows/series the paper
//! reports:
//!
//! | module | paper artefact |
//! |---|---|
//! | [`table1`] | Table 1 — benchmark scene characteristics |
//! | [`fig5`] | Figure 5 — load balancing (imbalance % and perfect-cache speedups) |
//! | [`fig6`] | Figure 6 — texel-to-fragment ratio vs processors |
//! | [`fig7`] | Figure 7 — speedups with a 1 (or 2) texel/pixel bus |
//! | [`fig8`] | Figure 8 — speedup vs block width × triangle-buffer size |
//! | [`fig9`] | Figure 9 — benchmark images (PPM files) |
//! | [`ablations`] | prefetch-window, cache-geometry, dynamic-SLI and L2 studies |
//!
//! The binary (`sortmid-experiments`) exposes each as a subcommand; the
//! Criterion benches in `sortmid-bench` wrap the same entry points.
//!
//! Scenes are generated at a reduced `--scale` (default 0.25–0.35 per
//! experiment) because the machine is simulated on one host core;
//! scale-dependent columns are extrapolated back to paper scale where the
//! table calls for it. Shapes — who wins, where the optimum sits, where
//! curves cross — are scale-stable, which is what the reproduction targets.

pub mod ablations;
pub mod common;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod seeds;
pub mod table1;
